// Deterministic, seedable random number generation.
//
// All stochastic components of the library draw exclusively from anadex::Rng
// so that every experiment is exactly reproducible from a single 64-bit seed.
// The generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64
// so that small / correlated user seeds still produce well-mixed state.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace anadex {

/// Complete serializable state of an Rng. Restoring it reproduces the
/// generator's stream bit-for-bit, including the cached spare normal —
/// the foundation of checkpoint/resume for long optimization runs.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double spare_normal = 0.0;
  bool has_spare_normal = false;

  bool operator==(const RngState&) const = default;
};

/// xoshiro256++ pseudo-random generator with convenience distributions.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can also
/// be handed to <random> distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; two Rng constructed from the same seed produce
  /// identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit word.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal();

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli draw with success probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Derives an independent child generator; useful for giving each
  /// subcomponent (e.g. each optimization run in a sweep) its own stream.
  Rng split();

  /// Captures the full generator state for checkpointing.
  RngState state() const;

  /// Restores a state captured by state(); the subsequent stream is
  /// identical to the original generator's.
  void set_state(const RngState& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace anadex
