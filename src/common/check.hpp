// Lightweight precondition / invariant checking.
//
// ANADEX_REQUIRE is used for caller-facing preconditions on public API
// boundaries and throws anadex::PreconditionError so callers can recover.
// ANADEX_ASSERT is used for internal invariants and also throws (rather than
// aborting) so that tests can exercise the failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace anadex {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (indicates a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& message);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace anadex

#define ANADEX_REQUIRE(expr, message)                                            \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::anadex::detail::throw_precondition(#expr, __FILE__, __LINE__, (message)); \
    }                                                                            \
  } while (false)

#define ANADEX_ASSERT(expr, message)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::anadex::detail::throw_invariant(#expr, __FILE__, __LINE__, (message)); \
    }                                                                         \
  } while (false)
