// Lightweight precondition / invariant checking.
//
// ANADEX_REQUIRE is used for caller-facing preconditions on public API
// boundaries and throws anadex::PreconditionError so callers can recover.
// ANADEX_ASSERT is used for internal invariants and also throws (rather than
// aborting) so that tests can exercise the failure paths.
#pragma once

#include <stdexcept>
#include <string>

namespace anadex {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is violated (indicates a library bug).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& message);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& message);
}  // namespace detail

}  // namespace anadex

#define ANADEX_REQUIRE(expr, message)                                            \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::anadex::detail::throw_precondition(#expr, __FILE__, __LINE__, (message)); \
    }                                                                            \
  } while (false)

#define ANADEX_ASSERT(expr, message)                                          \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::anadex::detail::throw_invariant(#expr, __FILE__, __LINE__, (message)); \
    }                                                                         \
  } while (false)

// Structural invariant checking, compiled in only when the build enables
// -DANADEX_CHECK_INVARIANTS=1 (CMake option of the same name). These guard
// the load-bearing contracts the hot paths rely on — canonical ascending
// front order, partition occupancy, monotone cooling, batch-slot
// completeness, LRU coherence — whose verification is O(n) per call site
// and therefore too expensive for release builds. Guard check-only code
// with `if constexpr (anadex::kCheckInvariants)` so it stays type-checked
// (and bit-rot-proof) in every build while costing nothing when disabled.
#ifdef ANADEX_CHECK_INVARIANTS
#define ANADEX_CHECK_INVARIANTS_ENABLED 1
#else
#define ANADEX_CHECK_INVARIANTS_ENABLED 0
#endif

namespace anadex {
inline constexpr bool kCheckInvariants = ANADEX_CHECK_INVARIANTS_ENABLED != 0;
}  // namespace anadex

#define ANADEX_CHECK_INVARIANT(expr, message)       \
  do {                                              \
    if constexpr (::anadex::kCheckInvariants) {     \
      ANADEX_ASSERT(expr, message);                 \
    }                                               \
  } while (false)
