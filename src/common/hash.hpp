// Deterministic genome hashing shared by the fault-tolerance layer and the
// evaluation memo cache.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

namespace anadex {

/// FNV-1a over the gene bit patterns, mixed with `seed`, folding one whole
/// 8-byte word per gene: `hash = (hash ^ bits(gene)) * kFnvPrime64`. The
/// offset basis (0xcbf29ce484222325) and prime (0x100000001b3) are the
/// standard 64-bit FNV constants; hashing word-at-a-time instead of
/// byte-at-a-time costs one multiply per gene rather than eight, which
/// matters now that every batch item is hashed on the evaluation hot path.
/// (The per-byte and per-word variants are different — equally valid —
/// hash functions; the stream changed when this was introduced, see
/// docs/performance.md.)
///
/// The guard's retry perturbation, the fault injector and the EvalEngine
/// cache all derive determinism from this being a pure function of the
/// genome bytes.
inline std::uint64_t hash_genes(std::span<const double> genes, std::uint64_t seed) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (double gene : genes) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &gene, sizeof bits);
    hash ^= bits;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Classic byte-at-a-time 64-bit FNV-1a over arbitrary bytes, mixed with
/// `seed`. Used where the input is not a gene vector — notably the
/// checkpoint content checksum, where corruption detection wants every
/// byte (including record keywords and separators) to perturb the digest.
/// Deliberately a different stream from hash_genes (which folds whole
/// 8-byte words): the two are independent hash functions that merely share
/// the FNV constants.
inline std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace anadex
