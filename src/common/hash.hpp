// Deterministic genome hashing shared by the fault-tolerance layer and the
// evaluation memo cache.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace anadex {

/// FNV-1a over the gene bit patterns, mixed with `seed`, folding one whole
/// 8-byte word per gene: `hash = (hash ^ bits(gene)) * kFnvPrime64`. The
/// offset basis (0xcbf29ce484222325) and prime (0x100000001b3) are the
/// standard 64-bit FNV constants; hashing word-at-a-time instead of
/// byte-at-a-time costs one multiply per gene rather than eight, which
/// matters now that every batch item is hashed on the evaluation hot path.
/// (The per-byte and per-word variants are different — equally valid —
/// hash functions; the stream changed when this was introduced, see
/// docs/performance.md.)
///
/// The guard's retry perturbation, the fault injector and the EvalEngine
/// cache all derive determinism from this being a pure function of the
/// genome bytes.
inline std::uint64_t hash_genes(std::span<const double> genes, std::uint64_t seed) {
  std::uint64_t hash = 0xcbf29ce484222325ULL ^ seed;
  for (double gene : genes) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &gene, sizeof bits);
    hash ^= bits;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace anadex
