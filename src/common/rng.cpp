#include "common/rng.hpp"

#include <cmath>

namespace anadex {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ANADEX_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  ANADEX_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ANADEX_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) {
  ANADEX_REQUIRE(sigma >= 0.0, "normal(mean, sigma) requires sigma >= 0");
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng((*this)()); }

RngState Rng::state() const {
  RngState s;
  s.words = state_;
  s.spare_normal = spare_normal_;
  s.has_spare_normal = has_spare_normal_;
  return s;
}

void Rng::set_state(const RngState& state) {
  bool any = false;
  for (std::uint64_t w : state.words) any = any || w != 0;
  ANADEX_REQUIRE(any, "Rng state must not be all-zero (xoshiro fixed point)");
  state_ = state.words;
  spare_normal_ = state.spare_normal;
  has_spare_normal_ = state.has_spare_normal;
}

}  // namespace anadex
