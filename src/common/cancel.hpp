// Cooperative cancellation for long-running work.
//
// A CancelToken is a single atomic flag shared between a requester (a
// signal handler, the evaluation watchdog, a service scheduler) and any
// number of pollers (evolver generation barriers, slow evaluators). It
// lives in common/ — below engine and robust in the link graph — so both
// layers can share one token type without a dependency cycle.
//
// request() is a lock-free atomic store and therefore async-signal-safe:
// the shutdown handler in robust/shutdown.cpp calls it directly from a
// SIGINT/SIGTERM context. Polling costs one relaxed-ish atomic load.
//
// Cancellation never participates in any RNG or result computation — a
// token only decides WHEN a run stops, and the stopped run's snapshot is a
// regular generation-barrier snapshot, so resuming it replays the exact
// uninterrupted byte stream (see docs/robustness.md).
#pragma once

#include <atomic>
#include <stdexcept>

namespace anadex {

/// Thrown by cooperative evaluators (e.g. the chaos harness's slow-eval
/// spin) when they observe a cancellation request mid-evaluation. The
/// guard layer maps it to FaultKind::Timeout rather than a generic
/// evaluator exception.
class OperationCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One-way (until reset) cancellation flag. All members are safe to call
/// concurrently; request() is additionally async-signal-safe.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Raises the flag. Safe from signal handlers and any thread.
  void request() noexcept { requested_.store(true, std::memory_order_release); }

  /// True once request() has been called (and until reset()).
  bool requested() const noexcept { return requested_.load(std::memory_order_acquire); }

  /// Lowers the flag again (the eval watchdog reuses one token per batch).
  void reset() noexcept { requested_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> requested_{false};
};

}  // namespace anadex
