// Over-aligned allocation for the SoA batch-evaluation buffers.
//
// The SIMD lane kernels read and write contiguous double arrays that the
// autovectorizer turns into full-width vector loads under -march=native.
// Backing them with storage aligned to the widest vector the toolchain can
// emit (64 bytes, one AVX-512 register / one cache line) keeps every access
// aligned, which UBSan's alignment checker verifies and which avoids the
// split-load penalty on the hot path. std::vector<double> only guarantees
// alignof(double) = 8, hence this allocator.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace anadex {

/// One cache line; also the size of the widest (AVX-512) vector register.
inline constexpr std::size_t kSimdAlign = 64;

/// Minimal C++17 over-aligned allocator: operator new(align_val_t) is
/// required to honor any power-of-two alignment, so this is UB-free under
/// -march=native where new[] of a plain array might not be.
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two no smaller than alignof(T)");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// Cache-line-aligned growable buffer for SoA lane data.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace anadex
