#include "common/textio.hpp"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <sstream>

#include "common/check.hpp"

namespace anadex::textio {

std::string exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double parse_double(const std::string& token) {
  ANADEX_REQUIRE(!token.empty(), "empty token where a number was expected");
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  ANADEX_REQUIRE(end == token.c_str() + token.size(),
                 "'" + token + "' is not a valid floating-point value");
  return value;
}

std::uint64_t parse_u64(const std::string& token) {
  ANADEX_REQUIRE(!token.empty() && token.front() != '-',
                 "'" + token + "' is not a valid non-negative integer");
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, 10);
  ANADEX_REQUIRE(end == token.c_str() + token.size(),
                 "'" + token + "' is not a valid non-negative integer");
  return value;
}

std::string LineReader::line(const char* what) {
  if (has_buffered_) {
    has_buffered_ = false;
    return std::move(buffered_);
  }
  std::string text;
  while (std::getline(is_, text)) {
    if (!text.empty()) return text;
  }
  ANADEX_REQUIRE(false, std::string("truncated input: expected ") + what);
  return {};
}

std::vector<std::string> LineReader::tokens(const char* what) {
  std::istringstream ls(line(what));
  std::vector<std::string> parts;
  std::string token;
  while (ls >> token) parts.push_back(std::move(token));
  ANADEX_REQUIRE(!parts.empty(), std::string("blank line where ") + what + " was expected");
  return parts;
}

std::vector<std::string> LineReader::record(const char* keyword, std::size_t min_values) {
  auto parts = tokens(keyword);
  ANADEX_REQUIRE(parts.front() == keyword,
                 "expected '" + std::string(keyword) + "', found '" + parts.front() + "'");
  ANADEX_REQUIRE(parts.size() >= min_values + 1,
                 "'" + std::string(keyword) + "' record is missing values");
  return parts;
}

bool LineReader::at_end() {
  if (has_buffered_) return false;
  while (std::getline(is_, buffered_)) {
    if (!buffered_.empty()) {
      has_buffered_ = true;
      return false;
    }
  }
  return true;
}

}  // namespace anadex::textio
