#include "common/series.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace anadex {

Series::Series(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  ANADEX_REQUIRE(!columns_.empty(), "a Series needs at least one column");
}

void Series::add_row(const std::vector<double>& row) {
  ANADEX_REQUIRE(row.size() == columns_.size(),
                 "row width must match the number of columns");
  rows_.push_back(row);
}

double Series::at(std::size_t row, std::size_t col) const {
  ANADEX_REQUIRE(row < rows_.size(), "row index out of range");
  ANADEX_REQUIRE(col < columns_.size(), "column index out of range");
  return rows_[row][col];
}

const std::vector<double>& Series::row(std::size_t index) const {
  ANADEX_REQUIRE(index < rows_.size(), "row index out of range");
  return rows_[index];
}

std::vector<double> Series::column(std::size_t col) const {
  ANADEX_REQUIRE(col < columns_.size(), "column index out of range");
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[col]);
  return out;
}

std::size_t Series::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  ANADEX_REQUIRE(false, "no column named '" + name + "' in series '" + title_ + "'");
  return 0;  // unreachable
}

void Series::sort_by(std::size_t col) {
  ANADEX_REQUIRE(col < columns_.size(), "column index out of range");
  std::stable_sort(rows_.begin(), rows_.end(),
                   [col](const auto& a, const auto& b) { return a[col] < b[col]; });
}

void Series::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << columns_[i] << (i + 1 < columns_.size() ? "," : "\n");
  }
  os << std::setprecision(10);
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << r[i] << (i + 1 < r.size() ? "," : "\n");
    }
  }
}

void Series::write_table(std::ostream& os) const {
  constexpr int kWidth = 16;
  os << "# " << title_ << " (" << rows_.size() << " rows)\n";
  for (const auto& name : columns_) os << std::setw(kWidth) << name;
  os << '\n';
  for (const auto& r : rows_) {
    for (double v : r) {
      std::ostringstream cell;
      cell << std::setprecision(6) << std::defaultfloat << v;
      os << std::setw(kWidth) << cell.str();
    }
    os << '\n';
  }
}

}  // namespace anadex
