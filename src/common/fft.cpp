#include "common/fft.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/math.hpp"

namespace anadex {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  ANADEX_REQUIRE(is_power_of_two(n), "FFT size must be a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> power_spectrum_hann(std::span<const double> signal) {
  const std::size_t n = signal.size();
  ANADEX_REQUIRE(is_power_of_two(n) && n >= 8, "spectrum needs a power-of-two record >= 8");

  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double window =
        0.5 * (1.0 - std::cos(2.0 * kPi * static_cast<double>(i) / static_cast<double>(n)));
    data[i] = signal[i] * window;
  }
  fft(data);

  std::vector<double> spectrum(n / 2 + 1);
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    spectrum[k] = std::norm(data[k]);
  }
  return spectrum;
}

double sndr_db(std::span<const double> signal, std::size_t signal_bin,
               std::size_t band_limit_bin, std::size_t leakage_bins) {
  const auto spectrum = power_spectrum_hann(signal);
  ANADEX_REQUIRE(signal_bin > leakage_bins,
                 "signal bin must be clear of the DC leakage skirt");
  ANADEX_REQUIRE(band_limit_bin < spectrum.size(), "band limit beyond Nyquist");
  ANADEX_REQUIRE(signal_bin <= band_limit_bin, "signal must lie inside the band");

  double signal_power = 0.0;
  double noise_power = 0.0;
  for (std::size_t k = leakage_bins + 1; k <= band_limit_bin; ++k) {
    const bool in_signal_skirt =
        k + leakage_bins >= signal_bin && k <= signal_bin + leakage_bins;
    if (in_signal_skirt) {
      signal_power += spectrum[k];
    } else {
      noise_power += spectrum[k];
    }
  }
  return power_db(signal_power / std::max(noise_power, 1e-300));
}

}  // namespace anadex
