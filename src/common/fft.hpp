// Minimal radix-2 FFT and spectral helpers for the sigma-delta behavioral
// simulator (SQNR estimation from output bit-streams).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace anadex {

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.size()` must be a
/// power of two (>= 1). Forward transform; no normalization.
void fft(std::vector<std::complex<double>>& data);

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// One-sided power spectrum of a real signal after applying a Hann window:
/// returns n/2 + 1 bins of |X_k|^2 (scaled so a full-scale sine's power is
/// split into its bin neighbourhood consistently). n must be a power of two.
std::vector<double> power_spectrum_hann(std::span<const double> signal);

/// Signal-to-noise-and-distortion ratio in dB of `signal` sampled at rate
/// 1, containing a sine at `signal_bin` cycles per record: signal power is
/// integrated over signal_bin +- `leakage_bins`, noise over the remaining
/// bins up to `band_limit_bin` (inclusive). DC and its leakage skirt are
/// excluded from both.
double sndr_db(std::span<const double> signal, std::size_t signal_bin,
               std::size_t band_limit_bin, std::size_t leakage_bins = 3);

}  // namespace anadex
