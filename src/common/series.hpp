// Tabular data series: the exchange format between experiment runners,
// benchmark printers and (optionally) files on disk.
//
// A Series is a named table of double-valued columns of equal length, e.g.
// the (load capacitance, power) pairs of a Pareto front or the
// (iterations, metric) points of a convergence curve. Benches print Series
// in a gnuplot-friendly format matching the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anadex {

/// A named table of equally-sized double columns.
class Series {
 public:
  Series() = default;

  /// Creates a series titled `title` with the given column names.
  Series(std::string title, std::vector<std::string> columns);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& column_names() const { return columns_; }
  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends one row; `row.size()` must equal `num_columns()`.
  void add_row(const std::vector<double>& row);

  /// Row access; both indices are bounds-checked.
  double at(std::size_t row, std::size_t col) const;
  const std::vector<double>& row(std::size_t index) const;

  /// Full column as a vector (copies).
  std::vector<double> column(std::size_t col) const;

  /// Index of a named column; throws PreconditionError if absent.
  std::size_t column_index(const std::string& name) const;

  /// Sorts rows ascending by the given column (stable).
  void sort_by(std::size_t col);

  /// Writes a CSV representation (header + rows).
  void write_csv(std::ostream& os) const;

  /// Writes a human-readable aligned table.
  void write_table(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace anadex
