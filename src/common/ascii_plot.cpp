#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace anadex {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  bool valid() const { return lo <= hi; }

  /// Pads a degenerate (single-value) range so mapping is well defined.
  void ensure_nonempty() {
    if (!valid()) {
      lo = 0.0;
      hi = 1.0;
    } else if (lo == hi) {
      const double pad = (lo == 0.0) ? 0.5 : std::abs(lo) * 0.05;
      lo -= pad;
      hi += pad;
    }
  }
};

std::string format_number(double v) {
  std::ostringstream os;
  os << std::setprecision(4) << std::defaultfloat << v;
  return os.str();
}

}  // namespace

std::string render_scatter(const std::vector<PlotSeries>& series, const PlotOptions& options) {
  ANADEX_REQUIRE(options.width >= 8 && options.height >= 4,
                 "plot area must be at least 8x4");

  Range xr;
  Range yr;
  for (const auto& s : series) {
    ANADEX_REQUIRE(s.x.size() == s.y.size(), "series x/y sizes must match");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (std::isfinite(s.x[i]) && std::isfinite(s.y[i])) {
        xr.include(s.x[i]);
        yr.include(s.y[i]);
      }
    }
  }
  xr.ensure_nonempty();
  yr.ensure_nonempty();

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double fx = (s.x[i] - xr.lo) / (xr.hi - xr.lo);
      const double fy = (s.y[i] - yr.lo) / (yr.hi - yr.lo);
      int cx = static_cast<int>(std::lround(fx * (w - 1)));
      int cy = static_cast<int>(std::lround(fy * (h - 1)));
      cx = std::clamp(cx, 0, w - 1);
      cy = std::clamp(cy, 0, h - 1);
      // row 0 is the top of the plot; cx/cy are clamped non-negative above
      grid[static_cast<std::size_t>(h - 1 - cy)][static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  if (!options.y_label.empty()) os << options.y_label << '\n';
  os << format_number(yr.hi) << '\n';
  for (const auto& line : grid) os << '|' << line << '\n';
  os << '+' << std::string(static_cast<std::size_t>(w), '-') << "-> " << options.x_label
     << '\n';
  os << format_number(yr.lo) << " (y min); x in [" << format_number(xr.lo) << ", "
     << format_number(xr.hi) << "]\n";
  os << "legend:";
  for (const auto& s : series) os << "  '" << s.glyph << "' = " << s.label;
  os << '\n';
  return os.str();
}

}  // namespace anadex
