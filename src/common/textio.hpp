// Exact, locale-independent text encoding of numeric values plus a small
// line/token reader, shared by the versioned file formats (population
// serialization, run checkpoints).
//
// Doubles are written as C99 hex-floats ("%a"), which round-trip
// bit-for-bit — a requirement for checkpoint/resume, where a restored run
// must reproduce the interrupted run exactly. "inf" and "nan" spellings are
// accepted on input so penalized or degenerate values survive a round trip.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace anadex::textio {

/// Formats `value` exactly (hex-float; "inf"/"-inf"/"nan" for non-finite).
std::string exact(double value);

/// Parses a double accepting decimal, hex-float, inf and nan spellings.
/// Throws PreconditionError unless the whole token is consumed.
double parse_double(const std::string& token);

/// Parses a non-negative integer. Throws PreconditionError on junk.
std::uint64_t parse_u64(const std::string& token);

/// Line-oriented reader for the library's versioned text formats: skips
/// blank lines, splits on whitespace, and reports contextual errors.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty line, raw. Throws PreconditionError on EOF, naming
  /// `what` in the message.
  std::string line(const char* what);

  /// Next non-empty line split into whitespace tokens.
  std::vector<std::string> tokens(const char* what);

  /// Like tokens(), but requires the first token to equal `keyword` and at
  /// least `min_values` tokens to follow it.
  std::vector<std::string> record(const char* keyword, std::size_t min_values);

  /// True when no further non-empty line exists.
  bool at_end();

 private:
  std::istream& is_;
  bool has_buffered_ = false;  ///< at_end() buffers one line of lookahead
  std::string buffered_;
};

}  // namespace anadex::textio
