// Deterministic transcendental kernels shared by the scalar circuit model
// and the SoA batch evaluator.
//
// The scalar↔SIMD bit-identity contract (docs/performance.md) requires every
// lane of the batch evaluator to execute the exact same sequence of
// correctly-rounded IEEE-754 operations as the scalar oracle. libm calls
// break that bargain twice over: glibc's cbrt/pow are opaque scalar routines
// the compiler can neither vectorize nor reason about, and their results
// vary across libm versions. The hot-path model therefore calls these
// kernels instead — plain double arithmetic (+,-,*,/,sqrt are all exactly
// rounded and identical whether issued as scalar or packed instructions)
// that the autovectorizer can spread across lanes. As a side effect the
// model's results no longer depend on the host libm at all.
//
// Accuracy: det_cbrt lands within ~1e-15 relative of the true cube root
// over the normal range (exponent-trick seed, five division-free Newton
// steps on the inverse root); pow_rt is exact for the exponents the device
// model actually uses (n = 1 and n = 2, paper eqn 1). Neither claims
// correct rounding — the model is a fitted approximation and only demands
// determinism.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace anadex {

/// Deterministic cube root for the non-negative arguments the mobility
/// model produces. Branch-free and division-free: a biased-exponent seed
/// for y ~= x^(-1/3) refined by five Newton steps (y' = y(4 - x*y^3)/3),
/// then cbrt(x) = x*y^2. Total over all doubles — 0 maps to 0 exactly, NaN
/// propagates, negative/inf inputs (which the model never produces) yield
/// deterministic garbage identical in scalar and batch mode. The products
/// inside the iteration are ordered ((x*y)*y)*y so no intermediate
/// overflows for any normal x.
inline double det_cbrt(double x) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  const std::uint32_t hi = static_cast<std::uint32_t>(bits >> 32);
  double y = std::bit_cast<double>(
      static_cast<std::uint64_t>(0x553EF0FFu - hi / 3) << 32);
  for (int pass = 0; pass < 5; ++pass) {
    const double t = ((x * y) * y) * y;
    y = y * (4.0 - t) * (1.0 / 3.0);
  }
  return (x * y) * y;
}

/// Runtime-exponent power with exact fast paths for the exponents the
/// device model uses (paper eqn 1: n = 1 for NMOS, n = 2 for PMOS, so the
/// derivative needs n - 1 = 0). Falls back to libm for exotic process
/// descriptions — the branch is uniform across SIMD lanes because the
/// exponent is a process parameter, never per-genome data.
inline double pow_rt(double base, double exponent) {
  if (exponent == 1.0) return base;
  if (exponent == 2.0) return base * base;
  if (exponent == 0.0) return 1.0;
  return std::pow(base, exponent);
}

}  // namespace anadex
