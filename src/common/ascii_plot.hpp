// Terminal scatter plots so benchmark binaries can render paper figures
// directly into their stdout (one glyph per data series).
#pragma once

#include <string>
#include <vector>

namespace anadex {

/// One scatter series: points plus the glyph used to draw them.
struct PlotSeries {
  std::string label;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

/// Options controlling the rendered plot.
struct PlotOptions {
  int width = 72;    ///< interior columns of the plot area
  int height = 24;   ///< interior rows of the plot area
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders the series into a multi-line string: a framed scatter plot with
/// axis ranges and a legend. Series drawn later overwrite earlier glyphs in
/// shared cells. Points with non-finite coordinates are skipped.
std::string render_scatter(const std::vector<PlotSeries>& series, const PlotOptions& options);

}  // namespace anadex
