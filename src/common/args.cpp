#include "common/args.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace anadex {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      ANADEX_REQUIRE(!key.empty(), "empty option name '--'");
      ANADEX_REQUIRE(options_.find(key) == options_.end(),
                     "option '--" + key + "' given more than once");
      std::string value;
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      options_[key] = value;
      touched_[key] = false;
    } else {
      positionals_.push_back(token);
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return false;
  touched_[key] = true;
  return true;
}

std::string ArgParser::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  touched_[key] = true;
  ANADEX_REQUIRE(!it->second.empty(), "option '--" + key + "' needs a value");
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  touched_[key] = true;
  ANADEX_REQUIRE(!it->second.empty(), "option '--" + key + "' needs a value");
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  ANADEX_REQUIRE(end != nullptr && *end == '\0',
                 "option '--" + key + "' value '" + it->second + "' is not an integer");
  return value;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  touched_[key] = true;
  ANADEX_REQUIRE(!it->second.empty(), "option '--" + key + "' needs a value");
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  ANADEX_REQUIRE(end != nullptr && *end == '\0',
                 "option '--" + key + "' value '" + it->second + "' is not a number");
  return value;
}

bool ArgParser::get_flag(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return false;
  touched_[key] = true;
  ANADEX_REQUIRE(it->second.empty(),
                 "option '--" + key + "' is a flag and takes no value");
  return true;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> result;
  for (const auto& [key, value] : options_) {
    if (!touched_[key]) result.push_back(key);
  }
  return result;
}

}  // namespace anadex
