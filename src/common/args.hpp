// Minimal command-line argument parser for the CLI and example binaries:
// positional words plus `--key value` options and `--flag` switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace anadex {

class ArgParser {
 public:
  /// Parses argv (argv[0] is skipped). A token starting with "--" is an
  /// option; if the next token exists and is not itself an option it becomes
  /// the value, otherwise the option is a boolean flag. Everything else is a
  /// positional argument. Throws PreconditionError on a repeated option.
  ArgParser(int argc, const char* const* argv);

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const;

  /// Typed getters with defaults; throw PreconditionError when the stored
  /// value does not parse as the requested type.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_flag(const std::string& key) const;

  /// Options that were provided but never queried — typo detection.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> options_;  // "" marks a bare flag
  std::vector<std::string> positionals_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace anadex
