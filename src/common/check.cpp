#include "common/check.hpp"

#include <sstream>

namespace anadex::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line << " — " << message;
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& message) {
  throw PreconditionError(format("precondition", expr, file, line, message));
}

void throw_invariant(const char* expr, const char* file, int line,
                     const std::string& message) {
  throw InvariantError(format("invariant", expr, file, line, message));
}

}  // namespace anadex::detail
