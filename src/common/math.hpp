// Small numeric helpers shared across subsystems.
#pragma once

#include <cmath>
#include <limits>

namespace anadex {

inline constexpr double kBoltzmann = 1.380649e-23;  ///< J/K
inline constexpr double kRoomTempK = 300.0;         ///< default analysis temperature

/// x squared.
constexpr double sq(double x) { return x * x; }

/// Linear interpolation between a and b at parameter t in [0, 1].
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
inline bool approx_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

/// Decibel conversion of an amplitude ratio (20 log10). Returns -inf for
/// non-positive ratios.
inline double amplitude_db(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 20.0 * std::log10(ratio);
}

/// Decibel conversion of a power ratio (10 log10). Returns -inf for
/// non-positive ratios.
inline double power_db(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(ratio);
}

}  // namespace anadex
