#include "sysdes/sigma_delta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace anadex::sysdes {

double ideal_sqnr_db(const ModulatorSpec& spec) {
  ANADEX_REQUIRE(spec.order >= 1, "modulator order must be >= 1");
  ANADEX_REQUIRE(spec.osr > 1.0, "OSR must exceed 1");
  const double l = static_cast<double>(spec.order);
  const double b = static_cast<double>(spec.quantizer_bits);
  const double pi = 3.14159265358979323846;
  return 6.02 * b + 1.76 + (20.0 * l + 10.0) * std::log10(spec.osr) -
         10.0 * std::log10(std::pow(pi, 2.0 * l) / (2.0 * l + 1.0));
}

std::vector<double> stage_dr_requirements(const ModulatorSpec& spec, double margin_db) {
  ANADEX_REQUIRE(spec.order >= 1, "modulator order must be >= 1");
  std::vector<double> reqs;
  reqs.reserve(static_cast<std::size_t>(spec.order));
  const double first = spec.target_dr_db + margin_db;
  for (int i = 0; i < spec.order; ++i) {
    // Stage i's input-referred errors are shaped by the i preceding
    // integrators: roughly 12 dB relaxation per stage at OSR >= 64.
    reqs.push_back(std::max(first - 12.0 * static_cast<double>(i), 40.0));
  }
  return reqs;
}

std::vector<double> default_stage_loads(const ModulatorSpec& spec) {
  ANADEX_REQUIRE(spec.order >= 1, "modulator order must be >= 1");
  std::vector<double> loads;
  loads.reserve(static_cast<std::size_t>(spec.order));
  // Sampling networks shrink down the chain (relaxed kT/C requirements);
  // the last stage drives the comparator and the feedback DAC wiring.
  for (int i = 0; i + 1 < spec.order; ++i) {
    loads.push_back(4.0e-12 / std::pow(2.0, static_cast<double>(i)));
  }
  loads.push_back(3.0e-12);
  return loads;
}

BudgetResult budget_from_front(const std::vector<FrontPoint>& front,
                               const std::vector<double>& stage_loads) {
  BudgetResult result;
  result.feasible = true;
  for (std::size_t s = 0; s < stage_loads.size(); ++s) {
    StageChoice choice;
    choice.stage = s;
    choice.required_load = stage_loads[s];
    double best_power = std::numeric_limits<double>::infinity();
    for (const auto& point : front) {
      if (point.cload >= stage_loads[s] && point.power < best_power) {
        best_power = point.power;
        choice.pick = point;
      }
    }
    if (choice.pick) {
      result.total_power += choice.pick->power;
    } else {
      result.feasible = false;
    }
    result.stages.push_back(choice);
  }
  return result;
}

}  // namespace anadex::sysdes
