// System-level use of the integrator's optimal design surface: budgeting a
// fourth-order sigma-delta modulator (the paper's §1/§2 motivation — "we
// wish to use the optimal design surface of this circuit for the
// construction of a fourth-order sigma-delta modulator").
//
// Given a Pareto front of (power, drivable load) integrator designs, the
// budgeter selects, for each of the four integrator stages, the
// lowest-power front design able to drive that stage's load (the sampling
// network of the next stage, or the quantizer for the last). A front with
// poor load-axis diversity — the NSGA-II clustering pathology — fails to
// cover some stage loads; a well-spread front yields a lower total power.
// This quantifies at the subsystem level why front diversity matters.
#pragma once

#include <optional>
#include <vector>

namespace anadex::sysdes {

/// Top-level modulator target.
struct ModulatorSpec {
  int order = 4;             ///< loop-filter order (integrator count)
  double osr = 128.0;        ///< oversampling ratio
  int quantizer_bits = 1;
  double target_dr_db = 90.0;  ///< required modulator dynamic range
};

/// Peak SQNR of an ideal order-L modulator (standard noise-shaping formula):
/// 6.02 B + 1.76 + (20 L + 10) log10(OSR) - 10 log10(pi^(2L) / (2L + 1)).
double ideal_sqnr_db(const ModulatorSpec& spec);

/// Per-stage integrator dynamic-range requirements: the first stage must
/// carry the full target (plus margin); each later stage is relaxed by the
/// preceding noise-shaping gain (~12 dB per stage at typical OSR).
std::vector<double> stage_dr_requirements(const ModulatorSpec& spec, double margin_db = 3.0);

/// Capacitive load each integrator stage must drive: the next stage's
/// sampling network, and the quantizer + wiring for the last stage.
std::vector<double> default_stage_loads(const ModulatorSpec& spec);

/// One integrator design summarized by its trade-off coordinates.
struct FrontPoint {
  double power = 0.0;  ///< W
  double cload = 0.0;  ///< maximum drivable load, F
};

/// The budgeter's selection for one stage.
struct StageChoice {
  std::size_t stage = 0;          ///< 0-based
  double required_load = 0.0;     ///< F
  std::optional<FrontPoint> pick; ///< empty when the front cannot cover the load
};

struct BudgetResult {
  std::vector<StageChoice> stages;
  double total_power = 0.0;  ///< W, sum over covered stages
  bool feasible = false;     ///< every stage covered
};

/// Greedy power-optimal selection from one shared integrator front.
/// For each stage load, picks the minimum-power point with cload >= load.
BudgetResult budget_from_front(const std::vector<FrontPoint>& front,
                               const std::vector<double>& stage_loads);

}  // namespace anadex::sysdes
