// Behavioral (discrete-time difference-equation) simulator for single-loop
// sigma-delta modulators built from the library's switched-capacitor
// integrators.
//
// This closes the loop of the paper's motivation: the integrator's circuit
// non-idealities — finite DC gain (leaky integration) and incomplete
// settling (gain error) — are taken from an IntegratorPerformance and
// injected into the loop-filter difference equations, so one can check that
// a design picked from the Pareto surface actually delivers the modulator-
// level dynamic range.
//
// Loop topology: chain of delaying integrators with distributed feedback
// (CIFB), 1-bit quantizer:
//     x_i[n+1] = p_i * x_i[n] + g_i * c_i * (u_i[n] - b_i * v[n])
// where u_1 = input, u_i = x_{i-1} for i > 1, v = sign(x_last),
// p_i = leakage from finite gain, g_i = 1 - settling error.
#pragma once

#include <cstddef>
#include <vector>

#include "scint/integrator.hpp"
#include "sysdes/sigma_delta.hpp"

namespace anadex::sysdes {

/// Per-stage non-ideality model.
struct StageModel {
  double coefficient = 0.5;      ///< loop-filter coefficient c_i
  double leakage = 1.0;          ///< integrator pole p_i (1 = ideal)
  double settling_gain = 1.0;    ///< charge-transfer gain g_i (1 = ideal)

  /// Derives the stage model from a circuit-level performance report: the
  /// pole is 1 - 1/(A0*beta) (leaky integration from finite gain) and the
  /// charge-transfer gain is 1 - SE (incomplete settling).
  static StageModel from_performance(const scint::IntegratorPerformance& perf,
                                     double coefficient);
};

struct SimulationConfig {
  std::size_t samples = 1 << 14;     ///< record length (power of two)
  double input_amplitude = 0.5;      ///< relative to the feedback reference
  std::size_t input_cycles = 0;      ///< sine cycles per record (0 = auto from OSR)
  double osr = 128.0;
  std::uint64_t seed = 1;            ///< dither / initial-state randomization
};

struct SimulationResult {
  double sndr_db = 0.0;              ///< in-band signal-to-noise-and-distortion
  double max_state = 0.0;            ///< largest |integrator state| seen (stability)
  bool stable = false;               ///< states stayed within the stability bound
  std::vector<double> bitstream;     ///< quantizer output (+-1)
};

/// Simulates an order-N CIFB modulator (N = stages.size()) and measures the
/// in-band SNDR of the bit-stream. Deterministic per config.
SimulationResult simulate_modulator(const std::vector<StageModel>& stages,
                                    const SimulationConfig& config);

/// Ideal stage set for a given order (unity leakage/settling, standard
/// halving coefficients 0.5, 0.5, ...).
std::vector<StageModel> ideal_stages(int order);

}  // namespace anadex::sysdes
