#include "sysdes/modulator_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fft.hpp"
#include "common/rng.hpp"

namespace anadex::sysdes {

namespace {
constexpr double kPi = 3.14159265358979323846;
/// Integrator states beyond this bound (in feedback-reference units) mark
/// the loop as unstable; states are saturated there, as real SC integrators
/// clip at the opamp swing.
constexpr double kSaturation = 8.0;
}  // namespace

StageModel StageModel::from_performance(const scint::IntegratorPerformance& perf,
                                        double coefficient) {
  StageModel m;
  m.coefficient = coefficient;
  const double loop_gain = std::max(perf.opamp.a0 * perf.feedback_factor, 1.0);
  m.leakage = 1.0 - 1.0 / loop_gain;
  m.settling_gain = std::clamp(1.0 - perf.settling_error, 0.0, 1.0);
  return m;
}

std::vector<StageModel> ideal_stages(int order) {
  ANADEX_REQUIRE(order >= 1 && order <= 4, "orders 1..4 are supported");
  // Coefficients in the SC parametrization c_i = Cs_i / Cf_i (input and
  // feedback DAC share the sampling network): x_i' = x_i + c_i (u_i - v).
  // Sets chosen for robust 1-bit stability at ~0.5 full-scale inputs.
  static const std::vector<std::vector<double>> kCoefficients{
      {1.0},
      {0.5, 0.5},
      {0.25, 0.4, 0.6},
      {0.15, 0.2, 0.4, 0.6},  // stable for 1-bit inputs up to ~0.6 full scale
  };
  std::vector<StageModel> stages;
  for (double c : kCoefficients[static_cast<std::size_t>(order - 1)]) {
    StageModel m;
    m.coefficient = c;
    stages.push_back(m);
  }
  return stages;
}

SimulationResult simulate_modulator(const std::vector<StageModel>& stages,
                                    const SimulationConfig& config) {
  ANADEX_REQUIRE(!stages.empty(), "need at least one stage");
  ANADEX_REQUIRE(is_power_of_two(config.samples) && config.samples >= 64,
                 "record length must be a power of two >= 64");
  ANADEX_REQUIRE(config.osr > 1.0, "OSR must exceed 1");

  // Put the test tone well inside the signal band (band edge = N/(2*OSR)).
  const auto band_limit =
      static_cast<std::size_t>(static_cast<double>(config.samples) / (2.0 * config.osr));
  ANADEX_REQUIRE(band_limit >= 8, "record too short for this OSR");
  const std::size_t cycles =
      config.input_cycles > 0 ? config.input_cycles : std::max<std::size_t>(band_limit / 3, 5);
  ANADEX_REQUIRE(cycles <= band_limit, "input tone must lie inside the band");

  SimulationResult result;
  result.bitstream.reserve(config.samples);

  Rng rng(config.seed);
  std::vector<double> x(stages.size(), 0.0);
  for (auto& state : x) state = rng.uniform(-1e-3, 1e-3);  // break symmetry

  result.stable = true;
  for (std::size_t n = 0; n < config.samples; ++n) {
    const double u = config.input_amplitude *
                     std::sin(2.0 * kPi * static_cast<double>(cycles) *
                              static_cast<double>(n) / static_cast<double>(config.samples));
    const double v = x.back() >= 0.0 ? 1.0 : -1.0;
    result.bitstream.push_back(v);

    // Delaying integrators: update from the back so each stage reads its
    // predecessor's PREVIOUS state.
    for (std::size_t i = stages.size(); i-- > 0;) {
      const double input = (i == 0) ? u : x[i - 1];
      const StageModel& m = stages[i];
      double next = m.leakage * x[i] + m.settling_gain * m.coefficient * (input - v);
      result.max_state = std::max(result.max_state, std::abs(next));
      if (std::abs(next) > kSaturation) {
        next = std::copysign(kSaturation, next);
        result.stable = false;
      }
      x[i] = next;
    }
  }

  result.sndr_db = sndr_db(result.bitstream, cycles, band_limit);
  return result;
}

}  // namespace anadex::sysdes
