// The optimization-problem abstraction consumed by every algorithm in the
// library (NSGA-II, LocalOnlyGA, SACGA, MESACGA).
//
// Conventions:
//   * every objective is MINIMIZED;
//   * constraints are reported as violations v_j >= 0, where 0 means
//     satisfied — algorithms use Deb's constraint-domination on the sum.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace anadex::moga {

/// Inclusive lower/upper bound of one decision variable.
struct VariableBound {
  double lower = 0.0;
  double upper = 1.0;
};

/// Result of evaluating one candidate design.
struct Evaluation {
  std::vector<double> objectives;  ///< minimized values, size num_objectives()
  std::vector<double> violations;  ///< each >= 0; empty if unconstrained

  /// Sum of constraint violations; 0 for a feasible design.
  double total_violation() const {
    double sum = 0.0;
    for (double v : violations) sum += v;
    return sum;
  }

  bool feasible() const { return total_violation() == 0.0; }
};

/// Abstract multi-objective minimization problem over a real box domain.
class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_variables() const = 0;
  virtual std::size_t num_objectives() const = 0;
  virtual std::size_t num_constraints() const = 0;

  /// Box bounds; size equals num_variables().
  virtual std::vector<VariableBound> bounds() const = 0;

  /// Evaluates `genes` (size num_variables()) into `out`. Implementations
  /// must resize/fill objectives (num_objectives()) and violations
  /// (num_constraints()). Must be deterministic for a given gene vector.
  virtual void evaluate(std::span<const double> genes, Evaluation& out) const = 0;

  /// Convenience wrapper returning a fresh Evaluation. (Named differently
  /// from evaluate() so derived-class overrides do not hide it.)
  Evaluation evaluated(std::span<const double> genes) const {
    Evaluation e;
    evaluate(genes, e);
    ANADEX_ASSERT(e.objectives.size() == num_objectives(),
                  "problem produced wrong objective count");
    ANADEX_ASSERT(e.violations.size() == num_constraints(),
                  "problem produced wrong constraint count");
    return e;
  }
};

}  // namespace anadex::moga
