// FlatObjectives — a structure-of-arrays scratch view of a population
// selection, built once per ranking/crowding step.
//
// The selection kernels (non-dominated sorting, crowding, 2-D
// hypervolume) are comparison-dense: the legacy implementations chased a
// `Population` of heap-allocated per-individual objective vectors and
// re-summed constraint violations inside every pairwise compare. This
// view copies each selected member's objectives into one contiguous
// row-major buffer and its *total* violation into a parallel array, so the
// kernels run over flat doubles — and it records whether the selection is
// uniform (every member has the same objective arity) and finite, which is
// what the specialized kernels require; anything else falls back to the
// legacy reference path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "moga/individual.hpp"

namespace anadex::moga {

class FlatObjectives {
 public:
  /// Rebuilds the view over population[indices[i]] for local i. Buffers
  /// are reused across calls (no steady-state allocation).
  void build(const Population& population, std::span<const std::size_t> indices);

  std::size_t count() const { return count_; }
  /// Objectives per member; meaningful only when uniform().
  std::size_t arity() const { return arity_; }
  /// True when every selected member carries arity() objectives.
  bool uniform() const { return uniform_; }
  /// True when every objective value and violation total is finite.
  bool all_finite() const { return all_finite_; }

  /// Objective k of local member i (requires uniform()).
  double value(std::size_t i, std::size_t k) const { return values_[i * arity_ + k]; }
  /// Total constraint violation of local member i (0 = feasible).
  double violation(std::size_t i) const { return violation_[i]; }
  /// Global population index of local member i.
  std::size_t global(std::size_t i) const { return members_[i]; }

  std::span<const double> values() const { return values_; }
  std::span<const double> violations() const { return violation_; }

 private:
  std::size_t count_ = 0;
  std::size_t arity_ = 0;
  bool uniform_ = false;
  bool all_finite_ = false;
  std::vector<double> values_;        ///< count x arity, row-major
  std::vector<double> violation_;     ///< count
  std::vector<std::size_t> members_;  ///< local -> global index
};

}  // namespace anadex::moga
