#include "moga/dominance.hpp"

#include "common/check.hpp"

namespace anadex::moga {

bool dominates(std::span<const double> a, std::span<const double> b) {
  ANADEX_REQUIRE(a.size() == b.size() && !a.empty(),
                 "dominance requires equal, non-empty objective vectors");
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool constrained_dominates(const Individual& a, const Individual& b) {
  const double va = a.total_violation();
  const double vb = b.total_violation();
  if (va == 0.0 && vb > 0.0) return true;
  if (va > 0.0 && vb == 0.0) return false;
  if (va > 0.0 && vb > 0.0) return va < vb;
  return dominates(a.eval.objectives, b.eval.objectives);
}

}  // namespace anadex::moga
