#include "moga/operators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace anadex::moga {

double VariationParams::effective_mutation_probability(std::size_t num_variables) const {
  if (mutation_probability >= 0.0) return std::min(mutation_probability, 1.0);
  ANADEX_REQUIRE(num_variables > 0, "mutation needs at least one variable");
  return 1.0 / static_cast<double>(num_variables);
}

std::vector<double> random_genome(std::span<const VariableBound> bounds, Rng& rng) {
  std::vector<double> genes;
  genes.reserve(bounds.size());
  for (const auto& b : bounds) {
    ANADEX_REQUIRE(b.lower <= b.upper, "variable bound must satisfy lower <= upper");
    genes.push_back(rng.uniform(b.lower, b.upper));
  }
  return genes;
}

void sbx_crossover(std::span<const VariableBound> bounds, const VariationParams& params,
                   std::vector<double>& child_a, std::vector<double>& child_b, Rng& rng) {
  ANADEX_REQUIRE(child_a.size() == bounds.size() && child_b.size() == bounds.size(),
                 "genome size must match the bounds");
  if (!rng.bernoulli(params.crossover_probability)) return;

  const double eta = params.crossover_eta;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!rng.bernoulli(0.5)) continue;  // per-gene exchange probability
    double x1 = child_a[i];
    double x2 = child_b[i];
    if (std::abs(x1 - x2) < 1e-14) continue;
    if (x1 > x2) std::swap(x1, x2);

    const double lo = bounds[i].lower;
    const double hi = bounds[i].upper;
    const double u = rng.uniform();

    // Bounded SBX: the spread factor is truncated so children remain within
    // [lo, hi] (Deb's bounded formulation).
    auto child_value = [&](double beta_bound, bool low_child) {
      const double alpha = 2.0 - std::pow(beta_bound, -(eta + 1.0));
      double betaq = 0.0;
      if (u <= 1.0 / alpha) {
        betaq = std::pow(u * alpha, 1.0 / (eta + 1.0));
      } else {
        betaq = std::pow(1.0 / (2.0 - u * alpha), 1.0 / (eta + 1.0));
      }
      const double mid = 0.5 * (x1 + x2);
      const double half = 0.5 * (x2 - x1);
      return low_child ? mid - betaq * half : mid + betaq * half;
    };

    const double beta_lo = 1.0 + 2.0 * (x1 - lo) / (x2 - x1);
    const double beta_hi = 1.0 + 2.0 * (hi - x2) / (x2 - x1);
    double c1 = child_value(beta_lo, /*low_child=*/true);
    double c2 = child_value(beta_hi, /*low_child=*/false);

    c1 = std::clamp(c1, lo, hi);
    c2 = std::clamp(c2, lo, hi);
    if (rng.bernoulli(0.5)) std::swap(c1, c2);
    child_a[i] = c1;
    child_b[i] = c2;
  }
}

void polynomial_mutation(std::span<const VariableBound> bounds, const VariationParams& params,
                         std::vector<double>& genome, Rng& rng) {
  ANADEX_REQUIRE(genome.size() == bounds.size(), "genome size must match the bounds");
  const double pm = params.effective_mutation_probability(bounds.size());
  const double eta = params.mutation_eta;

  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.bernoulli(pm)) continue;
    const double lo = bounds[i].lower;
    const double hi = bounds[i].upper;
    const double span_i = hi - lo;
    if (span_i <= 0.0) continue;

    const double x = genome[i];
    const double d1 = (x - lo) / span_i;
    const double d2 = (hi - x) / span_i;
    const double u = rng.uniform();
    const double mut_pow = 1.0 / (eta + 1.0);

    double deltaq = 0.0;
    if (u < 0.5) {
      const double xy = 1.0 - d1;
      const double val = 2.0 * u + (1.0 - 2.0 * u) * std::pow(xy, eta + 1.0);
      deltaq = std::pow(val, mut_pow) - 1.0;
    } else {
      const double xy = 1.0 - d2;
      const double val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * std::pow(xy, eta + 1.0);
      deltaq = 1.0 - std::pow(val, mut_pow);
    }
    genome[i] = std::clamp(x + deltaq * span_i, lo, hi);
  }
}

void blx_alpha_crossover(std::span<const VariableBound> bounds, double alpha,
                         std::vector<double>& child_a, std::vector<double>& child_b,
                         Rng& rng) {
  ANADEX_REQUIRE(child_a.size() == bounds.size() && child_b.size() == bounds.size(),
                 "genome size must match the bounds");
  ANADEX_REQUIRE(alpha >= 0.0, "BLX alpha must be non-negative");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double lo_parent = std::min(child_a[i], child_b[i]);
    const double hi_parent = std::max(child_a[i], child_b[i]);
    const double extent = hi_parent - lo_parent;
    if (extent <= 0.0) continue;  // identical genes have nothing to blend
    const double lo = std::max(lo_parent - alpha * extent, bounds[i].lower);
    const double hi = std::min(hi_parent + alpha * extent, bounds[i].upper);
    child_a[i] = std::clamp(rng.uniform(lo, hi), bounds[i].lower, bounds[i].upper);
    child_b[i] = std::clamp(rng.uniform(lo, hi), bounds[i].lower, bounds[i].upper);
  }
}

void gaussian_mutation(std::span<const VariableBound> bounds, const VariationParams& params,
                       double sigma_relative, std::vector<double>& genome, Rng& rng) {
  ANADEX_REQUIRE(genome.size() == bounds.size(), "genome size must match the bounds");
  ANADEX_REQUIRE(sigma_relative >= 0.0, "mutation sigma must be non-negative");
  const double pm = params.effective_mutation_probability(bounds.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.bernoulli(pm)) continue;
    const double span_i = bounds[i].upper - bounds[i].lower;
    if (span_i <= 0.0) continue;
    genome[i] = std::clamp(genome[i] + rng.normal(0.0, sigma_relative * span_i),
                           bounds[i].lower, bounds[i].upper);
  }
}

}  // namespace anadex::moga
