#include "moga/hypervolume.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace anadex::moga {

namespace {

/// Exact 2-D hypervolume by a sweep over points sorted by the first
/// objective; thin adaptor flattening onto the span-based fast path so
/// there is exactly one sweep implementation.
double hv2d(const FrontPoints& points, std::span<const double> reference) {
  std::vector<double> flat;
  flat.reserve(points.size() * 2);
  for (const auto& p : points) {
    flat.push_back(p[0]);
    flat.push_back(p[1]);
  }
  return hypervolume_2d(flat, reference);
}

/// WFG-style recursion: hv(S) = sum over points of exclusive contribution
/// computed via "limit set" recursion. Exponential worst case but fine for
/// the small fronts and dimensionalities (<= 4) used in tests.
double hv_recursive(FrontPoints points, std::vector<double> reference) {
  const std::size_t dim = reference.size();
  std::erase_if(points, [&](const std::vector<double>& p) {
    for (std::size_t d = 0; d < dim; ++d) {
      if (p[d] >= reference[d]) return true;
    }
    return false;
  });
  if (points.empty()) return 0.0;
  if (dim == 2) return hv2d(points, reference);
  if (dim == 1) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : points) best = std::min(best, p[0]);
    return reference[0] - best;
  }

  // Slice along the last objective. Sorted ascending, the slab between
  // points[i]'s coordinate and the next one (or the reference) is dominated
  // exactly by the projections of points[0..i] — points with larger last
  // coordinates only dominate slabs above their own coordinate.
  std::sort(points.begin(), points.end(),
            [dim](const auto& a, const auto& b) { return a[dim - 1] < b[dim - 1]; });

  double volume = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double slice_top =
        (i + 1 < points.size()) ? points[i + 1][dim - 1] : reference[dim - 1];
    const double slice_height = slice_top - points[i][dim - 1];
    if (slice_height <= 0.0) continue;

    FrontPoints projected;
    projected.reserve(i + 1);
    for (std::size_t j = 0; j <= i; ++j) {
      projected.emplace_back(points[j].begin(), points[j].end() - 1);
    }
    std::vector<double> sub_ref(reference.begin(), reference.end() - 1);
    volume += slice_height * hv_recursive(std::move(projected), std::move(sub_ref));
  }
  return volume;
}

}  // namespace

double hypervolume(const FrontPoints& front, std::span<const double> reference) {
  ANADEX_REQUIRE(!reference.empty(), "hypervolume needs a non-empty reference point");
  for (const auto& p : front) {
    ANADEX_REQUIRE(p.size() == reference.size(),
                   "front point dimensionality must match the reference");
  }
  // Points with non-finite coordinates contribute nothing instead of
  // poisoning the sweep (NaN compares false against the reference filter
  // and would otherwise survive into the volume accumulation).
  FrontPoints finite;
  finite.reserve(front.size());
  for (const auto& p : front) {
    bool ok = true;
    for (double v : p) ok = ok && std::isfinite(v);
    if (ok) finite.push_back(p);
  }
  return hv_recursive(std::move(finite), std::vector<double>(reference.begin(), reference.end()));
}

double hypervolume_2d(std::span<const double> points, std::span<const double> reference) {
  ANADEX_REQUIRE(points.size() % 2 == 0 && reference.size() == 2,
                 "hypervolume_2d needs (x, y) pairs and a 2-D reference");
  // Keep only finite points strictly dominating the reference region.
  std::vector<std::pair<double, double>> keep;
  keep.reserve(points.size() / 2);
  for (std::size_t i = 0; i + 1 < points.size(); i += 2) {
    const double x = points[i];
    const double y = points[i + 1];
    if (!std::isfinite(x) || !std::isfinite(y)) continue;
    if (x >= reference[0] || y >= reference[1]) continue;
    keep.emplace_back(x, y);
  }
  if (keep.empty()) return 0.0;

  std::sort(keep.begin(), keep.end());  // (x, then y) ascending

  double volume = 0.0;
  double prev_y = reference[1];
  for (const auto& [x, y] : keep) {
    if (y >= prev_y) continue;  // dominated by an earlier (smaller-x) point
    volume += (reference[0] - x) * (prev_y - y);
    prev_y = y;
  }
  return volume;
}

}  // namespace anadex::moga
