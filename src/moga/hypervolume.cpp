#include "moga/hypervolume.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace anadex::moga {

namespace {

/// Exact 2-D hypervolume by a sweep over points sorted by the first
/// objective.
double hv2d(FrontPoints points, std::span<const double> reference) {
  // Keep only points that strictly dominate the reference region.
  std::erase_if(points, [&](const std::vector<double>& p) {
    return p[0] >= reference[0] || p[1] >= reference[1];
  });
  if (points.empty()) return 0.0;

  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    if (a[0] != b[0]) return a[0] < b[0];
    return a[1] < b[1];
  });

  double volume = 0.0;
  double prev_y = reference[1];
  for (const auto& p : points) {
    if (p[1] >= prev_y) continue;  // dominated by an earlier (smaller-x) point
    volume += (reference[0] - p[0]) * (prev_y - p[1]);
    prev_y = p[1];
  }
  return volume;
}

/// WFG-style recursion: hv(S) = sum over points of exclusive contribution
/// computed via "limit set" recursion. Exponential worst case but fine for
/// the small fronts and dimensionalities (<= 4) used in tests.
double hv_recursive(FrontPoints points, std::vector<double> reference) {
  const std::size_t dim = reference.size();
  std::erase_if(points, [&](const std::vector<double>& p) {
    for (std::size_t d = 0; d < dim; ++d) {
      if (p[d] >= reference[d]) return true;
    }
    return false;
  });
  if (points.empty()) return 0.0;
  if (dim == 2) return hv2d(std::move(points), reference);
  if (dim == 1) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : points) best = std::min(best, p[0]);
    return reference[0] - best;
  }

  // Slice along the last objective. Sorted ascending, the slab between
  // points[i]'s coordinate and the next one (or the reference) is dominated
  // exactly by the projections of points[0..i] — points with larger last
  // coordinates only dominate slabs above their own coordinate.
  std::sort(points.begin(), points.end(),
            [dim](const auto& a, const auto& b) { return a[dim - 1] < b[dim - 1]; });

  double volume = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double slice_top =
        (i + 1 < points.size()) ? points[i + 1][dim - 1] : reference[dim - 1];
    const double slice_height = slice_top - points[i][dim - 1];
    if (slice_height <= 0.0) continue;

    FrontPoints projected;
    projected.reserve(i + 1);
    for (std::size_t j = 0; j <= i; ++j) {
      projected.emplace_back(points[j].begin(), points[j].end() - 1);
    }
    std::vector<double> sub_ref(reference.begin(), reference.end() - 1);
    volume += slice_height * hv_recursive(std::move(projected), std::move(sub_ref));
  }
  return volume;
}

}  // namespace

double hypervolume(const FrontPoints& front, std::span<const double> reference) {
  ANADEX_REQUIRE(!reference.empty(), "hypervolume needs a non-empty reference point");
  for (const auto& p : front) {
    ANADEX_REQUIRE(p.size() == reference.size(),
                   "front point dimensionality must match the reference");
  }
  // Points with non-finite coordinates contribute nothing instead of
  // poisoning the sweep (NaN compares false against the reference filter
  // and would otherwise survive into the volume accumulation).
  FrontPoints finite;
  finite.reserve(front.size());
  for (const auto& p : front) {
    bool ok = true;
    for (double v : p) ok = ok && std::isfinite(v);
    if (ok) finite.push_back(p);
  }
  return hv_recursive(std::move(finite), std::vector<double>(reference.begin(), reference.end()));
}

}  // namespace anadex::moga
