// Non-dominated sorting and crowding-distance assignment (Deb et al.,
// NSGA-II) using constraint-domination, with specialized SoA kernels for
// the hot selection path.
//
// Three kernels produce identical fronts (see tests/moga/nds_kernels_test):
//
//   * sweep  — bi-objective populations with finite objectives/violations:
//              a Jensen-style sort + binary-search front assignment,
//              O(n log n) instead of the pairwise O(M n^2).
//   * bitset — m > 2 (finite, uniform arity): pairwise constrained
//              dominance over flat buffers with early exit, adjacency held
//              in packed 64-bit rows, Kung-style peeling over the bits.
//   * legacy — the original pairwise peeling over `Individual`s, kept as
//              the reference implementation and the fallback for
//              non-uniform or non-finite selections; it reuses a per-call
//              arena instead of reallocating its adjacency lists.
//
// Front ordering contract: every kernel returns each front sorted in
// ascending population-index order (front 0 first). The legacy
// implementation historically emitted fronts > 0 in peel-discovery order;
// the canonical ascending order makes the result independent of which
// kernel ran.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "moga/flat_objectives.hpp"
#include "moga/individual.hpp"

namespace anadex::moga {

/// Reusable buffers for the legacy reference sort, so repeated calls (one
/// per partition per generation in the SACGA family) stop reallocating the
/// adjacency lists and counters.
struct NdsArena {
  std::vector<std::vector<std::size_t>> dominated;  ///< adjacency, reused rows
  std::vector<std::size_t> domination_count;
  std::vector<std::size_t> current;
  std::vector<std::size_t> next;
};

/// The original O(M N^2) pairwise kernel over `population[indices]`,
/// buffered in `arena`. Writes `rank`, returns fronts in the canonical
/// ascending order. Kept as the reference implementation for the
/// equivalence tests and as the fallback for selections the flat kernels
/// do not accept.
std::vector<std::vector<std::size_t>> legacy_nondominated_sort(
    Population& population, std::span<const std::size_t> indices, NdsArena& arena);

/// Reusable scratch for the flat ranking kernels. Evolver loops hold one
/// across generations so the SoA buffers are allocated once; one-off call
/// sites use the free functions below.
class RankingScratch {
 public:
  /// Sorts `population[indices]` into non-domination fronts, dispatching
  /// to the sweep (m == 2), bitset (m > 2) or legacy kernel. Writes
  /// `rank`; fronts come back in canonical ascending order.
  std::vector<std::vector<std::size_t>> sort(Population& population,
                                             std::span<const std::size_t> indices);
  std::vector<std::vector<std::size_t>> sort(Population& population);

  /// Crowding distance for one front, computed on the flat buffers.
  /// Identical values to the historical per-individual implementation.
  void crowding(Population& population, std::span<const std::size_t> front);

  // The individual kernels, exposed for the golden-equivalence tests and
  // the micro benches. Preconditions: a uniform, all-finite selection with
  // arity 2 (sweep) or >= 2 (bitset).
  std::vector<std::vector<std::size_t>> sweep_sort(Population& population,
                                                   std::span<const std::size_t> indices);
  std::vector<std::vector<std::size_t>> bitset_sort(Population& population,
                                                    std::span<const std::size_t> indices);

 private:
  std::vector<std::vector<std::size_t>> sweep_on_flat(Population& population);
  std::vector<std::vector<std::size_t>> bitset_on_flat(Population& population);
  /// Writes ranks and converts front_of_ into canonically ordered fronts.
  std::vector<std::vector<std::size_t>> finish(Population& population,
                                               std::size_t front_count);

  FlatObjectives flat_;
  NdsArena arena_;
  std::vector<std::size_t> front_of_;  ///< local member -> front id
  // Sweep buffers.
  std::vector<std::size_t> order_;
  std::vector<std::pair<double, double>> last_;  ///< per-front last-added point
  // Bitset buffers.
  std::vector<std::uint64_t> rows_;
  std::vector<std::size_t> count_;
  // Crowding buffers.
  std::vector<std::size_t> crowd_order_;
  std::vector<double> crowd_;
};

/// Sorts the individuals selected by `indices` into non-domination fronts
/// (front 0 = non-dominated). Writes `rank` into each touched individual
/// and returns the fronts as lists of indices into `population`, each
/// front in ascending index order. Convenience wrapper over a local
/// RankingScratch; generation loops should hold their own scratch to reuse
/// its buffers.
std::vector<std::vector<std::size_t>> fast_nondominated_sort(
    Population& population, std::span<const std::size_t> indices);

/// Convenience overload over the entire population.
std::vector<std::vector<std::size_t>> fast_nondominated_sort(Population& population);

/// Assigns NSGA-II crowding distance to the members of one front (indices
/// into `population`); boundary solutions per objective get infinity.
void assign_crowding(Population& population, std::span<const std::size_t> front);

/// Returns true when individual `a` is preferred over `b` by the crowded
/// comparison operator: lower rank wins; equal rank -> larger crowding wins.
bool crowded_less(const Individual& a, const Individual& b);

}  // namespace anadex::moga
