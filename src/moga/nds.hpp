// Fast non-dominated sorting and crowding-distance assignment (Deb et al.,
// NSGA-II) using constraint-domination.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "moga/individual.hpp"

namespace anadex::moga {

/// Sorts the individuals selected by `indices` into non-domination fronts
/// (front 0 = non-dominated). Writes `rank` into each touched individual
/// and returns the fronts as lists of indices into `population`.
///
/// Runs in O(M N^2) for N = indices.size(), M = objectives.
std::vector<std::vector<std::size_t>> fast_nondominated_sort(
    Population& population, std::span<const std::size_t> indices);

/// Convenience overload over the entire population.
std::vector<std::vector<std::size_t>> fast_nondominated_sort(Population& population);

/// Assigns NSGA-II crowding distance to the members of one front (indices
/// into `population`); boundary solutions per objective get infinity.
void assign_crowding(Population& population, std::span<const std::size_t> front);

/// Returns true when individual `a` is preferred over `b` by the crowded
/// comparison operator: lower rank wins; equal rank -> larger crowding wins.
bool crowded_less(const Individual& a, const Individual& b);

}  // namespace anadex::moga
