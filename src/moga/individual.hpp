// A candidate solution as carried through the evolutionary loop.
#pragma once

#include <limits>
#include <vector>

#include "moga/problem.hpp"

namespace anadex::moga {

/// One member of a GA population: genome plus cached evaluation and the
/// bookkeeping fields filled by ranking / crowding procedures.
struct Individual {
  std::vector<double> genes;
  Evaluation eval;

  // Filled by non-dominated sorting / crowding computation.
  int rank = -1;            ///< 0 = non-dominated front
  double crowding = 0.0;    ///< larger = more isolated

  bool feasible() const { return eval.feasible(); }
  double total_violation() const { return eval.total_violation(); }

  /// Marks crowding as "boundary" (infinite preference).
  static constexpr double kInfiniteCrowding = std::numeric_limits<double>::infinity();
};

using Population = std::vector<Individual>;

}  // namespace anadex::moga
