#include "moga/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "moga/dominance.hpp"

namespace anadex::moga {

namespace {

double euclidean(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

bool finite_point(const std::vector<double>& point) {
  for (double v : point) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double mean_min_distance(FrontPoints from, FrontPoints to) {
  drop_non_finite_points(from);
  drop_non_finite_points(to);
  if (from.empty()) return 0.0;
  ANADEX_REQUIRE(!to.empty(), "distance target front must be non-empty");
  double total = 0.0;
  for (const auto& p : from) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& q : to) best = std::min(best, euclidean(p, q));
    total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

std::size_t drop_non_finite_points(FrontPoints& points) {
  const std::size_t before = points.size();
  std::erase_if(points, [](const std::vector<double>& p) { return !finite_point(p); });
  return before - points.size();
}

double front_area_metric(std::span<const double> cost, std::span<const double> coverage,
                         const FrontAreaParams& params, std::size_t* skipped_non_finite) {
  ANADEX_REQUIRE(cost.size() == coverage.size(), "cost/coverage sizes must match");
  ANADEX_REQUIRE(params.coverage_max > 0.0 && params.unit > 0.0 && params.cost_cap > 0.0,
                 "front-area metric parameters must be positive");

  // Sort points by coverage descending; sweep from coverage_max down to 0,
  // maintaining the cheapest cost among designs able to cover the current
  // load. The staircase integral accumulates cost * d(coverage).
  std::vector<std::size_t> order;
  order.reserve(cost.size());
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < cost.size(); ++i) {
    if (std::isfinite(cost[i]) && std::isfinite(coverage[i])) {
      order.push_back(i);
    } else {
      ++skipped;
    }
  }
  if (skipped_non_finite != nullptr) *skipped_non_finite = skipped;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return coverage[a] > coverage[b]; });

  double area = 0.0;
  double sweep = params.coverage_max;  // current upper edge of the strip
  double best_cost = std::numeric_limits<double>::infinity();

  for (std::size_t idx : order) {
    const double c = std::min(coverage[idx], params.coverage_max);
    if (c < sweep) {
      const double strip_cost = std::isfinite(best_cost)
                                    ? std::min(best_cost, params.cost_cap)
                                    : params.cost_cap;
      area += strip_cost * (sweep - std::max(c, 0.0));
      sweep = std::max(c, 0.0);
      if (sweep == 0.0) break;
    }
    best_cost = std::min(best_cost, cost[idx]);
  }
  if (sweep > 0.0) {
    const double strip_cost =
        std::isfinite(best_cost) ? std::min(best_cost, params.cost_cap) : params.cost_cap;
    area += strip_cost * sweep;
  }
  return area / params.unit;
}

double spacing(const FrontPoints& front_in) {
  FrontPoints front = front_in;
  drop_non_finite_points(front);
  if (front.size() < 2) return 0.0;
  std::vector<double> nearest(front.size(), std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      nearest[i] = std::min(nearest[i], euclidean(front[i], front[j]));
    }
  }
  const double mean =
      std::accumulate(nearest.begin(), nearest.end(), 0.0) / static_cast<double>(nearest.size());
  double var = 0.0;
  for (double d : nearest) var += (d - mean) * (d - mean);
  return std::sqrt(var / static_cast<double>(nearest.size()));
}

double coverage(const FrontPoints& a_in, const FrontPoints& b_in) {
  FrontPoints a = a_in;
  FrontPoints b = b_in;
  drop_non_finite_points(a);
  drop_non_finite_points(b);
  if (b.empty()) return 0.0;
  std::size_t covered = 0;
  for (const auto& q : b) {
    for (const auto& p : a) {
      const bool weakly_dominates = dominates(p, q) || p == q;
      if (weakly_dominates) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(b.size());
}

double generational_distance(const FrontPoints& front, const FrontPoints& reference_front) {
  return mean_min_distance(front, reference_front);
}

double inverted_generational_distance(const FrontPoints& front,
                                      const FrontPoints& reference_front) {
  return mean_min_distance(reference_front, front);
}

double clustering_fraction(std::span<const double> values, double lo, double hi) {
  ANADEX_REQUIRE(lo <= hi, "clustering_fraction requires lo <= hi");
  std::size_t inside = 0;
  std::size_t finite = 0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    ++finite;
    if (v >= lo && v <= hi) ++inside;
  }
  if (finite == 0) return 0.0;
  return static_cast<double>(inside) / static_cast<double>(finite);
}

FrontPoints objectives_of(const Population& population) {
  FrontPoints points;
  points.reserve(population.size());
  for (const auto& ind : population) points.push_back(ind.eval.objectives);
  return points;
}

}  // namespace anadex::moga
