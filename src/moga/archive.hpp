// Bounded non-dominated archive.
//
// Maintains a set of mutually non-dominated feasible individuals; when the
// capacity is exceeded the most crowded member is evicted, preserving
// spread. Used to accumulate the best front seen across a whole run
// (optimizers' per-generation populations can lose extreme points).
#pragma once

#include <cstddef>

#include "moga/individual.hpp"

namespace anadex::moga {

class Archive {
 public:
  /// Creates an archive holding at most `capacity` individuals (>= 1).
  explicit Archive(std::size_t capacity);

  /// Offers an individual. Infeasible candidates are rejected; candidates
  /// dominated by a member are rejected; members dominated by the candidate
  /// are removed. Returns true when the candidate was inserted.
  bool offer(const Individual& candidate);

  /// Offers every member of a population.
  void offer_all(const Population& population);

  const Population& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return members_.empty(); }

 private:
  void evict_most_crowded();

  std::size_t capacity_;
  Population members_;
};

}  // namespace anadex::moga
