#include "moga/nds.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "moga/invariants.hpp"

namespace anadex::moga {

namespace {

/// The historical crowding implementation over Individuals, kept verbatim
/// as the fallback for selections the flat path rejects (mixed arity,
/// non-finite values — where sorting raw doubles would be undefined).
void legacy_crowding(Population& population, std::span<const std::size_t> front) {
  const std::size_t m = population[front.front()].eval.objectives.size();
  std::vector<std::size_t> order(front.begin(), front.end());
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return population[a].eval.objectives[obj] < population[b].eval.objectives[obj];
    });
    const double lo = population[order.front()].eval.objectives[obj];
    const double hi = population[order.back()].eval.objectives[obj];
    population[order.front()].crowding = Individual::kInfiniteCrowding;
    population[order.back()].crowding = Individual::kInfiniteCrowding;
    if (hi == lo) continue;  // degenerate objective: no interior contribution
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      const double below = population[order[i - 1]].eval.objectives[obj];
      const double above = population[order[i + 1]].eval.objectives[obj];
      population[order[i]].crowding += (above - below) / (hi - lo);
    }
  }
}

}  // namespace

std::vector<std::vector<std::size_t>> legacy_nondominated_sort(
    Population& population, std::span<const std::size_t> indices, NdsArena& arena) {
  const std::size_t n = indices.size();
  std::vector<std::vector<std::size_t>> fronts;
  if (n == 0) return fronts;

  // local position -> list of local positions it dominates / domination
  // count. The adjacency rows keep their capacity across calls.
  if (arena.dominated.size() < n) arena.dominated.resize(n);
  for (std::size_t p = 0; p < n; ++p) arena.dominated[p].clear();
  arena.domination_count.assign(n, 0);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      const Individual& a = population[indices[p]];
      const Individual& b = population[indices[q]];
      if (constrained_dominates(a, b)) {
        arena.dominated[p].push_back(q);
        ++arena.domination_count[q];
      } else if (constrained_dominates(b, a)) {
        arena.dominated[q].push_back(p);
        ++arena.domination_count[p];
      }
    }
  }

  arena.current.clear();
  for (std::size_t p = 0; p < n; ++p) {
    if (arena.domination_count[p] == 0) {
      population[indices[p]].rank = 0;
      arena.current.push_back(p);
    }
  }

  int rank = 0;
  std::size_t assigned = 0;
  while (!arena.current.empty()) {
    std::vector<std::size_t> global_front;
    global_front.reserve(arena.current.size());
    for (std::size_t p : arena.current) global_front.push_back(indices[p]);
    std::sort(global_front.begin(), global_front.end());  // canonical order
    fronts.push_back(std::move(global_front));
    assigned += arena.current.size();

    arena.next.clear();
    for (std::size_t p : arena.current) {
      for (std::size_t q : arena.dominated[p]) {
        if (--arena.domination_count[q] == 0) {
          population[indices[q]].rank = rank + 1;
          arena.next.push_back(q);
        }
      }
    }
    std::swap(arena.current, arena.next);
    ++rank;
  }
  ANADEX_ASSERT(assigned == n, "non-dominated sort must assign every individual");
  if constexpr (kCheckInvariants) require_canonical_fronts(fronts, n);
  return fronts;
}

std::vector<std::vector<std::size_t>> RankingScratch::sort(
    Population& population, std::span<const std::size_t> indices) {
  flat_.build(population, indices);
  if (flat_.uniform() && flat_.all_finite()) {
    if (flat_.arity() == 2) return sweep_on_flat(population);
    if (flat_.arity() > 2) return bitset_on_flat(population);
  }
  return legacy_nondominated_sort(population, indices, arena_);
}

std::vector<std::vector<std::size_t>> RankingScratch::sort(Population& population) {
  std::vector<std::size_t> all(population.size());
  std::iota(all.begin(), all.end(), 0);
  return sort(population, all);
}

std::vector<std::vector<std::size_t>> RankingScratch::sweep_sort(
    Population& population, std::span<const std::size_t> indices) {
  flat_.build(population, indices);
  ANADEX_REQUIRE(flat_.count() == 0 ||
                     (flat_.uniform() && flat_.all_finite() && flat_.arity() == 2),
                 "sweep_sort needs a finite, uniformly bi-objective selection");
  return sweep_on_flat(population);
}

std::vector<std::vector<std::size_t>> RankingScratch::bitset_sort(
    Population& population, std::span<const std::size_t> indices) {
  flat_.build(population, indices);
  ANADEX_REQUIRE(flat_.count() == 0 ||
                     (flat_.uniform() && flat_.all_finite() && flat_.arity() >= 1),
                 "bitset_sort needs a finite, uniform-arity selection");
  return bitset_on_flat(population);
}

std::vector<std::vector<std::size_t>> RankingScratch::finish(
    Population& population, std::size_t front_count) {
  const std::size_t n = flat_.count();
  std::vector<std::vector<std::size_t>> fronts(front_count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t f = front_of_[i];
    population[flat_.global(i)].rank = static_cast<int>(f);
    fronts[f].push_back(flat_.global(i));
  }
  // Canonical contract: each front ascending by population index. (A
  // subset selection need not arrive sorted, so sorting here is not
  // optional even though the kernels emit local positions in order.)
  for (auto& front : fronts) std::sort(front.begin(), front.end());
  if constexpr (kCheckInvariants) require_canonical_fronts(fronts, n);
  return fronts;
}

std::vector<std::vector<std::size_t>> RankingScratch::sweep_on_flat(
    Population& population) {
  const std::size_t n = flat_.count();
  if (n == 0) return {};
  front_of_.assign(n, 0);

  // Partition: feasible members are front-assigned by the sweep; the
  // infeasible compare only by total violation under constraint-domination
  // (and are dominated by every feasible member), so equal-violation
  // groups become consecutive fronts appended after all feasible fronts —
  // exactly what pairwise peeling produces.
  order_.clear();
  std::vector<std::size_t> infeasible;
  for (std::size_t i = 0; i < n; ++i) {
    (flat_.violation(i) == 0.0 ? order_ : infeasible).push_back(i);
  }

  std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
    const double a1 = flat_.value(a, 0), b1 = flat_.value(b, 0);
    if (a1 != b1) return a1 < b1;
    const double a2 = flat_.value(a, 1), b2 = flat_.value(b, 1);
    if (a2 != b2) return a2 < b2;
    return flat_.global(a) < flat_.global(b);
  });

  // Jensen-style assignment: process points in lex order and binary-search
  // the first front whose last-added point does not dominate the new one.
  // Within a front, each added point lowers (or, only for exact
  // duplicates, ties) the front's f2 minimum, so the last-added point is
  // the front's weakest gatekeeper and "front k rejects p" is monotone in
  // k — front 0's gate is at least as strong as front 1's, and so on.
  last_.clear();
  for (std::size_t i : order_) {
    const double p1 = flat_.value(i, 0);
    const double p2 = flat_.value(i, 1);
    // A gate (g1, g2) has g1 <= p1 by the lex sweep, so it dominates p
    // iff g2 < p2, or g2 == p2 with g1 strictly smaller.
    std::size_t lo = 0;
    std::size_t hi = last_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const auto [g1, g2] = last_[mid];
      if (g2 < p2 || (g2 == p2 && g1 < p1)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == last_.size()) last_.emplace_back();
    last_[lo] = {p1, p2};
    front_of_[i] = lo;
  }
  std::size_t front_count = last_.size();

  if (!infeasible.empty()) {
    std::sort(infeasible.begin(), infeasible.end(), [&](std::size_t a, std::size_t b) {
      if (flat_.violation(a) != flat_.violation(b)) {
        return flat_.violation(a) < flat_.violation(b);
      }
      return flat_.global(a) < flat_.global(b);
    });
    double group_violation = flat_.violation(infeasible.front());
    for (std::size_t i : infeasible) {
      if (flat_.violation(i) != group_violation) {
        group_violation = flat_.violation(i);
        ++front_count;
      }
      front_of_[i] = front_count;
    }
    ++front_count;
  }
  return finish(population, front_count);
}

std::vector<std::vector<std::size_t>> RankingScratch::bitset_on_flat(
    Population& population) {
  const std::size_t n = flat_.count();
  if (n == 0) return {};
  const std::size_t m = flat_.arity();
  const std::size_t words = (n + 63) / 64;
  rows_.assign(n * words, 0);
  count_.assign(n, 0);
  const std::span<const double> values = flat_.values();

  for (std::size_t p = 0; p < n; ++p) {
    const double vp = flat_.violation(p);
    const double* pv = values.data() + p * m;
    for (std::size_t q = p + 1; q < n; ++q) {
      const double vq = flat_.violation(q);
      int dir = 0;  // 1: p dominates q, -1: q dominates p
      if (vp == 0.0 && vq == 0.0) {
        const double* qv = values.data() + q * m;
        bool p_better = false;
        bool q_better = false;
        for (std::size_t k = 0; k < m; ++k) {
          if (pv[k] < qv[k]) {
            p_better = true;
          } else if (qv[k] < pv[k]) {
            q_better = true;
          }
          if (p_better && q_better) break;
        }
        if (p_better != q_better) dir = p_better ? 1 : -1;
      } else if (vp == 0.0) {
        dir = 1;
      } else if (vq == 0.0) {
        dir = -1;
      } else if (vp != vq) {
        dir = vp < vq ? 1 : -1;
      }
      if (dir == 1) {
        rows_[p * words + (q >> 6)] |= std::uint64_t{1} << (q & 63);
        ++count_[q];
      } else if (dir == -1) {
        rows_[q * words + (p >> 6)] |= std::uint64_t{1} << (p & 63);
        ++count_[p];
      }
    }
  }

  front_of_.assign(n, 0);
  arena_.current.clear();
  for (std::size_t p = 0; p < n; ++p) {
    if (count_[p] == 0) arena_.current.push_back(p);
  }
  std::size_t assigned = 0;
  std::size_t front = 0;
  while (!arena_.current.empty()) {
    assigned += arena_.current.size();
    for (std::size_t p : arena_.current) front_of_[p] = front;
    arena_.next.clear();
    for (std::size_t p : arena_.current) {
      const std::uint64_t* row = rows_.data() + p * words;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = row[w];
        while (bits != 0) {
          const std::size_t q = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          if (--count_[q] == 0) arena_.next.push_back(q);
        }
      }
    }
    std::swap(arena_.current, arena_.next);
    ++front;
  }
  ANADEX_ASSERT(assigned == n, "non-dominated sort must assign every individual");
  return finish(population, front);
}

void RankingScratch::crowding(Population& population,
                              std::span<const std::size_t> front) {
  if (front.empty()) return;
  // Callers hand kernel output straight back in, so a disordered front
  // here means a kernel (or an intermediary) broke the canonical order.
  if constexpr (kCheckInvariants) require_ascending_front(front);
  for (std::size_t idx : front) population[idx].crowding = 0.0;
  const std::size_t n = front.size();
  if (n <= 2) {
    for (std::size_t idx : front) {
      population[idx].crowding = Individual::kInfiniteCrowding;
    }
    return;
  }
  flat_.build(population, front);
  if (!flat_.uniform() || !flat_.all_finite()) {
    legacy_crowding(population, front);
    return;
  }
  const std::size_t m = flat_.arity();
  crowd_.assign(n, 0.0);
  crowd_order_.resize(n);
  std::iota(crowd_order_.begin(), crowd_order_.end(), std::size_t{0});
  // Same initial order and the same comparator decisions as the historical
  // per-individual loop (the flat values are copies of the same doubles,
  // and each objective's sort starts from the previous objective's
  // permutation), so the accumulated distances are bit-identical.
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::sort(crowd_order_.begin(), crowd_order_.end(),
              [&](std::size_t a, std::size_t b) {
                return flat_.value(a, obj) < flat_.value(b, obj);
              });
    const double lo = flat_.value(crowd_order_.front(), obj);
    const double hi = flat_.value(crowd_order_.back(), obj);
    crowd_[crowd_order_.front()] = Individual::kInfiniteCrowding;
    crowd_[crowd_order_.back()] = Individual::kInfiniteCrowding;
    if (hi == lo) continue;  // degenerate objective: no interior contribution
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double below = flat_.value(crowd_order_[i - 1], obj);
      const double above = flat_.value(crowd_order_[i + 1], obj);
      crowd_[crowd_order_[i]] += (above - below) / (hi - lo);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    population[flat_.global(i)].crowding = crowd_[i];
  }
}

std::vector<std::vector<std::size_t>> fast_nondominated_sort(
    Population& population, std::span<const std::size_t> indices) {
  RankingScratch scratch;
  return scratch.sort(population, indices);
}

std::vector<std::vector<std::size_t>> fast_nondominated_sort(Population& population) {
  RankingScratch scratch;
  return scratch.sort(population);
}

void assign_crowding(Population& population, std::span<const std::size_t> front) {
  RankingScratch scratch;
  scratch.crowding(population, front);
}

bool crowded_less(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace anadex::moga
