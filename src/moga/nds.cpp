#include "moga/nds.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "moga/dominance.hpp"

namespace anadex::moga {

std::vector<std::vector<std::size_t>> fast_nondominated_sort(
    Population& population, std::span<const std::size_t> indices) {
  const std::size_t n = indices.size();
  std::vector<std::vector<std::size_t>> fronts;
  if (n == 0) return fronts;

  // local position -> list of local positions it dominates / domination count
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<std::size_t> domination_count(n, 0);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = p + 1; q < n; ++q) {
      const Individual& a = population[indices[p]];
      const Individual& b = population[indices[q]];
      if (constrained_dominates(a, b)) {
        dominated[p].push_back(q);
        ++domination_count[q];
      } else if (constrained_dominates(b, a)) {
        dominated[q].push_back(p);
        ++domination_count[p];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    if (domination_count[p] == 0) {
      population[indices[p]].rank = 0;
      current.push_back(p);
    }
  }

  int rank = 0;
  std::size_t assigned = 0;
  while (!current.empty()) {
    std::vector<std::size_t> global_front;
    global_front.reserve(current.size());
    for (std::size_t p : current) global_front.push_back(indices[p]);
    fronts.push_back(std::move(global_front));
    assigned += current.size();

    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated[p]) {
        if (--domination_count[q] == 0) {
          population[indices[q]].rank = rank + 1;
          next.push_back(q);
        }
      }
    }
    current = std::move(next);
    ++rank;
  }
  ANADEX_ASSERT(assigned == n, "non-dominated sort must assign every individual");
  return fronts;
}

std::vector<std::vector<std::size_t>> fast_nondominated_sort(Population& population) {
  std::vector<std::size_t> all(population.size());
  std::iota(all.begin(), all.end(), 0);
  return fast_nondominated_sort(population, all);
}

void assign_crowding(Population& population, std::span<const std::size_t> front) {
  for (std::size_t idx : front) population[idx].crowding = 0.0;
  if (front.empty()) return;
  const std::size_t m = population[front.front()].eval.objectives.size();
  if (front.size() <= 2) {
    for (std::size_t idx : front) population[idx].crowding = Individual::kInfiniteCrowding;
    return;
  }

  std::vector<std::size_t> order(front.begin(), front.end());
  for (std::size_t obj = 0; obj < m; ++obj) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return population[a].eval.objectives[obj] < population[b].eval.objectives[obj];
    });
    const double lo = population[order.front()].eval.objectives[obj];
    const double hi = population[order.back()].eval.objectives[obj];
    population[order.front()].crowding = Individual::kInfiniteCrowding;
    population[order.back()].crowding = Individual::kInfiniteCrowding;
    if (hi == lo) continue;  // degenerate objective: no interior contribution
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      const double below = population[order[i - 1]].eval.objectives[obj];
      const double above = population[order[i + 1]].eval.objectives[obj];
      population[order[i]].crowding += (above - below) / (hi - lo);
    }
  }
}

bool crowded_less(const Individual& a, const Individual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace anadex::moga
