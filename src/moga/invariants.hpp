// Structural verifiers for the ranking kernels' canonical-order contract.
//
// Every NDS kernel (sweep, bitset, legacy — see nds.hpp) promises fronts
// in canonical form: front 0 first, each front non-empty, strictly
// ascending by population index, fronts disjoint, and together covering
// the selection exactly once. Checkpoint bit-identity, trace byte-identity
// and the cross-kernel equivalence tests all lean on that order, so the
// kernels verify it at their exits when ANADEX_CHECK_INVARIANTS is on.
//
// The verifiers themselves are compiled unconditionally (they are plain
// functions, cheap to build) so tests can drive them with corrupted inputs
// in any configuration; only the hot-path call sites are compile-time
// gated behind `if constexpr (anadex::kCheckInvariants)`.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace anadex::moga {

/// Throws InvariantError unless `front` is non-empty and strictly
/// ascending (the canonical order of one front).
void require_ascending_front(std::span<const std::size_t> front);

/// Throws InvariantError unless `fronts` is in canonical form: every front
/// non-empty and strictly ascending, fronts pairwise disjoint, and the
/// total member count equal to `expected_total`.
void require_canonical_fronts(std::span<const std::vector<std::size_t>> fronts,
                              std::size_t expected_total);

}  // namespace anadex::moga
