#include "moga/nsga2.hpp"

#include <algorithm>
#include <span>

#include "common/check.hpp"
#include "engine/engine_lease.hpp"
#include "moga/dominance.hpp"
#include "moga/nds.hpp"
#include "moga/obs_trace.hpp"
#include "moga/selection.hpp"

namespace anadex::moga {

Nsga2Result run_nsga2(const Problem& problem, const Nsga2Params& params,
                      const GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.population_size >= 4 && params.population_size % 2 == 0,
                 "population size must be even and >= 4");
  const auto bounds = problem.bounds();
  ANADEX_REQUIRE(bounds.size() == problem.num_variables(),
                 "problem bounds size must equal num_variables");

  const engine::EngineLease eval(problem, params, params.sink,
                                 engine::EvalWatchdog{params.eval_cancel,
                                                      params.eval_deadline_s});
  Rng rng(params.seed);
  Nsga2Result result;

  Population parents;
  RankingScratch ranking;  // SoA buffers reused across generations
  std::vector<std::vector<std::size_t>> fronts;
  std::size_t start_generation = 0;
  if (params.resume != nullptr) {
    const Nsga2State& state = *params.resume;
    ANADEX_REQUIRE(state.parents.size() == params.population_size,
                   "resume state population size does not match params");
    ANADEX_REQUIRE(state.next_generation <= params.generations,
                   "resume state is beyond the configured generation count");
    parents = state.parents;
    rng.set_state(state.rng);
    result.evaluations = state.evaluations;
    result.generations_run = state.next_generation;
    start_generation = state.next_generation;
  } else {
    parents.resize(params.population_size);
    for (auto& parent : parents) parent.genes = random_genome(bounds, rng);
    eval.evaluate_members(parents);
    result.evaluations += params.population_size;

    // Initial ranking so tournament preferences are defined from generation 0.
    fronts = ranking.sort(parents);
    for (const auto& front : fronts) ranking.crowding(parents, front);
  }

  const Preference prefer = [](const Individual& a, const Individual& b) {
    return crowded_less(a, b);
  };

  for (std::size_t gen = start_generation; gen < params.generations; ++gen) {
    auto offspring_genes = make_offspring(parents, bounds, params.variation, prefer,
                                          params.population_size, rng);

    Population combined;
    combined.reserve(2 * params.population_size);
    for (auto& p : parents) combined.push_back(std::move(p));
    for (auto& genes : offspring_genes) {
      Individual child;
      child.genes = std::move(genes);
      combined.push_back(std::move(child));
    }
    // One batch per generation: all offspring evaluated together.
    eval.evaluate_members(
        std::span<Individual>(combined).subspan(params.population_size));
    result.evaluations += params.population_size;

    fronts = ranking.sort(combined);
    for (const auto& front : fronts) ranking.crowding(combined, front);

    Population next;
    next.reserve(params.population_size);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= params.population_size) {
        for (std::size_t idx : front) next.push_back(std::move(combined[idx]));
      } else {
        std::vector<std::size_t> sorted(front.begin(), front.end());
        std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
          return combined[a].crowding > combined[b].crowding;
        });
        for (std::size_t idx : sorted) {
          if (next.size() == params.population_size) break;
          next.push_back(std::move(combined[idx]));
        }
      }
      if (next.size() == params.population_size) break;
    }
    ANADEX_ASSERT(next.size() == params.population_size,
                  "survivor selection must fill the population exactly");
    parents = std::move(next);

    if (on_generation) on_generation(gen, parents);
    trace_generation(params.sink, gen, result.evaluations, parents,
                     params.trace_hypervolume);
    ++result.generations_run;

    const bool at_snapshot_barrier =
        params.snapshot_every > 0 && (gen + 1) % params.snapshot_every == 0;
    if (at_snapshot_barrier && params.on_snapshot) {
      Nsga2State state;
      state.parents = parents;
      state.rng = rng.state();
      state.next_generation = gen + 1;
      state.evaluations = result.evaluations;
      params.on_snapshot(state);
    }

    // Graceful-stop barrier: a raised stop token ends the run here, after a
    // complete generation, with an off-cycle snapshot (unless the regular
    // barrier above just wrote one) so resume continues from gen + 1.
    if (params.stop != nullptr && params.stop->requested() &&
        gen + 1 < params.generations) {
      if (params.on_snapshot && !at_snapshot_barrier) {
        Nsga2State state;
        state.parents = parents;
        state.rng = rng.state();
        state.next_generation = gen + 1;
        state.evaluations = result.evaluations;
        params.on_snapshot(state);
      }
      result.interrupted = true;
      break;
    }
  }

  result.front = extract_global_front(parents);
  result.population = std::move(parents);
  result.eval_stats = eval.stats();
  return result;
}

Population extract_global_front(const Population& population) {
  Population front;
  for (const auto& candidate : population) {
    if (!candidate.feasible()) continue;
    bool is_dominated = false;
    for (const auto& other : population) {
      if (&other == &candidate || !other.feasible()) continue;
      if (dominates(other.eval.objectives, candidate.eval.objectives)) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) front.push_back(candidate);
  }
  return front;
}

}  // namespace anadex::moga
