// Plain-text population serialization: checkpoint long optimizations and
// exchange fronts with external tools. The format is line-oriented and
// versioned:
//
//   anadex-population v1
//   individual <n_genes> <n_objectives> <n_violations>
//   genes g1 g2 ...
//   objectives f1 f2 ...
//   violations v1 v2 ...
//   (repeated per individual)
#pragma once

#include <iosfwd>

#include "moga/individual.hpp"

namespace anadex::moga {

/// Writes the population (genes + cached evaluation; ranks/crowding are
/// derived data and not persisted).
void save_population(std::ostream& os, const Population& population);

/// Reads a population previously written by save_population. Throws
/// PreconditionError on format violations (bad header, truncated records,
/// non-numeric fields).
Population load_population(std::istream& is);

}  // namespace anadex::moga
