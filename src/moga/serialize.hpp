// Plain-text population serialization: checkpoint long optimizations and
// exchange fronts with external tools. The format is line-oriented and
// versioned:
//
//   anadex-population v1
//   individual <n_genes> <n_objectives> <n_violations>
//   genes g1 g2 ...
//   objectives f1 f2 ...
//   violations v1 v2 ...
//   (repeated per individual)
#pragma once

#include <iosfwd>

#include "moga/individual.hpp"

namespace anadex::moga {

/// Writes the population (genes + cached evaluation; ranks/crowding are
/// derived data and not persisted).
void save_population(std::ostream& os, const Population& population);

/// Reads a population previously written by save_population. Throws
/// PreconditionError on format violations (bad header, truncated records,
/// non-numeric fields).
Population load_population(std::istream& is);

/// Checkpoint-grade v2 encoding: hex-float (bit-exact) genes, objectives
/// and violations PLUS the rank and crowding bookkeeping, so a restored
/// population reproduces tournament decisions bit-for-bit. The header line
/// is count-prefixed ("anadex-population v2 <count>") so the block can be
/// embedded inside larger files (see robust/checkpoint.hpp).
void save_population_exact(std::ostream& os, const Population& population);

/// Reads a block written by save_population_exact; stops after exactly the
/// count announced in the header, leaving the stream positioned for any
/// surrounding format. Throws PreconditionError on format violations.
Population load_population_exact(std::istream& is);

}  // namespace anadex::moga
