// Weighted-sum scalarization baseline (paper §1): "One method of solving a
// multi-objective circuit optimization problem is to transform it into a
// set of scalarized single objective optimization problems by the weighted
// sum approach". A sweep of weight vectors, each solved by a single-
// objective GA with constraint-domination, yields a front approximation.
// Known weaknesses the paper alludes to: cannot populate non-convex front
// regions and distributes points unevenly — both visible against SACGA in
// the ablation bench.
#pragma once

#include <cstdint>

#include "engine/eval_cache.hpp"
#include "engine/evolver_common.hpp"
#include "moga/individual.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

/// WeightedSum has no resumable state, so it embeds only the telemetry
/// wiring (engine::ObsConfig) and the pure execution knobs
/// (engine::EvalKnobs: threads / eval_cache / engine / batch_eval, all
/// result-invariant) instead of the full EvolverCommon base.
struct WeightedSumParams : engine::ObsConfig, engine::EvalKnobs {
  std::size_t weight_count = 16;       ///< number of weight vectors swept (>= 2)
  std::size_t population_size = 40;    ///< per scalar run (even, >= 4)
  std::size_t generations_per_weight = 50;
  VariationParams variation;
  std::uint64_t seed = 1;
};

struct WeightedSumResult {
  Population front;            ///< non-dominated union of the per-weight winners
  Population all_winners;      ///< best individual of every weight vector
  std::size_t evaluations = 0;
  engine::EvalStats eval_stats;  ///< requested/distinct/cache-hit accounting
};

/// Sweeps weights (w, 1-w) over [0, 1] for a TWO-objective problem; each
/// scalar subproblem is solved by an elitist single-objective GA in which
/// feasibility dominates (Deb's rule specialized to one objective).
/// Objectives are normalized per run by the population's running ranges so
/// neither objective swamps the sum. Deterministic per seed.
WeightedSumResult run_weighted_sum(const Problem& problem, const WeightedSumParams& params);

}  // namespace anadex::moga
