#include "moga/invariants.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anadex::moga {

void require_ascending_front(std::span<const std::size_t> front) {
  ANADEX_ASSERT(!front.empty(), "canonical front must not be empty");
  for (std::size_t i = 1; i < front.size(); ++i) {
    ANADEX_ASSERT(front[i - 1] < front[i],
                  "canonical front must ascend strictly by population index");
  }
}

void require_canonical_fronts(std::span<const std::vector<std::size_t>> fronts,
                              std::size_t expected_total) {
  std::size_t total = 0;
  for (const auto& front : fronts) {
    require_ascending_front(front);
    total += front.size();
  }
  ANADEX_ASSERT(total == expected_total,
                "fronts must cover the selection exactly once");
  // Ascending fronts can still overlap each other; a sorted copy of all
  // members makes duplicates adjacent.
  std::vector<std::size_t> all;
  all.reserve(total);
  for (const auto& front : fronts) all.insert(all.end(), front.begin(), front.end());
  std::sort(all.begin(), all.end());
  ANADEX_ASSERT(std::adjacent_find(all.begin(), all.end()) == all.end(),
                "fronts must be pairwise disjoint");
}

}  // namespace anadex::moga
