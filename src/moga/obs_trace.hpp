// Per-generation telemetry shared by all seven evolvers (see
// docs/observability.md for the record schema). Emission is driven from
// each algorithm's generation loop; everything here is pure observation —
// no RNG draws, no population mutation — so traced and untraced runs are
// bit-identical.
#pragma once

#include <cstddef>

#include "engine/evolver_common.hpp"
#include "moga/individual.hpp"
#include "obs/event_sink.hpp"

namespace anadex::moga {

/// The feasible non-dominated candidates of `population`, cheaply. When the
/// population carries ranks (every evolver that runs NDS-based selection),
/// this is the O(n) feasible rank-0 subset — a superset of the global
/// Pareto front whose hypervolume equals the front's exactly, since
/// dominated members contribute no volume. Unranked populations (SPEA2
/// archive, WeightedSum pools) fall back to an exact O(n^2) extraction.
Population trace_front(const Population& population);

/// Records the per-generation "gen" event: generation index, cumulative
/// evaluation count, feasible-member count, trace_front size and (when
/// `hv` is provided) its hypervolume. No-op unless `sink` is enabled at
/// TraceLevel::Gen.
void trace_generation(obs::EventSink* sink, std::size_t generation,
                      std::size_t evaluations, const Population& population,
                      const engine::TraceHypervolume& hv);

/// Same, with a caller-supplied front (for populations whose rank field
/// does not identify non-dominated members, e.g. SPEA2's filled archive).
/// Callers should gate the front computation on `sink->enabled(Gen)`.
void trace_generation(obs::EventSink* sink, std::size_t generation,
                      std::size_t evaluations, const Population& population,
                      const Population& front, const engine::TraceHypervolume& hv);

}  // namespace anadex::moga
