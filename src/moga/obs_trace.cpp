#include "moga/obs_trace.hpp"

#include <algorithm>

#include "moga/nsga2.hpp"

namespace anadex::moga {

Population trace_front(const Population& population) {
  const bool ranked =
      !population.empty() &&
      std::all_of(population.begin(), population.end(),
                  [](const Individual& ind) { return ind.rank >= 0; });
  if (ranked) {
    Population front;
    for (const auto& ind : population) {
      if (ind.rank == 0 && ind.feasible()) front.push_back(ind);
    }
    // Ranks are computed with constraint-domination, so rank 0 holds every
    // feasible non-dominated member whenever any feasible member exists;
    // an empty result genuinely means "no feasible solutions yet".
    return front;
  }
  return extract_global_front(population);
}

void trace_generation(obs::EventSink* sink, std::size_t generation,
                      std::size_t evaluations, const Population& population,
                      const engine::TraceHypervolume& hv) {
  if (sink == nullptr || !sink->enabled(obs::TraceLevel::Gen)) return;
  trace_generation(sink, generation, evaluations, population, trace_front(population), hv);
}

void trace_generation(obs::EventSink* sink, std::size_t generation,
                      std::size_t evaluations, const Population& population,
                      const Population& front, const engine::TraceHypervolume& hv) {
  if (sink == nullptr || !sink->enabled(obs::TraceLevel::Gen)) return;

  std::size_t feasible = 0;
  for (const auto& ind : population) {
    if (ind.feasible()) ++feasible;
  }

  obs::Field fields[6];
  std::size_t n = 0;
  fields[n++] = obs::u64("gen", generation);
  fields[n++] = obs::u64("evals", evaluations);
  fields[n++] = obs::u64("pop", population.size());
  fields[n++] = obs::u64("feasible", feasible);
  fields[n++] = obs::u64("front_size", front.size());
  if (hv) fields[n++] = obs::f64("hv", hv(front));
  sink->record(
      obs::Event{"gen", obs::TraceLevel::Gen, false, std::span<const obs::Field>(fields, n)});
}

}  // namespace anadex::moga
