#include "moga/serialize.hpp"

#include <cstdlib>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "common/textio.hpp"

namespace anadex::moga {

namespace {
constexpr const char* kHeader = "anadex-population v1";
constexpr const char* kHeaderV2 = "anadex-population v2";

std::vector<double> read_values(std::istream& is, const char* keyword, std::size_t count) {
  std::string line;
  ANADEX_REQUIRE(static_cast<bool>(std::getline(is, line)),
                 std::string("truncated record: expected '") + keyword + "' line");
  std::istringstream ls(line);
  std::string tag;
  ls >> tag;
  ANADEX_REQUIRE(tag == keyword,
                 "expected '" + std::string(keyword) + "', found '" + tag + "'");
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    ANADEX_REQUIRE(static_cast<bool>(ls >> values[i]),
                   std::string("non-numeric or missing value in '") + keyword + "'");
  }
  return values;
}
}  // namespace

void save_population(std::ostream& os, const Population& population) {
  os << kHeader << '\n' << std::setprecision(17);
  for (const auto& ind : population) {
    os << "individual " << ind.genes.size() << ' ' << ind.eval.objectives.size() << ' '
       << ind.eval.violations.size() << '\n';
    os << "genes";
    for (double g : ind.genes) os << ' ' << g;
    os << "\nobjectives";
    for (double f : ind.eval.objectives) os << ' ' << f;
    os << "\nviolations";
    for (double v : ind.eval.violations) os << ' ' << v;
    os << '\n';
  }
}

Population load_population(std::istream& is) {
  std::string line;
  ANADEX_REQUIRE(static_cast<bool>(std::getline(is, line)) && line == kHeader,
                 "missing or wrong anadex-population header");
  Population population;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    std::size_t n_genes = 0;
    std::size_t n_objs = 0;
    std::size_t n_viol = 0;
    ls >> tag >> n_genes >> n_objs >> n_viol;
    ANADEX_REQUIRE(tag == "individual" && !ls.fail(),
                   "expected 'individual <genes> <objectives> <violations>'");
    Individual ind;
    ind.genes = read_values(is, "genes", n_genes);
    ind.eval.objectives = read_values(is, "objectives", n_objs);
    ind.eval.violations = read_values(is, "violations", n_viol);
    population.push_back(std::move(ind));
  }
  return population;
}

namespace {

std::vector<double> read_exact_values(textio::LineReader& reader, const char* keyword,
                                      std::size_t count) {
  const auto parts = reader.record(keyword, count);
  ANADEX_REQUIRE(parts.size() == count + 1,
                 "'" + std::string(keyword) + "' holds the wrong number of values");
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) values[i] = textio::parse_double(parts[i + 1]);
  return values;
}

}  // namespace

void save_population_exact(std::ostream& os, const Population& population) {
  os << kHeaderV2 << ' ' << population.size() << '\n';
  for (const auto& ind : population) {
    os << "individual " << ind.genes.size() << ' ' << ind.eval.objectives.size() << ' '
       << ind.eval.violations.size() << ' ' << ind.rank << ' ' << textio::exact(ind.crowding)
       << '\n';
    os << "genes";
    for (double g : ind.genes) os << ' ' << textio::exact(g);
    os << "\nobjectives";
    for (double f : ind.eval.objectives) os << ' ' << textio::exact(f);
    os << "\nviolations";
    for (double v : ind.eval.violations) os << ' ' << textio::exact(v);
    os << '\n';
  }
}

Population load_population_exact(std::istream& is) {
  textio::LineReader reader(is);
  const auto header = reader.tokens("population v2 header");
  ANADEX_REQUIRE(header.size() == 3 && header[0] + " " + header[1] == kHeaderV2,
                 "missing or wrong anadex-population v2 header");
  const std::size_t count = textio::parse_u64(header[2]);

  Population population;
  population.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const auto head = reader.record("individual", 5);
    Individual ind;
    const std::size_t n_genes = textio::parse_u64(head[1]);
    const std::size_t n_objs = textio::parse_u64(head[2]);
    const std::size_t n_viol = textio::parse_u64(head[3]);
    ind.rank = static_cast<int>(std::strtol(head[4].c_str(), nullptr, 10));
    ind.crowding = textio::parse_double(head[5]);
    ind.genes = read_exact_values(reader, "genes", n_genes);
    ind.eval.objectives = read_exact_values(reader, "objectives", n_objs);
    ind.eval.violations = read_exact_values(reader, "violations", n_viol);
    population.push_back(std::move(ind));
  }
  return population;
}

}  // namespace anadex::moga
