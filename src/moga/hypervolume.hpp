// Hypervolume indicators.
//
// Two flavours are provided:
//
//  * `hypervolume` — the standard dominated-hypervolume with respect to a
//    reference (nadir) point: the Lebesgue measure of the region dominated
//    by the front and bounded by the reference point. HIGHER is better.
//    Exact sweep algorithm in 2-D, WFG-style recursion for >= 3 objectives.
//
//  * `front_area_metric` (in metrics.hpp) — the paper's lower-is-better
//    2-D variant used in Figs. 6, 9 and 10; see metrics.hpp for the
//    interpretation discussion.
#pragma once

#include <span>
#include <vector>

namespace anadex::moga {

/// A front as a list of objective vectors (all minimized).
using FrontPoints = std::vector<std::vector<double>>;

/// Dominated hypervolume of `front` with respect to `reference`.
/// Points not strictly below the reference in every coordinate contribute
/// nothing. Duplicates and dominated points are handled correctly (they add
/// no volume). Requires a non-empty reference; all points must have the same
/// dimensionality as the reference.
double hypervolume(const FrontPoints& front, std::span<const double> reference);

/// Exact 2-D hypervolume over a flat (x0, y0, x1, y1, ...) point buffer —
/// the allocation-light fast path the generic entry point dispatches to
/// for bi-objective fronts, exposed for flat-buffer callers and the micro
/// benches. O(n log n): one sort by x, one sweep. Points with a
/// non-finite coordinate or not strictly inside the reference box
/// contribute nothing. `points.size()` must be even; `reference` holds
/// the two nadir coordinates. Bit-identical to `hypervolume` on the same
/// front.
double hypervolume_2d(std::span<const double> points, std::span<const double> reference);

}  // namespace anadex::moga
