// Hypervolume indicators.
//
// Two flavours are provided:
//
//  * `hypervolume` — the standard dominated-hypervolume with respect to a
//    reference (nadir) point: the Lebesgue measure of the region dominated
//    by the front and bounded by the reference point. HIGHER is better.
//    Exact sweep algorithm in 2-D, WFG-style recursion for >= 3 objectives.
//
//  * `front_area_metric` (in metrics.hpp) — the paper's lower-is-better
//    2-D variant used in Figs. 6, 9 and 10; see metrics.hpp for the
//    interpretation discussion.
#pragma once

#include <span>
#include <vector>

namespace anadex::moga {

/// A front as a list of objective vectors (all minimized).
using FrontPoints = std::vector<std::vector<double>>;

/// Dominated hypervolume of `front` with respect to `reference`.
/// Points not strictly below the reference in every coordinate contribute
/// nothing. Duplicates and dominated points are handled correctly (they add
/// no volume). Requires a non-empty reference; all points must have the same
/// dimensionality as the reference.
double hypervolume(const FrontPoints& front, std::span<const double> reference);

}  // namespace anadex::moga
