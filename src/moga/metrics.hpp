// Quality indicators for Pareto-front approximations, including the
// paper-specific front-area metric.
//
// Paper metric note. The DATE-2005 paper describes its "Hypervolume Metric"
// as the union of hypercubes spanned by the origin and each solution, with
// LOWER values better. Taken literally on a (minimize power, maximize load
// capacitance) front that union degenerates to the box of the extreme point
// and cannot measure diversity. The reported magnitudes (~20–38 in units of
// 0.1 mW·pF over a 0–5 pF, 0–1 mW window) instead match the area under the
// power-vs-load staircase with uncovered load ranges charged at a penalty
// cap. `front_area_metric` implements that reading: lower is better, and it
// penalizes both poor convergence (high power) and poor diversity (holes in
// coverage). EXPERIMENTS.md documents the choice.
#pragma once

#include <span>
#include <vector>

#include "moga/hypervolume.hpp"
#include "moga/individual.hpp"

namespace anadex::moga {

/// Parameters of the paper-style front-area metric for a 2-D trade-off
/// between a minimized cost (power) and a maximized coverage parameter
/// (load capacitance).
struct FrontAreaParams {
  double coverage_max = 5e-12;  ///< full coverage range [0, coverage_max] (farads)
  double cost_cap = 1.1e-3;     ///< cost charged where no design covers (watts)
  double unit = 0.1e-3 * 1e-12; ///< reporting unit (paper: 0.1 mW · pF)
};

/// Paper-style metric: integral over c in [0, coverage_max] of
/// min{ cost_i : coverage_i >= c } (cost_cap where the set is empty),
/// expressed in `unit`s. `cost` and `coverage` are parallel arrays of the
/// front's physical values (watts / farads). Lower is better.
///
/// Points with a non-finite cost or coverage are skipped rather than
/// allowed to poison the integral (a single NaN from a faulted evaluator
/// would otherwise corrupt the whole run's reported quality); the skip
/// count is reported through `skipped_non_finite` when non-null.
double front_area_metric(std::span<const double> cost, std::span<const double> coverage,
                         const FrontAreaParams& params,
                         std::size_t* skipped_non_finite = nullptr);

/// Schott's spacing metric: standard deviation of nearest-neighbour
/// distances in objective space (0 = perfectly uniform). Returns 0 for
/// fronts with fewer than 2 points.
double spacing(const FrontPoints& front);

/// Set-coverage C(a, b): fraction of points in `b` weakly dominated by at
/// least one point of `a`. Returns 0 when `b` is empty.
double coverage(const FrontPoints& a, const FrontPoints& b);

/// Generational distance: average Euclidean distance from each point of
/// `front` to its nearest point in `reference_front`. Returns 0 when
/// `front` is empty.
double generational_distance(const FrontPoints& front, const FrontPoints& reference_front);

/// Inverted generational distance: average distance from each reference
/// point to the nearest front point; measures diversity + convergence.
double inverted_generational_distance(const FrontPoints& front,
                                      const FrontPoints& reference_front);

/// Fraction of `values` lying inside [lo, hi]; the paper's observed
/// NSGA-II pathology is a clustering index near 1 for the 4–5 pF band.
/// Non-finite values are excluded from both numerator and denominator.
double clustering_fraction(std::span<const double> values, double lo, double hi);

/// Removes points containing non-finite coordinates; returns the number
/// removed. All front metrics apply this filter internally so one faulted
/// evaluation cannot poison an aggregate.
std::size_t drop_non_finite_points(FrontPoints& points);

/// Extracts the objective vectors of a population as FrontPoints.
FrontPoints objectives_of(const Population& population);

}  // namespace anadex::moga
