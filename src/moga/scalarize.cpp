#include "moga/scalarize.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <span>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/engine_lease.hpp"
#include "moga/dominance.hpp"
#include "moga/nsga2.hpp"
#include "moga/obs_trace.hpp"
#include "moga/selection.hpp"

namespace anadex::moga {

namespace {

/// Scalar fitness under Deb's feasibility rule: infeasible individuals
/// compare by violation; feasible ones by the weighted, range-normalized
/// objective sum.
struct ScalarFitness {
  double violation = 0.0;
  double value = 0.0;

  bool better_than(const ScalarFitness& other) const {
    if ((violation == 0.0) != (other.violation == 0.0)) return violation == 0.0;
    if (violation > 0.0) return violation < other.violation;
    return value < other.value;
  }
};

ScalarFitness score(const Individual& ind, double w, const std::array<double, 2>& lo,
                    const std::array<double, 2>& span) {
  ScalarFitness f;
  f.violation = ind.total_violation();
  const double f0 = (ind.eval.objectives[0] - lo[0]) / span[0];
  const double f1 = (ind.eval.objectives[1] - lo[1]) / span[1];
  f.value = w * f0 + (1.0 - w) * f1;
  return f;
}

}  // namespace

WeightedSumResult run_weighted_sum(const Problem& problem, const WeightedSumParams& params) {
  ANADEX_REQUIRE(problem.num_objectives() == 2,
                 "the weighted-sum baseline is implemented for two objectives");
  ANADEX_REQUIRE(params.weight_count >= 2, "need at least two weight vectors");
  ANADEX_REQUIRE(params.population_size >= 4 && params.population_size % 2 == 0,
                 "population size must be even and >= 4");

  const auto bounds = problem.bounds();
  const engine::EngineLease eval(problem, params, params.sink,
                                 engine::EvalWatchdog{});
  Rng master(params.seed);
  WeightedSumResult result;

  for (std::size_t wi = 0; wi < params.weight_count; ++wi) {
    const double w =
        static_cast<double>(wi) / static_cast<double>(params.weight_count - 1);
    Rng rng = master.split();

    Population pop;
    pop.reserve(params.population_size);
    std::array<double, 2> lo{std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::infinity()};
    std::array<double, 2> hi{-std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    auto track = [&](const Individual& ind) {
      for (std::size_t k = 0; k < 2; ++k) {
        lo[k] = std::min(lo[k], ind.eval.objectives[k]);
        hi[k] = std::max(hi[k], ind.eval.objectives[k]);
      }
    };

    pop.resize(params.population_size);
    for (auto& ind : pop) ind.genes = random_genome(bounds, rng);
    eval.evaluate_members(pop);
    result.evaluations += pop.size();
    for (const auto& ind : pop) track(ind);

    auto spans = [&] {
      std::array<double, 2> s;
      for (std::size_t k = 0; k < 2; ++k) s[k] = std::max(hi[k] - lo[k], 1e-30);
      return s;
    };

    for (std::size_t gen = 0; gen < params.generations_per_weight; ++gen) {
      const auto span = spans();
      const Preference prefer = [&](const Individual& a, const Individual& b) {
        return score(a, w, lo, span).better_than(score(b, w, lo, span));
      };
      auto offspring =
          make_offspring(pop, bounds, params.variation, prefer, params.population_size, rng);

      Population pool = pop;
      const std::size_t first_child = pool.size();
      for (auto& genes : offspring) {
        Individual child;
        child.genes = std::move(genes);
        pool.push_back(std::move(child));
      }
      // One batch per generation; min/max range tracking commutes, so
      // tracking after the batch matches the old per-evaluation order.
      const auto children = std::span<Individual>(pool).subspan(first_child);
      eval.evaluate_members(children);
      result.evaluations += children.size();
      for (const auto& child : children) track(child);
      const auto span2 = spans();
      std::sort(pool.begin(), pool.end(), [&](const Individual& a, const Individual& b) {
        return score(a, w, lo, span2).better_than(score(b, w, lo, span2));
      });
      pool.resize(params.population_size);
      pop = std::move(pool);
      // A single global generation index across the weight sweep keeps the
      // trace's logical clock monotonic.
      trace_generation(params.sink, wi * params.generations_per_weight + gen,
                       result.evaluations, pop, params.trace_hypervolume);
    }

    // pop is sorted by the final generation's truncation: front() is the
    // scalar winner for this weight.
    const auto span = spans();
    const auto best = std::min_element(
        pop.begin(), pop.end(), [&](const Individual& a, const Individual& b) {
          return score(a, w, lo, span).better_than(score(b, w, lo, span));
        });
    result.all_winners.push_back(*best);
  }

  result.front = extract_global_front(result.all_winners);
  result.eval_stats = eval.stats();
  return result;
}

}  // namespace anadex::moga
