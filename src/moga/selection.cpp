#include "moga/selection.hpp"

#include "common/check.hpp"

namespace anadex::moga {

std::size_t binary_tournament(const Population& population, const Preference& prefer, Rng& rng) {
  ANADEX_REQUIRE(!population.empty(), "tournament over an empty population");
  const std::size_t a = rng.uniform_index(population.size());
  if (population.size() == 1) return a;
  std::size_t b = rng.uniform_index(population.size() - 1);
  if (b >= a) ++b;  // distinct second contestant
  if (prefer(population[a], population[b])) return a;
  if (prefer(population[b], population[a])) return b;
  return rng.bernoulli(0.5) ? a : b;
}

std::vector<std::vector<double>> make_offspring(const Population& population,
                                                std::span<const VariableBound> bounds,
                                                const VariationParams& params,
                                                const Preference& prefer, std::size_t count,
                                                Rng& rng) {
  std::vector<std::vector<double>> offspring;
  offspring.reserve(count + 1);
  while (offspring.size() < count) {
    const std::size_t pa = binary_tournament(population, prefer, rng);
    const std::size_t pb = binary_tournament(population, prefer, rng);
    std::vector<double> child_a = population[pa].genes;
    std::vector<double> child_b = population[pb].genes;
    sbx_crossover(bounds, params, child_a, child_b, rng);
    polynomial_mutation(bounds, params, child_a, rng);
    polynomial_mutation(bounds, params, child_b, rng);
    offspring.push_back(std::move(child_a));
    if (offspring.size() < count) offspring.push_back(std::move(child_b));
  }
  return offspring;
}

}  // namespace anadex::moga
