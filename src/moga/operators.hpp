// Real-coded variation operators: simulated binary crossover (SBX) and
// polynomial mutation (Deb & Agrawal), plus uniform initialization.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

/// Parameters of the variation pipeline.
struct VariationParams {
  double crossover_probability = 0.9;  ///< per-pair SBX probability
  double crossover_eta = 15.0;         ///< SBX distribution index
  double mutation_probability = -1.0;  ///< per-gene; <0 means use 1/num_variables
  double mutation_eta = 20.0;          ///< polynomial-mutation distribution index

  /// Effective per-gene mutation probability for an n-variable problem.
  double effective_mutation_probability(std::size_t num_variables) const;
};

/// Draws a uniform random genome within the bounds.
std::vector<double> random_genome(std::span<const VariableBound> bounds, Rng& rng);

/// SBX on two parent genomes; children are written in place over copies of
/// the parents. All genes stay within bounds.
void sbx_crossover(std::span<const VariableBound> bounds, const VariationParams& params,
                   std::vector<double>& child_a, std::vector<double>& child_b, Rng& rng);

/// Polynomial mutation in place. All genes stay within bounds.
void polynomial_mutation(std::span<const VariableBound> bounds, const VariationParams& params,
                         std::vector<double>& genome, Rng& rng);

/// BLX-alpha (blend) crossover: each child gene is drawn uniformly from the
/// parents' interval extended by `alpha` on both sides, clamped to bounds.
/// An alternative to SBX for rugged landscapes.
void blx_alpha_crossover(std::span<const VariableBound> bounds, double alpha,
                         std::vector<double>& child_a, std::vector<double>& child_b,
                         Rng& rng);

/// Gaussian mutation: each gene mutates with params' effective probability
/// by a normal step of `sigma_relative` * (bound span), clamped to bounds.
void gaussian_mutation(std::span<const VariableBound> bounds, const VariationParams& params,
                       double sigma_relative, std::vector<double>& genome, Rng& rng);

}  // namespace anadex::moga
