#include "moga/flat_objectives.hpp"

#include <cmath>

namespace anadex::moga {

void FlatObjectives::build(const Population& population,
                           std::span<const std::size_t> indices) {
  count_ = indices.size();
  members_.assign(indices.begin(), indices.end());
  violation_.resize(count_);
  values_.clear();
  arity_ = count_ > 0 ? population[indices.front()].eval.objectives.size() : 0;
  uniform_ = count_ > 0;
  all_finite_ = true;

  for (std::size_t i = 0; i < count_; ++i) {
    const Individual& ind = population[indices[i]];
    if (ind.eval.objectives.size() != arity_) uniform_ = false;
    // total_violation() exactly as constrained_dominates computes it, but
    // summed once per member instead of once per pairwise compare.
    const double v = ind.total_violation();
    violation_[i] = v;
    all_finite_ = all_finite_ && std::isfinite(v);
  }
  if (!uniform_) return;

  values_.reserve(count_ * arity_);
  for (std::size_t i = 0; i < count_; ++i) {
    const auto& objectives = population[indices[i]].eval.objectives;
    for (double v : objectives) {
      values_.push_back(v);
      all_finite_ = all_finite_ && std::isfinite(v);
    }
  }
}

}  // namespace anadex::moga
