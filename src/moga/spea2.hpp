// SPEA2 — Strength Pareto Evolutionary Algorithm 2 (Zitzler, Laumanns,
// Thiele, 2001) with Deb-style constraint handling. A second standard MOEA
// baseline beside NSGA-II: fitness = raw strength-based dominance count +
// k-th-nearest-neighbour density, with an external archive truncated by
// nearest-neighbour distance.
#pragma once

#include <cstdint>

#include "moga/nsga2.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

struct Spea2Params {
  std::size_t population_size = 100;  ///< even, >= 4
  std::size_t archive_size = 100;     ///< >= 2
  std::size_t generations = 800;
  VariationParams variation;
  std::uint64_t seed = 1;
};

struct Spea2Result {
  Population archive;  ///< final external archive (the front approximation)
  Population front;    ///< feasible non-dominated members of the archive
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;
};

/// Runs SPEA2. Infeasible individuals are handled by adding a large
/// violation-proportional penalty to their fitness so feasible solutions
/// always rank ahead. Deterministic per seed.
Spea2Result run_spea2(const Problem& problem, const Spea2Params& params,
                      const GenerationCallback& on_generation = {});

}  // namespace anadex::moga
