// SPEA2 — Strength Pareto Evolutionary Algorithm 2 (Zitzler, Laumanns,
// Thiele, 2001) with Deb-style constraint handling. A second standard MOEA
// baseline beside NSGA-II: fitness = raw strength-based dominance count +
// k-th-nearest-neighbour density, with an external archive truncated by
// nearest-neighbour distance.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "engine/evolver_common.hpp"
#include "moga/nsga2.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

/// Everything needed to resume a SPEA2 run bit-identically: the current
/// offspring population, the external archive, the full RNG state, and the
/// cumulative counters.
struct Spea2State {
  Population population;  ///< offspring evaluated at the end of the last generation
  Population archive;     ///< external archive after environmental selection
  RngState rng;
  std::size_t next_generation = 0;  ///< first generation index still to run
  std::size_t evaluations = 0;      ///< cumulative evaluation count
};

/// Configuration of one SPEA2 run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base.
struct Spea2Params : engine::EvolverCommon<Spea2State> {
  std::size_t population_size = 100;  ///< even, >= 4
  std::size_t archive_size = 100;     ///< >= 2
  std::size_t generations = 800;
  VariationParams variation;
};

struct Spea2Result {
  Population archive;  ///< final external archive (the front approximation)
  Population front;    ///< feasible non-dominated members of the archive
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;
  engine::EvalStats eval_stats;  ///< requested/distinct/cache-hit accounting
  bool interrupted = false;      ///< stop token ended the run early (snapshotted)
};

/// Runs SPEA2. Infeasible individuals are handled by adding a large
/// violation-proportional penalty to their fitness so feasible solutions
/// always rank ahead. Deterministic per seed.
Spea2Result run_spea2(const Problem& problem, const Spea2Params& params,
                      const GenerationCallback& on_generation = {});

}  // namespace anadex::moga
