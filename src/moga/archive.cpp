#include "moga/archive.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "moga/nds.hpp"

namespace anadex::moga {

Archive::Archive(std::size_t capacity) : capacity_(capacity) {
  ANADEX_REQUIRE(capacity >= 1, "archive capacity must be at least 1");
}

bool Archive::offer(const Individual& candidate) {
  if (!candidate.feasible()) return false;

  for (const auto& member : members_) {
    if (dominates(member.eval.objectives, candidate.eval.objectives) ||
        member.eval.objectives == candidate.eval.objectives) {
      return false;
    }
  }
  std::erase_if(members_, [&](const Individual& member) {
    return dominates(candidate.eval.objectives, member.eval.objectives);
  });
  members_.push_back(candidate);
  if (members_.size() > capacity_) evict_most_crowded();
  return true;
}

void Archive::offer_all(const Population& population) {
  for (const auto& ind : population) offer(ind);
}

void Archive::evict_most_crowded() {
  std::vector<std::size_t> all(members_.size());
  std::iota(all.begin(), all.end(), 0);
  assign_crowding(members_, all);
  const auto victim = std::min_element(
      members_.begin(), members_.end(),
      [](const Individual& a, const Individual& b) { return a.crowding < b.crowding; });
  members_.erase(victim);
}

}  // namespace anadex::moga
