// Elitist non-dominated sorting GA (NSGA-II, Deb et al. 2002) with Deb's
// constraint-domination. This is the paper's baseline: "Traditional Purely
// Global competition based GA" (TPG).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "moga/individual.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

/// Configuration of one NSGA-II run.
struct Nsga2Params {
  std::size_t population_size = 100;  ///< must be even and >= 4
  std::size_t generations = 800;
  VariationParams variation;
  std::uint64_t seed = 1;
};

/// Per-generation observer; receives the generation index (0-based, after
/// survivor selection) and the current population.
using GenerationCallback = std::function<void(std::size_t, const Population&)>;

/// Result of an NSGA-II run.
struct Nsga2Result {
  Population population;             ///< final parent population, ranked
  Population front;                  ///< feasible rank-0 members of the final population
  std::size_t evaluations = 0;       ///< total problem evaluations performed
  std::size_t generations_run = 0;
};

/// Runs NSGA-II on `problem`. Deterministic for a fixed seed.
Nsga2Result run_nsga2(const Problem& problem, const Nsga2Params& params,
                      const GenerationCallback& on_generation = {});

/// Extracts the feasible, mutually non-dominated members of `population`
/// (the "global Pareto front" used everywhere in the paper's figures).
Population extract_global_front(const Population& population);

}  // namespace anadex::moga
