// Elitist non-dominated sorting GA (NSGA-II, Deb et al. 2002) with Deb's
// constraint-domination. This is the paper's baseline: "Traditional Purely
// Global competition based GA" (TPG).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "engine/eval_cache.hpp"
#include "engine/evolver_common.hpp"
#include "moga/individual.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::moga {

/// Everything needed to resume an NSGA-II run bit-identically: the ranked
/// parent population (rank + crowding drive the next tournament), the full
/// RNG state, and the cumulative counters.
struct Nsga2State {
  Population parents;          ///< ranked survivors of the last generation
  RngState rng;
  std::size_t next_generation = 0;  ///< first generation index still to run
  std::size_t evaluations = 0;      ///< cumulative evaluation count
};

/// Configuration of one NSGA-II run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base.
struct Nsga2Params : engine::EvolverCommon<Nsga2State> {
  std::size_t population_size = 100;  ///< must be even and >= 4
  std::size_t generations = 800;
  VariationParams variation;
};

/// Per-generation observer; receives the generation index (0-based, after
/// survivor selection) and the current population.
using GenerationCallback = std::function<void(std::size_t, const Population&)>;

/// Result of an NSGA-II run.
struct Nsga2Result {
  Population population;             ///< final parent population, ranked
  Population front;                  ///< feasible rank-0 members of the final population
  std::size_t evaluations = 0;       ///< total problem evaluations requested
  std::size_t generations_run = 0;
  engine::EvalStats eval_stats;      ///< requested/distinct/cache-hit accounting
  /// True when the run returned early because the stop token was raised; a
  /// snapshot of the stopping point was taken (when on_snapshot is set), so
  /// the run can be resumed to completion.
  bool interrupted = false;
};

/// Runs NSGA-II on `problem`. Deterministic for a fixed seed.
Nsga2Result run_nsga2(const Problem& problem, const Nsga2Params& params,
                      const GenerationCallback& on_generation = {});

/// Extracts the feasible, mutually non-dominated members of `population`
/// (the "global Pareto front" used everywhere in the paper's figures).
Population extract_global_front(const Population& population);

}  // namespace anadex::moga
