// Mating selection and offspring generation shared by NSGA-II and the
// partitioned (SACGA family) algorithms.
#pragma once

#include <functional>
#include <span>

#include "common/rng.hpp"
#include "moga/individual.hpp"
#include "moga/operators.hpp"

namespace anadex::moga {

/// Preference predicate: returns true when the first individual should win a
/// tournament against the second.
using Preference = std::function<bool(const Individual&, const Individual&)>;

/// Binary tournament over `population`: draws two distinct random members
/// and returns the index of the preferred one (random pick on a tie).
std::size_t binary_tournament(const Population& population, const Preference& prefer, Rng& rng);

/// Produces `count` offspring genomes: repeated binary tournaments pick
/// parent pairs from `population`, then SBX + polynomial mutation are
/// applied. This is the paper's "Global Mating Pool": parents are drawn from
/// the entire population regardless of partition.
std::vector<std::vector<double>> make_offspring(const Population& population,
                                                std::span<const VariableBound> bounds,
                                                const VariationParams& params,
                                                const Preference& prefer, std::size_t count,
                                                Rng& rng);

}  // namespace anadex::moga
