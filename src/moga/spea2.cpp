#include "moga/spea2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/engine_lease.hpp"
#include "moga/dominance.hpp"
#include "moga/obs_trace.hpp"
#include "moga/selection.hpp"

namespace anadex::moga {

namespace {

/// Objective-space Euclidean distance.
double distance(const Individual& a, const Individual& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.eval.objectives.size(); ++i) {
    const double d = a.eval.objectives[i] - b.eval.objectives[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

/// SPEA2 fitness over the combined pool: strength-based raw fitness plus
/// k-NN density, plus a feasibility penalty. Lower is better.
std::vector<double> spea2_fitness(const Population& pool) {
  const std::size_t n = pool.size();
  std::vector<std::size_t> strength(n, 0);  // how many each individual dominates
  std::vector<std::vector<bool>> dom(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (constrained_dominates(pool[i], pool[j])) {
        dom[i][j] = true;
        ++strength[i];
      }
    }
  }

  std::vector<double> fitness(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double raw = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (dom[j][i]) raw += static_cast<double>(strength[j]);
    }
    fitness[i] = raw;
  }

  // Density: 1 / (sigma_k + 2) with k = sqrt(pool size), clamped into the
  // valid neighbour range for tiny pools.
  const auto k = std::min(static_cast<std::size_t>(std::sqrt(static_cast<double>(n))),
                          n >= 2 ? n - 2 : 0);
  std::vector<double> dists;
  dists.reserve(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    dists.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) dists.push_back(distance(pool[i], pool[j]));
    }
    std::nth_element(dists.begin(), dists.begin() + static_cast<long>(k), dists.end());
    fitness[i] += 1.0 / (dists[k] + 2.0);
    // Feasibility penalty keeps infeasible individuals behind all feasible.
    fitness[i] += pool[i].total_violation() * 1e3;
  }
  return fitness;
}

/// Truncates `members` (all mutually nondominated-ish) to `target` by
/// repeatedly removing the individual with the smallest nearest-neighbour
/// distance (ties broken by the next-nearest, approximated here by the
/// smallest sum of two nearest distances).
void truncate_archive(Population& members, std::size_t target) {
  while (members.size() > target) {
    const std::size_t n = members.size();
    std::size_t victim = 0;
    double victim_key = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      double second = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double d = distance(members[i], members[j]);
        if (d < nearest) {
          second = nearest;
          nearest = d;
        } else if (d < second) {
          second = d;
        }
      }
      const double key = nearest + 1e-6 * second;
      if (key < victim_key) {
        victim_key = key;
        victim = i;
      }
    }
    members.erase(members.begin() + static_cast<long>(victim));
  }
}

}  // namespace

Spea2Result run_spea2(const Problem& problem, const Spea2Params& params,
                      const GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.population_size >= 4 && params.population_size % 2 == 0,
                 "population size must be even and >= 4");
  ANADEX_REQUIRE(params.archive_size >= 2, "archive size must be >= 2");

  const auto bounds = problem.bounds();
  const engine::EngineLease eval(problem, params, params.sink,
                                 engine::EvalWatchdog{params.eval_cancel,
                                                      params.eval_deadline_s});
  Rng rng(params.seed);
  Spea2Result result;

  Population population;
  Population archive;
  std::size_t start_generation = 0;
  if (params.resume != nullptr) {
    const Spea2State& state = *params.resume;
    ANADEX_REQUIRE(state.population.size() == params.population_size,
                   "resume state population size does not match params");
    ANADEX_REQUIRE(state.next_generation <= params.generations,
                   "resume state is beyond the configured generation count");
    population = state.population;
    archive = state.archive;
    rng.set_state(state.rng);
    result.evaluations = state.evaluations;
    result.generations_run = state.next_generation;
    start_generation = state.next_generation;
  } else {
    population.resize(params.population_size);
    for (auto& member : population) member.genes = random_genome(bounds, rng);
    eval.evaluate_members(population);
    result.evaluations += params.population_size;
  }

  for (std::size_t gen = start_generation; gen < params.generations; ++gen) {
    Population pool = archive;
    pool.insert(pool.end(), population.begin(), population.end());

    const auto fitness = spea2_fitness(pool);
    // Store fitness in the (otherwise unused) crowding slot, negated so the
    // shared tournament preference "larger crowding wins" selects the
    // LOWER SPEA2 fitness; rank ties at 0.
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool[i].rank = 0;
      pool[i].crowding = -fitness[i];
    }

    // Environmental selection: all with fitness < 1 (nondominated), then
    // truncate or fill to archive_size.
    Population next_archive;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (fitness[i] < 1.0) next_archive.push_back(pool[i]);
    }
    if (next_archive.size() > params.archive_size) {
      truncate_archive(next_archive, params.archive_size);
    } else if (next_archive.size() < params.archive_size) {
      std::vector<std::size_t> order(pool.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });
      for (std::size_t idx : order) {
        if (next_archive.size() == params.archive_size) break;
        if (fitness[idx] >= 1.0) next_archive.push_back(pool[idx]);
      }
    }
    archive = std::move(next_archive);

    // Mating selection from the archive (binary tournament on fitness).
    const Preference prefer = [](const Individual& a, const Individual& b) {
      return a.crowding > b.crowding;  // negated fitness: larger wins
    };
    auto offspring = make_offspring(archive, bounds, params.variation, prefer,
                                    params.population_size, rng);
    population.clear();
    for (auto& genes : offspring) {
      Individual child;
      child.genes = std::move(genes);
      population.push_back(std::move(child));
    }
    // One batch per generation: the whole offspring population at once.
    eval.evaluate_members(population);
    result.evaluations += population.size();

    ++result.generations_run;
    if (on_generation) on_generation(gen, archive);
    if (params.sink != nullptr && params.sink->enabled(obs::TraceLevel::Gen)) {
      // The filled archive reuses rank 0 for every member, so pass the true
      // non-dominated front explicitly.
      trace_generation(params.sink, gen, result.evaluations, archive,
                       extract_global_front(archive), params.trace_hypervolume);
    }

    const bool at_snapshot_barrier =
        params.snapshot_every > 0 && (gen + 1) % params.snapshot_every == 0;
    const auto snapshot = [&] {
      Spea2State state;
      state.population = population;
      state.archive = archive;
      state.rng = rng.state();
      state.next_generation = gen + 1;
      state.evaluations = result.evaluations;
      params.on_snapshot(state);
    };
    if (at_snapshot_barrier && params.on_snapshot) snapshot();

    // Graceful-stop barrier (see nsga2.cpp): snapshot off-cycle and return.
    if (params.stop != nullptr && params.stop->requested() &&
        gen + 1 < params.generations) {
      if (params.on_snapshot && !at_snapshot_barrier) snapshot();
      result.interrupted = true;
      break;
    }
  }

  result.front = extract_global_front(archive);
  result.archive = std::move(archive);
  result.eval_stats = eval.stats();
  return result;
}

}  // namespace anadex::moga
