// Pareto dominance and Deb's constraint-domination.
#pragma once

#include <span>

#include "moga/individual.hpp"

namespace anadex::moga {

/// True when objective vector `a` Pareto-dominates `b` (all <= and at least
/// one <). Both spans must have equal, non-zero size.
bool dominates(std::span<const double> a, std::span<const double> b);

/// Deb's constraint-domination between evaluated individuals:
///   * feasible beats infeasible;
///   * two infeasibles compare by total violation (smaller wins);
///   * two feasibles compare by Pareto dominance of the objectives.
/// Returns true when `a` constraint-dominates `b`.
bool constrained_dominates(const Individual& a, const Individual& b);

}  // namespace anadex::moga
