#include "serve/scheduler.hpp"

#include <array>
#include <utility>

#include "common/check.hpp"

namespace anadex::serve {

namespace {

bool terminal(expt::JobState state) {
  return state == expt::JobState::Done || state == expt::JobState::Failed ||
         state == expt::JobState::Cancelled;
}

}  // namespace

JobScheduler::JobScheduler(SchedulerConfig config) : config_(config) {
  ANADEX_REQUIRE(config_.slice_generations >= 1,
                 "scheduler: slice_generations must be >= 1");
  if (config_.hub != nullptr) {
    ANADEX_REQUIRE(config_.hub->is_hub(),
                   "scheduler: the shared engine must be a hub "
                   "(problem-less EvalEngine)");
  }
}

std::size_t JobScheduler::admit(std::string id, expt::RunSettings settings) {
  if (config_.hub != nullptr) {
    // Context 0 is reserved for private engines; admission ordinals start
    // at 1 so two jobs can never share cache entries.
    settings.engine.engine = config_.hub;
    settings.engine.context = static_cast<std::uint64_t>(slots_.size()) + 1;
    // The shared pool decides parallelism; the per-run thread knob only
    // matters for private engines (and EngineLease ignores it when shared).
  }
  // Throws PreconditionError on invalid settings; nothing is enqueued.
  expt::Job job = expt::Job::from_settings(std::move(settings));
  const std::size_t slot = slots_.size();
  slots_.push_back(Slot{std::move(id), std::move(job)});
  ++stats_.admitted;
  if (config_.sink != nullptr && config_.sink->enabled(obs::TraceLevel::Gen)) {
    const std::array<obs::Field, 3> fields = {
        obs::str("job", slots_[slot].id),
        obs::u64("slot", slot),
        obs::u64("context", slots_[slot].job.settings().engine.context),
    };
    config_.sink->record(obs::Event{"job_admitted", obs::TraceLevel::Gen,
                                    /*timed=*/false, fields});
  }
  return slot;
}

void JobScheduler::run_one(std::size_t slot) {
  expt::Job& job = slots_[slot].job;
  const expt::JobState state = job.run_slice(config_.slice_generations);
  ++stats_.slices;
  switch (state) {
    case expt::JobState::Snapshotted:
      ++stats_.preemptions;
      break;
    case expt::JobState::Done:
      ++stats_.done;
      break;
    case expt::JobState::Failed:
      ++stats_.failed;
      break;
    case expt::JobState::Cancelled:
      ++stats_.cancelled;
      break;
    case expt::JobState::Pending:
    case expt::JobState::Running:
      ANADEX_ASSERT(false, "scheduler: run_slice returned a non-final state");
      break;
  }
  if (config_.sink != nullptr && config_.sink->enabled(obs::TraceLevel::Gen)) {
    const std::string state_name = expt::job_state_name(state);
    const std::array<obs::Field, 4> fields = {
        obs::str("job", slots_[slot].id),
        obs::str("state", state_name),
        obs::u64("slices", job.slices_run()),
        obs::u64("generations", job.generations_done()),
    };
    config_.sink->record(obs::Event{"job_slice", obs::TraceLevel::Gen,
                                    /*timed=*/false, fields});
  }
}

bool JobScheduler::step() {
  // One full lap from the cursor; the first runnable job gets a slice.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::size_t slot = (cursor_ + i) % slots_.size();
    if (!slots_[slot].job.runnable()) continue;
    run_one(slot);
    cursor_ = (slot + 1) % slots_.size();
    return true;
  }
  return false;
}

bool JobScheduler::run_all() {
  for (;;) {
    if (config_.stop != nullptr && config_.stop->requested()) break;
    if (!step()) break;
  }
  return all_terminal();
}

bool JobScheduler::all_terminal() const {
  for (const Slot& slot : slots_) {
    if (!terminal(slot.job.state())) return false;
  }
  return true;
}

}  // namespace anadex::serve
