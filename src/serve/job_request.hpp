// serve::JobRequest — one line of the spool protocol, strictly parsed.
//
// A job request is a single-line JSON object naming a job id, an algorithm
// and a spec, plus optional algorithm knobs:
//
//   {"id":"night-sweep-3","algo":"mesacga","spec":"chosen",
//    "population":64,"generations":200,"seed":7}
//
// Parsing is STRICT, mirroring validate_run_settings' rejection style: an
// unknown key, a duplicate key, a missing required key (id / algo / spec),
// a malformed value or a bad enum string raises PreconditionError with a
// message naming the offending key — the daemon reports it in the job's
// result file instead of running garbage (or aborting). Notably, the
// execution knobs the SERVICE owns (threads, eval_cache, checkpoint and
// trace paths, deadlines) are not request keys: a request describes WHAT
// to explore, the daemon decides how. See docs/serve.md for the full
// schema.
//
// The parser is deliberately minimal — single-level objects, string /
// unsigned-integer / bool / unsigned-integer-array values — because that
// is the whole protocol; it is not a general JSON library.
#pragma once

#include <string>
#include <string_view>

#include "expt/runner.hpp"

namespace anadex::serve {

/// A parsed, not-yet-validated job request. `settings` carries the
/// requested algorithm knobs over defaults; the daemon fills in the
/// service-owned execution knobs (threads, cache, paths) before admission,
/// where validate_run_settings has the final word.
struct JobRequest {
  std::string id;  ///< filename-safe ([A-Za-z0-9_.-], at most 64 chars)
  expt::RunSettings settings;
};

/// True when `id` is usable as a spool file stem: non-empty, at most 64
/// characters, all from [A-Za-z0-9_.-], and not starting with a dot.
bool valid_job_id(std::string_view id);

/// Parses one request line. Throws anadex::PreconditionError (a
/// std::invalid_argument) on any deviation from the schema; the message
/// names the offending key.
JobRequest parse_job_request(const std::string& line);

}  // namespace anadex::serve
