#include "serve/spool.hpp"

#include <algorithm>
#include <fstream>
#include <string>
#include <string_view>

#include "common/check.hpp"
#include "obs/jsonl_writer.hpp"
#include "serve/job_request.hpp"

namespace anadex::serve {

namespace fs = std::filesystem;

std::vector<fs::path> pending_requests(const fs::path& dir) {
  ANADEX_REQUIRE(fs::is_directory(dir),
                 "spool: not a directory: " + dir.string());
  std::vector<fs::path> requests;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".job") continue;
    requests.push_back(entry.path());
  }
  // directory_iterator order is unspecified; filename order defines the
  // admission order, so sort.
  std::sort(requests.begin(), requests.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  return requests;
}

fs::path claim_request(const fs::path& request) {
  fs::path taken = request;
  taken += ".taken";
  fs::rename(request, taken);  // throws filesystem_error on failure
  return taken;
}

std::vector<fs::path> taken_requests(const fs::path& dir) {
  ANADEX_REQUIRE(fs::is_directory(dir),
                 "spool: not a directory: " + dir.string());
  std::vector<fs::path> requests;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".job.taken";
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    requests.push_back(entry.path());
  }
  std::sort(requests.begin(), requests.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  return requests;
}

std::string read_request_line(const fs::path& path) {
  std::ifstream in(path);
  ANADEX_REQUIRE(in.is_open(), "spool: cannot open request " + path.string());
  std::string line;
  std::getline(in, line);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  ANADEX_REQUIRE(!line.empty(), "spool: empty request " + path.string());
  return line;
}

fs::path result_path(const fs::path& dir, const std::string& id) {
  return dir / (id + ".result.json");
}

void write_result_file(const fs::path& dir, const JobResult& result) {
  ANADEX_REQUIRE(valid_job_id(result.id),
                 "spool: result id is not filename-safe: " + result.id);
  std::string json = "{\"id\":";
  obs::append_json_string(json, result.id);
  json += ",\"state\":";
  obs::append_json_string(json, result.state);
  if (!result.error.empty()) {
    json += ",\"error\":";
    obs::append_json_string(json, result.error);
  }
  if (result.has_outcome) {
    const expt::RunOutcome& o = result.outcome;
    json += ",\"generations\":" + std::to_string(o.generations);
    json += ",\"evaluations\":" + std::to_string(o.evaluations);
    json += ",\"distinct_evaluations\":" + std::to_string(o.distinct_evaluations);
    json += ",\"cache_hits\":" + std::to_string(o.cache_hits);
    json += ",\"interrupted\":";
    json += o.interrupted ? "true" : "false";
    json += ",\"front_area\":";
    obs::append_json_double(json, o.front_area);
    json += ",\"hypervolume_norm\":";
    obs::append_json_double(json, o.hypervolume_norm);
    json += ",\"front\":[";
    for (std::size_t i = 0; i < o.front.size(); ++i) {
      if (i != 0) json += ',';
      json += '[';
      obs::append_json_double(json, o.front[i].power_w);
      json += ',';
      obs::append_json_double(json, o.front[i].cload_f);
      json += ']';
    }
    json += ']';
  }
  json += "}\n";

  const fs::path final_path = result_path(dir, result.id);
  fs::path tmp = final_path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    ANADEX_REQUIRE(out.is_open(), "spool: cannot write " + tmp.string());
    out << json;
    out.flush();
    ANADEX_REQUIRE(out.good(), "spool: short write to " + tmp.string());
  }
  fs::rename(tmp, final_path);  // atomic replace: readers never see a torn file
}

}  // namespace anadex::serve
