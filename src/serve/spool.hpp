// Spool-directory protocol for `anadex serve` (docs/serve.md).
//
// Clients submit work by dropping one-line JSON request files into the
// spool directory:
//
//   <spool>/<name>.job          a job request (serve/job_request.hpp)
//   <spool>/<name>.job.taken    the same file after the daemon claimed it
//   <spool>/<id>.result.json    terminal report, written atomically
//   <spool>/<id>.front.csv      the job's final front (explore --csv format)
//   <spool>/serve_stats.json    service-level stats snapshot
//
// The daemon scans for `*.job` files sorted lexicographically by filename —
// submission order is the FILENAME order, not mtime, so a fixed set of
// request files always admits in the same order and the whole service run
// is reproducible. Claiming is a rename to `.job.taken` (atomic within the
// directory), which makes a crashed daemon's leftovers visible and keeps a
// restarted scan from double-admitting.
//
// Result files are written via temp-file + rename so a reader never sees a
// half-written report; `state` is a Job lifecycle name or "rejected" (the
// request never became a job — parse or admission failure, detailed in
// `error`).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "expt/runner.hpp"

namespace anadex::serve {

/// Unclaimed request files (`*.job`) directly inside `dir`, sorted
/// lexicographically by filename. Throws PreconditionError when `dir` is
/// not a directory.
std::vector<std::filesystem::path> pending_requests(const std::filesystem::path& dir);

/// Claims `request` by renaming it to `<request>.taken`; returns the new
/// path. Throws std::filesystem::filesystem_error if the rename fails
/// (e.g. another process claimed it first).
std::filesystem::path claim_request(const std::filesystem::path& request);

/// Already-claimed request files (`*.job.taken`) directly inside `dir`,
/// sorted lexicographically by filename. A restarted daemon re-admits
/// these when no result file exists yet: an interrupted job resumes from
/// its checkpoint chain instead of being orphaned by its own claim.
std::vector<std::filesystem::path> taken_requests(const std::filesystem::path& dir);

/// Reads the first line of a (one-line) request file. Throws
/// PreconditionError when the file cannot be opened or is empty.
std::string read_request_line(const std::filesystem::path& path);

/// Terminal report of one request. When the request never became a job,
/// `state` is "rejected" and `error` holds the admission message; otherwise
/// `state` is the job_state_name and `outcome` is meaningful iff
/// `has_outcome` (a job cancelled before its first slice has none).
struct JobResult {
  std::string id;
  std::string state;
  std::string error;
  bool has_outcome = false;
  expt::RunOutcome outcome;
};

/// `<dir>/<id>.result.json`.
std::filesystem::path result_path(const std::filesystem::path& dir, const std::string& id);

/// Serializes `result` as one JSON object (front included as an array of
/// [power_w, cload_f] pairs, shortest-round-trip floats) and atomically
/// replaces `result_path(dir, result.id)`.
void write_result_file(const std::filesystem::path& dir, const JobResult& result);

}  // namespace anadex::serve
