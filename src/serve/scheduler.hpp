// serve::JobScheduler — fair round-robin time-slicing of many expt::Jobs
// over one shared EvalEngine.
//
// The scheduler owns an ordered list of admitted jobs and advances them one
// SLICE at a time: a slice is `slice_generations` generations of one job,
// enforced at the generation barrier through Job::run_slice — never wall
// clock, so for a fixed admission order the whole interleaving is a pure
// function of the settings and is reproducible run-to-run. Preemption
// snapshots the job into its own v2 checkpoint chain; the job's next slice
// re-admits it with ResumeMode::Auto, which replays bit-identically — so
// each job's front, evaluation count and final checkpoint are byte-identical
// to a solo run of the same settings (tests/serve/scheduler_test.cpp runs
// the {solo, 2-job, 4-job} x threads {1, 8} matrix).
//
// Sharing: when SchedulerConfig.hub is set, admit() stamps each job's
// settings with EngineHandle{hub, ordinal + 1} so every evaluation flows
// through the hub's worker pool and its context-partitioned dedup cache
// (contexts keep jobs from ever seeing each other's results — sharing is
// capacity, not data). With no hub each job builds private engines, which
// is how the solo path has always run.
//
// Threading: the scheduler itself is single-threaded — admit and run from
// one thread; parallelism lives inside the engine. Service shutdown is the
// `stop` token: run_all() returns between slices when it is raised, leaving
// every in-flight job Snapshotted for the next daemon start to resume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "engine/eval_engine.hpp"
#include "expt/job.hpp"
#include "obs/event_sink.hpp"

namespace anadex::serve {

struct SchedulerConfig {
  /// Generations each job runs per slice (the fairness quantum). Must be
  /// >= 1. Non-preemptible jobs (no checkpoint path) ignore it and run to
  /// completion in their single slice.
  std::size_t slice_generations = 25;
  /// Shared evaluation hub (engine::EvalEngine in hub mode), or nullptr for
  /// private per-job engines. Non-owning; must outlive the scheduler.
  engine::EvalEngine* hub = nullptr;
  /// Service shutdown token (non-owning). Checked between slices by
  /// run_all(); a raised token stops scheduling after the current slice,
  /// which itself stops at its next generation barrier (Job wires the same
  /// token into every slice via settings.stop).
  const CancelToken* stop = nullptr;
  /// Service-level telemetry (job_admitted / job_slice events); may be null.
  obs::EventSink* sink = nullptr;
};

/// Service-level counters, exported into the daemon's stats snapshot.
struct ServiceStats {
  std::uint64_t admitted = 0;    ///< jobs that passed admission
  std::uint64_t rejected = 0;    ///< requests refused at admission/parse
  std::uint64_t slices = 0;      ///< run_slice calls issued
  std::uint64_t preemptions = 0; ///< slices that ended Snapshotted
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerConfig config);

  /// Admits a job: stamps the settings with the shared-engine handle
  /// (context = admission ordinal + 1) and validates them through
  /// Job::from_settings. Throws PreconditionError on invalid settings —
  /// the caller reports the rejection (and calls note_rejected()); nothing
  /// is enqueued. Returns the job's slot index. Admission order defines
  /// both cache-context assignment and round-robin order, so a fixed
  /// request sequence yields a fully deterministic schedule.
  std::size_t admit(std::string id, expt::RunSettings settings);

  /// Records a request that failed parse/admission (stats only).
  void note_rejected() { ++stats_.rejected; }

  /// Runs one slice of the next runnable job in round-robin order.
  /// Returns false when no job is runnable (all terminal, stuck, or none
  /// admitted) — it does NOT consult the stop token; run_all() owns that.
  bool step();

  /// Round-robins slices until no job is runnable or the stop token is
  /// raised. Returns true when every admitted job reached a terminal state
  /// (Done / Failed / Cancelled).
  bool run_all();

  std::size_t size() const { return slots_.size(); }
  const std::string& id(std::size_t slot) const { return slots_[slot].id; }
  expt::Job& job(std::size_t slot) { return slots_[slot].job; }
  const expt::Job& job(std::size_t slot) const { return slots_[slot].job; }

  bool all_terminal() const;
  const ServiceStats& stats() const { return stats_; }

 private:
  void run_one(std::size_t slot);

  struct Slot {
    std::string id;
    expt::Job job;
  };

  SchedulerConfig config_;
  std::vector<Slot> slots_;
  std::size_t cursor_ = 0;  ///< next slot considered by step()
  ServiceStats stats_;
};

}  // namespace anadex::serve
