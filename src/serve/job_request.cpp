#include "serve/job_request.hpp"

#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::serve {

bool valid_job_id(std::string_view id) {
  if (id.empty() || id.size() > 64 || id.front() == '.') return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

namespace {

/// One parsed right-hand side. The protocol only has four value shapes, so
/// the scanner produces exactly these — anything else is a parse error.
struct Value {
  enum class Kind { Str, Uint, Bool, UintArray };
  Kind kind = Kind::Str;
  std::string str;
  std::uint64_t uint = 0;
  bool boolean = false;
  std::vector<std::uint64_t> array;
};

/// Hand-rolled strict scanner. No escapes, no floats, no nesting beyond a
/// flat uint array, no leading zeros: the grammar is exactly the canonical
/// form write_result_file and the docs emit, so a request either matches
/// byte-for-byte semantics or is rejected with a positioned message.
struct Scanner {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  char peek() {
    skip_ws();
    ANADEX_REQUIRE(pos < text.size(), "job request: unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    ANADEX_REQUIRE(peek() == c, std::string("job request: expected '") + c +
                                    "' at position " + std::to_string(pos));
    ++pos;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      ANADEX_REQUIRE(pos < text.size(), "job request: unterminated string");
      const char c = text[pos++];
      if (c == '"') break;
      ANADEX_REQUIRE(c != '\\',
                     "job request: escape sequences are not allowed in request strings");
      ANADEX_REQUIRE(static_cast<unsigned char>(c) >= 0x20,
                     "job request: control character inside a string");
      out.push_back(c);
    }
    return out;
  }

  std::uint64_t parse_uint() {
    skip_ws();
    ANADEX_REQUIRE(pos < text.size() && text[pos] >= '0' && text[pos] <= '9',
                   "job request: expected an unsigned integer at position " +
                       std::to_string(pos));
    const std::size_t start = pos;
    std::uint64_t value = 0;
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(text[pos] - '0');
      ANADEX_REQUIRE(value <= (kMax - digit) / 10,
                     "job request: integer overflows 64 bits");
      value = value * 10 + digit;
      ++pos;
    }
    ANADEX_REQUIRE(!(text[start] == '0' && pos - start > 1),
                   "job request: integers must not have leading zeros");
    return value;
  }

  void expect_literal(std::string_view word) {
    ANADEX_REQUIRE(text.compare(pos, word.size(), word) == 0,
                   "job request: malformed value at position " + std::to_string(pos));
    pos += word.size();
  }

  Value parse_value() {
    Value value;
    const char c = peek();
    if (c == '"') {
      value.kind = Value::Kind::Str;
      value.str = parse_string();
    } else if (c >= '0' && c <= '9') {
      value.kind = Value::Kind::Uint;
      value.uint = parse_uint();
    } else if (c == 't' || c == 'f') {
      value.kind = Value::Kind::Bool;
      value.boolean = (c == 't');
      expect_literal(value.boolean ? "true" : "false");
    } else if (c == '[') {
      ++pos;
      value.kind = Value::Kind::UintArray;
      if (peek() != ']') {
        for (;;) {
          value.array.push_back(parse_uint());
          if (peek() == ',') {
            ++pos;
            continue;
          }
          break;
        }
      }
      expect(']');
    } else {
      ANADEX_REQUIRE(false, "job request: malformed value at position " +
                                std::to_string(pos) +
                                " (strings, unsigned integers, booleans and "
                                "unsigned-integer arrays only)");
    }
    return value;
  }
};

const std::string& as_string(const std::string& key, const Value& value) {
  ANADEX_REQUIRE(value.kind == Value::Kind::Str,
                 "job request: \"" + key + "\" must be a string");
  return value.str;
}

std::size_t as_size(const std::string& key, const Value& value) {
  ANADEX_REQUIRE(value.kind == Value::Kind::Uint,
                 "job request: \"" + key + "\" must be an unsigned integer");
  ANADEX_REQUIRE(value.uint <= std::numeric_limits<std::size_t>::max(),
                 "job request: \"" + key + "\" is out of range");
  return static_cast<std::size_t>(value.uint);
}

expt::Algo algo_from_request(const std::string& name) {
  // Same vocabulary as the anadex CLI's --algo flag.
  if (name == "tpg" || name == "nsga2") return expt::Algo::TPG;
  if (name == "localonly") return expt::Algo::LocalOnly;
  if (name == "sacga") return expt::Algo::SACGA;
  if (name == "mesacga") return expt::Algo::MESACGA;
  if (name == "island") return expt::Algo::Island;
  if (name == "wsum") return expt::Algo::WeightedSum;
  if (name == "spea2") return expt::Algo::SPEA2;
  ANADEX_REQUIRE(false, "job request: unknown algo \"" + name +
                            "\" (expected tpg|localonly|sacga|mesacga|island|"
                            "wsum|spea2)");
  return expt::Algo::TPG;
}

scint::Spec spec_from_request(const Value& value) {
  if (value.kind == Value::Kind::Str) {
    ANADEX_REQUIRE(value.str == "chosen",
                   "job request: \"spec\" must be \"chosen\" or a suite index");
    return problems::chosen_spec();
  }
  ANADEX_REQUIRE(value.kind == Value::Kind::Uint,
                 "job request: \"spec\" must be \"chosen\" or a suite index");
  const auto suite = problems::spec_suite();
  ANADEX_REQUIRE(value.uint >= 1 && value.uint <= suite.size(),
                 "job request: \"spec\" index must be in 1.." +
                     std::to_string(suite.size()));
  return suite[static_cast<std::size_t>(value.uint) - 1];
}

}  // namespace

JobRequest parse_job_request(const std::string& line) {
  Scanner scan{line};
  scan.expect('{');
  std::map<std::string, Value> entries;
  if (scan.peek() != '}') {
    for (;;) {
      std::string key = scan.parse_string();
      ANADEX_REQUIRE(entries.find(key) == entries.end(),
                     "job request: duplicate key \"" + key + "\"");
      scan.expect(':');
      Value value = scan.parse_value();
      entries.emplace(std::move(key), std::move(value));
      if (scan.peek() == ',') {
        ++scan.pos;
        continue;
      }
      break;
    }
  }
  scan.expect('}');
  ANADEX_REQUIRE(scan.at_end(),
                 "job request: trailing characters after the closing '}'");

  JobRequest request;
  expt::RunSettings& s = request.settings;
  bool saw_id = false;
  bool saw_algo = false;
  bool saw_spec = false;
  for (const auto& [key, value] : entries) {
    if (key == "id") {
      request.id = as_string(key, value);
      ANADEX_REQUIRE(valid_job_id(request.id),
                     "job request: \"id\" must be 1..64 filename-safe "
                     "characters [A-Za-z0-9_.-] and must not start with '.'");
      saw_id = true;
    } else if (key == "algo") {
      s.algo = algo_from_request(as_string(key, value));
      saw_algo = true;
    } else if (key == "spec") {
      s.spec = spec_from_request(value);
      saw_spec = true;
    } else if (key == "population") {
      s.population = as_size(key, value);
    } else if (key == "generations") {
      s.generations = as_size(key, value);
    } else if (key == "partitions") {
      s.partitions = as_size(key, value);
    } else if (key == "islands") {
      s.islands = as_size(key, value);
    } else if (key == "migration_interval") {
      s.migration_interval = as_size(key, value);
    } else if (key == "weight_count") {
      s.weight_count = as_size(key, value);
    } else if (key == "phase1_cap") {
      s.phase1_cap = as_size(key, value);
    } else if (key == "span") {
      s.span = as_size(key, value);
    } else if (key == "history_stride") {
      s.history_stride = as_size(key, value);
    } else if (key == "seed") {
      ANADEX_REQUIRE(value.kind == Value::Kind::Uint,
                     "job request: \"seed\" must be an unsigned integer");
      s.seed = value.uint;
    } else if (key == "mesacga_schedule") {
      ANADEX_REQUIRE(value.kind == Value::Kind::UintArray,
                     "job request: \"mesacga_schedule\" must be an array of "
                     "unsigned integers");
      s.mesacga_schedule.clear();
      for (std::uint64_t v : value.array) {
        s.mesacga_schedule.push_back(static_cast<std::size_t>(v));
      }
    } else if (key == "record_history") {
      ANADEX_REQUIRE(value.kind == Value::Kind::Bool,
                     "job request: \"record_history\" must be true or false");
      s.record_history = value.boolean;
    } else {
      ANADEX_REQUIRE(false, "job request: unknown key \"" + key +
                                "\" (execution knobs — threads, caches, "
                                "paths, deadlines — are service-owned, not "
                                "request keys)");
    }
  }
  ANADEX_REQUIRE(saw_id, "job request: missing required key \"id\"");
  ANADEX_REQUIRE(saw_algo, "job request: missing required key \"algo\"");
  ANADEX_REQUIRE(saw_spec, "job request: missing required key \"spec\"");
  return request;
}

}  // namespace anadex::serve
