// Circuit specification: the constraint limits of the sizing problem.
#pragma once

#include <string>

#include "scint/integrator.hpp"

namespace anadex::scint {

/// Specification limits (paper §2). The illustrated case is
/// DR >= 96 dB, OR >= 1.4 V, ST <= 0.24 µs, SE <= 7e-4, Robustness >= 0.85.
struct Spec {
  std::string name = "default";
  double dr_min_db = 96.0;
  double or_min = 1.4;          ///< V
  double st_max = 0.24e-6;      ///< s
  double se_max = 7e-4;
  double robustness_min = 0.85;
  double area_max = 80e-9;      ///< m^2 (0.08 mm^2)

  /// Matching (systematic offset) limit applied at every corner.
  double balance_max = 0.30;

  /// Minimum gate overdrive (strong-inversion operating region), V.
  double vov_min = 0.10;

  /// True when a single-corner performance satisfies every deterministic
  /// limit (robustness is evaluated separately via Monte-Carlo).
  bool satisfied_by(const IntegratorPerformance& perf) const {
    return perf.dynamic_range_db >= dr_min_db && perf.output_range >= or_min &&
           perf.settling_time <= st_max && perf.settling_error <= se_max &&
           perf.area <= area_max && perf.sat_margin_worst >= 0.0 &&
           perf.mirror_balance_error <= balance_max && perf.vov_worst >= vov_min;
  }
};

}  // namespace anadex::scint
