#include "scint/batch_integrator.hpp"

#include <array>

#include "circuit/batch_opamp.hpp"

namespace anadex::scint {

template <std::size_t W>
void evaluate_lanes(const device::Process& process, std::span<const IntegratorDesign, W> designs,
                    const IntegratorContext& context, std::span<IntegratorPerformance, W> out) {
  std::array<circuit::OpAmpDesign, W> amps;
  std::array<circuit::OpAmpAnalysis, W> analyses;
  for (std::size_t k = 0; k < W; ++k) amps[k] = designs[k].opamp;
  circuit::analyze_lanes<W>(process, std::span<const circuit::OpAmpDesign, W>{amps},
                            context.opamp, std::span<circuit::OpAmpAnalysis, W>{analyses});
  for (std::size_t k = 0; k < W; ++k) {
    out[k] = assemble_performance(process, designs[k], context, analyses[k]);
  }
}

template void evaluate_lanes<4>(const device::Process&, std::span<const IntegratorDesign, 4>,
                                const IntegratorContext&, std::span<IntegratorPerformance, 4>);
template void evaluate_lanes<8>(const device::Process&, std::span<const IntegratorDesign, 8>,
                                const IntegratorContext&, std::span<IntegratorPerformance, 8>);
template void evaluate_lanes<16>(const device::Process&, std::span<const IntegratorDesign, 16>,
                                 const IntegratorContext&, std::span<IntegratorPerformance, 16>);

}  // namespace anadex::scint
