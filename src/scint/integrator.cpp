#include "scint/integrator.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"

namespace anadex::scint {

namespace {

constexpr double kTiny = 1e-18;
constexpr double kPi = 3.14159265358979323846;

/// Relative envelope of the residual settling error of the closed two-pole
/// loop at time t: exp-decaying for both the under- and over-damped cases.
double settling_envelope(double omega_n, double zeta, double t) {
  if (t <= 0.0) return 1.0;
  if (zeta < 1.0) {
    // Under-damped: envelope exp(-zeta*wn*t)/sqrt(1-zeta^2).
    const double damp = std::max(1.0 - zeta * zeta, 1e-6);
    return std::exp(-zeta * omega_n * t) / std::sqrt(damp);
  }
  // Over-damped: response dominated by the slow real pole.
  const double root = std::sqrt(zeta * zeta - 1.0);
  const double p_slow = omega_n * (zeta - root);
  const double p_fast = omega_n * (zeta + root);
  const double correction = p_fast / std::max(p_fast - p_slow, kTiny);
  return correction * std::exp(-p_slow * t);
}

/// Inverse of settling_envelope: time to reach a relative band.
double settling_time_to_band(double omega_n, double zeta, double band) {
  if (band >= 1.0) return 0.0;
  if (zeta < 1.0) {
    const double damp = std::max(1.0 - zeta * zeta, 1e-6);
    const double arg = band * std::sqrt(damp);
    return -std::log(std::max(arg, 1e-300)) / std::max(zeta * omega_n, kTiny);
  }
  const double root = std::sqrt(zeta * zeta - 1.0);
  const double p_slow = omega_n * (zeta - root);
  const double p_fast = omega_n * (zeta + root);
  const double correction = p_fast / std::max(p_fast - p_slow, kTiny);
  return std::log(std::max(correction / band, 1.0)) / std::max(p_slow, kTiny);
}

}  // namespace

IntegratorPerformance evaluate(const device::Process& process, const IntegratorDesign& design,
                               const IntegratorContext& context) {
  return assemble_performance(process, design, context,
                              circuit::analyze(process, design.opamp, context.opamp));
}

IntegratorPerformance assemble_performance(const device::Process& process,
                                           const IntegratorDesign& design,
                                           const IntegratorContext& context,
                                           const circuit::OpAmpAnalysis& amp) {
  IntegratorPerformance perf;
  perf.opamp = amp;

  perf.power = amp.power;
  perf.area = amp.area;
  perf.sat_margin_worst = amp.margins.worst();
  perf.mirror_balance_error = amp.mirror_balance_error;
  perf.vov_worst = amp.vov_worst;
  perf.output_range = amp.swing;

  const double cf = design.cf();
  const circuit::IntegratedCapacitor cap_s{design.cs};
  const circuit::IntegratedCapacitor cap_f{cf};
  const circuit::IntegratedCapacitor cap_oc{design.coc};
  perf.area += cap_s.area(process) + cap_f.area(process) + cap_oc.area(process);

  // ---- Feedback network ---------------------------------------------------
  // Summing-node capacitance during integration: sampling cap, offset
  // storage cap, opamp input capacitance (top plates at the virtual ground).
  const double c_sum = design.cs + design.coc + amp.c_in;
  perf.feedback_factor = cf / std::max(cf + c_sum, kTiny);
  const double beta = perf.feedback_factor;

  // Effective output load: external load, device junctions, feedback-cap
  // bottom plate (driven side) and the series combination of Cf with the
  // summing-node capacitance.
  const double c_fb_series = cf * c_sum / std::max(cf + c_sum, kTiny);
  perf.load_total =
      design.cload + amp.c_out_self + cap_f.bottom_plate(process) + c_fb_series;

  // ---- Loop dynamics ------------------------------------------------------
  const double omega_u = circuit::unity_gain_radians(amp);
  perf.unity_gain_hz = omega_u / (2.0 * kPi);
  const double omega_t = std::max(beta * omega_u, kTiny);  // loop crossover

  // Non-dominant output pole of the Miller two-stage with this load.
  const double cc = std::max(amp.cc_eff, kTiny);
  const double c1 = amp.c_first;
  const double cl = perf.load_total;
  // The capacitance-product denominator is of order 1e-24 F^2: floor it at a
  // far smaller scale so the guard never distorts the pole.
  const double p2 = amp.gm6 * cc / std::max(c1 * cl + cc * (c1 + cl), 1e-30);
  const double z_rhp = amp.gm6 / cc;
  const double p3 = std::max(amp.mirror_pole, kTiny);

  perf.phase_margin_deg = 90.0 - (std::atan(omega_t / std::max(p2, kTiny)) +
                                  std::atan(omega_t / p3) +
                                  std::atan(omega_t / std::max(z_rhp, kTiny))) *
                                     180.0 / kPi;

  // Two-pole closed-loop settling parameters; the mirror pole and RHP zero
  // are folded into an effective non-dominant pole 1/p_eff = 1/p2 + 1/p3 + 1/z.
  const double p_eff =
      1.0 / (1.0 / std::max(p2, kTiny) + 1.0 / p3 + 1.0 / std::max(z_rhp, kTiny));
  const double omega_n = std::sqrt(omega_t * p_eff);
  const double zeta = 0.5 * std::sqrt(p_eff / omega_t);

  // ---- Slewing ------------------------------------------------------------
  const double slew = std::min(amp.slew_internal,
                               amp.i7 / std::max(perf.load_total, kTiny));
  // Linear regime is entered when the remaining swing can be handled at the
  // loop bandwidth: v_lin = SR / omega_t.
  const double v_lin = slew / omega_t;
  const double t_slew =
      std::max(0.0, (context.output_step - v_lin) / std::max(slew, kTiny));

  perf.settling_time =
      t_slew + settling_time_to_band(omega_n, zeta, context.settle_band);

  // ---- Settling error at the allotted half period --------------------------
  const double static_error = 1.0 / std::max(amp.a0 * beta, 1e-3);
  const double t_linear_avail = context.half_period - t_slew;
  const double dynamic_error = (t_linear_avail <= 0.0)
                                   ? 1.0
                                   : settling_envelope(omega_n, zeta, t_linear_avail);
  perf.settling_error = static_error + dynamic_error;

  // ---- Dynamic range --------------------------------------------------------
  // Sampled kT/C noise of both phases (CDS doubles the white-noise power)
  // on the differential pair of branches, plus the opamp thermal noise in
  // the loop's equivalent noise bandwidth; divided by the oversampling
  // ratio for the in-band figure.
  const double kt = kBoltzmann * process.temperature;
  const double v_ktc = 4.0 * kt / std::max(design.cs, kTiny);
  const double v_opamp = amp.noise_psd * (omega_t / 4.0);
  const double v_noise_sq = (v_ktc + v_opamp) / context.oversampling;
  const double v_signal_sq = sq(perf.output_range) / 8.0;  // sine at full swing
  perf.dynamic_range_db = power_db(v_signal_sq / std::max(v_noise_sq, kTiny));

  return perf;
}

}  // namespace anadex::scint
