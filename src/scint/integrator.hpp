// CDS offset-compensated switched-capacitor integrator (paper Fig. 1) —
// performance evaluation from the analytical two-stage-opamp model.
//
// The 15 design parameters of the paper's optimization problem:
//   W1,L1 (input pair)  W3,L3 (mirror load)  W5,L5 (tail)  W6,L6 (driver)
//   W7,L7 (sink)  Ibias  Cc (Miller)  Cs (sampling)  Coc (offset storage)
//   Cload (the parameterized load — also the second objective)
// The feedback/integration capacitor is slaved to the integrator gain
// coefficient: Cf = Cs / kIntegratorGain.
//
// Evaluated circuit performances (paper §2): Power, Dynamic Range, Settling
// Time, Settling Error, Output Range, Area, plus DC-operating-region and
// mirror-balance (matching) margins. Settling includes the non-dominant
// output pole, the mirror pole and the RHP zero, making the expressions
// "more non-linear than those obtained by standard dominant pole analysis"
// exactly as the paper prescribes.
#pragma once

#include "circuit/capacitor.hpp"
#include "circuit/opamp.hpp"
#include "device/process.hpp"

namespace anadex::scint {

/// Integrator gain coefficient Cs/Cf (fixed by the ΣΔ loop filter design).
inline constexpr double kIntegratorGain = 1.0;

/// Full design vector of the integrator.
struct IntegratorDesign {
  circuit::OpAmpDesign opamp;  ///< 12 parameters (sizes, Ibias, Cc)
  double cs = 2e-12;           ///< sampling capacitor, F
  double coc = 0.5e-12;        ///< CDS offset-storage capacitor, F
  double cload = 2e-12;        ///< load capacitance (objective no. 2), F

  /// Slaved integration capacitor, F.
  double cf() const { return cs / kIntegratorGain; }
};

/// Fixed operating conditions of the integrator inside the modulator.
struct IntegratorContext {
  circuit::OpAmpContext opamp;   ///< common-mode levels
  double half_period = 250e-9;   ///< integration half clock period, s (fs = 2 MHz)
  double output_step = 0.7;      ///< worst-case output step per cycle, V
  double settle_band = 1e-3;     ///< relative band defining "settled" for ST
  double oversampling = 256.0;   ///< OSR used for the in-band DR figure
};

/// Evaluated performance at one process corner.
struct IntegratorPerformance {
  double power = 0.0;           ///< W
  double dynamic_range_db = 0.0;
  double settling_time = 0.0;   ///< s, slewing + linear settling to settle_band
  double settling_error = 0.0;  ///< static + dynamic residue at the half period
  double output_range = 0.0;    ///< V, single-ended peak-to-peak swing
  double area = 0.0;            ///< m^2, devices + capacitors

  double feedback_factor = 0.0;
  double unity_gain_hz = 0.0;
  double phase_margin_deg = 0.0;
  double load_total = 0.0;      ///< effective capacitance at the output node, F

  double sat_margin_worst = 0.0;       ///< min over devices of VDS - VDsat - guard
  double mirror_balance_error = 0.0;   ///< systematic-offset matching figure
  double vov_worst = 0.0;              ///< min gate overdrive across devices, V

  circuit::OpAmpAnalysis opamp;        ///< underlying amplifier analysis
};

/// Evaluates the integrator on a process (pre-shifted to a corner).
/// Total design failure (e.g. cutoff devices) yields finite, strongly
/// penalizing numbers rather than NaN so GA constraint handling stays
/// informative.
IntegratorPerformance evaluate(const device::Process& process, const IntegratorDesign& design,
                               const IntegratorContext& context);

/// Second half of evaluate(): derives the integrator performance figures
/// from an already-computed amplifier analysis. evaluate() is exactly
/// circuit::analyze() + assemble_performance(); the SoA batch evaluator
/// (scint/batch_integrator.hpp) calls this per lane after the vectorized
/// amplifier analysis, so the two paths share every epilogue operation and
/// stay bit-identical by construction.
IntegratorPerformance assemble_performance(const device::Process& process,
                                           const IntegratorDesign& design,
                                           const IntegratorContext& context,
                                           const circuit::OpAmpAnalysis& amp);

}  // namespace anadex::scint
