// SoA batch evaluation of the SC integrator — W designs per call on one
// process corner. evaluate_lanes<W>() is circuit::analyze_lanes (the
// vectorized amplifier analysis) followed by the scalar
// assemble_performance() per lane, so each lane's IntegratorPerformance is
// bit-identical to scint::evaluate() for that design by construction.
#pragma once

#include <cstddef>
#include <span>

#include "scint/integrator.hpp"

namespace anadex::scint {

/// Evaluates W integrator designs on one corner; out[k] is bit-identical
/// to evaluate(process, designs[k], context). Instantiated for the lane
/// widths in circuit::kLaneWidths ({4, 8, 16}).
template <std::size_t W>
void evaluate_lanes(const device::Process& process, std::span<const IntegratorDesign, W> designs,
                    const IntegratorContext& context, std::span<IntegratorPerformance, W> out);

extern template void evaluate_lanes<4>(const device::Process&, std::span<const IntegratorDesign, 4>,
                                       const IntegratorContext&, std::span<IntegratorPerformance, 4>);
extern template void evaluate_lanes<8>(const device::Process&, std::span<const IntegratorDesign, 8>,
                                       const IntegratorContext&, std::span<IntegratorPerformance, 8>);
extern template void evaluate_lanes<16>(const device::Process&,
                                        std::span<const IntegratorDesign, 16>,
                                        const IntegratorContext&,
                                        std::span<IntegratorPerformance, 16>);

}  // namespace anadex::scint
