// Monte-Carlo robustness ("Yield Calculation", paper §2, following the
// HOLMES idea of capturing yield-optimized design space boundaries).
//
// Robustness of a design = fraction of Monte-Carlo process samples for
// which the design still satisfies every deterministic spec limit. Samples
// perturb global process quantities (thresholds, mobility, capacitor
// density) with common random numbers: the SAME perturbation set is applied
// to every design, so the robustness landscape is deterministic and smooth
// for the optimizer.
#pragma once

#include <cstdint>
#include <vector>

#include "device/process.hpp"
#include "scint/integrator.hpp"
#include "scint/spec.hpp"

namespace anadex::yield {

/// One sampled set of global process perturbations, optionally augmented
/// with normalized per-pair local mismatch draws (scaled by the Pelgrom
/// coefficient and each pair's gate area at application time).
struct ProcessPerturbation {
  double dvt_nmos = 0.0;    ///< threshold shift, V
  double dvt_pmos = 0.0;
  double rel_mu_nmos = 0.0; ///< relative mobility error
  double rel_mu_pmos = 0.0;
  double rel_cap = 0.0;     ///< relative capacitor-density error

  /// Unit-normal draws for local mismatch (input pair / mirror pair /
  /// second-stage pair); zero when mismatch sampling is disabled.
  double z_pair_input = 0.0;
  double z_pair_mirror = 0.0;
  double z_pair_stage2 = 0.0;

  /// Applies the global perturbation to a copy of the process.
  device::Process applied_to(const device::Process& base) const;

  /// Pelgrom threshold mismatch (V) of a pair with gate geometry `geom`:
  /// sigma = AVT / sqrt(W L), scaled by the stored unit-normal draw.
  double pair_vt_mismatch(const device::Process& process, const device::Geometry& geom,
                          double z) const;
};

/// Parameters of the Monte-Carlo sampler.
struct MonteCarloParams {
  std::size_t samples = 16;
  double sigma_vt = 0.015;   ///< V
  double sigma_mu = 0.05;    ///< relative
  double sigma_cap = 0.05;   ///< relative
  /// Also draw per-pair local (Pelgrom) mismatch deviates. Off by default:
  /// the reproduction's calibrated robustness figure uses global shifts
  /// only; enable for finer-grained yield studies.
  bool include_pair_mismatch = false;
  std::uint64_t seed = 0xC0FFEE;  ///< fixed: common random numbers across designs
};

/// Pre-drawn perturbation set (draw once, reuse for every design).
std::vector<ProcessPerturbation> draw_perturbations(const MonteCarloParams& params);

/// Robustness in [0, 1]: fraction of perturbations under which the design
/// still satisfies `spec` (deterministic limits only). When a perturbation
/// carries pair-mismatch draws, the input pair's VT mismatch is applied as
/// an additional NMOS threshold shift (worst-case single-ended view) and
/// the mirror/stage-2 mismatches tighten the balance check via the PMOS
/// threshold.
double robustness(const device::Process& base, const scint::IntegratorDesign& design,
                  const scint::IntegratorContext& context, const scint::Spec& spec,
                  const std::vector<ProcessPerturbation>& perturbations);

}  // namespace anadex::yield
