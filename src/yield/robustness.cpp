#include "yield/robustness.hpp"

#include "common/check.hpp"
#include <cmath>

#include "common/rng.hpp"

namespace anadex::yield {

device::Process ProcessPerturbation::applied_to(const device::Process& base) const {
  device::Process p = base;
  p.nmos.vt0 += dvt_nmos;
  p.pmos.vt0 += dvt_pmos;
  p.nmos.mu_cox *= 1.0 + rel_mu_nmos;
  p.pmos.mu_cox *= 1.0 + rel_mu_pmos;
  p.cap_density *= 1.0 + rel_cap;
  return p;
}

std::vector<ProcessPerturbation> draw_perturbations(const MonteCarloParams& params) {
  ANADEX_REQUIRE(params.samples >= 1, "Monte-Carlo needs at least one sample");
  Rng rng(params.seed);
  std::vector<ProcessPerturbation> set;
  set.reserve(params.samples);
  for (std::size_t i = 0; i < params.samples; ++i) {
    ProcessPerturbation s;
    s.dvt_nmos = rng.normal(0.0, params.sigma_vt);
    s.dvt_pmos = rng.normal(0.0, params.sigma_vt);
    s.rel_mu_nmos = rng.normal(0.0, params.sigma_mu);
    s.rel_mu_pmos = rng.normal(0.0, params.sigma_mu);
    s.rel_cap = rng.normal(0.0, params.sigma_cap);
    if (params.include_pair_mismatch) {
      s.z_pair_input = rng.normal();
      s.z_pair_mirror = rng.normal();
      s.z_pair_stage2 = rng.normal();
    }
    set.push_back(s);
  }
  return set;
}

double ProcessPerturbation::pair_vt_mismatch(const device::Process& process,
                                             const device::Geometry& geom,
                                             double z) const {
  ANADEX_REQUIRE(geom.w > 0.0 && geom.l > 0.0, "pair geometry must be positive");
  return z * process.avt / std::sqrt(geom.w * geom.l);
}

double robustness(const device::Process& base, const scint::IntegratorDesign& design,
                  const scint::IntegratorContext& context, const scint::Spec& spec,
                  const std::vector<ProcessPerturbation>& perturbations) {
  ANADEX_REQUIRE(!perturbations.empty(), "robustness needs a non-empty perturbation set");
  std::size_t pass = 0;
  for (const auto& sample : perturbations) {
    device::Process shifted = sample.applied_to(base);
    // Local (Pelgrom) mismatch, when sampled: fold the input pair's VT
    // mismatch into the NMOS threshold and the mirror pair's into the PMOS
    // threshold — a conservative single-ended view of the differential
    // circuit.
    if (sample.z_pair_input != 0.0 || sample.z_pair_mirror != 0.0) {
      shifted.nmos.vt0 +=
          sample.pair_vt_mismatch(shifted, design.opamp.m1, sample.z_pair_input);
      shifted.pmos.vt0 +=
          sample.pair_vt_mismatch(shifted, design.opamp.m3, sample.z_pair_mirror);
    }
    const scint::IntegratorPerformance perf = scint::evaluate(shifted, design, context);
    if (spec.satisfied_by(perf)) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(perturbations.size());
}

}  // namespace anadex::yield
