// Design-surface model generation — the downstream artifact the paper's
// methodology feeds (compare WATSON [5]: "design space boundary exploration
// and model generation"). Builds a queryable power-vs-load trade-off model
// from a Pareto front so system-level tools can ask "what does driving
// C cost?" without re-running the optimizer.
#pragma once

#include <optional>
#include <vector>

#include "expt/runner.hpp"

namespace anadex::expt {

/// Monotone trade-off model over the load axis, built from a front.
class SurfaceModel {
 public:
  /// Builds the model from front samples (any order, dominated points are
  /// discarded). Requires at least one sample.
  explicit SurfaceModel(const std::vector<FrontSample>& front);

  /// Covered load range [min_load, max_load] in farads.
  double min_load() const { return points_.front().cload_f; }
  double max_load() const { return points_.back().cload_f; }
  std::size_t size() const { return points_.size(); }

  /// Minimum power (watts) of a surface design able to drive `cload`.
  /// Returns nullopt when no design covers the load.
  std::optional<double> power_at(double cload) const;

  /// Linear interpolation between neighbouring front designs — the smooth
  /// "model" view used for system-level estimates. Queries below the
  /// covered range return the cheapest design's power; above it, nullopt.
  std::optional<double> power_interpolated(double cload) const;

  /// Marginal cost of drive capability around `cload` (watts per farad),
  /// from the interpolated model. Returns nullopt outside the covered range
  /// or when the range is degenerate.
  std::optional<double> marginal_power(double cload) const;

  /// The retained (non-dominated, load-sorted) model points.
  const std::vector<FrontSample>& points() const { return points_; }

 private:
  std::vector<FrontSample> points_;  ///< sorted by load ascending, power ascending
};

}  // namespace anadex::expt
