#include "expt/figures.hpp"

#include <iomanip>
#include <ostream>

#include "common/ascii_plot.hpp"

namespace anadex::expt {

void print_banner(std::ostream& os, const std::string& figure_id, const std::string& caption) {
  os << "\n================================================================\n"
     << figure_id << " — " << caption << '\n'
     << "================================================================\n";
}

Series front_series(const std::string& title, const std::vector<FrontSample>& front) {
  Series series(title, {"cload_pF", "power_mW"});
  for (const auto& s : front) series.add_row({s.cload_f * 1e12, s.power_w * 1e3});
  series.sort_by(0);
  return series;
}

void print_fronts(std::ostream& os,
                  const std::vector<std::pair<std::string, std::vector<FrontSample>>>& fronts) {
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};
  std::vector<PlotSeries> plot;
  for (std::size_t i = 0; i < fronts.size(); ++i) {
    PlotSeries ps;
    ps.label = fronts[i].first;
    ps.glyph = kGlyphs[i % sizeof(kGlyphs)];
    for (const auto& s : fronts[i].second) {
      ps.x.push_back(s.cload_f * 1e12);
      ps.y.push_back(s.power_w * 1e3);
    }
    plot.push_back(std::move(ps));
  }
  PlotOptions options;
  options.x_label = "Load Capacitance (pF)";
  options.y_label = "Power (mW)";
  os << render_scatter(plot, options);
  for (const auto& [label, front] : fronts) {
    front_series(label, front).write_table(os);
  }
}

void print_outcome_summary(std::ostream& os, const std::string& label,
                           const RunOutcome& outcome) {
  os << std::setw(18) << label << "  front_area=" << std::setw(8) << std::setprecision(4)
     << outcome.front_area << " (0.1mW*pF, lower better)"
     << "  hv=" << std::setw(7) << std::setprecision(4) << outcome.hypervolume_norm
     << "  |front|=" << std::setw(3) << outcome.front.size()
     << "  cluster[4,5]pF=" << std::setw(6) << std::setprecision(3)
     << outcome.clustering_4to5 << "  span=" << std::setprecision(3)
     << outcome.load_span_pf << "pF"
     << "  evals=" << outcome.evaluations;
  if (outcome.cache_hits > 0) {
    os << " (distinct=" << outcome.distinct_evaluations << ", cached="
       << outcome.cache_hits << ")";
  }
  os << "  " << std::setprecision(3) << outcome.seconds << "s\n";
}

void print_paper_vs_measured(std::ostream& os, const std::string& what,
                             const std::string& paper_value,
                             const std::string& measured_value) {
  os << "  [paper-vs-measured] " << what << ": paper=" << paper_value
     << " | measured=" << measured_value << '\n';
}

}  // namespace anadex::expt
