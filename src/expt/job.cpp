#include "expt/job.hpp"

#include <utility>

#include "common/check.hpp"

namespace anadex::expt {

std::string job_state_name(JobState state) {
  switch (state) {
    case JobState::Pending: return "pending";
    case JobState::Running: return "running";
    case JobState::Snapshotted: return "snapshotted";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
  }
  ANADEX_ASSERT(false, "unknown job state");
  return {};
}

Job::Job(const problems::IntegratorProblem& problem, RunSettings settings)
    : problem_(std::shared_ptr<void>(), &problem),
      settings_(std::move(settings)),
      slice_stop_(std::make_unique<CancelToken>()) {
  validate_run_settings(settings_);
  // A Job is one process's run; the multi-process path has its own
  // coordinator. Reject at admission so `--shards` can never be silently
  // ignored by a code path that only knows how to run solo.
  ANADEX_REQUIRE(settings_.shards <= 1,
                 "Job: sharded runs (shards > 1) are executed by "
                 "shard::run_sharded (anadex explore --shards), not by an "
                 "in-process Job");
}

Job Job::from_settings(RunSettings settings) {
  // Validate BEFORE building the problem: admission must reject bad
  // settings without doing any work on their behalf.
  validate_run_settings(settings);
  auto problem = std::make_shared<const problems::IntegratorProblem>(settings.spec);
  Job job(*problem, std::move(settings));
  job.problem_ = std::move(problem);  // transfer ownership into the job
  return job;
}

void Job::cancel() {
  switch (state_) {
    case JobState::Pending:
    case JobState::Snapshotted:
      state_ = JobState::Cancelled;
      [[fallthrough]];
    case JobState::Running:
      cancel_requested_ = true;
      return;
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      return;  // terminal; nothing to cancel
  }
}

JobState Job::run_slice(std::size_t budget) {
  ANADEX_REQUIRE(state_ == JobState::Pending || state_ == JobState::Snapshotted,
                 "Job::run_slice: job is " + job_state_name(state_) +
                     ", not runnable");
  if (state_ == JobState::Snapshotted) {
    ANADEX_REQUIRE(resumable_,
                   "Job::run_slice: the previous slice stopped without a "
                   "checkpoint path, so nothing was saved to resume from");
  }

  state_ = JobState::Running;
  RunSettings slice = settings_;
  if (slices_run_ > 0) {
    // Re-admission: pick up the newest valid slot of this job's own
    // checkpoint chain and extend the trace with a fresh segment.
    slice.resume = ResumeMode::Auto;
    slice.trace_append = true;
  }

  // The slice's stop wiring. The evolvers poll `stop` at the generation
  // barrier immediately after on_generation, so raising the slice token
  // inside the chained callback preempts exactly at the barrier the budget
  // names — deterministically, with no wall clock involved. The caller's
  // own stop token and a pending cancel() route through the same seam.
  slice_stop_->reset();
  CancelToken* slice_stop = slice_stop_.get();
  const CancelToken* user_stop = settings_.stop;
  const bool* cancelled = &cancel_requested_;
  // Budget enforcement needs a checkpoint to hand the rest of the work to
  // the next slice; non-preemptible jobs run to completion instead.
  const std::size_t effective_budget = preemptible() ? budget : 0;
  std::size_t slice_generations = 0;
  moga::GenerationCallback user_callback = settings_.on_generation;
  slice.on_generation = [=, &slice_generations](std::size_t gen,
                                                const moga::Population& population) {
    if (user_callback) user_callback(gen, population);
    ++slice_generations;
    if ((effective_budget > 0 && slice_generations >= effective_budget) ||
        (user_stop != nullptr && user_stop->requested()) || *cancelled) {
      slice_stop->request();
    }
  };
  slice.stop = slice_stop;

  ++slices_run_;
  try {
    outcome_ = detail::run_impl(*problem_, slice);
  } catch (...) {
    error_ptr_ = std::current_exception();
    try {
      std::rethrow_exception(error_ptr_);
    } catch (const std::exception& e) {
      error_ = e.what();
    } catch (...) {
      error_ = "unknown error";
    }
    state_ = JobState::Failed;
    return state_;
  }

  if (!outcome_.interrupted) {
    state_ = JobState::Done;
  } else if (cancel_requested_) {
    state_ = JobState::Cancelled;
  } else {
    state_ = JobState::Snapshotted;
    resumable_ = preemptible();
  }
  return state_;
}

RunOutcome Job::run() {
  run_slice(0);
  if (state_ == JobState::Failed) std::rethrow_exception(error_ptr_);
  return outcome_;
}

}  // namespace anadex::expt
