// The RunSettings field registry — ONE declarative table classifying every
// field of expt::RunSettings (including the engine::EvalKnobs base) by its
// role in the resume contract:
//
//   META   — stored as an explicit robust::CheckpointMeta field (algo,
//            seed, population, generations) and compared field-by-field on
//            resume.
//   DIGEST — result-bearing: folded into run_config_digest in registry
//            order, so a resume under a different value is refused. Each
//            entry carries the digest tag (the `tag=` key on the wire).
//   KNOB   — pure execution knob: changes HOW the run executes, never the
//            bytes of fronts / checkpoints / gen-level traces. Excluded
//            from the digest BY DECLARATION here, not by omission.
//   SEAM   — runtime wiring (callbacks, cancel tokens): not configuration
//            at all, never serialized.
//
// Consumers:
//   - run_config_digest (src/expt/runner.cpp) expands DIGEST entries into
//     the serializer, so the wire format and this table cannot drift;
//   - settings_registry_static_check (runner.cpp) expands every entry into
//     a member access, so renaming/removing a RunSettings field without
//     updating the registry fails to compile;
//   - kSettingsRegistry below is the runtime table the digest-perturbation
//     property test (tests/expt/settings_registry_test.cpp) iterates: a
//     registered field the test cannot perturb is a test failure;
//   - `anadex-lint --digest-audit` (scripts/anadex_lint.py) parses this
//     macro plus the struct bodies and fails if any RunSettings/EvalKnobs
//     field is missing here, if a registered name has no matching field,
//     if run_config_digest stops expanding the registry, or if a declared
//     CLI flag is not wired in apps/anadex_cli.cpp.
//
// Adding a RunSettings field therefore means adding EXACTLY ONE line here
// and deciding its class — everything else is generated or machine-checked.
//
// Entry shapes:
//   META(field, cli_flag)          DIGEST(field, digest_tag, cli_flag)
//   KNOB(field, cli_flag)          SEAM(field)
// cli_flag is the `anadex explore --<flag>` spelling, "" when the field has
// no CLI surface (library-only seams like the chaos config).
#pragma once

#include <array>
#include <string_view>

// clang-format off
#define ANADEX_RUN_SETTINGS_REGISTRY(META, DIGEST, KNOB, SEAM)        \
  /* CheckpointMeta fields (robust/checkpoint.hpp), resume-compared. */ \
  META(algo,        "algo")                                           \
  META(seed,        "seed")                                           \
  META(population,  "population")                                     \
  META(generations, "generations")                                    \
  /* Result-bearing: digest order below IS the wire order. */         \
  DIGEST(spec,               "spec",       "spec")                    \
  DIGEST(partitions,         "partitions", "partitions")              \
  DIGEST(islands,            "islands",    "islands")                 \
  DIGEST(migration_interval, "migration",  "migration-interval")      \
  DIGEST(weight_count,       "weights",    "")                        \
  DIGEST(mesacga_schedule,   "schedule",   "")                        \
  DIGEST(phase1_cap,         "phase1_cap", "")                        \
  DIGEST(span,               "span",       "")                        \
  DIGEST(history_stride,     "stride",     "")                        \
  DIGEST(record_history,     "history",    "history")                 \
  DIGEST(guard,              "guard",      "")                        \
  DIGEST(fault_injection,    "chaos",      "")                        \
  /* Pure execution knobs (results byte-identical for every value). */ \
  KNOB(threads,          "threads")                                   \
  KNOB(eval_cache,       "eval-cache")                                \
  KNOB(engine,           "")                                          \
  KNOB(batch_eval,       "batch-eval")                                \
  KNOB(shards,           "shards")                                    \
  KNOB(shard_dir,        "shard-dir")                                 \
  KNOB(checkpoint_path,  "checkpoint")                                \
  KNOB(checkpoint_every, "checkpoint-every")                          \
  KNOB(resume,           "resume")                                    \
  KNOB(checkpoint_keep,  "checkpoint-keep")                           \
  KNOB(eval_deadline_s,  "eval-deadline")                             \
  KNOB(trace_path,       "trace")                                     \
  KNOB(trace_level,      "trace-level")                               \
  KNOB(trace_append,     "")                                          \
  /* Runtime wiring, never configuration. */                          \
  SEAM(checkpoint_write_hook)                                         \
  SEAM(stop)                                                          \
  SEAM(on_generation)
// clang-format on

namespace anadex::expt {

enum class SettingKind { Meta, Digest, Knob, Seam };

/// One registry row, materialized for runtime consumers (the perturbation
/// property test, `anadex knobs`).
struct SettingInfo {
  std::string_view field;       ///< RunSettings member name
  SettingKind kind;
  std::string_view digest_tag;  ///< Digest rows only, "" otherwise
  std::string_view cli_flag;    ///< `anadex explore --<flag>`, "" = none
};

#define ANADEX_SETTING_ROW_META(field, flag) \
  SettingInfo{#field, SettingKind::Meta, "", flag},
#define ANADEX_SETTING_ROW_DIGEST(field, tag, flag) \
  SettingInfo{#field, SettingKind::Digest, tag, flag},
#define ANADEX_SETTING_ROW_KNOB(field, flag) \
  SettingInfo{#field, SettingKind::Knob, "", flag},
#define ANADEX_SETTING_ROW_SEAM(field) \
  SettingInfo{#field, SettingKind::Seam, "", ""},

inline constexpr auto kSettingsRegistry = std::array{
    ANADEX_RUN_SETTINGS_REGISTRY(ANADEX_SETTING_ROW_META,
                                 ANADEX_SETTING_ROW_DIGEST,
                                 ANADEX_SETTING_ROW_KNOB,
                                 ANADEX_SETTING_ROW_SEAM)};

#undef ANADEX_SETTING_ROW_META
#undef ANADEX_SETTING_ROW_DIGEST
#undef ANADEX_SETTING_ROW_KNOB
#undef ANADEX_SETTING_ROW_SEAM

constexpr const char* setting_kind_name(SettingKind kind) {
  switch (kind) {
    case SettingKind::Meta: return "meta";
    case SettingKind::Digest: return "digest";
    case SettingKind::Knob: return "knob";
    case SettingKind::Seam: return "seam";
  }
  return "?";
}

}  // namespace anadex::expt
