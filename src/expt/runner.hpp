// Experiment harness: uniform configuration, execution and measurement of
// the paper's algorithms (TPG / LocalOnly / SACGA / MESACGA plus the
// Island / WeightedSum / SPEA2 baselines) on the integrator problem, with
// physical-unit fronts and all the paper's quality metrics.
//
// The unit of execution is an expt::Job (expt/job.hpp): validated
// RunSettings + problem with a preemptible lifecycle
// (Pending -> Running -> Snapshotted -> Done/Failed/Cancelled) built on the
// v2 checkpoint chain — preempting a job snapshots it at a generation
// barrier and a later slice re-admits it with ResumeMode::Auto, replaying
// the remaining generations bit-identically. The free run() functions
// below are thin wrappers (construct a Job, run it to completion) kept for
// the existing call sites; new code — and the serve scheduler, which
// time-slices many Jobs over one shared EvalEngine — should hold a Job.
//
// This header owns the settings/outcome vocabulary: RunSettings (one
// struct for every algorithm; validate_run_settings rejects nonsense
// before a run starts) and RunOutcome (front + paper metrics + execution
// accounting). Determinism contract: for fixed settings the front,
// evaluation counts, checkpoints and gen-level traces are byte-identical
// across thread counts, cache capacities, shared-engine handles and
// slice boundaries (docs/serve.md, docs/engine.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "engine/eval_knobs.hpp"
#include "moga/metrics.hpp"
#include "moga/nsga2.hpp"
#include "obs/event_sink.hpp"
#include "problems/integrator_problem.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "robust/guarded_problem.hpp"
#include "sacga/island.hpp"
#include "scint/spec.hpp"

namespace anadex::expt {

/// Which optimizer to run. TPG/SACGA/MESACGA are the paper's three
/// contestants; LocalOnly is §4.3's intermediate; Island and WeightedSum
/// are the alternatives the paper cites in §4.1 / §1, included as extra
/// baselines.
enum class Algo { TPG, LocalOnly, SACGA, MESACGA, Island, WeightedSum, SPEA2 };

std::string algo_name(Algo algo);

/// How a run treats an existing checkpoint chain at `checkpoint_path`.
enum class ResumeMode {
  Off,     ///< ignore any checkpoint; start fresh
  Strict,  ///< resume from checkpoint_path exactly; fail if missing/corrupt
  /// Scan the rotated chain (path, path.1, ...) newest-first, resume from
  /// the first slot that checksum-verifies, and start FRESH when no slot
  /// exists or validates — the crash-recovery default (`--resume auto`).
  Auto,
};

/// Uniform run configuration. Semantics of `generations`:
///   TPG / LocalOnly: total generations;
///   SACGA:           total budget = gen_t (<= phase1_cap) + phase-II span;
///   MESACGA:         phase-I runs up to phase1_cap, then each of the
///                    partition_schedule phases runs `span` generations; if
///                    span == 0 it is derived as
///                    (generations - phase1_cap) / #phases.
/// Every field is classified (META / DIGEST / KNOB / SEAM) in the
/// settings registry — src/expt/settings_registry.hpp is the one table
/// that the config-digest serializer, the CLI wiring, the digest audit
/// (`anadex-lint --digest-audit`) and the perturbation property test all
/// consume. ADD NEW FIELDS THERE TOO, or the build's static check and the
/// lint gate will fail. The engine::EvalKnobs base carries the four
/// evaluation execution knobs (threads / eval_cache / engine / batch_eval,
/// all result-invariant — see eval_knobs.hpp for their semantics here).
struct RunSettings : engine::EvalKnobs {
  Algo algo = Algo::TPG;
  scint::Spec spec;
  std::size_t population = 100;
  std::size_t generations = 800;
  std::size_t partitions = 8;                 ///< SACGA / LocalOnly
  std::size_t islands = 4;                    ///< Island GA
  std::size_t migration_interval = 25;        ///< Island GA
  std::size_t weight_count = 16;              ///< WeightedSum sweep
  std::vector<std::size_t> mesacga_schedule{20, 13, 8, 5, 3, 2, 1};
  std::size_t phase1_cap = 200;
  std::size_t span = 0;                        ///< MESACGA per-phase span (0 = derive)
  std::uint64_t seed = 1;
  bool record_history = false;
  std::size_t history_stride = 25;             ///< generations between history samples

  /// Multi-process sharding (docs/sharding.md): how many worker shards the
  /// island ring is split across. 1 (default) = ordinary in-process run.
  /// Values > 1 are only meaningful for Algo::Island and are executed by
  /// shard::run_sharded (`anadex explore --shards N`); expt::Job rejects
  /// them at admission. Like `threads`, a pure execution knob excluded from
  /// the config digest: fronts, evaluation counts and the final canonical
  /// checkpoint are byte-identical for every shard count.
  std::size_t shards = 1;
  /// Spool directory for the shard exchange (migrant files plus per-shard
  /// checkpoint chains). Empty = derived as "<checkpoint_path>.spool".
  /// Excluded from the config digest (a location, not a result input).
  std::string shard_dir;

  /// Fault-tolerance policy applied to every evaluation (see
  /// robust::GuardedProblem); the defaults retry twice then penalize.
  robust::GuardPolicy guard;

  /// Chaos-harness seam (tests and drills only): when set, the problem is
  /// wrapped in a robust::FaultInjectingProblem with these rates before the
  /// fault guard, so the whole run executes under deterministic evaluator
  /// faults. Unlike the execution knobs this DOES change results, so it
  /// participates in the checkpoint config digest.
  std::optional<robust::FaultInjectionConfig> fault_injection;

  // Checkpoint/resume (docs/robustness.md). Supported for TPG, SPEA2,
  // LocalOnly, SACGA, MESACGA and Island; WeightedSum rejects a checkpoint
  // path.
  std::string checkpoint_path;         ///< empty = no checkpointing
  std::size_t checkpoint_every = 50;   ///< generations between snapshots
  ResumeMode resume = ResumeMode::Off;
  /// Rotated checkpoint slots kept on disk (1 = just checkpoint_path,
  /// N > 1 additionally keeps .1 .. .(N-1)). A pure durability knob —
  /// excluded from the config digest, never changes results.
  std::size_t checkpoint_keep = 1;
  /// Test seam forwarded to robust::write_checkpoint_file (the chaos
  /// harness injects mid-write crashes through it). Empty in production.
  robust::CheckpointWriteHook checkpoint_write_hook;

  // Robustness under faulty or stuck evaluators (docs/robustness.md).
  /// Graceful-stop token (non-owning; e.g. &robust::shutdown_token()).
  /// Polled at every generation barrier: when raised, the run snapshots,
  /// marks the outcome `interrupted` and returns normally.
  const CancelToken* stop = nullptr;
  /// Per-batch evaluation deadline in seconds. Unset = no watchdog. A pure
  /// execution knob (excluded from the config digest); see
  /// engine::EvalWatchdog for the determinism caveat when it fires.
  std::optional<double> eval_deadline_s;

  /// Extra per-generation observer, invoked after the internal history
  /// recorder with the same (generation, population) arguments. Tests use
  /// it to raise `stop` at an exact generation.
  moga::GenerationCallback on_generation;

  // Telemetry (docs/observability.md). When trace_path is non-empty the run
  // streams one JSON object per event to that file. Tracing is pure
  // observation: fronts, evaluation counts and checkpoint bytes are
  // identical with tracing on or off, and gen-level traces are bit-identical
  // across thread counts.
  std::string trace_path;                            ///< empty = no tracing
  obs::TraceLevel trace_level = obs::TraceLevel::Gen;
  /// Open the trace file in append mode, adding one self-delimiting
  /// header..trailer segment instead of truncating. Job slicing sets this
  /// from the second slice on, so a preempted job's trace is one segment
  /// per slice (scripts/check_trace.py --segments). An execution knob.
  bool trace_append = false;
};

/// Validates `settings` with ANADEX_REQUIRE (population even and >= 4,
/// partition/island counts sane, MESACGA schedule non-empty + strictly
/// decreasing + ending in 1, thread count within [0, 256], history stride
/// positive when history is recorded, checkpoint flags consistent, guard
/// policy fields finite and in range, watchdog deadline positive when set,
/// watchdog absent when a shared engine handle is set). Job admission runs
/// this FIRST — an invalid request is rejected before it can occupy a
/// scheduler slot or start a run; exposed so CLIs and the serve daemon can
/// fail fast and report the rejection instead of aborting.
void validate_run_settings(const RunSettings& settings);

/// One front design in physical units.
struct FrontSample {
  double power_w = 0.0;
  double cload_f = 0.0;
};

/// Metric trajectory sample.
struct HistoryPoint {
  std::size_t generation = 0;
  double front_area = 0.0;   ///< paper metric, 0.1 mW·pF units (lower better)
  std::size_t front_size = 0;
};

/// Per-MESACGA-phase metric (paper Fig 10).
struct PhaseMetric {
  std::size_t phase = 0;
  std::size_t partitions = 0;
  double front_area = 0.0;
};

struct RunOutcome {
  std::vector<FrontSample> front;  ///< final global Pareto front, physical units
  double front_area = 0.0;         ///< paper metric (0.1 mW·pF), lower better
  double hypervolume_norm = 0.0;   ///< standard HV / reference box, higher better
  double clustering_4to5 = 0.0;    ///< fraction of front with C_load in [4, 5] pF
  double load_span_pf = 0.0;       ///< covered C_load extent, pF
  std::size_t evaluations = 0;
  std::size_t distinct_evaluations = 0;  ///< evaluations actually dispatched to the problem
  std::size_t cache_hits = 0;            ///< requests served by the dedup cache (batch + LRU)
  std::size_t generations = 0;
  double seconds = 0.0;            ///< wall-clock of the optimization
  std::vector<HistoryPoint> history;
  std::vector<PhaseMetric> phases;  ///< MESACGA only
  robust::FaultReport faults;      ///< evaluation faults absorbed by the guard
  std::size_t resumed_from_generation = 0;  ///< 0 unless resumed mid-run
  std::string resumed_from_path;   ///< checkpoint slot actually loaded (if any)
  /// True when the stop token ended the run at a generation barrier before
  /// the configured generation count. The front/metrics describe the
  /// stopping point and a checkpoint of it was written (when checkpointing
  /// is on), so the run can be finished later with ResumeMode::Auto.
  bool interrupted = false;
};

/// Paper metric with the reproduction's standard parameters.
double front_area_of(const std::vector<FrontSample>& front);

/// Normalized reference-point hypervolume (higher better) of a front.
double hypervolume_of(const std::vector<FrontSample>& front);

/// Converts a population (internal objectives) to physical front samples.
std::vector<FrontSample> to_front_samples(const moga::Population& front);

/// One-line digest of every result-bearing setting, stored in checkpoint
/// meta so a resume refuses a mismatched configuration. Generated from the
/// DIGEST rows of the settings registry (settings_registry.hpp) in
/// registry order — spec and guard policy included, since resuming under a
/// different spec or fault-handling policy would silently change results.
/// Fields the registry classifies KNOB (threads, eval_cache, batch_eval,
/// engine handle, shards, shard_dir, checkpoint_keep, ...) are
/// deliberately excluded — a run may be checkpointed under one and resumed
/// under another; `anadex-lint --digest-audit` enforces that every field
/// is classified one way or the other. Exposed so the sharded coordinator
/// (src/shard) writes canonical checkpoints with exactly the digest a solo
/// run would.
std::string run_config_digest(const RunSettings& settings);

namespace detail {

/// Island-GA parameters derived from RunSettings — the ONE place the
/// population-to-island split is computed, shared by run_impl and the
/// shard worker so both always agree on island sizing.
sacga::IslandParams island_params_from(const RunSettings& settings);

/// The single-slice execution engine behind Job::run_slice: validates,
/// wires tracing/guard/watchdog/checkpointing and dispatches one
/// uninterrupted run of `settings` over `problem`. Everything above this —
/// lifecycle, slicing, resume chaining — lives in expt::Job. Not a public
/// entry point; call Job (or the run() shims) instead.
RunOutcome run_impl(const problems::IntegratorProblem& problem,
                    const RunSettings& settings);

}  // namespace detail

/// Compatibility shim for pre-Job call sites: validates `settings` into a
/// Job over the caller's problem and runs it to completion (rethrowing the
/// job's failure, returning an `interrupted` outcome when a stop token
/// ended it early — exactly the historical behaviour). Deterministic for
/// fixed settings. New code should construct an expt::Job directly; the
/// scheduler-grade lifecycle (preemption, resume, cancellation) is only
/// reachable there.
RunOutcome run(const problems::IntegratorProblem& problem, const RunSettings& settings);

/// Convenience form of the shim above: builds the problem from
/// settings.spec (Job::from_settings) and runs the Job to completion.
RunOutcome run(const RunSettings& settings);

}  // namespace anadex::expt
