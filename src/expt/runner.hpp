// Experiment harness: uniform configuration, execution and measurement of
// the four algorithms (TPG / LocalOnly / SACGA / MESACGA) on the integrator
// problem, with physical-unit fronts and all the paper's quality metrics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "moga/metrics.hpp"
#include "obs/event_sink.hpp"
#include "problems/integrator_problem.hpp"
#include "robust/guarded_problem.hpp"
#include "scint/spec.hpp"

namespace anadex::expt {

/// Which optimizer to run. TPG/SACGA/MESACGA are the paper's three
/// contestants; LocalOnly is §4.3's intermediate; Island and WeightedSum
/// are the alternatives the paper cites in §4.1 / §1, included as extra
/// baselines.
enum class Algo { TPG, LocalOnly, SACGA, MESACGA, Island, WeightedSum, SPEA2 };

std::string algo_name(Algo algo);

/// Uniform run configuration. Semantics of `generations`:
///   TPG / LocalOnly: total generations;
///   SACGA:           total budget = gen_t (<= phase1_cap) + phase-II span;
///   MESACGA:         phase-I runs up to phase1_cap, then each of the
///                    partition_schedule phases runs `span` generations; if
///                    span == 0 it is derived as
///                    (generations - phase1_cap) / #phases.
struct RunSettings {
  Algo algo = Algo::TPG;
  scint::Spec spec;
  std::size_t population = 100;
  std::size_t generations = 800;
  std::size_t partitions = 8;                 ///< SACGA / LocalOnly
  std::size_t islands = 4;                    ///< Island GA
  std::size_t migration_interval = 25;        ///< Island GA
  std::size_t weight_count = 16;              ///< WeightedSum sweep
  std::vector<std::size_t> mesacga_schedule{20, 13, 8, 5, 3, 2, 1};
  std::size_t phase1_cap = 200;
  std::size_t span = 0;                        ///< MESACGA per-phase span (0 = derive)
  std::uint64_t seed = 1;
  /// Worker threads for batch genome evaluation: 1 = serial (default),
  /// 0 = one per hardware thread, N = exactly N. Fronts, evaluation counts
  /// and checkpoint files are bit-identical for every value, so a run may
  /// be checkpointed under one thread count and resumed under another.
  std::size_t threads = 1;
  /// Capacity (in genotypes) of the deduplicating evaluation cache,
  /// 0 = disabled. Like `threads` this is a pure execution knob: fronts,
  /// requested-evaluation counts, checkpoints and gen-level traces are
  /// bit-identical for every capacity, so it is excluded from the
  /// checkpoint config digest. See docs/performance.md.
  std::size_t eval_cache = 0;
  bool record_history = false;
  std::size_t history_stride = 25;             ///< generations between history samples

  /// Fault-tolerance policy applied to every evaluation (see
  /// robust::GuardedProblem); the defaults retry twice then penalize.
  robust::GuardPolicy guard;

  // Checkpoint/resume (docs/robustness.md). Supported for TPG, SPEA2,
  // LocalOnly, SACGA, MESACGA and Island; WeightedSum rejects a checkpoint
  // path.
  std::string checkpoint_path;         ///< empty = no checkpointing
  std::size_t checkpoint_every = 50;   ///< generations between snapshots
  bool resume = false;                 ///< continue from checkpoint_path

  // Telemetry (docs/observability.md). When trace_path is non-empty the run
  // streams one JSON object per event to that file. Tracing is pure
  // observation: fronts, evaluation counts and checkpoint bytes are
  // identical with tracing on or off, and gen-level traces are bit-identical
  // across thread counts.
  std::string trace_path;                            ///< empty = no tracing
  obs::TraceLevel trace_level = obs::TraceLevel::Gen;
};

/// Validates `settings` with ANADEX_REQUIRE (population even and >= 4,
/// partition/island counts sane, MESACGA schedule non-empty + strictly
/// decreasing + ending in 1, thread count within [0, 256], history stride
/// positive when history is recorded, checkpoint flags consistent). run()
/// calls this first; exposed so CLIs can fail fast.
void validate_run_settings(const RunSettings& settings);

/// One front design in physical units.
struct FrontSample {
  double power_w = 0.0;
  double cload_f = 0.0;
};

/// Metric trajectory sample.
struct HistoryPoint {
  std::size_t generation = 0;
  double front_area = 0.0;   ///< paper metric, 0.1 mW·pF units (lower better)
  std::size_t front_size = 0;
};

/// Per-MESACGA-phase metric (paper Fig 10).
struct PhaseMetric {
  std::size_t phase = 0;
  std::size_t partitions = 0;
  double front_area = 0.0;
};

struct RunOutcome {
  std::vector<FrontSample> front;  ///< final global Pareto front, physical units
  double front_area = 0.0;         ///< paper metric (0.1 mW·pF), lower better
  double hypervolume_norm = 0.0;   ///< standard HV / reference box, higher better
  double clustering_4to5 = 0.0;    ///< fraction of front with C_load in [4, 5] pF
  double load_span_pf = 0.0;       ///< covered C_load extent, pF
  std::size_t evaluations = 0;
  std::size_t distinct_evaluations = 0;  ///< evaluations actually dispatched to the problem
  std::size_t cache_hits = 0;            ///< requests served by the dedup cache (batch + LRU)
  std::size_t generations = 0;
  double seconds = 0.0;            ///< wall-clock of the optimization
  std::vector<HistoryPoint> history;
  std::vector<PhaseMetric> phases;  ///< MESACGA only
  robust::FaultReport faults;      ///< evaluation faults absorbed by the guard
  std::size_t resumed_from_generation = 0;  ///< 0 unless resumed mid-run
};

/// Paper metric with the reproduction's standard parameters.
double front_area_of(const std::vector<FrontSample>& front);

/// Normalized reference-point hypervolume (higher better) of a front.
double hypervolume_of(const std::vector<FrontSample>& front);

/// Converts a population (internal objectives) to physical front samples.
std::vector<FrontSample> to_front_samples(const moga::Population& front);

/// Runs one experiment. Deterministic for fixed settings.
RunOutcome run(const problems::IntegratorProblem& problem, const RunSettings& settings);

/// Convenience: builds the problem from settings.spec and runs.
RunOutcome run(const RunSettings& settings);

}  // namespace anadex::expt
