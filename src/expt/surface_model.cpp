#include "expt/surface_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anadex::expt {

SurfaceModel::SurfaceModel(const std::vector<FrontSample>& front) {
  ANADEX_REQUIRE(!front.empty(), "surface model needs at least one front sample");
  std::vector<FrontSample> sorted = front;
  std::sort(sorted.begin(), sorted.end(), [](const FrontSample& a, const FrontSample& b) {
    if (a.cload_f != b.cload_f) return a.cload_f < b.cload_f;
    return a.power_w < b.power_w;
  });
  // Collapse duplicate loads to their cheapest design (the sort placed the
  // cheapest first within each load).
  std::vector<FrontSample> unique_loads;
  for (const auto& sample : sorted) {
    if (!unique_loads.empty() && unique_loads.back().cload_f == sample.cload_f) continue;
    unique_loads.push_back(sample);
  }
  // Keep the non-dominated staircase: scanning from the largest load down,
  // a point survives only if it is cheaper than every point with more
  // drive capability.
  double best_power = std::numeric_limits<double>::infinity();
  std::vector<FrontSample> kept;
  for (auto it = unique_loads.rbegin(); it != unique_loads.rend(); ++it) {
    if (it->power_w < best_power) {
      best_power = it->power_w;
      kept.push_back(*it);
    }
  }
  points_.assign(kept.rbegin(), kept.rend());
}

std::optional<double> SurfaceModel::power_at(double cload) const {
  // Cheapest design with capability >= cload; points_ has power ascending
  // with load, so the first covering point is the cheapest.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), cload,
      [](const FrontSample& s, double value) { return s.cload_f < value; });
  if (it == points_.end()) return std::nullopt;
  return it->power_w;
}

std::optional<double> SurfaceModel::power_interpolated(double cload) const {
  if (cload > max_load()) return std::nullopt;
  if (cload <= min_load()) return points_.front().power_w;
  const auto upper = std::lower_bound(
      points_.begin(), points_.end(), cload,
      [](const FrontSample& s, double value) { return s.cload_f < value; });
  const auto lower = upper - 1;
  const double span = upper->cload_f - lower->cload_f;
  if (span <= 0.0) return upper->power_w;
  const double t = (cload - lower->cload_f) / span;
  return lower->power_w + t * (upper->power_w - lower->power_w);
}

std::optional<double> SurfaceModel::marginal_power(double cload) const {
  if (points_.size() < 2 || cload < min_load() || cload > max_load()) return std::nullopt;
  const auto upper = std::upper_bound(
      points_.begin(), points_.end(), cload,
      [](double value, const FrontSample& s) { return value < s.cload_f; });
  const auto hi = (upper == points_.end()) ? points_.end() - 1 : upper;
  const auto lo = hi - 1;
  const double span = hi->cload_f - lo->cload_f;
  if (span <= 0.0) return std::nullopt;
  return (hi->power_w - lo->power_w) / span;
}

}  // namespace anadex::expt
