// expt::Job — one exploration run as a first-class, preemptible unit of
// work.
//
// A Job binds validated RunSettings to a problem and executes them in
// SLICES: run_slice(budget) runs at most `budget` generations, then
// preempts the run at the next generation barrier through the evolvers'
// cooperative stop-token seam — the evolver snapshots into the v2
// checkpoint chain and returns cleanly, and the next slice re-admits the
// job with ResumeMode::Auto. Because stopping never consumes randomness
// and resume replays the remaining generations bit-identically, a job cut
// into any number of slices produces a front, evaluation count and final
// checkpoint byte-identical to one uninterrupted run of the same settings
// (the scheduler matrix test proves it).
//
// Lifecycle:
//
//   Pending ──run_slice──> Running ──budget/stop──> Snapshotted ─┐
//      │                      │                          ^       │
//      │                      ├── completes ──> Done     └─run_slice
//      │                      └── throws ─────> Failed
//      └──cancel──> Cancelled  (also from Snapshotted; a Running job
//                               cancels at its next generation barrier)
//
// Admission is where validation happens: the constructors run
// validate_run_settings and throw PreconditionError on bad settings, so an
// invalid request can never occupy a scheduler slot — the serve daemon
// reports the rejection in the job's result file instead of aborting.
//
// Jobs are movable (the scheduler keeps them in a vector) but not
// copyable: a job owns its slice token and its identity on disk (the
// checkpoint chain + trace file named in its settings).
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <string>

#include "common/cancel.hpp"
#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"

namespace anadex::expt {

/// Where a Job is in its lifecycle. Stored values are stable (serialized
/// into serve result files), so new states must be appended.
enum class JobState {
  Pending,      ///< admitted, no slice run yet
  Running,      ///< a slice is executing right now
  Snapshotted,  ///< preempted or stopped at a barrier; checkpoint written
  Done,         ///< ran its full generation budget; outcome() is final
  Failed,       ///< a slice threw; error() / rethrow via run()
  Cancelled,    ///< cancel() observed; the job will not run again
};

std::string job_state_name(JobState state);

/// A preemptible exploration run: validated settings + problem + lifecycle.
class Job {
 public:
  /// Admits a job over a caller-owned problem (kept by reference; must
  /// outlive the job). Throws PreconditionError on invalid settings.
  Job(const problems::IntegratorProblem& problem, RunSettings settings);

  /// Admits a job that owns its problem, built from settings.spec — the
  /// form the serve daemon and the run(settings) shim use. Throws
  /// PreconditionError on invalid settings.
  static Job from_settings(RunSettings settings);

  Job(Job&&) noexcept = default;
  Job& operator=(Job&&) noexcept = default;
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  JobState state() const { return state_; }
  const RunSettings& settings() const { return settings_; }

  /// The registry-generated config digest this job's checkpoints carry
  /// (run_config_digest over the admitted settings; see
  /// settings_registry.hpp). Stable across slices — every resume compares
  /// it verbatim before continuing, so two jobs with equal digests and
  /// equal CheckpointMeta are interchangeable on the same chain.
  std::string config_digest() const { return run_config_digest(settings_); }
  const problems::IntegratorProblem& problem() const { return *problem_; }

  /// True when the job can be preempted mid-run and resumed later — it
  /// checkpoints (checkpoint_path set; WeightedSum never qualifies). A
  /// non-preemptible job ignores slice budgets and runs to completion in
  /// its first slice.
  bool preemptible() const { return !settings_.checkpoint_path.empty(); }

  /// True when run_slice may be called: Pending, or Snapshotted with a
  /// checkpoint on disk to resume from. The scheduler skips non-runnable
  /// jobs (a stopped job without a checkpoint path stays Snapshotted but
  /// can never continue).
  bool runnable() const {
    return state_ == JobState::Pending ||
           (state_ == JobState::Snapshotted && resumable_);
  }

  /// Runs at most `budget` generations (0 = unlimited) and returns the
  /// resulting state. The budget is enforced at the generation barrier via
  /// the evolvers' stop-token seam: the slice ends with a checkpoint and
  /// state Snapshotted, never mid-generation. Slices after the first
  /// re-admit the checkpoint with ResumeMode::Auto and append a fresh
  /// trace segment. Callable only in Pending or a resumable Snapshotted
  /// state. A raised settings.stop token or a pending cancel() also ends
  /// the slice at the next barrier.
  JobState run_slice(std::size_t budget);

  /// Runs the job to completion (one unlimited slice) and returns the
  /// final outcome; rethrows the original exception if the slice failed.
  /// This is exactly the historical expt::run behaviour, including the
  /// `interrupted` outcome when settings.stop ends the run early.
  RunOutcome run();

  /// Requests cancellation: Pending/Snapshotted jobs flip to Cancelled
  /// immediately (and permanently); a Running job observes the request at
  /// its next generation barrier. Terminal states are unaffected.
  void cancel();

  /// Outcome of the most recent slice. For Done jobs this is the final
  /// result; for Snapshotted jobs it describes the stopping point (front,
  /// metrics, cumulative generations/evaluations), per the runner's
  /// interrupted-outcome contract. Meaningless before the first slice.
  const RunOutcome& outcome() const { return outcome_; }

  /// Generations completed across all slices (cumulative through resume).
  std::size_t generations_done() const { return outcome_.generations; }

  /// Slices executed so far (including a failed one).
  std::size_t slices_run() const { return slices_run_; }

  /// Failed jobs: what() of the slice's exception. Empty otherwise.
  const std::string& error() const { return error_; }

 private:
  // Owned in shared_ptr form so Job stays movable and the non-owning
  // constructor can alias the caller's problem (empty deleter idiom, as
  // runner.cpp does for the guard chain).
  std::shared_ptr<const problems::IntegratorProblem> problem_;
  RunSettings settings_;
  JobState state_ = JobState::Pending;
  // CancelToken is pinned (workers may hold a pointer), so the movable Job
  // holds it behind a unique_ptr.
  std::unique_ptr<CancelToken> slice_stop_;
  RunOutcome outcome_;
  std::size_t slices_run_ = 0;
  bool cancel_requested_ = false;
  /// False when a slice stopped with nothing saved (no checkpoint path):
  /// re-running could not reproduce the interrupted run, so run_slice
  /// refuses.
  bool resumable_ = false;
  std::string error_;
  std::exception_ptr error_ptr_;
};

}  // namespace anadex::expt
