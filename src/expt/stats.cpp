#include "expt/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace anadex::expt {

Summary summarize(std::span<const double> values) {
  ANADEX_REQUIRE(!values.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = values.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() >= 2) {
    double sq = 0.0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return s;
}

MultiSeedOutcome run_seeds(const problems::IntegratorProblem& problem, RunSettings settings,
                           std::size_t seeds, std::uint64_t seed0) {
  ANADEX_REQUIRE(seeds >= 1, "need at least one seed");
  MultiSeedOutcome outcome;
  std::vector<double> areas;
  std::vector<double> hvs;
  std::vector<double> spans;
  std::vector<double> clusters;
  for (std::size_t i = 0; i < seeds; ++i) {
    settings.seed = seed0 + i;
    auto run_outcome = run(problem, settings);
    areas.push_back(run_outcome.front_area);
    hvs.push_back(run_outcome.hypervolume_norm);
    spans.push_back(run_outcome.load_span_pf);
    clusters.push_back(run_outcome.clustering_4to5);
    outcome.runs.push_back(std::move(run_outcome));
  }
  outcome.front_area = summarize(areas);
  outcome.hypervolume = summarize(hvs);
  outcome.load_span_pf = summarize(spans);
  outcome.clustering_4to5 = summarize(clusters);
  return outcome;
}

double pairwise_win_rate(const MultiSeedOutcome& a, const MultiSeedOutcome& b) {
  ANADEX_REQUIRE(a.runs.size() == b.runs.size() && !a.runs.empty(),
                 "win rate needs equally sized, non-empty run lists");
  std::size_t wins = 0;
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    if (a.runs[i].front_area < b.runs[i].front_area) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(a.runs.size());
}

double wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b) {
  ANADEX_REQUIRE(a.size() == b.size() && !a.empty(),
                 "Wilcoxon needs equal, non-empty samples");
  struct Diff {
    double magnitude;
    bool positive;  // b - a > 0, evidence a is smaller
  };
  std::vector<Diff> diffs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = b[i] - a[i];
    if (d != 0.0) diffs.push_back({std::abs(d), d > 0.0});
  }
  ANADEX_REQUIRE(!diffs.empty(), "all paired differences are zero");
  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) { return x.magnitude < y.magnitude; });

  // Average ranks over ties.
  const std::size_t n = diffs.size();
  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && diffs[j + 1].magnitude == diffs[i].magnitude) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;  // 1-based
    for (std::size_t k = i; k <= j; ++k) rank[k] = avg;
    i = j + 1;
  }

  double w_plus = 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += rank[k];
    if (diffs[k].positive) w_plus += rank[k];
  }
  return w_plus / total;
}

}  // namespace anadex::expt
