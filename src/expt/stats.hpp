// Multi-seed aggregation: GA outcomes are stochastic, so every trend claim
// in EXPERIMENTS.md is backed by summary statistics over seeds.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "expt/runner.hpp"

namespace anadex::expt {

/// Summary statistics of one metric across seeds.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics; requires a non-empty sample.
Summary summarize(std::span<const double> values);

/// Aggregated outcome of running the same settings across seeds.
struct MultiSeedOutcome {
  Summary front_area;
  Summary hypervolume;
  Summary load_span_pf;
  Summary clustering_4to5;
  std::vector<RunOutcome> runs;
};

/// Runs `settings` for seeds seed0 .. seed0+seeds-1 and aggregates.
MultiSeedOutcome run_seeds(const problems::IntegratorProblem& problem, RunSettings settings,
                           std::size_t seeds, std::uint64_t seed0 = 1);

/// Fraction of seed-paired comparisons in which `a` achieved a strictly
/// lower front-area metric than `b` (the robust ordering statistic used for
/// the paper's §5 trend). Requires equally sized run lists.
double pairwise_win_rate(const MultiSeedOutcome& a, const MultiSeedOutcome& b);

/// Wilcoxon signed-rank statistic for paired samples: returns W+ (the sum
/// of ranks of positive differences b - a, i.e. evidence that `a` is
/// SMALLER) normalized to [0, 1] by the total rank sum. 0.5 = no
/// difference; > 0.5 = a tends to be smaller than b. Zero differences are
/// dropped (standard practice); ties share average ranks. Requires equal,
/// non-empty samples with at least one non-zero difference.
double wilcoxon_signed_rank(std::span<const double> a, std::span<const double> b);

}  // namespace anadex::expt
