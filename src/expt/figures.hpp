// Printing helpers shared by the per-figure benchmark binaries: consistent
// banners, front tables, metric tables and terminal scatter plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/series.hpp"
#include "expt/runner.hpp"

namespace anadex::expt {

/// Prints the figure banner (id, paper caption, reproduction note).
void print_banner(std::ostream& os, const std::string& figure_id, const std::string& caption);

/// Converts a front to a (cload_pF, power_mW) series sorted by load.
Series front_series(const std::string& title, const std::vector<FrontSample>& front);

/// Prints one or more fronts as a shared terminal scatter plot
/// (x = C_load in pF, y = power in mW) followed by each front's table.
void print_fronts(std::ostream& os,
                  const std::vector<std::pair<std::string, std::vector<FrontSample>>>& fronts);

/// Prints a one-line quality summary of a run outcome.
void print_outcome_summary(std::ostream& os, const std::string& label,
                           const RunOutcome& outcome);

/// Prints a "paper vs measured" comparison line for EXPERIMENTS.md capture.
void print_paper_vs_measured(std::ostream& os, const std::string& what,
                             const std::string& paper_value, const std::string& measured_value);

}  // namespace anadex::expt
