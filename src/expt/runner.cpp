#include "expt/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/textio.hpp"
#include "engine/evolver_common.hpp"
#include "expt/job.hpp"
#include "expt/settings_registry.hpp"
#include "moga/nsga2.hpp"
#include "moga/scalarize.hpp"
#include "moga/spea2.hpp"
#include "obs/jsonl_writer.hpp"
#include "robust/checkpoint.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::expt {

namespace {

using Clock = std::chrono::steady_clock;

/// Reference box for the normalized hypervolume: power up to 1.2 mW,
/// transformed load axis up to 5.1 pF (slightly beyond the explored box so
/// extreme points still contribute).
constexpr double kHvPowerRef = 1.2e-3;
constexpr double kHvAxisRef = 5.1e-12;

moga::GenerationCallback make_history_recorder(const RunSettings& settings,
                                               std::vector<HistoryPoint>& history) {
  if (!settings.record_history) return {};
  const std::size_t stride = settings.history_stride;  // validated > 0
  return [&history, stride](std::size_t gen, const moga::Population& population) {
    if ((gen + 1) % stride != 0) return;
    const moga::Population front = moga::extract_global_front(population);
    HistoryPoint point;
    point.generation = gen + 1;
    point.front_size = front.size();
    point.front_area = front_area_of(to_front_samples(front));
    history.push_back(point);
  };
}

}  // namespace

namespace {

/// Per-type digest serializers: one `put` overload per DIGEST-row field
/// type, each emitting " tag=value" with a canonical, locale-free value
/// spelling (textio::exact for doubles — resume compares the digest
/// verbatim, so the encoding must be bit-faithful and stable). Empty
/// optionals emit nothing, preserving the historical "no chaos = no chaos
/// key" wire format.
class DigestWriter {
 public:
  void put(const char* tag, std::size_t v) { key(tag) << v; }
  void put(const char* tag, bool v) { key(tag) << (v ? 1 : 0); }
  void put(const char* tag, const std::vector<std::size_t>& v) {
    auto& os = key(tag);
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) os << ',';
      os << v[i];
    }
  }
  void put(const char* tag, const scint::Spec& spec) {
    // The spec defines what "satisfies" means, so resuming under a
    // different one would keep the old population but change selection —
    // every limit participates. The name rides along for diagnostics.
    key(tag) << spec.name << ',' << textio::exact(spec.dr_min_db) << ','
             << textio::exact(spec.or_min) << ',' << textio::exact(spec.st_max)
             << ',' << textio::exact(spec.se_max) << ','
             << textio::exact(spec.robustness_min) << ','
             << textio::exact(spec.area_max) << ','
             << textio::exact(spec.balance_max) << ','
             << textio::exact(spec.vov_min);
  }
  void put(const char* tag, const robust::GuardPolicy& g) {
    // Retry/penalty policy shapes the objective values a faulty evaluation
    // leaves in the population. backoff_spin_base is excluded: it only
    // paces the retry loop (a pure execution knob inside the policy).
    key(tag) << g.max_retries << ',' << textio::exact(g.perturbation) << ','
             << textio::exact(g.penalty_objective) << ','
             << textio::exact(g.penalty_violation) << ',' << g.seed;
  }
  void put(const char* tag,
           const std::optional<robust::FaultInjectionConfig>& fi) {
    // Chaos faults change results, so a chaotic checkpoint must not resume
    // under different rates (or under no chaos at all).
    if (!fi.has_value()) return;
    key(tag) << fi->seed << ',' << textio::exact(fi->exception_rate) << ','
             << textio::exact(fi->nan_rate) << ',' << textio::exact(fi->slow_rate)
             << ',' << fi->slow_spin_iterations;
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostream& key(const char* tag) {
    if (!first_) os_ << ' ';
    first_ = false;
    os_ << tag << '=';
    return os_;
  }

  std::ostringstream os_;
  bool first_ = true;
};

/// Expands every registry row into a member access, so the registry and
/// the RunSettings struct cannot drift: a field renamed or removed without
/// its registry row fails to compile right here. The converse direction —
/// a field ADDED without a row — is textual, so the Python side owns it
/// (`anadex-lint --digest-audit`). Called (as a no-op) from
/// validate_run_settings to keep it anchored in always-built code.
inline void settings_registry_static_check(const RunSettings& s) {
#define ANADEX_CHECK_META(field, flag) (void)s.field;
#define ANADEX_CHECK_DIGEST(field, tag, flag) (void)s.field;
#define ANADEX_CHECK_KNOB(field, flag) (void)s.field;
#define ANADEX_CHECK_SEAM(field) (void)s.field;
  ANADEX_RUN_SETTINGS_REGISTRY(ANADEX_CHECK_META, ANADEX_CHECK_DIGEST,
                               ANADEX_CHECK_KNOB, ANADEX_CHECK_SEAM)
#undef ANADEX_CHECK_META
#undef ANADEX_CHECK_DIGEST
#undef ANADEX_CHECK_KNOB
#undef ANADEX_CHECK_SEAM
}

}  // namespace

/// Generated from the settings registry: every DIGEST row becomes one
/// " tag=value" entry, in registry order (the wire order). Compared
/// verbatim on resume, so a checkpoint cannot silently continue under a
/// different configuration. KNOB rows (`threads`, `eval_cache`,
/// `batch_eval`, the engine handle, `shards`/`shard_dir`, ...) are
/// deliberately NOT part of the digest: results are invariant under all of
/// them (pure execution knobs — the SIMD lane path is bit-identical to the
/// scalar oracle, the sharded merge to the solo run), so a run may be
/// checkpointed under one setting and resumed under another — including a
/// checkpoint written at 2 shards resumed at 4.
std::string run_config_digest(const RunSettings& s) {
  DigestWriter w;
#define ANADEX_DIGEST_META(field, flag)
#define ANADEX_DIGEST_DIGEST(field, tag, flag) w.put(tag, s.field);
#define ANADEX_DIGEST_KNOB(field, flag)
#define ANADEX_DIGEST_SEAM(field)
  ANADEX_RUN_SETTINGS_REGISTRY(ANADEX_DIGEST_META, ANADEX_DIGEST_DIGEST,
                               ANADEX_DIGEST_KNOB, ANADEX_DIGEST_SEAM)
#undef ANADEX_DIGEST_META
#undef ANADEX_DIGEST_DIGEST
#undef ANADEX_DIGEST_KNOB
#undef ANADEX_DIGEST_SEAM
  return w.str();
}

void validate_run_settings(const RunSettings& s) {
  settings_registry_static_check(s);
  ANADEX_REQUIRE(s.population >= 4 && s.population % 2 == 0,
                 "run settings: population must be even and >= 4");
  ANADEX_REQUIRE(s.generations >= 1, "run settings: generations must be >= 1");
  // 0 means "one worker per hardware thread"; an explicit count is capped
  // so a typo (e.g. threads=10000) cannot exhaust the process thread limit.
  ANADEX_REQUIRE(s.threads <= 256, "run settings: threads must be in [0, 256] (0 = auto)");
  if (s.record_history) {
    ANADEX_REQUIRE(s.history_stride > 0,
                   "run settings: history_stride must be > 0 when record_history is set");
  }
  if (s.algo == Algo::LocalOnly || s.algo == Algo::SACGA) {
    ANADEX_REQUIRE(s.partitions >= 1, "run settings: partitions must be >= 1");
  }
  if (s.algo == Algo::MESACGA) {
    const auto& sched = s.mesacga_schedule;
    ANADEX_REQUIRE(!sched.empty(), "run settings: MESACGA schedule must be non-empty");
    ANADEX_REQUIRE(sched.back() == 1,
                   "run settings: MESACGA schedule must end with a single partition");
    for (std::size_t i = 0; i + 1 < sched.size(); ++i) {
      ANADEX_REQUIRE(sched[i] > sched[i + 1],
                     "run settings: MESACGA schedule must be strictly decreasing");
    }
  }
  // Sharding (docs/sharding.md). Checked before the per-algorithm blocks so
  // a degenerate shard config gets the shard-specific message.
  ANADEX_REQUIRE(s.shards >= 1 && s.shards <= 64,
                 "run settings: shards must be in [1, 64]");
  if (s.shards > 1) {
    ANADEX_REQUIRE(s.algo == Algo::Island,
                   "run settings: --shards > 1 requires the island algorithm "
                   "(--algo island); only the island ring partitions across "
                   "processes");
    ANADEX_REQUIRE(s.shards <= s.islands,
                   "run settings: shards must not exceed islands (every shard "
                   "needs at least one island to run)");
    ANADEX_REQUIRE(s.migration_interval >= 1,
                   "run settings: migration_interval must be >= 1 when "
                   "shards > 1 (the migrant exchange is the shard barrier)");
    ANADEX_REQUIRE(!s.shard_dir.empty() || !s.checkpoint_path.empty(),
                   "run settings: a sharded run needs --shard-dir or "
                   "--checkpoint to locate the exchange spool");
    ANADEX_REQUIRE(!s.record_history,
                   "run settings: record_history is unsupported with "
                   "shards > 1 (history samples the global population, which "
                   "no single shard holds)");
    ANADEX_REQUIRE(s.trace_path.empty(),
                   "run settings: tracing is unsupported with shards > 1 "
                   "(gen-level traces sample the global population)");
    ANADEX_REQUIRE(!s.engine.shared(),
                   "run settings: a shared engine handle cannot span shard "
                   "processes; each shard builds its own engine");
  }
  if (s.algo == Algo::Island) {
    ANADEX_REQUIRE(s.islands >= 2, "run settings: island GA needs >= 2 islands");
    ANADEX_REQUIRE(s.population / s.islands >= 4,
                   "run settings: each island needs >= 4 members");
    ANADEX_REQUIRE(s.migration_interval >= 1,
                   "run settings: migration_interval must be >= 1");
  }
  if (s.algo == Algo::WeightedSum) {
    ANADEX_REQUIRE(s.weight_count >= 1, "run settings: weight_count must be >= 1");
  }
  if (!s.checkpoint_path.empty()) {
    ANADEX_REQUIRE(s.checkpoint_every > 0, "run settings: checkpoint_every must be > 0");
    ANADEX_REQUIRE(s.algo != Algo::WeightedSum,
                   "run settings: checkpointing is not supported for WeightedSum");
  }
  if (s.resume != ResumeMode::Off) {
    ANADEX_REQUIRE(!s.checkpoint_path.empty(),
                   "run settings: resume requires a checkpoint path");
  }
  ANADEX_REQUIRE(s.checkpoint_keep >= 1 && s.checkpoint_keep <= 100,
                 "run settings: checkpoint_keep must be in [1, 100]");

  // Guard-policy sanity: these are user-reachable knobs (CLI, sweep
  // configs), so a NaN penalty or an absurd retry count must fail here, at
  // startup, not corrupt selection hours into a run.
  ANADEX_REQUIRE(s.guard.max_retries <= 1000,
                 "run settings: guard max_retries must be <= 1000");
  ANADEX_REQUIRE(std::isfinite(s.guard.perturbation) && s.guard.perturbation > 0.0,
                 "run settings: guard perturbation must be finite and > 0");
  ANADEX_REQUIRE(std::isfinite(s.guard.penalty_objective),
                 "run settings: guard penalty_objective must be finite (not NaN/inf)");
  ANADEX_REQUIRE(std::isfinite(s.guard.penalty_violation),
                 "run settings: guard penalty_violation must be finite (not NaN/inf)");
  ANADEX_REQUIRE(s.guard.backoff_spin_base <= (std::size_t{1} << 30),
                 "run settings: guard backoff_spin_base must be <= 2^30");
  if (s.eval_deadline_s.has_value()) {
    ANADEX_REQUIRE(std::isfinite(*s.eval_deadline_s) && *s.eval_deadline_s > 0.0,
                   "run settings: eval deadline must be finite and > 0 seconds");
    // A per-run deadline thread belongs to the engine that owns the worker
    // pool; on a shared hub the deadline is the hub's to enforce. Checked
    // here so Job admission rejects the request instead of an EngineLease
    // precondition killing the run (or the serve daemon) later.
    ANADEX_REQUIRE(!s.engine.shared(),
                   "run settings: eval_deadline_s is unsupported with a shared "
                   "engine handle (configure the deadline on the hub)");
  }
  if (!s.trace_path.empty()) {
    // Fail before the run starts, not after hours of optimization when the
    // writer first tries to open the file.
    const std::filesystem::path parent =
        std::filesystem::path(s.trace_path).parent_path();
    ANADEX_REQUIRE(parent.empty() || std::filesystem::is_directory(parent),
                   "run settings: trace path parent directory does not exist: '" +
                       parent.string() + "'");
  }
}

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::TPG: return "TPG(NSGA-II)";
    case Algo::LocalOnly: return "LocalOnly";
    case Algo::SACGA: return "SACGA";
    case Algo::MESACGA: return "MESACGA";
    case Algo::Island: return "IslandGA";
    case Algo::WeightedSum: return "WeightedSum";
    case Algo::SPEA2: return "SPEA2";
  }
  ANADEX_ASSERT(false, "unknown algorithm");
  return {};
}

std::vector<FrontSample> to_front_samples(const moga::Population& front) {
  std::vector<FrontSample> samples;
  samples.reserve(front.size());
  for (const auto& ind : front) {
    ANADEX_REQUIRE(ind.eval.objectives.size() == 2, "front must be two-objective");
    FrontSample s;
    s.power_w = ind.eval.objectives[0];
    s.cload_f = problems::kLoadMax - ind.eval.objectives[1];
    samples.push_back(s);
  }
  return samples;
}

double front_area_of(const std::vector<FrontSample>& front) {
  std::vector<double> cost;
  std::vector<double> cover;
  cost.reserve(front.size());
  cover.reserve(front.size());
  for (const auto& s : front) {
    cost.push_back(s.power_w);
    cover.push_back(s.cload_f);
  }
  return moga::front_area_metric(cost, cover, moga::FrontAreaParams{});
}

double hypervolume_of(const std::vector<FrontSample>& front) {
  moga::FrontPoints points;
  points.reserve(front.size());
  for (const auto& s : front) {
    points.push_back({s.power_w, problems::kLoadMax - s.cload_f});
  }
  const std::vector<double> ref{kHvPowerRef, kHvAxisRef};
  return moga::hypervolume(points, ref) / (kHvPowerRef * kHvAxisRef);
}

sacga::IslandParams detail::island_params_from(const RunSettings& settings) {
  sacga::IslandParams params;
  params.islands = settings.islands;
  params.island_population =
      std::max<std::size_t>((settings.population / settings.islands) & ~1ULL, 4);
  params.generations = settings.generations;
  params.migration_interval = settings.migration_interval;
  return params;
}

RunOutcome detail::run_impl(const problems::IntegratorProblem& problem,
                            const RunSettings& settings) {
  validate_run_settings(settings);
  // Sharded execution never reaches run_impl: the coordinator
  // (shard::run_sharded) runs one worker per shard and merges. A sharded
  // RunSettings silently executed solo would LOOK fine but ignore --shards,
  // so refuse loudly instead.
  ANADEX_REQUIRE(settings.shards <= 1,
                 "run_impl: shards > 1 must be executed via shard::run_sharded "
                 "(anadex explore --shards), not an in-process Job");

  // Telemetry sink for the whole run. Stays null (and costs one pointer
  // test per instrumentation site) unless a trace file was requested.
  std::optional<obs::JsonlTraceWriter> trace;
  obs::EventSink* sink = nullptr;
  if (!settings.trace_path.empty() && settings.trace_level != obs::TraceLevel::Off) {
    trace.emplace(settings.trace_path, settings.trace_level, settings.trace_append);
    sink = &*trace;
  }
  if (sink != nullptr && sink->enabled(obs::TraceLevel::Gen)) {
    // Deliberately no thread count or timestamps here: the gen-level trace
    // must be bit-identical across thread counts (docs/observability.md).
    const std::string algo = algo_name(settings.algo);
    const obs::Field fields[] = {
        obs::str("algo", algo),
        obs::str("spec", settings.spec.name),
        obs::u64("population", settings.population),
        obs::u64("generations", settings.generations),
        obs::u64("seed", settings.seed),
    };
    sink->record(obs::Event{"run_start", obs::TraceLevel::Gen, false, fields});
  }
  if (sink != nullptr && sink->enabled(obs::TraceLevel::Eval)) {
    const obs::Field fields[] = {
        obs::u64("threads", settings.threads),
        obs::u64("hardware_concurrency", std::thread::hardware_concurrency()),
        obs::str("batch_eval", engine::to_string(settings.batch_eval)),
    };
    sink->record(obs::Event{"env", obs::TraceLevel::Eval, true, fields});
  }

  // Every evaluation flows through the fault guard (non-owning alias; the
  // caller's problem outlives the run). Clean evaluators pass through
  // untouched, so guarded runs are bit-identical to unguarded ones. The
  // chaos seam slots a deterministic fault injector between the two.
  std::shared_ptr<const moga::Problem> inner(std::shared_ptr<void>(), &problem);
  std::shared_ptr<robust::FaultInjectingProblem> injector;
  if (settings.fault_injection.has_value()) {
    injector = std::make_shared<robust::FaultInjectingProblem>(
        inner, *settings.fault_injection);
    inner = injector;
  }
  robust::GuardedProblem guarded(inner, settings.guard);

  // Stuck-eval watchdog plumbing. The token lives here (outliving every
  // per-algorithm EvalEngine) and is shared between the engine's deadline
  // thread (raiser), the guard (fail-fast poller) and the injector's
  // cooperative slow-spin path.
  CancelToken eval_cancel_token;
  const double eval_deadline_s = settings.eval_deadline_s.value_or(0.0);
  if (settings.eval_deadline_s.has_value()) {
    guarded.set_cancel_token(&eval_cancel_token);
    if (injector != nullptr) injector->set_cancel_token(&eval_cancel_token);
  }

  RunOutcome outcome;
  moga::GenerationCallback callback = make_history_recorder(settings, outcome.history);
  if (settings.on_generation) {
    if (callback) {
      callback = [history = std::move(callback), user = settings.on_generation](
                     std::size_t gen, const moga::Population& population) {
        history(gen, population);
        user(gen, population);
      };
    } else {
      callback = settings.on_generation;
    }
  }

  const bool checkpointing = !settings.checkpoint_path.empty();
  robust::CheckpointMeta meta;
  meta.algo = algo_name(settings.algo);
  meta.seed = settings.seed;
  meta.population = settings.population;
  meta.generations = settings.generations;
  meta.config = run_config_digest(settings);

  // Holds the restored algorithm state alive for the whole run (the algo
  // params keep only a non-owning pointer into it).
  robust::Checkpoint resume_cp;
  bool resumed = false;
  if (settings.resume == ResumeMode::Strict) {
    resume_cp = robust::read_checkpoint_file(settings.checkpoint_path);
    outcome.resumed_from_path = settings.checkpoint_path;
    resumed = true;
  } else if (settings.resume == ResumeMode::Auto) {
    // Crash recovery: fall back past corrupt/truncated slots to the newest
    // one that checksum-verifies; with no usable slot, start fresh — so the
    // same `--resume auto` invocation works on the very first run too.
    auto recovered = robust::recover_checkpoint(settings.checkpoint_path);
    if (recovered.has_value()) {
      resume_cp = std::move(recovered->checkpoint);
      outcome.resumed_from_path = recovered->path;
      resumed = true;
    }
  }
  if (resumed) {
    ANADEX_REQUIRE(resume_cp.meta == meta,
                   "checkpoint '" + outcome.resumed_from_path +
                       "' was written by a different run configuration");
    guarded.set_report(resume_cp.faults);
    for (const auto& s : resume_cp.history) {
      outcome.history.push_back({s.generation, s.front_area, s.front_size});
    }
  }

  // Shared epilogue for every algorithm's on_snapshot hook: attach the run
  // identity, cumulative faults and history, then write atomically (with
  // rotation and the chaos harness's crash seam).
  robust::CheckpointWriteOptions cp_options;
  cp_options.keep = settings.checkpoint_keep;
  cp_options.hook = settings.checkpoint_write_hook;
  const auto write_cp = [&](robust::Checkpoint cp) {
    cp.meta = meta;
    cp.faults = guarded.report();
    for (const auto& h : outcome.history) {
      cp.history.push_back({h.generation, h.front_area, h.front_size});
    }
    robust::write_checkpoint_file(settings.checkpoint_path, cp, cp_options);
  };

  // Wiring shared by every checkpointable algorithm: seed + thread count,
  // the snapshot hook writing into the algorithm's Checkpoint slot, and the
  // resume pointer. EvolverCommon gives all six algorithms one shape, so no
  // per-algorithm special cases remain below.
  const auto wire_common = [&]<class State>(engine::EvolverCommon<State>& common,
                                            std::optional<State> robust::Checkpoint::*slot,
                                            auto&& resumed_generation) {
    static_cast<engine::EvalKnobs&>(common) = settings;
    common.seed = settings.seed;
    common.sink = sink;
    common.stop = settings.stop;
    if (settings.eval_deadline_s.has_value()) {
      common.eval_deadline_s = eval_deadline_s;
      common.eval_cancel = &eval_cancel_token;
    }
    if (sink != nullptr) {
      common.trace_hypervolume = [](const moga::Population& front) {
        return hypervolume_of(to_front_samples(front));
      };
    }
    if (checkpointing) {
      common.snapshot_every = settings.checkpoint_every;
      common.on_snapshot = [&write_cp, slot](const State& state) {
        robust::Checkpoint cp;
        cp.*slot = state;
        write_cp(std::move(cp));
      };
    }
    if (resumed) {
      const std::optional<State>& stored = resume_cp.*slot;
      ANADEX_REQUIRE(stored.has_value(),
                     "checkpoint state does not match the requested algorithm");
      common.resume = &*stored;
      outcome.resumed_from_generation = resumed_generation(*stored);
    }
  };

  // Cache accounting common to every algorithm result. With the cache off
  // distinct == requested and cache_hits == 0.
  const auto record_eval_stats = [&outcome](const engine::EvalStats& stats) {
    outcome.distinct_evaluations = stats.evaluated;
    outcome.cache_hits = stats.cache_hits();
  };

  const auto start = Clock::now();
  obs::ScopedTimer run_timer(sink, "run", obs::TraceLevel::Eval);

  moga::Population front;
  switch (settings.algo) {
    case Algo::TPG: {
      moga::Nsga2Params params;
      params.population_size = settings.population;
      params.generations = settings.generations;
      wire_common(params, &robust::Checkpoint::nsga2,
                  [](const moga::Nsga2State& s) { return s.next_generation; });
      auto result = moga::run_nsga2(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      break;
    }
    case Algo::LocalOnly: {
      sacga::LocalOnlyParams params;
      params.population_size = settings.population;
      params.partitions = settings.partitions;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      params.generations = settings.generations;
      wire_common(params, &robust::Checkpoint::local_only,
                  [](const sacga::LocalOnlyState& s) { return s.evolver.generation; });
      auto result = sacga::run_local_only(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      break;
    }
    case Algo::SACGA: {
      sacga::SacgaParams params;
      params.population_size = settings.population;
      params.partitions = settings.partitions;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      // Keep the phase-I cap sensible for small total budgets.
      params.phase1_max_generations = std::min<std::size_t>(
          settings.phase1_cap, std::max<std::size_t>(settings.generations / 4, 1));
      params.span = settings.generations;
      params.span_is_total_budget = true;
      wire_common(params, &robust::Checkpoint::sacga,
                  [](const sacga::SacgaState& s) { return s.evolver.generation; });
      auto result = sacga::run_sacga(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      break;
    }
    case Algo::MESACGA: {
      sacga::MesacgaParams params;
      params.population_size = settings.population;
      params.partition_schedule = settings.mesacga_schedule;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      params.phase1_max_generations = settings.phase1_cap;
      if (settings.span == 0) {
        params.phase1_max_generations = std::min<std::size_t>(
            settings.phase1_cap, std::max<std::size_t>(settings.generations / 4, 1));
      }
      if (settings.span > 0) {
        params.span = settings.span;
      } else {
        ANADEX_REQUIRE(settings.generations > params.phase1_max_generations,
                       "MESACGA budget must exceed the phase-I cap");
        params.total_budget = settings.generations;
      }
      wire_common(params, &robust::Checkpoint::mesacga,
                  [](const sacga::MesacgaState& s) { return s.evolver.generation; });
      auto result = sacga::run_mesacga(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      for (const auto& phase : result.phases) {
        PhaseMetric metric;
        metric.phase = phase.phase;
        metric.partitions = phase.partitions;
        metric.front_area = front_area_of(to_front_samples(phase.front));
        outcome.phases.push_back(metric);
      }
      break;
    }
    case Algo::Island: {
      sacga::IslandParams params = detail::island_params_from(settings);
      wire_common(params, &robust::Checkpoint::island,
                  [](const sacga::IslandState& s) { return s.next_generation; });
      auto result = sacga::run_island_ga(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      break;
    }
    case Algo::WeightedSum: {
      moga::WeightedSumParams params;
      params.weight_count = settings.weight_count;
      params.population_size = std::max<std::size_t>(settings.population / 2, 4) & ~1ULL;
      // Match the evaluation budget of a population-GA run of the same
      // settings: weights * pop/2 * gens_per_weight ~= pop * generations.
      params.generations_per_weight = std::max<std::size_t>(
          2 * settings.generations / settings.weight_count, 1);
      static_cast<engine::EvalKnobs&>(params) = settings;
      params.seed = settings.seed;
      params.sink = sink;
      if (sink != nullptr) {
        params.trace_hypervolume = [](const moga::Population& pop) {
          return hypervolume_of(to_front_samples(pop));
        };
      }
      auto result = moga::run_weighted_sum(guarded, params);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = settings.generations;
      break;
    }
    case Algo::SPEA2: {
      moga::Spea2Params params;
      params.population_size = settings.population;
      params.archive_size = settings.population;
      params.generations = settings.generations;
      wire_common(params, &robust::Checkpoint::spea2,
                  [](const moga::Spea2State& s) { return s.next_generation; });
      auto result = moga::run_spea2(guarded, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      record_eval_stats(result.eval_stats);
      outcome.generations = result.generations_run;
      outcome.interrupted = result.interrupted;
      break;
    }
  }

  outcome.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  outcome.faults = guarded.report();
  outcome.front = to_front_samples(front);
  std::sort(outcome.front.begin(), outcome.front.end(),
            [](const FrontSample& a, const FrontSample& b) { return a.cload_f < b.cload_f; });
  outcome.front_area = front_area_of(outcome.front);
  outcome.hypervolume_norm = hypervolume_of(outcome.front);

  std::vector<double> loads;
  loads.reserve(outcome.front.size());
  for (const auto& s : outcome.front) loads.push_back(s.cload_f);
  outcome.clustering_4to5 = moga::clustering_fraction(loads, 4e-12, 5e-12);
  if (!loads.empty()) {
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    outcome.load_span_pf = (*hi - *lo) * 1e12;
  }

  run_timer.stop();
  if (sink != nullptr && sink->enabled(obs::TraceLevel::Gen)) {
    // Absent in clean runs: a `fault` record summarizing every evaluation
    // fault the guard absorbed, and a `shutdown` record when the stop token
    // ended the run early. Both are pure observation.
    if (outcome.faults.total_faults() > 0) {
      const obs::Field fault_fields[] = {
          obs::u64("exceptions", outcome.faults.exceptions),
          obs::u64("non_finite", outcome.faults.non_finite),
          obs::u64("wrong_arity", outcome.faults.wrong_arity),
          obs::u64("timeouts", outcome.faults.timeouts),
          obs::u64("retries", outcome.faults.retries),
          obs::u64("recovered", outcome.faults.recovered),
          obs::u64("penalized", outcome.faults.penalized),
      };
      sink->record(obs::Event{"fault", obs::TraceLevel::Gen, false, fault_fields});
    }
    if (outcome.interrupted) {
      const obs::Field stop_fields[] = {obs::u64("generation", outcome.generations)};
      sink->record(obs::Event{"shutdown", obs::TraceLevel::Gen, false, stop_fields});
    }
    const obs::Field fields[] = {
        obs::u64("evaluations", outcome.evaluations),
        obs::u64("generations", outcome.generations),
        obs::u64("front_size", outcome.front.size()),
        obs::f64("front_area", outcome.front_area),
        obs::f64("hv", outcome.hypervolume_norm),
        obs::u64("faults", outcome.faults.total_faults()),
    };
    sink->record(obs::Event{"run_end", obs::TraceLevel::Gen, false, fields});
  }
  return outcome;
}

RunOutcome run(const problems::IntegratorProblem& problem, const RunSettings& settings) {
  Job job(problem, settings);
  return job.run();
}

RunOutcome run(const RunSettings& settings) {
  Job job = Job::from_settings(settings);
  return job.run();
}

}  // namespace anadex::expt
