#include "expt/runner.hpp"

#include <algorithm>
#include <chrono>

#include "common/check.hpp"
#include "moga/nsga2.hpp"
#include "moga/scalarize.hpp"
#include "moga/spea2.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::expt {

namespace {

using Clock = std::chrono::steady_clock;

/// Reference box for the normalized hypervolume: power up to 1.2 mW,
/// transformed load axis up to 5.1 pF (slightly beyond the explored box so
/// extreme points still contribute).
constexpr double kHvPowerRef = 1.2e-3;
constexpr double kHvAxisRef = 5.1e-12;

moga::GenerationCallback make_history_recorder(const RunSettings& settings,
                                               std::vector<HistoryPoint>& history) {
  if (!settings.record_history) return {};
  const std::size_t stride = std::max<std::size_t>(settings.history_stride, 1);
  return [&history, stride](std::size_t gen, const moga::Population& population) {
    if ((gen + 1) % stride != 0) return;
    const moga::Population front = moga::extract_global_front(population);
    HistoryPoint point;
    point.generation = gen + 1;
    point.front_size = front.size();
    point.front_area = front_area_of(to_front_samples(front));
    history.push_back(point);
  };
}

}  // namespace

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::TPG: return "TPG(NSGA-II)";
    case Algo::LocalOnly: return "LocalOnly";
    case Algo::SACGA: return "SACGA";
    case Algo::MESACGA: return "MESACGA";
    case Algo::Island: return "IslandGA";
    case Algo::WeightedSum: return "WeightedSum";
    case Algo::SPEA2: return "SPEA2";
  }
  ANADEX_ASSERT(false, "unknown algorithm");
  return {};
}

std::vector<FrontSample> to_front_samples(const moga::Population& front) {
  std::vector<FrontSample> samples;
  samples.reserve(front.size());
  for (const auto& ind : front) {
    ANADEX_REQUIRE(ind.eval.objectives.size() == 2, "front must be two-objective");
    FrontSample s;
    s.power_w = ind.eval.objectives[0];
    s.cload_f = problems::kLoadMax - ind.eval.objectives[1];
    samples.push_back(s);
  }
  return samples;
}

double front_area_of(const std::vector<FrontSample>& front) {
  std::vector<double> cost;
  std::vector<double> cover;
  cost.reserve(front.size());
  cover.reserve(front.size());
  for (const auto& s : front) {
    cost.push_back(s.power_w);
    cover.push_back(s.cload_f);
  }
  return moga::front_area_metric(cost, cover, moga::FrontAreaParams{});
}

double hypervolume_of(const std::vector<FrontSample>& front) {
  moga::FrontPoints points;
  points.reserve(front.size());
  for (const auto& s : front) {
    points.push_back({s.power_w, problems::kLoadMax - s.cload_f});
  }
  const std::vector<double> ref{kHvPowerRef, kHvAxisRef};
  return moga::hypervolume(points, ref) / (kHvPowerRef * kHvAxisRef);
}

RunOutcome run(const problems::IntegratorProblem& problem, const RunSettings& settings) {
  RunOutcome outcome;
  const auto callback = make_history_recorder(settings, outcome.history);
  const auto start = Clock::now();

  moga::Population front;
  switch (settings.algo) {
    case Algo::TPG: {
      moga::Nsga2Params params;
      params.population_size = settings.population;
      params.generations = settings.generations;
      params.seed = settings.seed;
      auto result = moga::run_nsga2(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      break;
    }
    case Algo::LocalOnly: {
      sacga::LocalOnlyParams params;
      params.population_size = settings.population;
      params.partitions = settings.partitions;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      params.generations = settings.generations;
      params.seed = settings.seed;
      auto result = sacga::run_local_only(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      break;
    }
    case Algo::SACGA: {
      sacga::SacgaParams params;
      params.population_size = settings.population;
      params.partitions = settings.partitions;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      // Keep the phase-I cap sensible for small total budgets.
      params.phase1_max_generations = std::min<std::size_t>(
          settings.phase1_cap, std::max<std::size_t>(settings.generations / 4, 1));
      params.span = settings.generations;
      params.span_is_total_budget = true;
      params.seed = settings.seed;
      auto result = sacga::run_sacga(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      break;
    }
    case Algo::MESACGA: {
      sacga::MesacgaParams params;
      params.population_size = settings.population;
      params.partition_schedule = settings.mesacga_schedule;
      params.axis_objective = 1;
      params.axis_lo = 0.0;
      params.axis_hi = problems::kLoadMax;
      params.phase1_max_generations = settings.phase1_cap;
      if (settings.span == 0) {
        params.phase1_max_generations = std::min<std::size_t>(
            settings.phase1_cap, std::max<std::size_t>(settings.generations / 4, 1));
      }
      if (settings.span > 0) {
        params.span = settings.span;
      } else {
        ANADEX_REQUIRE(settings.generations > params.phase1_max_generations,
                       "MESACGA budget must exceed the phase-I cap");
        params.total_budget = settings.generations;
      }
      params.seed = settings.seed;
      auto result = sacga::run_mesacga(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      for (const auto& phase : result.phases) {
        PhaseMetric metric;
        metric.phase = phase.phase;
        metric.partitions = phase.partitions;
        metric.front_area = front_area_of(to_front_samples(phase.front));
        outcome.phases.push_back(metric);
      }
      break;
    }
    case Algo::Island: {
      sacga::IslandParams params;
      params.islands = settings.islands;
      params.island_population =
          std::max<std::size_t>((settings.population / settings.islands) & ~1ULL, 4);
      params.generations = settings.generations;
      params.migration_interval = settings.migration_interval;
      params.seed = settings.seed;
      auto result = sacga::run_island_ga(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      break;
    }
    case Algo::WeightedSum: {
      moga::WeightedSumParams params;
      params.weight_count = settings.weight_count;
      params.population_size = std::max<std::size_t>(settings.population / 2, 4) & ~1ULL;
      // Match the evaluation budget of a population-GA run of the same
      // settings: weights * pop/2 * gens_per_weight ~= pop * generations.
      params.generations_per_weight = std::max<std::size_t>(
          2 * settings.generations / settings.weight_count, 1);
      params.seed = settings.seed;
      auto result = moga::run_weighted_sum(problem, params);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = settings.generations;
      break;
    }
    case Algo::SPEA2: {
      moga::Spea2Params params;
      params.population_size = settings.population;
      params.archive_size = settings.population;
      params.generations = settings.generations;
      params.seed = settings.seed;
      auto result = moga::run_spea2(problem, params, callback);
      front = std::move(result.front);
      outcome.evaluations = result.evaluations;
      outcome.generations = result.generations_run;
      break;
    }
  }

  outcome.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  outcome.front = to_front_samples(front);
  std::sort(outcome.front.begin(), outcome.front.end(),
            [](const FrontSample& a, const FrontSample& b) { return a.cload_f < b.cload_f; });
  outcome.front_area = front_area_of(outcome.front);
  outcome.hypervolume_norm = hypervolume_of(outcome.front);

  std::vector<double> loads;
  loads.reserve(outcome.front.size());
  for (const auto& s : outcome.front) loads.push_back(s.cload_f);
  outcome.clustering_4to5 = moga::clustering_fraction(loads, 4e-12, 5e-12);
  if (!loads.empty()) {
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    outcome.load_span_pf = (*hi - *lo) * 1e12;
  }
  return outcome;
}

RunOutcome run(const RunSettings& settings) {
  const problems::IntegratorProblem problem(settings.spec);
  return run(problem, settings);
}

}  // namespace anadex::expt
