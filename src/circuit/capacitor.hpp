// Integrated (poly-poly / MiM) capacitor with bottom-plate parasitic, as
// the paper includes "bottom-plate parasitic capacitances of standard
// integrated capacitors".
#pragma once

#include "common/check.hpp"
#include "device/process.hpp"

namespace anadex::circuit {

/// A linear integrated capacitor of the process.
struct IntegratedCapacitor {
  double value = 0.0;  ///< nominal capacitance, F

  /// Layout area implied by the process capacitance density, m^2.
  double area(const device::Process& process) const {
    ANADEX_REQUIRE(process.cap_density > 0.0, "capacitance density must be positive");
    return value / process.cap_density;
  }

  /// Parasitic from the bottom plate to substrate, F.
  double bottom_plate(const device::Process& process) const {
    return value * process.cap_bottom_ratio;
  }
};

}  // namespace anadex::circuit
