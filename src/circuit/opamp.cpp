#include "circuit/opamp.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"

namespace anadex::circuit {

using device::Bias;
using device::DeviceCaps;
using device::Geometry;
using device::OperatingPoint;
using device::Process;
using device::Region;
using device::Type;

namespace {

constexpr double kSatGuard = 0.04;  ///< required VDS - VDsat headroom, V
constexpr double kTiny = 1e-18;

/// Solves the VGS of a diode-connected device carrying `id` (VDS = VGS):
/// two fixed-point passes over the monotone inverse are ample.
double diode_vgs(const device::DeviceParams& params, const Geometry& geometry, double id,
                 double vdd) {
  double vgs = 0.6;
  for (int pass = 0; pass < 3; ++pass) {
    vgs = device::vgs_for_current(params, geometry, id, /*vds=*/vgs, /*vsb=*/0.0, vdd);
  }
  return vgs;
}

}  // namespace

double SaturationMargins::worst() const {
  return std::min({m1, m5, m6, m7, mref});
}

device::Geometry bias_reference_geometry() { return {2.0e-6, 0.5e-6}; }

OpAmpAnalysis analyze(const Process& process, const OpAmpDesign& design,
                      const OpAmpContext& context) {
  OpAmpAnalysis out;
  const auto& nmos = process.nmos;
  const auto& pmos = process.pmos;
  const double vdd = process.vdd;

  // ---- Bias chain -------------------------------------------------------
  // Mref (diode NMOS) converts Ibias into the gate line voltage shared by
  // M5 and M7.
  const Geometry ref = bias_reference_geometry();
  out.vgs_ref = diode_vgs(nmos, ref, design.ibias, vdd);
  // Reference must genuinely conduct Ibias below the rail; the margin is the
  // headroom between the rail and the required VGS.
  out.margins.mref = (vdd - 0.1) - out.vgs_ref;

  // Tail current: M5 mirrors the reference. Its VDS is the tail-node
  // voltage, which depends on VGS1, which depends on I5 — a short
  // fixed-point iteration converges quickly because lambda is small.
  double v_tail = 0.2;
  double i5 = 0.0;
  double vgs1 = 0.6;
  for (int pass = 0; pass < 4; ++pass) {
    i5 = device::drain_current(nmos, design.m5, Bias{out.vgs_ref, std::max(v_tail, 1e-3), 0.0});
    i5 = std::max(i5, kTiny);
    vgs1 = device::vgs_for_current(nmos, design.m1, 0.5 * i5, /*vds=*/0.5, /*vsb=*/v_tail, vdd);
    v_tail = std::clamp(context.vicm - vgs1, 1e-3, vdd);
  }
  out.i5 = i5;

  // Mirror load: diode-connected M3 at I5/2 sets the first-stage output
  // level VDD - VSG3 and the gate drive of M6.
  const double vsg3 = diode_vgs(pmos, design.m3, 0.5 * i5, vdd);
  const double v_first = vdd - vsg3;  // first-stage output at balance

  // Second stage: M7 mirrors the reference (VDS = Vocm); M6 is driven by
  // the first-stage output, so its VSG equals VSG3 at balance.
  out.i7 = std::max(
      device::drain_current(nmos, design.m7, Bias{out.vgs_ref, context.vocm, 0.0}), kTiny);
  const double id6 =
      device::drain_current(pmos, design.m6, Bias{vsg3, vdd - context.vocm, 0.0});
  out.mirror_balance_error = std::abs(id6 - out.i7) / out.i7;

  // ---- Operating points and small-signal parameters ---------------------
  const OperatingPoint op1 =
      device::solve_op(nmos, design.m1, Bias{vgs1, std::max(v_first - v_tail, 1e-3), v_tail});
  const OperatingPoint op3 = device::solve_op(pmos, design.m3, Bias{vsg3, vsg3, 0.0});
  const OperatingPoint op5 =
      device::solve_op(nmos, design.m5, Bias{out.vgs_ref, std::max(v_tail, 1e-3), 0.0});
  const OperatingPoint op6 =
      device::solve_op(pmos, design.m6, Bias{vsg3, vdd - context.vocm, 0.0});
  const OperatingPoint op7 =
      device::solve_op(nmos, design.m7, Bias{out.vgs_ref, context.vocm, 0.0});

  out.gm1 = op1.gm;
  out.gm3 = op3.gm;
  out.gm6 = op6.gm;

  const double ro1 = 1.0 / std::max(op1.gds + op3.gds, kTiny);  // gds4 ~ gds3
  const double ro2 = 1.0 / std::max(op6.gds + op7.gds, kTiny);
  out.a1 = out.gm1 * ro1;
  out.a2 = out.gm6 * ro2;
  out.a0 = out.a1 * out.a2;

  // ---- Node capacitances -------------------------------------------------
  const DeviceCaps c1 = device::capacitances(process, design.m1, op1.region);
  const DeviceCaps c3 = device::capacitances(process, design.m3, op3.region);
  const DeviceCaps c6 = device::capacitances(process, design.m6, op6.region);
  const DeviceCaps c7 = device::capacitances(process, design.m7, op7.region);

  out.cc_eff = design.cc + c6.cgd;
  // First-stage output: drains of M2/M4, gate of M6.
  out.c_first = c1.cdb + c1.cgd + c3.cdb + c3.cgd + c6.cgs;
  // Output node (excluding external load and feedback network).
  out.c_out_self = c6.cdb + c7.cdb + c7.cgd;
  // Mirror (diode) node: gates of M3+M4, drains of M1+M3.
  out.c_mirror = 2.0 * c3.cgs + c3.cdb + c1.cdb + c1.cgd;
  // Input capacitance per side: CGS1 plus Miller-doubled CGD1 (low
  // first-node gain to the cascode-free mirror, factor ~2).
  out.c_in = c1.cgs + 2.0 * c1.cgd;

  out.mirror_pole = out.gm3 / std::max(out.c_mirror, kTiny);

  // ---- Large-signal ------------------------------------------------------
  out.slew_internal = out.i5 / std::max(out.cc_eff, kTiny);
  out.swing = std::max(vdd - op6.vdsat - op7.vdsat, 0.0);

  // Input-referred thermal noise of the first stage (pair + mirror load).
  const double gm1_safe = std::max(out.gm1, kTiny);
  out.noise_psd =
      16.0 * kBoltzmann * process.temperature / (3.0 * gm1_safe) * (1.0 + out.gm3 / gm1_safe);

  out.power = vdd * (design.ibias + out.i5 + 2.0 * out.i7);
  out.area = 2.0 * design.m1.w * design.m1.l + 2.0 * design.m3.w * design.m3.l +
             design.m5.w * design.m5.l + 2.0 * design.m6.w * design.m6.l +
             2.0 * design.m7.w * design.m7.l + ref.w * ref.l;

  // ---- Saturation margins -------------------------------------------------
  // Cutoff devices produce vdsat = 0 yet conduct nothing; treat missing
  // overdrive as an equivalent violation so the optimizer is steered.
  auto margin = [&](const OperatingPoint& op, double vds) {
    if (op.region == Region::Cutoff) return -1.0;
    return vds - op.vdsat - kSatGuard;
  };
  out.margins.m1 = margin(op1, std::max(v_first - v_tail, 0.0));
  out.margins.m5 = margin(op5, v_tail);
  out.margins.m6 = margin(op6, vdd - context.vocm);
  out.margins.m7 = margin(op7, context.vocm);
  out.vov_worst = std::min({op1.vov, op3.vov, op5.vov, op6.vov, op7.vov});
  return out;
}

}  // namespace anadex::circuit
