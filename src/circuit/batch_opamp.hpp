// SoA batch analysis of the two-stage Miller opamp — W designs per call.
//
// analyze_lanes<W>() produces, for each lane, the exact OpAmpAnalysis that
// scalar analyze() produces for that design (bit-identical doubles; see
// docs/performance.md for the contract and batch_mosfet.hpp for how the
// kernels achieve it). The hot inverse-model solves run vectorized across
// lanes; the cheap epilogue (capacitances, gains, margins) runs per lane
// with the scalar expression trees.
#pragma once

#include <cstddef>
#include <span>

#include "circuit/opamp.hpp"

namespace anadex::circuit {

/// Lane widths with compiled kernels (explicit instantiations in
/// batch_opamp.cpp). Callers pad short groups up to one of these.
inline constexpr std::size_t kLaneWidths[] = {4, 8, 16};
inline constexpr std::size_t kMaxLaneWidth = 16;

/// Analyzes W amplifier designs on one process corner in SoA form.
/// out[k] is bit-identical to analyze(process, designs[k], context).
template <std::size_t W>
void analyze_lanes(const device::Process& process, std::span<const OpAmpDesign, W> designs,
                   const OpAmpContext& context, std::span<OpAmpAnalysis, W> out);

extern template void analyze_lanes<4>(const device::Process&, std::span<const OpAmpDesign, 4>,
                                      const OpAmpContext&, std::span<OpAmpAnalysis, 4>);
extern template void analyze_lanes<8>(const device::Process&, std::span<const OpAmpDesign, 8>,
                                      const OpAmpContext&, std::span<OpAmpAnalysis, 8>);
extern template void analyze_lanes<16>(const device::Process&, std::span<const OpAmpDesign, 16>,
                                       const OpAmpContext&, std::span<OpAmpAnalysis, 16>);

}  // namespace anadex::circuit
