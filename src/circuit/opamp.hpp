// Two-stage Miller-compensated operational amplifier — the opamp topology
// the paper uses inside the CDS switched-capacitor integrator ("standard
// two-stage opAmp topology").
//
// Topology (single-ended half-circuit of the fully-differential amplifier):
//
//   M1/M2  NMOS input differential pair           (w1, l1), each at I5/2
//   M3/M4  PMOS current-mirror load               (w3, l3)
//   M5     NMOS tail current source               (w5, l5), carries I5
//   M6     PMOS common-source second stage        (w6, l6)
//   M7     NMOS second-stage current sink         (w7, l7), carries I7
//   Mref   diode-connected NMOS bias reference (fixed geometry), carries
//          Ibias and sets the gate line of M5 / M7
//   Cc     Miller compensation capacitor
//
// All analysis is closed-form over the eqn-(1) device model: bias solution,
// gains, pole/zero data including the non-dominant mirror pole, slew
// currents, swing, input-referred thermal noise, power and area. The
// integrator layer (src/scint) combines these with the switched-capacitor
// network and the load.
#pragma once

#include "device/mosfet.hpp"
#include "device/process.hpp"

namespace anadex::circuit {

/// Geometric + electrical design variables of the amplifier.
struct OpAmpDesign {
  device::Geometry m1;  ///< input pair
  device::Geometry m3;  ///< mirror load
  device::Geometry m5;  ///< tail source
  device::Geometry m6;  ///< second-stage driver (PMOS)
  device::Geometry m7;  ///< second-stage sink
  double ibias = 10e-6; ///< reference current, A
  double cc = 1e-12;    ///< Miller capacitor, F
};

/// Fixed operating context of the amplifier inside the integrator.
struct OpAmpContext {
  double vicm = 0.9;  ///< input common mode, V
  double vocm = 0.9;  ///< output common mode, V
};

/// Per-device saturation margin: VDS - VDsat - guard (>= 0 means safely
/// saturated). Used directly as optimization constraints.
struct SaturationMargins {
  double m1 = 0.0;
  double m5 = 0.0;
  double m6 = 0.0;
  double m7 = 0.0;
  double mref = 0.0;  ///< reference must actually conduct Ibias

  double worst() const;
};

/// Complete small-signal + large-signal characterization.
struct OpAmpAnalysis {
  // Bias.
  double i5 = 0.0;       ///< tail current, A
  double i7 = 0.0;       ///< second-stage current, A
  double vgs_ref = 0.0;  ///< bias gate line, V

  // Small-signal.
  double gm1 = 0.0;
  double gm3 = 0.0;
  double gm6 = 0.0;
  double a1 = 0.0;  ///< first-stage DC gain
  double a2 = 0.0;  ///< second-stage DC gain
  double a0 = 0.0;  ///< total DC gain

  // Node capacitances for pole computation (load-independent parts).
  double cc_eff = 0.0;      ///< Cc + Cgd6 (effective Miller capacitor), F
  double c_first = 0.0;     ///< first-stage output node self-capacitance, F
  double c_out_self = 0.0;  ///< output node self-capacitance (no load), F
  double c_mirror = 0.0;    ///< mirror node capacitance, F
  double c_in = 0.0;        ///< input capacitance per side, F

  /// Mirror (non-dominant) pole, rad/s — load-independent.
  double mirror_pole = 0.0;

  // Large-signal.
  double slew_internal = 0.0;  ///< I5 / Cc_eff, V/s
  double swing = 0.0;          ///< single-ended output peak-to-peak, V

  /// Input-referred thermal noise PSD, V^2/Hz.
  double noise_psd = 0.0;

  double power = 0.0;  ///< VDD * (Ibias + I5 + 2*I7) for the differential pair of
                       ///< second stages, W
  double area = 0.0;   ///< total active gate area, m^2

  /// Systematic-offset balance: |ID6(VSG3) - I7| / I7. The paper's
  /// "matching constraint"; must be small at every corner.
  double mirror_balance_error = 0.0;

  /// Smallest gate overdrive VGS - VT across M1/M3/M5/M6/M7, V. Designs
  /// must keep every device in strong inversion (the square-law model is
  /// not valid — and gm/ID is unphysically unbounded — below ~100 mV), so
  /// this is exposed as an operating-region constraint.
  double vov_worst = 0.0;

  SaturationMargins margins;
};

/// Unity-gain (GBW) angular frequency for a given effective Miller cap.
inline double unity_gain_radians(const OpAmpAnalysis& a) {
  return a.cc_eff > 0.0 ? a.gm1 / a.cc_eff : 0.0;
}

/// Analyzes the amplifier on `process` (already shifted to the desired
/// corner). Never throws on bad designs: unreachable bias points surface as
/// negative saturation margins / large balance errors so the optimizer
/// receives smooth constraint-violation guidance.
OpAmpAnalysis analyze(const device::Process& process, const OpAmpDesign& design,
                      const OpAmpContext& context);

/// Geometry of the fixed diode-connected bias reference device.
device::Geometry bias_reference_geometry();

}  // namespace anadex::circuit
