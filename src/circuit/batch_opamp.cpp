// Lane transliteration of opamp.cpp's analyze(). Every numbered step below
// names the corresponding block of the scalar function; the floating-point
// expression trees are copied verbatim so lane results stay bit-identical
// (enforced by tests/circuit/batch_opamp_test.cpp and the scint golden
// suite).
#include "circuit/batch_opamp.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "device/batch_mosfet.hpp"

namespace anadex::circuit {

using device::DeviceParams;
using device::Geometry;
using device::OpLanes;
using device::Region;

namespace {

// Mirrors of opamp.cpp's constants.
constexpr double kSatGuard = 0.04;
constexpr double kTiny = 1e-18;

/// diode_vgs() lanes: three fixed-point passes of the inverse model with
/// VDS following VGS, starting from 0.6 V.
template <std::size_t W>
void diode_vgs_lanes(const DeviceParams& params, const double* w, const double* l,
                     const double* id, double vdd, double* vgs) {
  double vds[W], vsb0[W];
  for (std::size_t k = 0; k < W; ++k) {
    vgs[k] = 0.6;
    vsb0[k] = 0.0;
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t k = 0; k < W; ++k) vds[k] = vgs[k];
    device::vgs_for_current_lanes<W>(params, w, l, id, vds, vsb0, vdd, vgs);
  }
}

}  // namespace

template <std::size_t W>
void analyze_lanes(const device::Process& process, std::span<const OpAmpDesign, W> designs,
                   const OpAmpContext& context, std::span<OpAmpAnalysis, W> out) {
  const auto& nmos = process.nmos;
  const auto& pmos = process.pmos;
  const double vdd = process.vdd;

  // AoS -> SoA unpack of the per-lane design variables.
  double m1w[W], m1l[W], m3w[W], m3l[W], m5w[W], m5l[W];
  double m6w[W], m6l[W], m7w[W], m7l[W], ibias[W];
  for (std::size_t k = 0; k < W; ++k) {
    const OpAmpDesign& d = designs[k];
    m1w[k] = d.m1.w; m1l[k] = d.m1.l;
    m3w[k] = d.m3.w; m3l[k] = d.m3.l;
    m5w[k] = d.m5.w; m5l[k] = d.m5.l;
    m6w[k] = d.m6.w; m6l[k] = d.m6.l;
    m7w[k] = d.m7.w; m7l[k] = d.m7.l;
    ibias[k] = d.ibias;
  }
  double zeros[W];
  for (std::size_t k = 0; k < W; ++k) zeros[k] = 0.0;

  // ---- Bias chain (scalar step 1: Mref diode) ---------------------------
  const Geometry ref = bias_reference_geometry();
  double refw[W], refl[W], vgs_ref[W];
  for (std::size_t k = 0; k < W; ++k) {
    refw[k] = ref.w;
    refl[k] = ref.l;
  }
  diode_vgs_lanes<W>(nmos, refw, refl, ibias, vdd, vgs_ref);

  // ---- Tail fixed point (scalar step 2) ---------------------------------
  double v_tail[W], i5[W], vgs1[W], half_i5[W], vtail_eff[W], vds_half[W];
  for (std::size_t k = 0; k < W; ++k) {
    v_tail[k] = 0.2;
    i5[k] = 0.0;
    vgs1[k] = 0.6;
    half_i5[k] = 0.0;
    vds_half[k] = 0.5;
  }
  for (int pass = 0; pass < 4; ++pass) {
    for (std::size_t k = 0; k < W; ++k) vtail_eff[k] = std::max(v_tail[k], 1e-3);
    device::drain_current_lanes<W>(nmos, m5w, m5l, vgs_ref, vtail_eff, zeros, i5);
    for (std::size_t k = 0; k < W; ++k) {
      i5[k] = std::max(i5[k], kTiny);
      half_i5[k] = 0.5 * i5[k];
    }
    device::vgs_for_current_lanes<W>(nmos, m1w, m1l, half_i5, vds_half, v_tail, vdd, vgs1);
    for (std::size_t k = 0; k < W; ++k) {
      v_tail[k] = std::clamp(context.vicm - vgs1[k], 1e-3, vdd);
    }
  }

  // ---- Mirror load diode + second stage (scalar steps 3-4) --------------
  double vsg3[W], v_first[W], i7[W], id6[W], vocm_arr[W], vdd_m_vocm[W];
  diode_vgs_lanes<W>(pmos, m3w, m3l, half_i5, vdd, vsg3);
  for (std::size_t k = 0; k < W; ++k) {
    v_first[k] = vdd - vsg3[k];
    vocm_arr[k] = context.vocm;
    vdd_m_vocm[k] = vdd - context.vocm;
  }
  device::drain_current_lanes<W>(nmos, m7w, m7l, vgs_ref, vocm_arr, zeros, i7);
  device::drain_current_lanes<W>(pmos, m6w, m6l, vsg3, vdd_m_vocm, zeros, id6);
  for (std::size_t k = 0; k < W; ++k) i7[k] = std::max(i7[k], kTiny);

  // ---- Operating points (scalar step 5) ---------------------------------
  OpLanes<W> op1, op3, op5, op6, op7;
  double vds1[W];
  for (std::size_t k = 0; k < W; ++k) {
    vds1[k] = std::max(v_first[k] - v_tail[k], 1e-3);
    vtail_eff[k] = std::max(v_tail[k], 1e-3);  // final v_tail
  }
  device::solve_op_lanes<W>(nmos, m1w, m1l, vgs1, vds1, v_tail, op1);
  device::solve_op_lanes<W>(pmos, m3w, m3l, vsg3, vsg3, zeros, op3);
  device::solve_op_lanes<W>(nmos, m5w, m5l, vgs_ref, vtail_eff, zeros, op5);
  device::solve_op_lanes<W>(pmos, m6w, m6l, vsg3, vdd_m_vocm, zeros, op6);
  device::solve_op_lanes<W>(nmos, m7w, m7l, vgs_ref, vocm_arr, zeros, op7);

  // ---- Per-lane epilogue: gains, capacitances, large-signal, margins ----
  // Cheap relative to the solves; scalar expression trees copied from
  // analyze() with lane subscripts.
  for (std::size_t k = 0; k < W; ++k) {
    OpAmpAnalysis& o = out[k];
    o = OpAmpAnalysis{};
    o.vgs_ref = vgs_ref[k];
    o.margins.mref = (vdd - 0.1) - vgs_ref[k];
    o.i5 = i5[k];
    o.i7 = i7[k];
    o.mirror_balance_error = std::abs(id6[k] - i7[k]) / i7[k];

    o.gm1 = op1.gm[k];
    o.gm3 = op3.gm[k];
    o.gm6 = op6.gm[k];
    const double ro1 = 1.0 / std::max(op1.gds[k] + op3.gds[k], kTiny);
    const double ro2 = 1.0 / std::max(op6.gds[k] + op7.gds[k], kTiny);
    o.a1 = o.gm1 * ro1;
    o.a2 = o.gm6 * ro2;
    o.a0 = o.a1 * o.a2;

    const device::DeviceCaps c1 =
        device::capacitances(process, Geometry{m1w[k], m1l[k]}, Region(op1.region[k]));
    const device::DeviceCaps c3 =
        device::capacitances(process, Geometry{m3w[k], m3l[k]}, Region(op3.region[k]));
    const device::DeviceCaps c6 =
        device::capacitances(process, Geometry{m6w[k], m6l[k]}, Region(op6.region[k]));
    const device::DeviceCaps c7 =
        device::capacitances(process, Geometry{m7w[k], m7l[k]}, Region(op7.region[k]));

    o.cc_eff = designs[k].cc + c6.cgd;
    o.c_first = c1.cdb + c1.cgd + c3.cdb + c3.cgd + c6.cgs;
    o.c_out_self = c6.cdb + c7.cdb + c7.cgd;
    o.c_mirror = 2.0 * c3.cgs + c3.cdb + c1.cdb + c1.cgd;
    o.c_in = c1.cgs + 2.0 * c1.cgd;

    o.mirror_pole = o.gm3 / std::max(o.c_mirror, kTiny);

    o.slew_internal = o.i5 / std::max(o.cc_eff, kTiny);
    o.swing = std::max(vdd - op6.vdsat[k] - op7.vdsat[k], 0.0);

    const double gm1_safe = std::max(o.gm1, kTiny);
    o.noise_psd =
        16.0 * kBoltzmann * process.temperature / (3.0 * gm1_safe) * (1.0 + o.gm3 / gm1_safe);

    o.power = vdd * (designs[k].ibias + o.i5 + 2.0 * o.i7);
    o.area = 2.0 * m1w[k] * m1l[k] + 2.0 * m3w[k] * m3l[k] +
             m5w[k] * m5l[k] + 2.0 * m6w[k] * m6l[k] +
             2.0 * m7w[k] * m7l[k] + ref.w * ref.l;

    const auto margin = [](const OpLanes<W>& op, std::size_t lane, double vds) {
      if (Region(op.region[lane]) == Region::Cutoff) return -1.0;
      return vds - op.vdsat[lane] - kSatGuard;
    };
    o.margins.m1 = margin(op1, k, std::max(v_first[k] - v_tail[k], 0.0));
    o.margins.m5 = margin(op5, k, v_tail[k]);
    o.margins.m6 = margin(op6, k, vdd - context.vocm);
    o.margins.m7 = margin(op7, k, context.vocm);
    o.vov_worst = std::min({op1.vov[k], op3.vov[k], op5.vov[k], op6.vov[k], op7.vov[k]});
  }
}

template void analyze_lanes<4>(const device::Process&, std::span<const OpAmpDesign, 4>,
                               const OpAmpContext&, std::span<OpAmpAnalysis, 4>);
template void analyze_lanes<8>(const device::Process&, std::span<const OpAmpDesign, 8>,
                               const OpAmpContext&, std::span<OpAmpAnalysis, 8>);
template void analyze_lanes<16>(const device::Process&, std::span<const OpAmpDesign, 16>,
                                const OpAmpContext&, std::span<OpAmpAnalysis, 16>);

}  // namespace anadex::circuit
