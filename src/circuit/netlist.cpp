#include "circuit/netlist.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "circuit/opamp.hpp"
#include "common/check.hpp"

namespace anadex::circuit {

namespace {

/// Emits one MOSFET card: M<name> drain gate source bulk model W= L=.
void device_card(std::ostream& os, const std::string& name, const std::string& d,
                 const std::string& g, const std::string& s, const std::string& b,
                 const std::string& model, const device::Geometry& geom) {
  os << 'M' << name << ' ' << d << ' ' << g << ' ' << s << ' ' << b << ' ' << model
     << " W=" << geom.w << " L=" << geom.l << '\n';
}

/// Level-1 .model card approximating the eqn-(1) fit around the typical
/// operating region (KP = mu*Cox; the theta/Esat refinements have no
/// level-1 equivalent and are noted in a comment).
void model_card(std::ostream& os, const std::string& name, const char* type,
                const device::DeviceParams& p, const device::Process& proc) {
  os << ".model " << name << ' ' << type << " (LEVEL=1 VTO=" << (type[0] == 'P' ? '-' : '+')
     << p.vt0 << " KP=" << p.mu_cox << " LAMBDA=" << p.lambda_per_m / 0.5e-6
     << " GAMMA=" << p.gamma << " PHI=" << p.phi2f << " TOX=4e-9"
     << " CGSO=" << proc.cov_per_w << " CGDO=" << proc.cov_per_w
     << " CJ=" << proc.cj_area << " CJSW=" << proc.cj_perim << ")\n";
}

}  // namespace

void write_netlist(std::ostream& os, const device::Process& process,
                   const scint::IntegratorDesign& design, const NetlistOptions& options) {
  ANADEX_REQUIRE(options.vicm > 0.0 && options.vicm < process.vdd,
                 "input common mode must lie inside the rails");
  const auto& op = design.opamp;
  os << "* " << options.title << '\n'
     << "* exported by anadex; device model: paper eqn (1) approximated as\n"
     << "* LEVEL=1 (theta/Esat refinements have no level-1 equivalent --\n"
     << "* expect a few percent bias deviation vs the analytical model)\n"
     << ".param vdd=" << process.vdd << '\n'
     << "VDD vdd 0 {vdd}\n"
     << "VICM vicm 0 " << options.vicm << '\n';

  model_card(os, "nch", "NMOS", process.nmos, process);
  model_card(os, "pch", "PMOS", process.pmos, process);

  // Bias chain: IREF into the diode-connected reference sets nbias.
  const auto ref = bias_reference_geometry();
  os << "IREF vdd nbias " << op.ibias << '\n';
  device_card(os, "REF", "nbias", "nbias", "0", "0", "nch", ref);

  // First stage: differential pair (inp grounded to vicm for the
  // half-circuit), PMOS mirror, tail.
  device_card(os, "1", "n1", "vicm", "tail", "0", "nch", op.m1);
  device_card(os, "2", "vo1", "vinn", "tail", "0", "nch", op.m1);
  device_card(os, "3", "n1", "n1", "vdd", "vdd", "pch", op.m3);
  device_card(os, "4", "vo1", "n1", "vdd", "vdd", "pch", op.m3);
  device_card(os, "5", "tail", "nbias", "0", "0", "nch", op.m5);

  // Second stage + Miller cap.
  device_card(os, "6", "vout", "vo1", "vdd", "vdd", "pch", op.m6);
  device_card(os, "7", "vout", "nbias", "0", "0", "nch", op.m7);
  os << "CC vo1 vout " << op.cc << '\n';

  if (options.include_sc_network) {
    os << "* SC network, integration-phase configuration (switches ideal/closed)\n"
       << "CS vinn vin_s " << design.cs << '\n'
       << "CF vinn vout " << design.cf() << '\n'
       << "COC vinn 0 " << design.coc << '\n'
       << "CLOAD vout 0 " << design.cload << '\n'
       << "VIN vin_s 0 " << options.vicm << '\n';
  } else {
    os << "VINN vinn 0 " << options.vicm << '\n';
  }

  os << ".op\n.end\n";
}

std::string netlist_string(const device::Process& process,
                           const scint::IntegratorDesign& design,
                           const NetlistOptions& options) {
  std::ostringstream os;
  os << std::setprecision(8);
  write_netlist(os, process, design, options);
  return os.str();
}

}  // namespace anadex::circuit
