// SPICE netlist export: turns an optimizer-produced integrator design into
// a simulator-ready .sp deck (two-stage opamp + SC network as ideal-switch
// half circuit), so results of the analytical model can be cross-checked
// in an external simulator — the manual step the paper's flow leaves to
// the designer.
#pragma once

#include <iosfwd>
#include <string>

#include "device/process.hpp"
#include "scint/integrator.hpp"

namespace anadex::circuit {

/// Options of the exported deck.
struct NetlistOptions {
  std::string title = "anadex two-stage opamp + SC integrator";
  bool include_sc_network = true;  ///< emit Cs/Cf/Coc and the load
  double vicm = 0.9;               ///< input common mode source, V
  double vocm = 0.9;               ///< output common mode reference, V
};

/// Writes a SPICE deck of the design: a level-1-style .model card fitted
/// from the process (VTO, KP, LAMBDA, GAMMA, PHI, capacitances), the seven
/// opamp devices + bias reference with the design geometry, the Miller
/// capacitor, and (optionally) the switched-capacitor network in its
/// integration-phase configuration with the external load.
void write_netlist(std::ostream& os, const device::Process& process,
                   const scint::IntegratorDesign& design, const NetlistOptions& options = {});

/// Convenience: the deck as a string.
std::string netlist_string(const device::Process& process,
                           const scint::IntegratorDesign& design,
                           const NetlistOptions& options = {});

}  // namespace anadex::circuit
