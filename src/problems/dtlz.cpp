#include "problems/dtlz.hpp"

#include <cmath>

#include "common/check.hpp"

namespace anadex::problems {

namespace {

constexpr double kPi = 3.14159265358979323846;

class DtlzProblem final : public moga::Problem {
 public:
  enum class Kind { Dtlz1, Dtlz2 };

  DtlzProblem(Kind kind, std::size_t objectives, std::size_t k)
      : kind_(kind), m_(objectives), k_(k) {
    ANADEX_REQUIRE(objectives >= 2, "DTLZ needs at least two objectives");
    ANADEX_REQUIRE(k >= 1, "DTLZ needs at least one distance variable");
  }

  std::string name() const override {
    return (kind_ == Kind::Dtlz1 ? "DTLZ1-" : "DTLZ2-") + std::to_string(m_);
  }
  std::size_t num_variables() const override { return m_ - 1 + k_; }
  std::size_t num_objectives() const override { return m_; }
  std::size_t num_constraints() const override { return 0; }
  std::vector<moga::VariableBound> bounds() const override {
    return std::vector<moga::VariableBound>(num_variables(), {0.0, 1.0});
  }

  void evaluate(std::span<const double> x, moga::Evaluation& out) const override {
    ANADEX_REQUIRE(x.size() == num_variables(), "gene count mismatch");
    out.violations.clear();
    out.objectives.assign(m_, 0.0);

    double g = 0.0;
    if (kind_ == Kind::Dtlz1) {
      for (std::size_t i = m_ - 1; i < x.size(); ++i) {
        const double xi = x[i] - 0.5;
        g += xi * xi - std::cos(20.0 * kPi * xi);
      }
      g = 100.0 * (static_cast<double>(k_) + g);
      for (std::size_t obj = 0; obj < m_; ++obj) {
        double f = 0.5 * (1.0 + g);
        for (std::size_t j = 0; j + obj + 1 < m_; ++j) f *= x[j];
        if (obj > 0) f *= 1.0 - x[m_ - 1 - obj];
        out.objectives[obj] = f;
      }
    } else {
      for (std::size_t i = m_ - 1; i < x.size(); ++i) {
        const double xi = x[i] - 0.5;
        g += xi * xi;
      }
      for (std::size_t obj = 0; obj < m_; ++obj) {
        double f = 1.0 + g;
        for (std::size_t j = 0; j + obj + 1 < m_; ++j) {
          f *= std::cos(0.5 * kPi * x[j]);
        }
        if (obj > 0) f *= std::sin(0.5 * kPi * x[m_ - 1 - obj]);
        out.objectives[obj] = f;
      }
    }
  }

 private:
  Kind kind_;
  std::size_t m_;
  std::size_t k_;
};

}  // namespace

std::unique_ptr<moga::Problem> make_dtlz1(std::size_t objectives, std::size_t k) {
  return std::make_unique<DtlzProblem>(DtlzProblem::Kind::Dtlz1, objectives, k);
}

std::unique_ptr<moga::Problem> make_dtlz2(std::size_t objectives, std::size_t k) {
  return std::make_unique<DtlzProblem>(DtlzProblem::Kind::Dtlz2, objectives, k);
}

}  // namespace anadex::problems
