// Standard analytic multi-objective test problems (Deb's book / ZDT suite).
//
// These validate the MOEA machinery independently of the circuit substrate
// and power the algorithm-level property tests and ablation benches. All
// are minimization problems; constrained ones report violations >= 0.
#pragma once

#include <memory>

#include "moga/problem.hpp"

namespace anadex::problems {

/// Schaffer's single-variable problem: f1 = x^2, f2 = (x-2)^2, x in [-10^3, 10^3].
std::unique_ptr<moga::Problem> make_sch();

/// Fonseca–Fleming, 3 variables in [-4, 4].
std::unique_ptr<moga::Problem> make_fon();

/// Kursawe, 3 variables in [-5, 5]; disconnected front.
std::unique_ptr<moga::Problem> make_kur();

/// Poloni's two-variable problem (maximization converted to minimization).
std::unique_ptr<moga::Problem> make_pol();

/// ZDT suite (n variables, first in [0,1]); convex / concave / disconnected /
/// multimodal / biased fronts respectively.
std::unique_ptr<moga::Problem> make_zdt1(std::size_t n = 30);
std::unique_ptr<moga::Problem> make_zdt2(std::size_t n = 30);
std::unique_ptr<moga::Problem> make_zdt3(std::size_t n = 30);
std::unique_ptr<moga::Problem> make_zdt4(std::size_t n = 10);
std::unique_ptr<moga::Problem> make_zdt6(std::size_t n = 10);

/// Constrained problems (Deb's book): CONSTR, SRN, TNK, BNH, OSY.
std::unique_ptr<moga::Problem> make_constr();
std::unique_ptr<moga::Problem> make_srn();
std::unique_ptr<moga::Problem> make_tnk();
std::unique_ptr<moga::Problem> make_bnh();
std::unique_ptr<moga::Problem> make_osy();

}  // namespace anadex::problems
