#include "problems/analytic.hpp"

#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace anadex::problems {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Generic closure-backed problem: objectives and constraint violations are
/// produced by one callable.
class AnalyticProblem final : public moga::Problem {
 public:
  using Evaluator =
      std::function<void(std::span<const double>, std::vector<double>&, std::vector<double>&)>;

  AnalyticProblem(std::string name, std::vector<moga::VariableBound> bounds,
                  std::size_t num_objectives, std::size_t num_constraints, Evaluator evaluator)
      : name_(std::move(name)),
        bounds_(std::move(bounds)),
        num_objectives_(num_objectives),
        num_constraints_(num_constraints),
        evaluator_(std::move(evaluator)) {}

  std::string name() const override { return name_; }
  std::size_t num_variables() const override { return bounds_.size(); }
  std::size_t num_objectives() const override { return num_objectives_; }
  std::size_t num_constraints() const override { return num_constraints_; }
  std::vector<moga::VariableBound> bounds() const override { return bounds_; }

  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override {
    ANADEX_REQUIRE(genes.size() == bounds_.size(), "gene count mismatch");
    out.objectives.clear();
    out.violations.clear();
    evaluator_(genes, out.objectives, out.violations);
    ANADEX_ASSERT(out.objectives.size() == num_objectives_, "objective count mismatch");
    ANADEX_ASSERT(out.violations.size() == num_constraints_, "constraint count mismatch");
  }

 private:
  std::string name_;
  std::vector<moga::VariableBound> bounds_;
  std::size_t num_objectives_;
  std::size_t num_constraints_;
  Evaluator evaluator_;
};

std::vector<moga::VariableBound> uniform_bounds(std::size_t n, double lo, double hi) {
  return std::vector<moga::VariableBound>(n, {lo, hi});
}

/// ZDT family scaffold: f1 = head(x1), f2 = g * h(f1, g).
std::unique_ptr<moga::Problem> make_zdt(std::string name, std::size_t n,
                                        std::vector<moga::VariableBound> bounds,
                                        std::function<double(double)> head,
                                        std::function<double(std::span<const double>)> g_fn,
                                        std::function<double(double, double)> h_fn) {
  ANADEX_REQUIRE(n >= 2, "ZDT problems need at least 2 variables");
  return std::make_unique<AnalyticProblem>(
      std::move(name), std::move(bounds), 2, 0,
      [head = std::move(head), g_fn = std::move(g_fn), h_fn = std::move(h_fn)](
          std::span<const double> x, std::vector<double>& f, std::vector<double>&) {
        const double f1 = head(x[0]);
        const double g = g_fn(x);
        f = {f1, g * h_fn(f1, g)};
      });
}

}  // namespace

std::unique_ptr<moga::Problem> make_sch() {
  return std::make_unique<AnalyticProblem>(
      "SCH", uniform_bounds(1, -1000.0, 1000.0), 2, 0,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>&) {
        f = {x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)};
      });
}

std::unique_ptr<moga::Problem> make_fon() {
  return std::make_unique<AnalyticProblem>(
      "FON", uniform_bounds(3, -4.0, 4.0), 2, 0,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>&) {
        const double inv = 1.0 / std::sqrt(3.0);
        double s1 = 0.0;
        double s2 = 0.0;
        for (double xi : x) {
          s1 += (xi - inv) * (xi - inv);
          s2 += (xi + inv) * (xi + inv);
        }
        f = {1.0 - std::exp(-s1), 1.0 - std::exp(-s2)};
      });
}

std::unique_ptr<moga::Problem> make_kur() {
  return std::make_unique<AnalyticProblem>(
      "KUR", uniform_bounds(3, -5.0, 5.0), 2, 0,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>&) {
        double f1 = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) {
          f1 += -10.0 * std::exp(-0.2 * std::sqrt(x[i] * x[i] + x[i + 1] * x[i + 1]));
        }
        double f2 = 0.0;
        for (double xi : x) {
          f2 += std::pow(std::abs(xi), 0.8) + 5.0 * std::sin(xi * xi * xi);
        }
        f = {f1, f2};
      });
}

std::unique_ptr<moga::Problem> make_pol() {
  return std::make_unique<AnalyticProblem>(
      "POL", uniform_bounds(2, -kPi, kPi), 2, 0,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>&) {
        const double a1 = 0.5 * std::sin(1.0) - 2.0 * std::cos(1.0) + std::sin(2.0) -
                          1.5 * std::cos(2.0);
        const double a2 = 1.5 * std::sin(1.0) - std::cos(1.0) + 2.0 * std::sin(2.0) -
                          0.5 * std::cos(2.0);
        const double b1 = 0.5 * std::sin(x[0]) - 2.0 * std::cos(x[0]) + std::sin(x[1]) -
                          1.5 * std::cos(x[1]);
        const double b2 = 1.5 * std::sin(x[0]) - std::cos(x[0]) + 2.0 * std::sin(x[1]) -
                          0.5 * std::cos(x[1]);
        f = {1.0 + (a1 - b1) * (a1 - b1) + (a2 - b2) * (a2 - b2),
             (x[0] + 3.0) * (x[0] + 3.0) + (x[1] + 1.0) * (x[1] + 1.0)};
      });
}

std::unique_ptr<moga::Problem> make_zdt1(std::size_t n) {
  return make_zdt(
      "ZDT1", n, uniform_bounds(n, 0.0, 1.0), [](double x1) { return x1; },
      [n](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 1; i < x.size(); ++i) sum += x[i];
        return 1.0 + 9.0 * sum / static_cast<double>(n - 1);
      },
      [](double f1, double g) { return 1.0 - std::sqrt(f1 / g); });
}

std::unique_ptr<moga::Problem> make_zdt2(std::size_t n) {
  return make_zdt(
      "ZDT2", n, uniform_bounds(n, 0.0, 1.0), [](double x1) { return x1; },
      [n](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 1; i < x.size(); ++i) sum += x[i];
        return 1.0 + 9.0 * sum / static_cast<double>(n - 1);
      },
      [](double f1, double g) { return 1.0 - (f1 / g) * (f1 / g); });
}

std::unique_ptr<moga::Problem> make_zdt3(std::size_t n) {
  return make_zdt(
      "ZDT3", n, uniform_bounds(n, 0.0, 1.0), [](double x1) { return x1; },
      [n](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 1; i < x.size(); ++i) sum += x[i];
        return 1.0 + 9.0 * sum / static_cast<double>(n - 1);
      },
      [](double f1, double g) {
        return 1.0 - std::sqrt(f1 / g) - (f1 / g) * std::sin(10.0 * kPi * f1);
      });
}

std::unique_ptr<moga::Problem> make_zdt4(std::size_t n) {
  std::vector<moga::VariableBound> bounds = uniform_bounds(n, -5.0, 5.0);
  bounds[0] = {0.0, 1.0};
  return make_zdt(
      "ZDT4", n, std::move(bounds), [](double x1) { return x1; },
      [n](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 1; i < x.size(); ++i) {
          sum += x[i] * x[i] - 10.0 * std::cos(4.0 * kPi * x[i]);
        }
        return 1.0 + 10.0 * static_cast<double>(n - 1) + sum;
      },
      [](double f1, double g) { return 1.0 - std::sqrt(f1 / g); });
}

std::unique_ptr<moga::Problem> make_zdt6(std::size_t n) {
  return make_zdt(
      "ZDT6", n, uniform_bounds(n, 0.0, 1.0),
      [](double x1) {
        return 1.0 - std::exp(-4.0 * x1) * std::pow(std::sin(6.0 * kPi * x1), 6.0);
      },
      [n](std::span<const double> x) {
        double sum = 0.0;
        for (std::size_t i = 1; i < x.size(); ++i) sum += x[i];
        return 1.0 + 9.0 * std::pow(sum / static_cast<double>(n - 1), 0.25);
      },
      [](double f1, double g) { return 1.0 - (f1 / g) * (f1 / g); });
}

std::unique_ptr<moga::Problem> make_constr() {
  return std::make_unique<AnalyticProblem>(
      "CONSTR", std::vector<moga::VariableBound>{{0.1, 1.0}, {0.0, 5.0}}, 2, 2,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>& v) {
        f = {x[0], (1.0 + x[1]) / x[0]};
        const double g1 = x[1] + 9.0 * x[0] - 6.0;   // >= 0
        const double g2 = -x[1] + 9.0 * x[0] - 1.0;  // >= 0
        v = {std::max(0.0, -g1), std::max(0.0, -g2)};
      });
}

std::unique_ptr<moga::Problem> make_srn() {
  return std::make_unique<AnalyticProblem>(
      "SRN", uniform_bounds(2, -20.0, 20.0), 2, 2,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>& v) {
        f = {2.0 + (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 1.0) * (x[1] - 1.0),
             9.0 * x[0] - (x[1] - 1.0) * (x[1] - 1.0)};
        const double g1 = 225.0 - (x[0] * x[0] + x[1] * x[1]);  // >= 0
        const double g2 = -(x[0] - 3.0 * x[1] + 10.0);          // >= 0
        v = {std::max(0.0, -g1), std::max(0.0, -g2)};
      });
}

std::unique_ptr<moga::Problem> make_tnk() {
  return std::make_unique<AnalyticProblem>(
      "TNK", uniform_bounds(2, 1e-9, kPi), 2, 2,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>& v) {
        f = {x[0], x[1]};
        const double atan_term = std::atan2(x[1], x[0]);
        const double g1 = x[0] * x[0] + x[1] * x[1] - 1.0 -
                          0.1 * std::cos(16.0 * atan_term);  // >= 0
        const double g2 = 0.5 - ((x[0] - 0.5) * (x[0] - 0.5) +
                                 (x[1] - 0.5) * (x[1] - 0.5));  // >= 0
        v = {std::max(0.0, -g1), std::max(0.0, -g2)};
      });
}

std::unique_ptr<moga::Problem> make_bnh() {
  return std::make_unique<AnalyticProblem>(
      "BNH", std::vector<moga::VariableBound>{{0.0, 5.0}, {0.0, 3.0}}, 2, 2,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>& v) {
        f = {4.0 * x[0] * x[0] + 4.0 * x[1] * x[1],
             (x[0] - 5.0) * (x[0] - 5.0) + (x[1] - 5.0) * (x[1] - 5.0)};
        const double g1 = 25.0 - ((x[0] - 5.0) * (x[0] - 5.0) + x[1] * x[1]);   // >= 0
        const double g2 = (x[0] - 8.0) * (x[0] - 8.0) + (x[1] + 3.0) * (x[1] + 3.0) - 7.7;
        v = {std::max(0.0, -g1), std::max(0.0, -g2)};
      });
}

std::unique_ptr<moga::Problem> make_osy() {
  return std::make_unique<AnalyticProblem>(
      "OSY",
      std::vector<moga::VariableBound>{{0.0, 10.0}, {0.0, 10.0}, {1.0, 5.0},
                                       {0.0, 6.0},  {1.0, 5.0},  {0.0, 10.0}},
      2, 6,
      [](std::span<const double> x, std::vector<double>& f, std::vector<double>& v) {
        f = {-(25.0 * (x[0] - 2.0) * (x[0] - 2.0) + (x[1] - 2.0) * (x[1] - 2.0) +
               (x[2] - 1.0) * (x[2] - 1.0) + (x[3] - 4.0) * (x[3] - 4.0) +
               (x[4] - 1.0) * (x[4] - 1.0)),
             x[0] * x[0] + x[1] * x[1] + x[2] * x[2] + x[3] * x[3] + x[4] * x[4] +
                 x[5] * x[5]};
        const double g1 = x[0] + x[1] - 2.0;
        const double g2 = 6.0 - x[0] - x[1];
        const double g3 = 2.0 - x[1] + x[0];
        const double g4 = 2.0 - x[0] + 3.0 * x[1];
        const double g5 = 4.0 - (x[2] - 3.0) * (x[2] - 3.0) - x[3];
        const double g6 = (x[4] - 3.0) * (x[4] - 3.0) + x[5] - 4.0;
        v = {std::max(0.0, -g1), std::max(0.0, -g2), std::max(0.0, -g3),
             std::max(0.0, -g4), std::max(0.0, -g5), std::max(0.0, -g6)};
      });
}

}  // namespace anadex::problems
