// CTP constrained test problems (Deb, Pratap, Meyarivan 2001): fronts whose
// feasible region is carved by the constraint itself, stressing
// constraint-domination much harder than CONSTR/SRN/TNK. CTP2..CTP5 differ
// only in the (theta, a, b, c, d, e) parameter set producing disconnected
// or narrow feasible front segments.
#pragma once

#include <memory>

#include "moga/problem.hpp"

namespace anadex::problems {

/// CTP1: two nested exponential constraints shaping the front.
std::unique_ptr<moga::Problem> make_ctp1(std::size_t n = 5);

/// CTP2 family member selected by canonical parameter sets:
///   kind = 2: disconnected front patches
///   kind = 3: front reduced to isolated points near the patch edges
///   kind = 4: larger infeasible gaps (harder)
std::unique_ptr<moga::Problem> make_ctp(int kind, std::size_t n = 5);

}  // namespace anadex::problems
