// The paper's optimization problem: 15-parameter sizing of the CDS
// switched-capacitor integrator.
//
// Objectives (both minimized internally):
//   f0 = power dissipation at the typical corner, watts
//   f1 = C_MAX - C_load, farads  (i.e. the load capacitance is MAXIMIZED;
//        the paper wants the Pareto front spread over C_load in [0, 5] pF)
//
// Constraints (violations, each normalized to its spec limit and evaluated
// worst-case across the five process corners): dynamic range, output range,
// settling time, settling error, area, device operating regions, mirror
// matching, and Monte-Carlo robustness (yield) at the typical corner.
#pragma once

#include <array>
#include <memory>

#include "engine/simd/lane_evaluator.hpp"
#include "moga/problem.hpp"
#include "scint/integrator.hpp"
#include "scint/spec.hpp"
#include "yield/robustness.hpp"

namespace anadex::problems {

/// Gene layout of the 15-variable design vector.
enum GeneIndex : std::size_t {
  kW1, kL1, kW3, kL3, kW5, kL5, kW6, kL6, kW7, kL7,
  kIbias, kCc, kCs, kCoc, kCload,
  kNumGenes,
};

/// Upper end of the explored load range (and of the reported C axis), F.
inline constexpr double kLoadMax = 5e-12;

class IntegratorProblem final : public moga::Problem, public engine::LaneEvaluator {
 public:
  /// Builds the problem for one specification. The five corner processes
  /// and the Monte-Carlo perturbation set are precomputed; evaluation is
  /// deterministic.
  explicit IntegratorProblem(scint::Spec spec,
                             scint::IntegratorContext context = {},
                             yield::MonteCarloParams mc = {});

  std::string name() const override;
  std::size_t num_variables() const override { return kNumGenes; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 9; }
  std::vector<moga::VariableBound> bounds() const override;

  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override;

  // LaneEvaluator: the SoA batch path. Results are bit-identical to
  // evaluate() per genome (golden suite tests/scint/batch_equivalence_test).
  bool lanes_supported() const override { return true; }
  std::size_t preferred_lane_width() const override;
  void evaluate_lanes(std::span<const std::span<const double>> genes,
                      std::span<moga::Evaluation* const> outs) const override;

  /// Decodes a gene vector into the structured design.
  static scint::IntegratorDesign decode(std::span<const double> genes);

  /// Encodes a structured design back into genes (inverse of decode).
  static std::vector<double> encode(const scint::IntegratorDesign& design);

  const scint::Spec& spec() const { return spec_; }
  const scint::IntegratorContext& context() const { return context_; }

  /// Typical-corner performance of a design (for reporting / examples).
  scint::IntegratorPerformance typical_performance(const scint::IntegratorDesign& design) const;

  /// Monte-Carlo robustness of a design against this problem's spec.
  double design_robustness(const scint::IntegratorDesign& design) const;

 private:
  /// One padded lane group (n <= W) of the batch path; W is one of
  /// circuit::kLaneWidths. Defined in the .cpp (only called from
  /// evaluate_lanes there).
  template <std::size_t W>
  void evaluate_lane_group(std::span<const std::span<const double>> genes,
                           std::span<moga::Evaluation* const> outs) const;

  scint::Spec spec_;
  scint::IntegratorContext context_;
  std::array<device::Process, 5> corners_;
  std::vector<yield::ProcessPerturbation> perturbations_;
};

/// Convenience factory.
std::unique_ptr<IntegratorProblem> make_integrator_problem(const scint::Spec& spec);

}  // namespace anadex::problems
