#include "problems/integrator_problem.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "circuit/batch_opamp.hpp"
#include "common/check.hpp"
#include "scint/batch_integrator.hpp"

namespace anadex::problems {

namespace {

/// Clamp applied to each normalized violation so one wildly broken
/// constraint cannot swamp the sum Deb's rule compares.
constexpr double kViolationCap = 10.0;

double violation(double amount) {
  return std::clamp(amount, 0.0, kViolationCap);
}

}  // namespace

IntegratorProblem::IntegratorProblem(scint::Spec spec, scint::IntegratorContext context,
                                     yield::MonteCarloParams mc)
    : spec_(std::move(spec)),
      context_(context),
      corners_{device::Process::typical().at_corner(device::Corner::TT),
               device::Process::typical().at_corner(device::Corner::FF),
               device::Process::typical().at_corner(device::Corner::SS),
               device::Process::typical().at_corner(device::Corner::FS),
               device::Process::typical().at_corner(device::Corner::SF)},
      perturbations_(yield::draw_perturbations(mc)) {}

std::string IntegratorProblem::name() const { return "SCIntegrator[" + spec_.name + "]"; }

std::vector<moga::VariableBound> IntegratorProblem::bounds() const {
  std::vector<moga::VariableBound> b(kNumGenes);
  const double um = 1e-6;
  const double pf = 1e-12;
  b[kW1] = {1.0 * um, 200.0 * um};
  b[kL1] = {0.18 * um, 2.0 * um};
  b[kW3] = {1.0 * um, 200.0 * um};
  b[kL3] = {0.18 * um, 2.0 * um};
  b[kW5] = {1.0 * um, 200.0 * um};
  b[kL5] = {0.18 * um, 2.0 * um};
  b[kW6] = {1.0 * um, 400.0 * um};
  b[kL6] = {0.18 * um, 1.0 * um};
  b[kW7] = {1.0 * um, 200.0 * um};
  b[kL7] = {0.18 * um, 1.0 * um};
  b[kIbias] = {1e-6, 50e-6};
  b[kCc] = {0.1 * pf, 5.0 * pf};
  b[kCs] = {0.5 * pf, 8.0 * pf};
  b[kCoc] = {0.1 * pf, 2.0 * pf};
  b[kCload] = {0.01 * pf, kLoadMax};
  return b;
}

scint::IntegratorDesign IntegratorProblem::decode(std::span<const double> genes) {
  ANADEX_REQUIRE(genes.size() == kNumGenes, "integrator design needs 15 genes");
  scint::IntegratorDesign d;
  d.opamp.m1 = {genes[kW1], genes[kL1]};
  d.opamp.m3 = {genes[kW3], genes[kL3]};
  d.opamp.m5 = {genes[kW5], genes[kL5]};
  d.opamp.m6 = {genes[kW6], genes[kL6]};
  d.opamp.m7 = {genes[kW7], genes[kL7]};
  d.opamp.ibias = genes[kIbias];
  d.opamp.cc = genes[kCc];
  d.cs = genes[kCs];
  d.coc = genes[kCoc];
  d.cload = genes[kCload];
  return d;
}

std::vector<double> IntegratorProblem::encode(const scint::IntegratorDesign& design) {
  std::vector<double> genes(kNumGenes);
  genes[kW1] = design.opamp.m1.w;
  genes[kL1] = design.opamp.m1.l;
  genes[kW3] = design.opamp.m3.w;
  genes[kL3] = design.opamp.m3.l;
  genes[kW5] = design.opamp.m5.w;
  genes[kL5] = design.opamp.m5.l;
  genes[kW6] = design.opamp.m6.w;
  genes[kL6] = design.opamp.m6.l;
  genes[kW7] = design.opamp.m7.w;
  genes[kL7] = design.opamp.m7.l;
  genes[kIbias] = design.opamp.ibias;
  genes[kCc] = design.opamp.cc;
  genes[kCs] = design.cs;
  genes[kCoc] = design.coc;
  genes[kCload] = design.cload;
  return genes;
}

scint::IntegratorPerformance IntegratorProblem::typical_performance(
    const scint::IntegratorDesign& design) const {
  return scint::evaluate(corners_[0], design, context_);
}

double IntegratorProblem::design_robustness(const scint::IntegratorDesign& design) const {
  return yield::robustness(corners_[0], design, context_, spec_, perturbations_);
}

void IntegratorProblem::evaluate(std::span<const double> genes, moga::Evaluation& out) const {
  const scint::IntegratorDesign design = decode(genes);

  // Worst-case spec figures across the five corners.
  double dr_worst = std::numeric_limits<double>::infinity();
  double or_worst = std::numeric_limits<double>::infinity();
  double st_worst = 0.0;
  double se_worst = 0.0;
  double area_worst = 0.0;
  double sat_worst = std::numeric_limits<double>::infinity();
  double balance_worst = 0.0;
  double vov_worst = std::numeric_limits<double>::infinity();
  double power_tt = 0.0;
  bool tt_pass = false;

  for (std::size_t c = 0; c < corners_.size(); ++c) {
    const scint::IntegratorPerformance perf = scint::evaluate(corners_[c], design, context_);
    dr_worst = std::min(dr_worst, perf.dynamic_range_db);
    or_worst = std::min(or_worst, perf.output_range);
    st_worst = std::max(st_worst, perf.settling_time);
    se_worst = std::max(se_worst, perf.settling_error);
    area_worst = std::max(area_worst, perf.area);
    sat_worst = std::min(sat_worst, perf.sat_margin_worst);
    balance_worst = std::max(balance_worst, perf.mirror_balance_error);
    vov_worst = std::min(vov_worst, perf.vov_worst);
    if (c == 0) {
      power_tt = perf.power;
      tt_pass = spec_.satisfied_by(perf);
    }
  }

  // Monte-Carlo robustness is only worth spending on designs that pass the
  // deterministic limits at the typical corner; others would score ~0
  // anyway (the samples are centred on TT).
  const double rob = tt_pass ? design_robustness(design) : 0.0;

  out.objectives = {power_tt, kLoadMax - design.cload};
  out.violations = {
      violation((spec_.dr_min_db - dr_worst) / 10.0),          // per 10 dB
      violation((spec_.or_min - or_worst) / 0.5),              // per 0.5 V
      violation((st_worst - spec_.st_max) / spec_.st_max),
      violation((se_worst - spec_.se_max) / spec_.se_max),
      violation((area_worst - spec_.area_max) / spec_.area_max),
      violation(-sat_worst / 0.1),                             // per 100 mV shortfall
      violation((balance_worst - spec_.balance_max) / spec_.balance_max),
      violation((spec_.vov_min - vov_worst) / 0.1),                // strong inversion
      violation((spec_.robustness_min - rob) / spec_.robustness_min),
  };
}

// 16 measured fastest on AVX-512 and AVX2 hosts alike (deeper lane pool
// amortizes the masked Newton iterations of slow-converging lanes).
std::size_t IntegratorProblem::preferred_lane_width() const { return 16; }

void IntegratorProblem::evaluate_lanes(std::span<const std::span<const double>> genes,
                                       std::span<moga::Evaluation* const> outs) const {
  ANADEX_REQUIRE(genes.size() == outs.size() && !genes.empty(),
                 "evaluate_lanes needs parallel, non-empty spans");
  std::size_t pos = 0;
  while (pos < genes.size()) {
    const std::size_t n = std::min<std::size_t>(genes.size() - pos, circuit::kMaxLaneWidth);
    const auto g = genes.subspan(pos, n);
    const auto o = outs.subspan(pos, n);
    if (n <= 4) {
      evaluate_lane_group<4>(g, o);
    } else if (n <= 8) {
      evaluate_lane_group<8>(g, o);
    } else {
      evaluate_lane_group<16>(g, o);
    }
    pos += n;
  }
}

template <std::size_t W>
void IntegratorProblem::evaluate_lane_group(std::span<const std::span<const double>> genes,
                                            std::span<moga::Evaluation* const> outs) const {
  const std::size_t n = genes.size();

  // Pre-screen BEFORE any output is written (LaneEvaluator error
  // contract): reject exactly the genomes whose scalar evaluation throws —
  // non-positive or non-finite device geometry / bias current trips an
  // ANADEX_REQUIRE inside the device model. The engine reacts by re-running
  // every lane of the group through the scalar path, which reproduces the
  // precise per-genome exception (or result) the scalar mode would produce.
  std::array<scint::IntegratorDesign, W> designs;
  for (std::size_t i = 0; i < n; ++i) {
    designs[i] = decode(genes[i]);
    const circuit::OpAmpDesign& a = designs[i].opamp;
    const bool ok = a.m1.w > 0.0 && a.m1.l > 0.0 && a.m3.w > 0.0 && a.m3.l > 0.0 &&
                    a.m5.w > 0.0 && a.m5.l > 0.0 && a.m6.w > 0.0 && a.m6.l > 0.0 &&
                    a.m7.w > 0.0 && a.m7.l > 0.0 && a.ibias > 0.0;
    ANADEX_REQUIRE(ok, "batch pre-screen: genome outside the device model's domain");
  }
  // Pad the group with lane 0 (already screened); padded results are
  // computed and discarded.
  for (std::size_t i = n; i < W; ++i) designs[i] = designs[0];

  // Per-lane worst-case accumulators, mirroring evaluate()'s corner loop.
  std::array<double, W> dr_worst, or_worst, st_worst, se_worst, area_worst;
  std::array<double, W> sat_worst, balance_worst, vov_worst, power_tt;
  std::array<bool, W> tt_pass;
  for (std::size_t i = 0; i < W; ++i) {
    dr_worst[i] = std::numeric_limits<double>::infinity();
    or_worst[i] = std::numeric_limits<double>::infinity();
    st_worst[i] = 0.0;
    se_worst[i] = 0.0;
    area_worst[i] = 0.0;
    sat_worst[i] = std::numeric_limits<double>::infinity();
    balance_worst[i] = 0.0;
    vov_worst[i] = std::numeric_limits<double>::infinity();
    power_tt[i] = 0.0;
    tt_pass[i] = false;
  }

  std::array<scint::IntegratorPerformance, W> perfs;
  for (std::size_t c = 0; c < corners_.size(); ++c) {
    scint::evaluate_lanes<W>(corners_[c], std::span<const scint::IntegratorDesign, W>{designs},
                             context_, std::span<scint::IntegratorPerformance, W>{perfs});
    for (std::size_t i = 0; i < n; ++i) {
      const scint::IntegratorPerformance& perf = perfs[i];
      dr_worst[i] = std::min(dr_worst[i], perf.dynamic_range_db);
      or_worst[i] = std::min(or_worst[i], perf.output_range);
      st_worst[i] = std::max(st_worst[i], perf.settling_time);
      se_worst[i] = std::max(se_worst[i], perf.settling_error);
      area_worst[i] = std::max(area_worst[i], perf.area);
      sat_worst[i] = std::min(sat_worst[i], perf.sat_margin_worst);
      balance_worst[i] = std::max(balance_worst[i], perf.mirror_balance_error);
      vov_worst[i] = std::min(vov_worst[i], perf.vov_worst);
      if (c == 0) {
        power_tt[i] = perf.power;
        tt_pass[i] = spec_.satisfied_by(perf);
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double rob = tt_pass[i] ? design_robustness(designs[i]) : 0.0;
    moga::Evaluation& out = *outs[i];
    out.objectives = {power_tt[i], kLoadMax - designs[i].cload};
    out.violations = {
        violation((spec_.dr_min_db - dr_worst[i]) / 10.0),
        violation((spec_.or_min - or_worst[i]) / 0.5),
        violation((st_worst[i] - spec_.st_max) / spec_.st_max),
        violation((se_worst[i] - spec_.se_max) / spec_.se_max),
        violation((area_worst[i] - spec_.area_max) / spec_.area_max),
        violation(-sat_worst[i] / 0.1),
        violation((balance_worst[i] - spec_.balance_max) / spec_.balance_max),
        violation((spec_.vov_min - vov_worst[i]) / 0.1),
        violation((spec_.robustness_min - rob) / spec_.robustness_min),
    };
  }
}

std::unique_ptr<IntegratorProblem> make_integrator_problem(const scint::Spec& spec) {
  return std::make_unique<IntegratorProblem>(spec);
}

}  // namespace anadex::problems
