// The 20 graded circuit specifications of the paper's evaluation ("20
// different specifications of the circuit graded by their level of
// difficulty"). The originals are unpublished; this suite tightens every
// limit monotonically from an easy spec to a hard one, and pins the paper's
// explicitly stated illustrative case (DR >= 96 dB, OR >= 1.4 V,
// ST <= 0.24 µs, SE <= 7e-4, Robustness >= 0.85) as entry #13.
#pragma once

#include <vector>

#include "scint/spec.hpp"

namespace anadex::problems {

/// The paper's explicitly chosen illustrative specification.
scint::Spec chosen_spec();

/// All 20 specifications in increasing order of difficulty;
/// spec_suite()[12] == chosen_spec().
std::vector<scint::Spec> spec_suite();

}  // namespace anadex::problems
