#include "problems/spec_suite.hpp"

#include <string>

#include "common/math.hpp"

namespace anadex::problems {

scint::Spec chosen_spec() {
  scint::Spec spec;
  spec.name = "paper-chosen";
  spec.dr_min_db = 96.0;
  spec.or_min = 1.4;
  spec.st_max = 0.24e-6;
  spec.se_max = 7e-4;
  spec.robustness_min = 0.85;
  return spec;
}

std::vector<scint::Spec> spec_suite() {
  std::vector<scint::Spec> suite;
  suite.reserve(20);
  for (int i = 0; i < 20; ++i) {
    const double t = static_cast<double>(i) / 19.0;  // 0 = easiest, 1 = hardest
    scint::Spec spec;
    spec.name = "spec-" + std::to_string(i + 1);
    spec.dr_min_db = lerp(90.0, 97.0, t);
    spec.or_min = lerp(1.30, 1.45, t);
    spec.st_max = lerp(0.40e-6, 0.20e-6, t);
    spec.se_max = lerp(2.0e-3, 5.0e-4, t);
    spec.robustness_min = lerp(0.70, 0.90, t);
    suite.push_back(spec);
  }
  suite[12] = chosen_spec();  // the paper's illustrated case, difficulty ~2/3
  return suite;
}

}  // namespace anadex::problems
