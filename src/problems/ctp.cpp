#include "problems/ctp.hpp"

#include <cmath>

#include "common/check.hpp"

namespace anadex::problems {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Rastrigin-style distance function keeps the tail variables interesting.
double g_of(std::span<const double> x) {
  double g = 1.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    g += x[i] * x[i] - std::cos(4.0 * kPi * x[i]);
    g += 1.0;  // offset keeps g >= 1 at the optimum x_i = 0
  }
  return g;
}

class Ctp1 final : public moga::Problem {
 public:
  explicit Ctp1(std::size_t n) : n_(n) { ANADEX_REQUIRE(n >= 2, "CTP1 needs >= 2 vars"); }

  std::string name() const override { return "CTP1"; }
  std::size_t num_variables() const override { return n_; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 2; }
  std::vector<moga::VariableBound> bounds() const override {
    std::vector<moga::VariableBound> b(n_, {-1.0, 1.0});
    b[0] = {0.0, 1.0};
    return b;
  }

  void evaluate(std::span<const double> x, moga::Evaluation& out) const override {
    ANADEX_REQUIRE(x.size() == n_, "gene count mismatch");
    const double g = g_of(x);
    const double f1 = x[0];
    const double f2 = g * std::exp(-f1 / g);
    out.objectives = {f1, f2};
    // Canonical CTP1 constraints (j = 1, 2 with standard a_j, b_j).
    const double c1 = f2 - 0.858 * std::exp(-0.541 * f1);  // >= 0
    const double c2 = f2 - 0.728 * std::exp(-0.295 * f1);  // >= 0
    out.violations = {std::max(0.0, -c1), std::max(0.0, -c2)};
  }

 private:
  std::size_t n_;
};

/// CTP2-family: constraint
///   cos(θ)(f2 − e) − sin(θ) f1 >=
///     a · |sin(b π (sin(θ)(f2 − e) + cos(θ) f1)^c)|^d
struct CtpParams {
  double theta;
  double a;
  double b;
  double c;
  double d;
  double e;
};

class CtpFamily final : public moga::Problem {
 public:
  CtpFamily(int kind, CtpParams params, std::size_t n)
      : kind_(kind), p_(params), n_(n) {
    ANADEX_REQUIRE(n >= 2, "CTP needs >= 2 vars");
  }

  std::string name() const override { return "CTP" + std::to_string(kind_); }
  std::size_t num_variables() const override { return n_; }
  std::size_t num_objectives() const override { return 2; }
  std::size_t num_constraints() const override { return 1; }
  std::vector<moga::VariableBound> bounds() const override {
    std::vector<moga::VariableBound> b(n_, {-1.0, 1.0});
    b[0] = {0.0, 1.0};
    return b;
  }

  void evaluate(std::span<const double> x, moga::Evaluation& out) const override {
    ANADEX_REQUIRE(x.size() == n_, "gene count mismatch");
    const double g = g_of(x);
    const double f1 = x[0];
    const double f2 = g * (1.0 - std::sqrt(f1 / g));
    out.objectives = {f1, f2};
    const double rot1 = std::cos(p_.theta) * (f2 - p_.e) - std::sin(p_.theta) * f1;
    const double rot2 = std::sin(p_.theta) * (f2 - p_.e) + std::cos(p_.theta) * f1;
    const double rhs =
        p_.a * std::pow(std::abs(std::sin(p_.b * kPi * std::pow(rot2, p_.c))), p_.d);
    out.violations = {std::max(0.0, rhs - rot1)};
  }

 private:
  int kind_;
  CtpParams p_;
  std::size_t n_;
};

}  // namespace

std::unique_ptr<moga::Problem> make_ctp1(std::size_t n) {
  return std::make_unique<Ctp1>(n);
}

std::unique_ptr<moga::Problem> make_ctp(int kind, std::size_t n) {
  // Canonical parameter sets from the CTP paper.
  switch (kind) {
    case 2:
      return std::make_unique<CtpFamily>(
          2, CtpParams{-0.2 * kPi, 0.2, 10.0, 1.0, 6.0, 1.0}, n);
    case 3:
      return std::make_unique<CtpFamily>(
          3, CtpParams{-0.2 * kPi, 0.1, 10.0, 1.0, 0.5, 1.0}, n);
    case 4:
      return std::make_unique<CtpFamily>(
          4, CtpParams{-0.2 * kPi, 0.75, 10.0, 1.0, 0.5, 1.0}, n);
    default:
      ANADEX_REQUIRE(false, "supported CTP kinds: 2, 3, 4 (and make_ctp1)");
      return nullptr;
  }
}

}  // namespace anadex::problems
