// DTLZ scalable many-objective test problems (Deb, Thiele, Laumanns,
// Zitzler). Included with M = 3 objectives by default: they exercise the
// N-dimensional hypervolume and show the MOEA machinery is not hard-wired
// to two objectives.
#pragma once

#include <memory>

#include "moga/problem.hpp"

namespace anadex::problems {

/// DTLZ1: linear front sum(f) = 0.5, multimodal g. k = n - M + 1 distance
/// variables (canonical k = 5).
std::unique_ptr<moga::Problem> make_dtlz1(std::size_t objectives = 3,
                                          std::size_t k = 5);

/// DTLZ2: spherical front sum(f^2) = 1, unimodal g (canonical k = 10).
std::unique_ptr<moga::Problem> make_dtlz2(std::size_t objectives = 3,
                                          std::size_t k = 10);

}  // namespace anadex::problems
