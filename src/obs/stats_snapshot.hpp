// Point-in-time stats snapshot: a flat, insertion-ordered set of named
// values serialized as one JSON object and published atomically
// (temp-file + rename), so a concurrent reader always sees a complete,
// parseable document. `anadex serve` writes its service-level stats
// (jobs admitted/running/preempted/finished, engine utilization, cache
// hit rates) through this after every slice; see docs/serve.md for the
// schema it emits.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace anadex::obs {

/// A small ordered key/value document. Keys keep insertion order in the
/// output (re-setting a key updates it in place), values are unsigned
/// integers, shortest-round-trip doubles, booleans or strings.
class StatsSnapshot {
 public:
  void set(std::string_view key, std::uint64_t value);
  void set(std::string_view key, double value);
  void set(std::string_view key, bool value);
  void set(std::string_view key, std::string_view value);

  /// The snapshot as one single-line JSON object (trailing newline
  /// included), keys in insertion order.
  std::string to_json() const;

  /// Writes to_json() to `path` via `<path>.tmp` + rename.
  void write(const std::filesystem::path& path) const;

 private:
  struct Entry {
    enum class Kind { U64, F64, Bool, Str };
    std::string key;
    Kind kind = Kind::U64;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    bool boolean = false;
    std::string str;
  };

  Entry& slot(std::string_view key);

  std::vector<Entry> entries_;
};

}  // namespace anadex::obs
