// JSONL trace sink: one self-describing JSON object per event, streamed to
// a file. The format is documented in docs/observability.md and validated
// in CI by scripts/check_trace.py.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/event_sink.hpp"

namespace anadex::obs {

/// Current trace format identifier, written by the trace_start header line.
inline constexpr std::string_view kTraceSchema = "anadex-trace/v1";

/// EventSink that appends one JSON object per line to `path`.
///
///   {"ev":"gen","gen":12,"evals":1300,"feasible":88,...}
///
/// The first line is a `trace_start` header carrying the schema version and
/// configured level; the last (written on destruction) is a `trace_end`
/// with the event count, after which the stream is flushed and closed.
/// Doubles are serialized with shortest-round-trip formatting, so a
/// deterministic run produces a byte-identical trace. Events marked `timed`
/// get a "t" field: monotonic seconds since writer construction.
///
/// `record` is internally synchronized and may be called from several
/// threads, though the library's instrumentation only drives it from the
/// run thread.
class JsonlTraceWriter final : public EventSink {
 public:
  /// Opens `path` (truncating, or appending when `append` is set); requires
  /// the parent directory to exist and `level` != Off. Writes the
  /// trace_start header immediately either way, so an appended trace is a
  /// sequence of self-delimiting header..trailer SEGMENTS — one per writer
  /// lifetime. `anadex serve` appends one segment per job slice;
  /// scripts/check_trace.py --segments validates the framing.
  JsonlTraceWriter(const std::string& path, TraceLevel level, bool append = false);
  ~JsonlTraceWriter() override;

  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  bool enabled(TraceLevel level) const override {
    return level != TraceLevel::Off && static_cast<int>(level) <= static_cast<int>(level_);
  }

  void record(const Event& event) override;
  void flush() override;

  TraceLevel level() const { return level_; }

  /// Events written so far (header and trailer lines included).
  std::uint64_t events_written() const;

 private:
  void write_line(const std::string& line);

  std::string path_;
  TraceLevel level_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::ofstream out_;
  std::uint64_t events_ = 0;
};

/// Appends `value` to `out` as a JSON string literal (quotes included),
/// escaping backslash, quote and control characters. Exposed for tests.
void append_json_string(std::string& out, std::string_view value);

/// Appends `value` with shortest round-trip formatting (std::to_chars);
/// non-finite values are serialized as JSON strings ("inf", "-inf", "nan").
/// Exposed for tests.
void append_json_double(std::string& out, double value);

}  // namespace anadex::obs
