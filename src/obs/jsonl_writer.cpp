#include "obs/jsonl_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace anadex::obs {

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, result.ptr);
}

void append_i64(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, result.ptr);
}

void append_field_value(std::string& out, const Field& field) {
  switch (field.kind) {
    case Field::Kind::U64:
      append_u64(out, field.u64);
      return;
    case Field::Kind::I64:
      append_i64(out, field.i64);
      return;
    case Field::Kind::F64:
      append_json_double(out, field.f64);
      return;
    case Field::Kind::Bool:
      out += field.boolean ? "true" : "false";
      return;
    case Field::Kind::Str:
      append_json_string(out, field.str);
      return;
    case Field::Kind::U64Array:
      out += '[';
      for (std::size_t i = 0; i < field.u64s.size(); ++i) {
        if (i > 0) out += ',';
        append_u64(out, field.u64s[i]);
      }
      out += ']';
      return;
    case Field::Kind::F64Array:
      out += '[';
      for (std::size_t i = 0; i < field.f64s.size(); ++i) {
        if (i > 0) out += ',';
        append_json_double(out, field.f64s[i]);
      }
      out += ']';
      return;
  }
  ANADEX_ASSERT(false, "unknown field kind");
}

}  // namespace

void append_json_string(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no literals for these; a tagged string keeps the line parseable.
    out += value > 0 ? "\"inf\"" : (value < 0 ? "\"-inf\"" : "\"nan\"");
    return;
  }
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, result.ptr);
}

JsonlTraceWriter::JsonlTraceWriter(const std::string& path, TraceLevel level,
                                   bool append)
    : path_(path), level_(level), epoch_(std::chrono::steady_clock::now()),
      out_(path, append ? std::ios::out | std::ios::app : std::ios::out) {
  ANADEX_REQUIRE(level != TraceLevel::Off, "JsonlTraceWriter needs a level above off");
  ANADEX_REQUIRE(out_.good(), "cannot open trace file '" + path + "' for writing");
  std::string line = "{\"ev\":\"trace_start\",\"schema\":";
  append_json_string(line, kTraceSchema);
  line += ",\"level\":";
  append_json_string(line, to_string(level_));
  line += '}';
  write_line(line);
}

JsonlTraceWriter::~JsonlTraceWriter() {
  std::string line = "{\"ev\":\"trace_end\",\"events\":";
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_u64(line, events_ + 1);  // include this trailer line itself
  }
  line += '}';
  write_line(line);
  flush();
}

void JsonlTraceWriter::record(const Event& event) {
  if (!enabled(event.level)) return;

  std::string line;
  line.reserve(64 + event.fields.size() * 24);
  line += "{\"ev\":";
  append_json_string(line, event.name);
  if (event.timed) {
    line += ",\"t\":";
    append_json_double(
        line, std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
                  .count());
  }
  for (const Field& field : event.fields) {
    line += ',';
    append_json_string(line, field.key);
    line += ':';
    append_field_value(line, field);
  }
  line += '}';
  write_line(line);
}

void JsonlTraceWriter::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  ++events_;
}

void JsonlTraceWriter::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_.flush();
}

std::uint64_t JsonlTraceWriter::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

}  // namespace anadex::obs
