#include "obs/stats_snapshot.hpp"

#include <fstream>

#include "common/check.hpp"
#include "obs/jsonl_writer.hpp"

namespace anadex::obs {

StatsSnapshot::Entry& StatsSnapshot::slot(std::string_view key) {
  for (Entry& entry : entries_) {
    if (entry.key == key) return entry;
  }
  entries_.push_back(Entry{});
  entries_.back().key.assign(key);
  return entries_.back();
}

void StatsSnapshot::set(std::string_view key, std::uint64_t value) {
  Entry& entry = slot(key);
  entry.kind = Entry::Kind::U64;
  entry.u64 = value;
}

void StatsSnapshot::set(std::string_view key, double value) {
  Entry& entry = slot(key);
  entry.kind = Entry::Kind::F64;
  entry.f64 = value;
}

void StatsSnapshot::set(std::string_view key, bool value) {
  Entry& entry = slot(key);
  entry.kind = Entry::Kind::Bool;
  entry.boolean = value;
}

void StatsSnapshot::set(std::string_view key, std::string_view value) {
  Entry& entry = slot(key);
  entry.kind = Entry::Kind::Str;
  entry.str.assign(value);
}

std::string StatsSnapshot::to_json() const {
  std::string out = "{";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (i != 0) out += ',';
    append_json_string(out, entry.key);
    out += ':';
    switch (entry.kind) {
      case Entry::Kind::U64:
        out += std::to_string(entry.u64);
        break;
      case Entry::Kind::F64:
        append_json_double(out, entry.f64);
        break;
      case Entry::Kind::Bool:
        out += entry.boolean ? "true" : "false";
        break;
      case Entry::Kind::Str:
        append_json_string(out, entry.str);
        break;
    }
  }
  out += "}\n";
  return out;
}

void StatsSnapshot::write(const std::filesystem::path& path) const {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    ANADEX_REQUIRE(out.is_open(), "stats snapshot: cannot write " + tmp.string());
    out << to_json();
    out.flush();
    ANADEX_REQUIRE(out.good(), "stats snapshot: short write to " + tmp.string());
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace anadex::obs
