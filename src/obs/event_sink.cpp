#include "obs/event_sink.hpp"

#include <string>

#include "common/check.hpp"

namespace anadex::obs {

TraceLevel trace_level_from_string(std::string_view text) {
  if (text == "off") return TraceLevel::Off;
  if (text == "gen") return TraceLevel::Gen;
  if (text == "eval") return TraceLevel::Eval;
  ANADEX_REQUIRE(false,
                 "trace level must be one of off|gen|eval, got '" + std::string(text) + "'");
  return TraceLevel::Off;
}

std::string_view to_string(TraceLevel level) {
  switch (level) {
    case TraceLevel::Off: return "off";
    case TraceLevel::Gen: return "gen";
    case TraceLevel::Eval: return "eval";
  }
  ANADEX_ASSERT(false, "unknown trace level");
  return {};
}

void EventSink::counter(std::string_view name, std::uint64_t value, TraceLevel level) {
  if (!enabled(level)) return;
  const Field fields[] = {str("name", name), u64("value", value)};
  record(Event{"counter", level, false, fields});
}

void EventSink::gauge(std::string_view name, double value, TraceLevel level) {
  if (!enabled(level)) return;
  const Field fields[] = {str("name", name), f64("value", value)};
  record(Event{"gauge", level, false, fields});
}

NullSink& null_sink() {
  static NullSink sink;
  return sink;
}

ScopedTimer::ScopedTimer(EventSink* sink, std::string_view name, TraceLevel level)
    : sink_(sink), name_(name), level_(level) {
  armed_ = sink_ != nullptr && sink_->enabled(level_);
  if (armed_) start_ = std::chrono::steady_clock::now();
}

double ScopedTimer::seconds() const {
  if (!armed_) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

void ScopedTimer::stop() {
  if (!armed_) return;
  armed_ = false;
  const Field fields[] = {str("name", name_),
                          f64("seconds", std::chrono::duration<double>(
                                             std::chrono::steady_clock::now() - start_)
                                             .count())};
  sink_->record(Event{"timer", level_, true, fields});
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace anadex::obs
