// Run-telemetry event model: typed fields, trace levels and the EventSink
// interface every instrumentation site talks to.
//
// Design goals (docs/observability.md):
//   * Zero overhead when disabled. Instrumentation sites hold a nullable
//     `EventSink*` and check `sink && sink->enabled(level)` before building
//     an event, so a run without tracing pays one pointer test per site.
//   * Logical clocks first. Events carry generation / evaluation counters
//     (deterministic for a fixed seed, independent of scheduling); wall time
//     is stamped by the sink only on events marked `timed`, so gen-level
//     traces are bit-identical across thread counts and machines.
//   * Self-describing. Every event is a flat name + field list; the JSONL
//     writer turns each into one standalone JSON object.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string_view>

namespace anadex::obs {

/// How much a run records. Levels are cumulative: Eval implies Gen.
///   Off  — nothing (the default; NullSink behaves like this).
///   Gen  — one record per generation plus run/phase markers; contains only
///          deterministic data (logical clocks, counts, metrics).
///   Eval — everything above plus per-batch evaluation timing (wall-clock,
///          therefore nondeterministic).
enum class TraceLevel : int { Off = 0, Gen = 1, Eval = 2 };

/// Parses "off" / "gen" / "eval" (exact, lowercase). Throws
/// anadex::PreconditionError on anything else.
TraceLevel trace_level_from_string(std::string_view text);

/// Inverse of trace_level_from_string.
std::string_view to_string(TraceLevel level);

/// One key/value pair of an event. Construct via the helpers below; spans
/// and string_views are borrowed, so a Field must not outlive the call that
/// records it.
struct Field {
  enum class Kind { U64, I64, F64, Bool, Str, U64Array, F64Array };

  std::string_view key;
  Kind kind = Kind::U64;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double f64 = 0.0;
  bool boolean = false;
  std::string_view str;
  std::span<const std::uint64_t> u64s;
  std::span<const double> f64s;
};

inline Field u64(std::string_view key, std::uint64_t value) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::U64;
  f.u64 = value;
  return f;
}

inline Field i64(std::string_view key, std::int64_t value) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::I64;
  f.i64 = value;
  return f;
}

inline Field f64(std::string_view key, double value) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::F64;
  f.f64 = value;
  return f;
}

inline Field boolean(std::string_view key, bool value) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::Bool;
  f.boolean = value;
  return f;
}

inline Field str(std::string_view key, std::string_view value) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::Str;
  f.str = value;
  return f;
}

inline Field u64_array(std::string_view key, std::span<const std::uint64_t> values) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::U64Array;
  f.u64s = values;
  return f;
}

inline Field f64_array(std::string_view key, std::span<const double> values) {
  Field f;
  f.key = key;
  f.kind = Field::Kind::F64Array;
  f.f64s = values;
  return f;
}

/// One telemetry event. `name` becomes the JSONL "ev" key; `level` is the
/// minimum trace level at which the event is recorded; `timed` asks the
/// sink to stamp monotonic wall seconds (only ever set on Eval-level
/// events so Gen traces stay deterministic).
struct Event {
  std::string_view name;
  TraceLevel level = TraceLevel::Gen;
  bool timed = false;
  std::span<const Field> fields;
};

/// Destination of telemetry events. Implementations must tolerate `record`
/// being called with events above their configured level (they drop them),
/// but callers should consult `enabled` first so disabled tracing costs
/// nothing. A sink is driven from the run thread; JsonlTraceWriter is
/// additionally internally synchronized.
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// True when events at `level` will be kept. Instrumentation sites gate
  /// on this before gathering any data.
  virtual bool enabled(TraceLevel level) const = 0;

  virtual void record(const Event& event) = 0;

  /// Pushes buffered events to their destination. Also runs on destruction
  /// of concrete sinks.
  virtual void flush() {}

  /// Convenience: records a monotonically increasing count as a
  /// self-describing "counter" event.
  void counter(std::string_view name, std::uint64_t value,
               TraceLevel level = TraceLevel::Gen);

  /// Convenience: records a point-in-time measurement as a "gauge" event.
  void gauge(std::string_view name, double value, TraceLevel level = TraceLevel::Gen);
};

/// Sink that keeps nothing; `enabled` is false for every level so
/// instrumentation short-circuits. Use `null_sink()` for a shared instance.
class NullSink final : public EventSink {
 public:
  bool enabled(TraceLevel) const override { return false; }
  void record(const Event&) override {}
};

/// Shared process-wide NullSink (stateless, safe from any thread).
NullSink& null_sink();

/// Streaming min/mean/max accumulator for batch latencies and similar
/// gauges. Empty accumulators report 0 for every statistic.
struct MinMeanMax {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  void add(double value) {
    if (count == 0) {
      min = max = value;
    } else {
      if (value < min) min = value;
      if (value > max) max = value;
    }
    sum += value;
    ++count;
  }

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

/// Measures a monotonic-clock span and records it as a `timed` event named
/// `name` with a "seconds" field on destruction (or explicitly via stop()).
/// Does nothing when the sink is null or the level is disabled.
class ScopedTimer {
 public:
  ScopedTimer(EventSink* sink, std::string_view name,
              TraceLevel level = TraceLevel::Eval);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed since construction.
  double seconds() const;

  /// Records the event now (idempotent; the destructor becomes a no-op).
  void stop();

 private:
  EventSink* sink_ = nullptr;
  std::string_view name_;
  TraceLevel level_ = TraceLevel::Eval;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace anadex::obs
