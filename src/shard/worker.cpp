#include "shard/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/engine_lease.hpp"
#include "moga/nds.hpp"
#include "moga/selection.hpp"
#include "robust/chaos.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "robust/guarded_problem.hpp"
#include "sacga/island.hpp"
#include "shard/migrants.hpp"

namespace anadex::shard {

std::string shard_checkpoint_name(std::size_t shard) {
  return "shard" + std::to_string(shard) + ".cp";
}

std::string shard_final_name(std::size_t shard) {
  return "shard" + std::to_string(shard) + ".final.cp";
}

std::string shard_stats_name(std::size_t shard) {
  return "shard" + std::to_string(shard) + ".stats";
}

std::string shard_config_digest(const expt::RunSettings& settings,
                                const Topology& topology, std::size_t shard) {
  return expt::run_config_digest(settings) + " shard=" + std::to_string(shard) +
         "/" + std::to_string(topology.shards);
}

void run_shard_worker(const moga::Problem& problem, const WorkerContext& ctx) {
  const expt::RunSettings& s = ctx.settings;
  const Topology& topo = ctx.topology;
  ANADEX_REQUIRE(ctx.shard < topo.shards, "shard worker: shard index out of range");
  const sacga::IslandParams params = expt::detail::island_params_from(s);
  const std::vector<std::size_t> owned = topo.islands_of(ctx.shard);
  const auto owned_index = [&owned](std::size_t island) {
    const auto it = std::lower_bound(owned.begin(), owned.end(), island);
    ANADEX_ASSERT(it != owned.end() && *it == island,
                  "shard worker: island not owned by this shard");
    return static_cast<std::size_t>(it - owned.begin());
  };

  // Guard chain — identical to expt::detail::run_impl's, so retry behaviour
  // and fault accounting are byte-compatible with the solo run.
  std::shared_ptr<const moga::Problem> inner(std::shared_ptr<void>(), &problem);
  std::shared_ptr<robust::FaultInjectingProblem> injector;
  if (s.fault_injection.has_value()) {
    injector =
        std::make_shared<robust::FaultInjectingProblem>(inner, *s.fault_injection);
    inner = injector;
  }
  robust::GuardedProblem guarded(inner, s.guard);
  CancelToken eval_cancel_token;
  const double eval_deadline_s = s.eval_deadline_s.value_or(0.0);
  if (s.eval_deadline_s.has_value()) {
    guarded.set_cancel_token(&eval_cancel_token);
    if (injector != nullptr) injector->set_cancel_token(&eval_cancel_token);
  }

  const auto bounds = guarded.bounds();
  const engine::EngineLease eval(
      guarded, s, nullptr,
      engine::EvalWatchdog{
          s.eval_deadline_s.has_value() ? &eval_cancel_token : nullptr,
          eval_deadline_s});

  robust::CheckpointMeta meta;
  meta.algo = expt::algo_name(s.algo);
  meta.seed = s.seed;
  meta.population = s.population;
  meta.generations = s.generations;
  meta.config = shard_config_digest(s, topo, ctx.shard);

  const std::string cp_path = (ctx.dir / shard_checkpoint_name(ctx.shard)).string();
  const EpochBarrier barrier(ctx.dir, ctx.poll, ctx.fsync);

  std::vector<moga::Population> islands;
  std::vector<Rng> rngs;
  std::size_t next_generation = 0;
  std::size_t evaluations = 0;
  std::size_t migrations = 0;
  moga::RankingScratch ranking;

  // Built-in ResumeMode::Auto over the shard's own chain: a relaunched
  // worker picks up its newest valid slot; with no usable slot it starts
  // fresh. The coordinator seeds these partials when the whole run resumes
  // from a canonical checkpoint (possibly written at a different shard
  // count), so this one code path covers fresh start, crash restart and
  // cross-shard-count resume alike.
  const auto recovered = robust::recover_checkpoint(cp_path);
  if (recovered.has_value()) {
    const robust::Checkpoint& cp = recovered->checkpoint;
    ANADEX_REQUIRE(cp.meta == meta,
                   "shard worker: partial checkpoint '" + recovered->path +
                       "' was written by a different run configuration");
    ANADEX_REQUIRE(cp.island.has_value(),
                   "shard worker: partial checkpoint holds no island state");
    const sacga::IslandState& state = *cp.island;
    ANADEX_REQUIRE(
        state.islands.size() == owned.size() && state.rngs.size() == owned.size(),
        "shard worker: partial checkpoint island count does not match topology");
    islands = state.islands;
    for (const auto& rng_state : state.rngs) {
      rngs.emplace_back(1);
      rngs.back().set_state(rng_state);
    }
    next_generation = state.next_generation;
    evaluations = state.evaluations;
    migrations = state.migrations;
    guarded.set_report(cp.faults);
  } else {
    // Fresh start. Derive EVERY island's private stream exactly as the solo
    // run does — the master RNG is consumed only by the splits, in island
    // order — then draw and evaluate just the owned islands. Each island's
    // genomes come from its own stream, so skipping foreign islands changes
    // nothing the owned islands see.
    Rng master(s.seed);
    std::vector<Rng> all_streams;
    all_streams.reserve(topo.islands);
    for (std::size_t i = 0; i < topo.islands; ++i) {
      all_streams.push_back(master.split());
    }
    islands.resize(owned.size());
    for (std::size_t k = 0; k < owned.size(); ++k) {
      rngs.push_back(all_streams[owned[k]]);
      islands[k].resize(params.island_population);
      for (auto& member : islands[k]) {
        member.genes = moga::random_genome(bounds, rngs[k]);
      }
    }
    for (auto& island : islands) {
      eval.evaluate_members(island);
      evaluations += island.size();
    }
    for (auto& island : islands) {
      auto fronts = ranking.sort(island);
      for (const auto& front : fronts) ranking.crowding(island, front);
    }
  }

  robust::CheckpointWriteOptions cp_options;
  cp_options.keep = s.checkpoint_keep;
  cp_options.fsync = ctx.fsync;
  cp_options.hook = s.checkpoint_write_hook;
  const auto write_partial = [&](std::size_t next_gen_value) {
    robust::Checkpoint cp;
    cp.meta = meta;
    cp.faults = guarded.report();
    sacga::IslandState state;
    state.islands = islands;
    state.rngs.reserve(rngs.size());
    for (const auto& r : rngs) state.rngs.push_back(r.state());
    state.next_generation = next_gen_value;
    state.evaluations = evaluations;
    state.migrations = migrations;
    cp.island = std::move(state);
    robust::write_checkpoint_file(cp_path, cp, cp_options);
    return cp;
  };

  const moga::Preference prefer = [](const moga::Individual& a,
                                     const moga::Individual& b) {
    return moga::crowded_less(a, b);
  };
  const std::size_t n = params.island_population;

  for (std::size_t gen = next_generation; gen < params.generations; ++gen) {
    // Stages 1-3 mirror run_island_ga verbatim, restricted to owned
    // islands: breed from each island's private stream, evaluate ONE batch
    // spanning the shard's offspring, compete survivors per island.
    moga::Population children;
    children.reserve(owned.size() * n);
    for (std::size_t k = 0; k < owned.size(); ++k) {
      auto offspring =
          moga::make_offspring(islands[k], bounds, params.variation, prefer, n, rngs[k]);
      for (auto& genes : offspring) {
        moga::Individual child;
        child.genes = std::move(genes);
        children.push_back(std::move(child));
      }
    }
    eval.evaluate_members(children);
    evaluations += children.size();
    for (std::size_t k = 0; k < owned.size(); ++k) {
      moga::Population pool;
      pool.reserve(2 * n);
      for (auto& p : islands[k]) pool.push_back(std::move(p));
      for (std::size_t j = 0; j < n; ++j) pool.push_back(std::move(children[k * n + j]));
      sacga::island_select_survivors(islands[k], std::move(pool), n, ranking);
    }

    const bool at_epoch = (gen + 1) % params.migration_interval == 0;
    std::size_t epoch = 0;
    if (at_epoch) {
      epoch = (gen + 1) / params.migration_interval;
      // Emigrants for ALL owned islands are selected before ANY island
      // integrates — the order the solo migrate() uses, which matters when
      // a shard owns adjacent ring islands.
      std::vector<moga::Population> outgoing(owned.size());
      for (std::size_t k = 0; k < owned.size(); ++k) {
        outgoing[k] = sacga::island_emigrants(islands[k], params.migrants);
      }
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const std::size_t dest = topo.successor(owned[k]);
        if (topo.shard_of(dest) != ctx.shard) barrier.publish(epoch, owned[k], outgoing[k]);
      }
      if (ctx.chaos.has_value() && ctx.chaos->shard == ctx.shard &&
          ctx.chaos->epoch == epoch) {
        // Mid-exchange: migrants published, nothing integrated — the
        // nastiest instant to die. The relaunched worker replays from its
        // newest partial and republishes byte-identical files.
        throw robust::InjectedCrash("shard chaos: injected crash of shard " +
                                    std::to_string(ctx.shard) + " mid-epoch " +
                                    std::to_string(epoch));
      }
      // Each destination island receives from exactly one ring predecessor,
      // so integration order across destinations is irrelevant; local edges
      // settle in memory, remote ones block on the barrier.
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const std::size_t dest = topo.successor(owned[k]);
        if (topo.shard_of(dest) == ctx.shard) {
          sacga::island_immigrate(islands[owned_index(dest)], std::move(outgoing[k]));
        }
      }
      for (std::size_t k = 0; k < owned.size(); ++k) {
        const std::size_t source = topo.predecessor(owned[k]);
        if (topo.shard_of(source) != ctx.shard) {
          sacga::island_immigrate(islands[k], barrier.collect(epoch, source));
        }
      }
      ++migrations;
    }

    const bool at_cp_barrier =
        s.checkpoint_every > 0 && (gen + 1) % s.checkpoint_every == 0;
    const bool stopping =
        at_epoch && ctx.stop_after_epoch > 0 && epoch >= ctx.stop_after_epoch;
    if (at_cp_barrier || stopping) write_partial(gen + 1);
    if (stopping) return;
  }

  // Completion artifacts, in implication order: the chain's newest slot is
  // the final state (a relaunch of a finished worker becomes a no-op
  // replay), the stats summary lands next, and the final checkpoint's
  // atomic rename is the "this shard completed" signal — whoever sees it
  // can rely on everything written before it.
  const robust::Checkpoint final_cp = write_partial(params.generations);
  const engine::EvalStats stats = eval.stats();
  const std::string stats_path = (ctx.dir / shard_stats_name(ctx.shard)).string();
  const std::string stats_tmp = stats_path + ".tmp";
  {
    std::ofstream os(stats_tmp, std::ios::trunc);
    ANADEX_REQUIRE(os.good(), "shard worker: cannot open '" + stats_tmp + "'");
    os << "anadex-shard-stats v1\n"
       << "stats " << stats.requested << ' ' << stats.evaluated << ' '
       << stats.cache_hits() << '\n';
    os.flush();
    ANADEX_REQUIRE(os.good(), "shard worker: failed writing '" + stats_tmp + "'");
  }
  ANADEX_REQUIRE(std::rename(stats_tmp.c_str(), stats_path.c_str()) == 0,
                 "shard worker: failed renaming '" + stats_path + "' into place");
  robust::CheckpointWriteOptions final_options;
  final_options.keep = 1;
  final_options.fsync = ctx.fsync;
  robust::write_checkpoint_file((ctx.dir / shard_final_name(ctx.shard)).string(),
                                final_cp, final_options);
}

}  // namespace anadex::shard
