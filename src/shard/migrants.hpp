// Migrant exchange files — the on-disk protocol between worker shards.
//
// At every migration epoch each shard publishes, for each owned island
// whose ring successor lives on another shard, one migrant file into the
// exchange spool directory:
//
//   epoch<E>.from<I>.mig
//
//   anadex-migrants v1
//   migrants <epoch> <from_island> <count>
//   anadex-population v2 <count>        (bit-exact block, moga/serialize)
//   end
//   checksum <16 hex digits>
//
// The format reuses the checkpoint idioms (robust/checkpoint.hpp): the
// hex-float v2 population block preserves genes, objectives, violations,
// rank and crowding bit-exactly — migration replaces destination members by
// crowded_less order, so the bookkeeping must travel with the genome — and
// the FNV-1a checksum trailer rejects truncated or corrupted files before
// any individual is trusted.
//
// Durability matches the spool/checkpoint contract: write to a temp file,
// fsync, rename into place, fsync the directory. A migrant file is
// immutable once named (nothing ever claims or deletes it mid-run), and a
// crash-replaying shard rewriting an epoch it already published produces
// byte-identical content, so rewrites are idempotent by construction.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>

#include "moga/individual.hpp"

namespace anadex::shard {

/// Spool file name for island `from_island`'s emigrants at `epoch`.
std::string migrant_file_name(std::size_t epoch, std::size_t from_island);

/// Atomically publishes `migrants` (best first, as selected by
/// sacga::island_emigrants) into `dir`. Safe to call again after a crash
/// replay — the rewrite is byte-identical and the rename atomic. `fsync`
/// gates only the flush-to-disk step (a durability knob, never a result
/// knob): off for benchmarks measuring pure scale-out, on everywhere else.
void write_migrant_file(const std::filesystem::path& dir, std::size_t epoch,
                        std::size_t from_island, const moga::Population& migrants,
                        bool fsync = true);

/// Reads and checksum-verifies a migrant file, requiring its embedded epoch
/// and source island to match the expectation. Throws PreconditionError on
/// corruption, truncation or a mismatched header.
moga::Population read_migrant_file(const std::filesystem::path& path,
                                   std::size_t expect_epoch,
                                   std::size_t expect_from_island);

}  // namespace anadex::shard
