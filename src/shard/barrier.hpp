// Epoch barrier protocol: how shards synchronize at migration epochs.
//
// There is no lock, pipe or shared memory — the barrier is the exchange
// spool directory itself. A shard reaches epoch E when it finishes
// generation E * migration_interval; it then
//
//   1. selects emigrants for ALL owned islands (before any integration,
//      matching the solo migrate() order),
//   2. publishes one migrant file per owned island whose ring successor is
//      remote (atomic write/fsync/rename, shard/migrants.hpp),
//   3. integrates locally-travelling emigrants,
//   4. blocks until the migrant file from each remote ring predecessor at
//      epoch E exists, reads it, and integrates it.
//
// Step 4 is the barrier: a shard cannot leave epoch E before every remote
// predecessor has reached it. Waiting is a bounded existence poll with a
// fixed sleep between attempts — a COUNT of polls, never a deadline read
// from a wall clock, so src/shard stays inside the linter's deterministic
// dirs (scripts/anadex_lint.py). Migrant files are immutable once named and
// kept for the whole run, so a shard restarted from its checkpoint replays
// past epochs against the original files and republishes byte-identical
// ones; the poll budget turns a lost peer (crashed and past its restart
// budget) into a loud PreconditionError instead of a silent hang.
#pragma once

#include <cstddef>
#include <filesystem>

#include "moga/individual.hpp"
#include "shard/topology.hpp"

namespace anadex::shard {

/// Bounded filesystem poll: check, sleep `interval_ms`, repeat up to
/// `budget` times. Defaults allow ~10 minutes of waiting — generous for a
/// peer shard being restarted, finite for one that is truly gone.
struct PollConfig {
  std::size_t interval_ms = 1;
  std::size_t budget = 600000;
};

/// True once `path` exists, polling up to the configured budget; false when
/// the budget is exhausted without the file appearing.
bool await_file(const std::filesystem::path& path, const PollConfig& poll);

/// One shard's view of the exchange barrier.
class EpochBarrier {
 public:
  /// `fsync` gates migrant-file durability (shard/migrants.hpp): off only
  /// for benchmarks that measure pure scale-out.
  EpochBarrier(std::filesystem::path dir, PollConfig poll, bool fsync = true)
      : dir_(std::move(dir)), poll_(poll), fsync_(fsync) {}

  /// Publishes `emigrants` of `island` for `epoch` (atomic, idempotent).
  void publish(std::size_t epoch, std::size_t island,
               const moga::Population& emigrants) const;

  /// Blocks until island `from_island`'s migrant file for `epoch` exists,
  /// then reads and verifies it. Throws PreconditionError when the poll
  /// budget runs out (the publishing shard is gone).
  moga::Population collect(std::size_t epoch, std::size_t from_island) const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  PollConfig poll_;
  bool fsync_ = true;
};

}  // namespace anadex::shard
