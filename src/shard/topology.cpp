#include "shard/topology.hpp"

#include <string>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace anadex::shard {

Topology Topology::make(std::size_t islands, std::size_t shards, std::uint64_t seed) {
  ANADEX_REQUIRE(islands >= 1, "topology: island count must be >= 1");
  ANADEX_REQUIRE(shards >= 1 && shards <= islands,
                 "topology: shards must be in [1, islands] so every shard "
                 "owns at least one island");
  Topology topo;
  topo.islands = islands;
  topo.shards = shards;
  // FNV-1a over a fixed tag plus the decimal seed: stable across platforms
  // and library versions (no std::hash), same hash family as the checkpoint
  // checksum (common/hash.hpp).
  const std::string tag = "anadex-shard-topology " + std::to_string(seed);
  topo.rotation = static_cast<std::size_t>(
      hash_bytes({tag.data(), tag.size()}, 0) % islands);
  return topo;
}

std::size_t Topology::shard_of(std::size_t island) const {
  ANADEX_REQUIRE(island < islands, "topology: island index out of range");
  // Position on the rotated ring, then the standard balanced contiguous
  // split: floor(position * shards / islands) is monotone in position and
  // hits every shard exactly once, so arcs are contiguous and non-empty.
  const std::size_t position = (island + rotation) % islands;
  return position * shards / islands;
}

std::vector<std::size_t> Topology::islands_of(std::size_t shard) const {
  ANADEX_REQUIRE(shard < shards, "topology: shard index out of range");
  std::vector<std::size_t> owned;
  for (std::size_t island = 0; island < islands; ++island) {
    if (shard_of(island) == shard) owned.push_back(island);
  }
  return owned;
}

}  // namespace anadex::shard
