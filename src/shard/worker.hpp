// Shard worker: one process/thread's slice of a sharded island-GA run.
//
// A worker owns a contiguous arc of the island ring (shard/topology.hpp)
// and evolves exactly those islands with the SAME primitives as the solo
// run — sacga::island_select_survivors / island_emigrants /
// island_immigrate and one EngineLease batch per generation — so every
// owned island's byte stream is identical to the same island inside
// run_island_ga. Cross-shard ring edges are exchanged through migrant
// files at migration-epoch barriers (shard/barrier.hpp).
//
// Durability: the worker checkpoints its partial state (owned islands +
// their RNG streams + shard-local counters) into its own rotated v2
// checkpoint chain, `shard<K>.cp`, at the run's checkpoint cadence and at
// the final barrier. Startup ALWAYS attempts recover_checkpoint on that
// chain (ResumeMode::Auto semantics), so restarting a crashed worker is a
// plain relaunch: it resumes from its newest valid slot, replays the tail
// deterministically (republished migrant files are byte-identical, the
// peers' files are still in the spool) and rejoins the barrier.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>

#include "expt/runner.hpp"
#include "moga/problem.hpp"
#include "shard/barrier.hpp"
#include "shard/topology.hpp"

namespace anadex::shard {

/// Chaos seam for the kill-one-shard drill (tests; mirrors ChaosPlan's
/// kill_generation): the named shard throws robust::InjectedCrash at the
/// named epoch AFTER publishing its migrant files but BEFORE integrating —
/// the nastiest instant, mid-exchange. Armed only on a worker's first life;
/// the supervisor's relaunch then proves crash recovery.
struct WorkerChaos {
  std::size_t shard = 0;
  std::size_t epoch = 1;
};

/// Everything a worker needs to run its slice. `settings` is the GLOBAL
/// run configuration (already validated); the worker derives its island
/// parameters through expt::detail::island_params_from, exactly like the
/// solo path.
struct WorkerContext {
  expt::RunSettings settings;
  Topology topology;
  std::size_t shard = 0;
  std::filesystem::path dir;  ///< exchange spool directory
  PollConfig poll;
  /// Stop (with a partial checkpoint) after completing this epoch's
  /// exchange; 0 = run the full generation budget. Test seam for
  /// cross-shard-count resume.
  std::size_t stop_after_epoch = 0;
  /// fsync partial checkpoints and migrant-file durability is always on;
  /// this only gates the partial-checkpoint fsync for benchmarks that
  /// measure pure scale-out (a durability knob, never a result knob).
  bool fsync = true;
  std::optional<WorkerChaos> chaos;
};

/// Spool-relative checkpoint chain base and completion artifacts.
std::string shard_checkpoint_name(std::size_t shard);  ///< "shard<K>.cp"
std::string shard_final_name(std::size_t shard);       ///< "shard<K>.final.cp"
std::string shard_stats_name(std::size_t shard);       ///< "shard<K>.stats"

/// The config digest a shard's partial checkpoints carry: the solo digest
/// (expt::run_config_digest) salted with the shard's identity, so a partial
/// can never be confused with a canonical checkpoint or with a partial of a
/// different shard count.
std::string shard_config_digest(const expt::RunSettings& settings,
                                const Topology& topology, std::size_t shard);

/// Runs the worker to completion (or to `stop_after_epoch`). On success the
/// shard's final state is at `shard<K>.final.cp` and its eval-stats summary
/// at `shard<K>.stats`. Throws on injected chaos, corrupt state or an
/// exhausted barrier budget — the supervisor decides whether to relaunch.
void run_shard_worker(const moga::Problem& problem, const WorkerContext& ctx);

}  // namespace anadex::shard
