// Seed-stable assignment of the island ring to worker shards.
//
// A sharded exploration (docs/sharding.md) splits the island GA's ring of
// islands into contiguous arcs, one arc per worker shard. The split is a
// pure function of (islands, shards, seed): a seed-stable rotation of the
// ring (derived by hashing the seed, never by enumeration order or wall
// clock) followed by a balanced contiguous partition. Because a rotation is
// a ring automorphism, every shard's islands stay contiguous on the
// migration ring, so each shard has exactly one incoming and one outgoing
// remote ring edge per epoch — the minimum possible cross-process traffic.
//
// The topology never changes results: which process evolves an island is an
// execution detail, and the merge (shard/coordinator.hpp) reassembles the
// islands in global index order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anadex::shard {

/// Which shard owns which island. Value type; cheap to copy.
struct Topology {
  std::size_t islands = 0;
  std::size_t shards = 0;
  /// Ring rotation applied before the contiguous split; a seed-stable hash
  /// so different seeds shear the island→shard map differently while the
  /// same seed always reproduces the same assignment.
  std::size_t rotation = 0;

  /// Builds the topology. Requires 1 <= shards <= islands (every shard must
  /// own at least one island) — enforced with ANADEX_REQUIRE.
  static Topology make(std::size_t islands, std::size_t shards, std::uint64_t seed);

  /// The shard owning `island` (island < islands).
  std::size_t shard_of(std::size_t island) const;

  /// The islands owned by `shard`, ascending by global island index.
  std::vector<std::size_t> islands_of(std::size_t shard) const;

  /// Ring neighbours: migrants of `island` travel to successor(island).
  std::size_t successor(std::size_t island) const { return (island + 1) % islands; }
  std::size_t predecessor(std::size_t island) const {
    return (island + islands - 1) % islands;
  }
};

}  // namespace anadex::shard
