#include "shard/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/textio.hpp"
#include "moga/metrics.hpp"
#include "moga/nsga2.hpp"
#include "robust/checkpoint.hpp"
#include "shard/migrants.hpp"
#include "shard/topology.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define ANADEX_SHARD_HAVE_FORK 1
#else
#define ANADEX_SHARD_HAVE_FORK 0
#endif

namespace anadex::shard {

namespace {

namespace fs = std::filesystem;

/// True for files this subsystem owns inside the spool: migrant files,
/// partial chains (+ rotated slots and temps), finals and stats.
bool is_shard_artifact(const std::string& name) {
  if (name.rfind("shard", 0) == 0) return true;
  return name.rfind("epoch", 0) == 0 && name.find(".mig") != std::string::npos;
}

/// Removes spool artifacts, optionally keeping the migrant files (a resume
/// from intact partials replays against the original exchange history).
void wipe_spool(const fs::path& dir, bool keep_migrants) {
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (!is_shard_artifact(name)) continue;
    if (keep_migrants && name.rfind("epoch", 0) == 0) continue;
    doomed.push_back(entry.path());
  }
  std::sort(doomed.begin(), doomed.end());
  for (const auto& path : doomed) fs::remove(path);
}

/// Removes only the completion signals; stale finals/stats must never
/// satisfy a new run.
void wipe_completion_artifacts(const fs::path& dir, std::size_t shards) {
  for (std::size_t k = 0; k < shards; ++k) {
    std::error_code ec;
    fs::remove(dir / shard_final_name(k), ec);
    fs::remove(dir / shard_stats_name(k), ec);
  }
}

struct StartPlan {
  bool resumed = false;
  std::size_t resumed_generation = 0;
  std::string resumed_path;
};

/// Decides how the shards start (fresh / own partials / re-sliced canonical
/// checkpoint) and prepares the spool accordingly.
StartPlan prepare_spool(const expt::RunSettings& settings, const Topology& topo,
                        const fs::path& dir, bool fsync) {
  wipe_completion_artifacts(dir, topo.shards);
  if (settings.resume == expt::ResumeMode::Off) {
    wipe_spool(dir, /*keep_migrants=*/false);
    return {};
  }

  // First preference: every shard's own partial chain is intact for THIS
  // topology (meta carries the shard-salted digest). The partials are at
  // least as new as any canonical snapshot of the same run, and the
  // workers' built-in auto-resume picks them up untouched.
  bool partials_ok = true;
  std::size_t newest = 0, oldest = SIZE_MAX;
  for (std::size_t k = 0; k < topo.shards && partials_ok; ++k) {
    const auto recovered =
        robust::recover_checkpoint((dir / shard_checkpoint_name(k)).string());
    if (!recovered.has_value() || !recovered->checkpoint.island.has_value() ||
        recovered->checkpoint.meta.config != shard_config_digest(settings, topo, k) ||
        recovered->checkpoint.meta.seed != settings.seed ||
        recovered->checkpoint.island->islands.size() != topo.islands_of(k).size()) {
      partials_ok = false;
      break;
    }
    newest = std::max(newest, recovered->checkpoint.island->next_generation);
    oldest = std::min(oldest, recovered->checkpoint.island->next_generation);
  }
  if (partials_ok && settings.resume == expt::ResumeMode::Auto) {
    StartPlan plan;
    plan.resumed = oldest > 0;
    plan.resumed_generation = oldest;
    plan.resumed_path = (dir / shard_checkpoint_name(0)).string();
    return plan;
  }

  // Second preference: the canonical checkpoint chain. Its state covers the
  // FULL island ring, so it can be re-sliced for the current topology — a
  // checkpoint written at 2 shards seeds a 4-shard resume.
  robust::Checkpoint canonical;
  std::string canonical_path;
  if (settings.resume == expt::ResumeMode::Strict) {
    canonical = robust::read_checkpoint_file(settings.checkpoint_path);
    canonical_path = settings.checkpoint_path;
  } else {
    auto recovered = robust::recover_checkpoint(settings.checkpoint_path);
    if (!recovered.has_value()) {
      wipe_spool(dir, /*keep_migrants=*/false);
      return {};  // Auto with nothing usable: start fresh
    }
    canonical = std::move(recovered->checkpoint);
    canonical_path = recovered->path;
  }

  robust::CheckpointMeta solo_meta;
  solo_meta.algo = expt::algo_name(settings.algo);
  solo_meta.seed = settings.seed;
  solo_meta.population = settings.population;
  solo_meta.generations = settings.generations;
  solo_meta.config = expt::run_config_digest(settings);
  ANADEX_REQUIRE(canonical.meta == solo_meta,
                 "sharded resume: canonical checkpoint '" + canonical_path +
                     "' was written by a different run configuration");
  ANADEX_REQUIRE(canonical.island.has_value(),
                 "sharded resume: canonical checkpoint '" + canonical_path +
                     "' holds no island state (wrong algorithm?)");
  const sacga::IslandState& whole = *canonical.island;
  ANADEX_REQUIRE(whole.islands.size() == topo.islands &&
                     whole.rngs.size() == topo.islands,
                 "sharded resume: canonical island count does not match --islands");

  // Re-slice: every shard gets its owned islands (+ their RNG streams) and
  // the shard-local counter shares; the full fault report rides with shard
  // 0 so the eventual merge reproduces solo totals exactly once.
  wipe_spool(dir, /*keep_migrants=*/false);
  robust::CheckpointWriteOptions seed_options;
  seed_options.fsync = fsync;
  for (std::size_t k = 0; k < topo.shards; ++k) {
    robust::Checkpoint partial;
    partial.meta = solo_meta;
    partial.meta.config = shard_config_digest(settings, topo, k);
    if (k == 0) partial.faults = canonical.faults;
    sacga::IslandState slice;
    for (std::size_t island : topo.islands_of(k)) {
      slice.islands.push_back(whole.islands[island]);
      slice.rngs.push_back(whole.rngs[island]);
    }
    slice.next_generation = whole.next_generation;
    slice.migrations = whole.migrations;
    // Evaluation counters: the solo total splits as "shard 0 carries the
    // remainder". Any split summing to the total merges back identically;
    // this one is deterministic and topology-independent to re-slice.
    slice.evaluations = (k == 0) ? whole.evaluations : 0;
    partial.island = std::move(slice);
    robust::write_checkpoint_file((dir / shard_checkpoint_name(k)).string(), partial,
                                  seed_options);
  }
  StartPlan plan;
  plan.resumed = true;
  plan.resumed_generation = whole.next_generation;
  plan.resumed_path = canonical_path;
  return plan;
}

WorkerContext make_context(const expt::RunSettings& settings, const Topology& topo,
                           std::size_t shard, const fs::path& dir,
                           const ShardOptions& options, bool first_life) {
  WorkerContext ctx;
  ctx.settings = settings;
  ctx.topology = topo;
  ctx.shard = shard;
  ctx.dir = dir;
  ctx.poll = options.poll;
  ctx.stop_after_epoch = options.stop_after_epoch;
  ctx.fsync = options.fsync;
  if (first_life) ctx.chaos = options.chaos;
  return ctx;
}

void run_workers_in_threads(const problems::IntegratorProblem& problem,
                            const expt::RunSettings& settings, const Topology& topo,
                            const fs::path& dir, const ShardOptions& options) {
  std::vector<std::string> errors(topo.shards);
  std::mutex io_mutex;
  {
    std::vector<std::thread> supervisors;
    supervisors.reserve(topo.shards);
    for (std::size_t k = 0; k < topo.shards; ++k) {
      supervisors.emplace_back([&, k] {
        for (std::size_t life = 0;; ++life) {
          try {
            run_shard_worker(problem,
                             make_context(settings, topo, k, dir, options, life == 0));
            return;
          } catch (const std::exception& e) {
            if (life >= options.max_restarts_per_shard) {
              errors[k] = e.what();
              return;
            }
            const std::lock_guard<std::mutex> lock(io_mutex);
            std::cout << "restarted shard " << k << " (attempt " << (life + 1) << "/"
                      << options.max_restarts_per_shard << ") after: " << e.what()
                      << "\n";
          }
        }
      });
    }
    for (auto& t : supervisors) t.join();
  }
  for (std::size_t k = 0; k < topo.shards; ++k) {
    ANADEX_REQUIRE(errors[k].empty(), "shard " + std::to_string(k) +
                                          " failed past its restart budget: " +
                                          errors[k]);
  }
}

#if ANADEX_SHARD_HAVE_FORK

std::vector<std::string> worker_argv(const expt::RunSettings& settings,
                                     const fs::path& dir, std::size_t shard,
                                     const ShardOptions& options,
                                     const std::string& binary) {
  std::vector<std::string> argv{binary, "shard-worker"};
  const auto add = [&argv](const std::string& key, const std::string& value) {
    argv.push_back("--" + key);
    argv.push_back(value);
  };
  add("dir", dir.string());
  add("shard", std::to_string(shard));
  add("shards", std::to_string(settings.shards));
  add("spec", options.spec_arg);
  add("population", std::to_string(settings.population));
  add("generations", std::to_string(settings.generations));
  add("partitions", std::to_string(settings.partitions));
  add("islands", std::to_string(settings.islands));
  add("migration-interval", std::to_string(settings.migration_interval));
  add("seed", std::to_string(settings.seed));
  add("threads", std::to_string(settings.threads));
  add("eval-cache", std::to_string(settings.eval_cache));
  add("batch-eval", engine::to_string(settings.batch_eval));
  add("checkpoint-every", std::to_string(settings.checkpoint_every));
  add("checkpoint-keep", std::to_string(settings.checkpoint_keep));
  if (settings.eval_deadline_s.has_value()) {
    add("eval-deadline", textio::exact(*settings.eval_deadline_s));
  }
  return argv;
}

pid_t spawn_worker(const std::vector<std::string>& argv_strings) {
  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (const auto& arg : argv_strings) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  ANADEX_REQUIRE(pid >= 0, "fork failed for shard worker");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // Only reached when exec failed; the child must die without running the
    // parent's destructors or buffered IO.
    ::_exit(127);  // anadex-lint: allow(process-control)
  }
  return pid;
}

void run_workers_in_processes(const expt::RunSettings& settings, const Topology& topo,
                              const fs::path& dir, const ShardOptions& options) {
  ANADEX_REQUIRE(!options.spec_arg.empty(),
                 "process shard mode needs ShardOptions::spec_arg (the CLI "
                 "--spec value) so workers can rebuild the problem");
  ANADEX_REQUIRE(!settings.fault_injection.has_value() &&
                     !settings.checkpoint_write_hook,
                 "process shard mode cannot forward fault-injection configs "
                 "or write hooks across exec; use thread mode");
  const robust::GuardPolicy defaults;
  ANADEX_REQUIRE(settings.guard.max_retries == defaults.max_retries &&
                     settings.guard.perturbation == defaults.perturbation &&
                     settings.guard.penalty_objective == defaults.penalty_objective &&
                     settings.guard.penalty_violation == defaults.penalty_violation &&
                     settings.guard.seed == defaults.seed &&
                     settings.guard.backoff_spin_base == defaults.backoff_spin_base,
                 "process shard mode cannot forward a non-default guard "
                 "policy across exec; use thread mode");

  std::string binary = options.worker_binary;
  if (binary.empty()) {
    std::error_code ec;
    binary = fs::read_symlink("/proc/self/exe", ec).string();
    ANADEX_REQUIRE(!ec && !binary.empty(),
                   "cannot resolve /proc/self/exe for the worker binary; set "
                   "ShardOptions::worker_binary");
  }

  std::map<pid_t, std::size_t> children;  // ordered: deterministic cleanup
  std::vector<std::size_t> restarts(topo.shards, 0);
  for (std::size_t k = 0; k < topo.shards; ++k) {
    const pid_t pid = spawn_worker(worker_argv(settings, dir, k, options, binary));
    children.emplace(pid, k);
  }
  while (!children.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    ANADEX_REQUIRE(pid > 0, "waitpid failed while supervising shard workers");
    const auto it = children.find(pid);
    if (it == children.end()) continue;  // not ours
    const std::size_t k = it->second;
    children.erase(it);
    const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    const bool finished = clean_exit && fs::exists(dir / shard_final_name(k));
    if (finished) continue;
    ANADEX_REQUIRE(restarts[k] < options.max_restarts_per_shard,
                   "shard " + std::to_string(k) +
                       " failed past its restart budget (last status " +
                       std::to_string(status) + ")");
    ++restarts[k];
    std::cout << "restarted shard " << k << " (attempt " << restarts[k] << "/"
              << options.max_restarts_per_shard << ") after worker pid "
              << static_cast<long long>(pid) << " died (status " << status << ")\n";
    const pid_t again = spawn_worker(worker_argv(settings, dir, k, options, binary));
    children.emplace(again, k);
  }
}

#endif  // ANADEX_SHARD_HAVE_FORK

/// Reads "anadex-shard-stats v1\nstats <requested> <distinct> <hits>".
void accumulate_stats(const fs::path& path, expt::RunOutcome& outcome) {
  std::ifstream is(path);
  ANADEX_REQUIRE(is.good(), "missing shard stats file '" + path.string() + "'");
  textio::LineReader reader(is);
  const std::string header = reader.line("header");
  ANADEX_REQUIRE(header == "anadex-shard-stats v1",
                 "bad shard stats header in '" + path.string() + "'");
  const auto toks = reader.record("stats", 3);
  outcome.distinct_evaluations += textio::parse_u64(toks[2]);
  outcome.cache_hits += textio::parse_u64(toks[3]);
}

}  // namespace

fs::path resolve_shard_dir(const expt::RunSettings& settings) {
  if (!settings.shard_dir.empty()) return fs::path(settings.shard_dir);
  ANADEX_REQUIRE(!settings.checkpoint_path.empty(),
                 "sharded run: set shard_dir (--shard-dir) or checkpoint_path "
                 "(--checkpoint) to locate the exchange spool");
  return fs::path(settings.checkpoint_path + ".spool");
}

expt::RunOutcome run_sharded(const problems::IntegratorProblem& problem,
                             const expt::RunSettings& settings,
                             const ShardOptions& options) {
  expt::validate_run_settings(settings);
  ANADEX_REQUIRE(settings.algo == expt::Algo::Island,
                 "run_sharded: sharded execution supports the island "
                 "algorithm only (--algo island)");
  ANADEX_REQUIRE(settings.shards >= 1, "run_sharded: shards must be >= 1");
  ANADEX_REQUIRE(!settings.on_generation && settings.stop == nullptr,
                 "run_sharded: per-generation callbacks and stop tokens are "
                 "process-local and cannot span shards; interrupt the run and "
                 "--resume auto instead");
  ANADEX_REQUIRE(!settings.record_history && settings.trace_path.empty(),
                 "run_sharded: history/tracing sample the global population, "
                 "which no single shard holds");
  if (options.stop_after_epoch > 0 || options.chaos.has_value()) {
    ANADEX_REQUIRE(options.mode == LaunchMode::Threads,
                   "run_sharded: stop_after_epoch/chaos are thread-mode test "
                   "seams");
  }

  const auto start = std::chrono::steady_clock::now();
  const Topology topo =
      Topology::make(settings.islands, settings.shards, settings.seed);
  const fs::path dir = resolve_shard_dir(settings);
  fs::create_directories(dir);
  const StartPlan plan = prepare_spool(settings, topo, dir, options.fsync);

  if (options.mode == LaunchMode::Threads) {
    run_workers_in_threads(problem, settings, topo, dir, options);
  } else {
#if ANADEX_SHARD_HAVE_FORK
    run_workers_in_processes(settings, topo, dir, options);
#else
    ANADEX_REQUIRE(false,
                   "process shard mode requires fork/exec (unix); use thread "
                   "mode on this platform");
#endif
  }

  // Merge. Completed runs read the shard finals; an epoch-stopped run (test
  // seam) reads the partial chains, every one parked at the stop barrier.
  const bool interrupted = options.stop_after_epoch > 0;
  sacga::IslandState merged;
  merged.islands.resize(topo.islands);
  merged.rngs.resize(topo.islands);
  robust::FaultReport merged_faults;
  expt::RunOutcome outcome;
  bool first_shard = true;
  std::size_t migrations = 0;
  for (std::size_t k = 0; k < topo.shards; ++k) {
    robust::Checkpoint cp;
    if (interrupted) {
      auto recovered =
          robust::recover_checkpoint((dir / shard_checkpoint_name(k)).string());
      ANADEX_REQUIRE(recovered.has_value(),
                     "shard " + std::to_string(k) + " left no partial checkpoint");
      cp = std::move(recovered->checkpoint);
    } else {
      cp = robust::read_checkpoint_file((dir / shard_final_name(k)).string());
    }
    ANADEX_REQUIRE(cp.meta.config == shard_config_digest(settings, topo, k),
                   "shard " + std::to_string(k) +
                       " state belongs to a different run configuration");
    ANADEX_REQUIRE(cp.island.has_value(), "shard state holds no island block");
    sacga::IslandState& state = *cp.island;
    const std::vector<std::size_t> owned = topo.islands_of(k);
    ANADEX_REQUIRE(state.islands.size() == owned.size() &&
                       state.rngs.size() == owned.size(),
                   "shard state island count does not match the topology");
    for (std::size_t i = 0; i < owned.size(); ++i) {
      merged.islands[owned[i]] = std::move(state.islands[i]);
      merged.rngs[owned[i]] = state.rngs[i];
    }
    if (first_shard) {
      merged.next_generation = state.next_generation;
      migrations = state.migrations;
      first_shard = false;
    } else {
      ANADEX_REQUIRE(state.next_generation == merged.next_generation &&
                         state.migrations == migrations,
                     "shard states disagree on the generation barrier — the "
                     "spool mixes runs; wipe it and restart");
    }
    merged.evaluations += state.evaluations;
    merged_faults.merge(cp.faults);
    if (!interrupted) accumulate_stats(dir / shard_stats_name(k), outcome);
  }
  merged.migrations = migrations;

  // Epilogue — the same math as expt::detail::run_impl over the reassembled
  // global population, so every derived metric matches the solo run.
  moga::Population combined;
  for (const auto& island : merged.islands) {
    combined.insert(combined.end(), island.begin(), island.end());
  }
  const moga::Population front = moga::extract_global_front(combined);
  outcome.front = expt::to_front_samples(front);
  std::sort(outcome.front.begin(), outcome.front.end(),
            [](const expt::FrontSample& a, const expt::FrontSample& b) {
              return a.cload_f < b.cload_f;
            });
  outcome.front_area = expt::front_area_of(outcome.front);
  outcome.hypervolume_norm = expt::hypervolume_of(outcome.front);
  std::vector<double> loads;
  loads.reserve(outcome.front.size());
  for (const auto& sample : outcome.front) loads.push_back(sample.cload_f);
  outcome.clustering_4to5 = moga::clustering_fraction(loads, 4e-12, 5e-12);
  if (!loads.empty()) {
    const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
    outcome.load_span_pf = (*hi - *lo) * 1e12;
  }
  outcome.evaluations = merged.evaluations;
  outcome.generations = merged.next_generation;
  outcome.faults = merged_faults;
  outcome.interrupted = interrupted;
  outcome.resumed_from_generation = plan.resumed ? plan.resumed_generation : 0;
  if (plan.resumed) outcome.resumed_from_path = plan.resumed_path;

  // Canonical checkpoint: the UNSALTED solo digest over the merged state —
  // byte-identical to the solo run's final slot, resumable solo or sharded
  // at any shard count.
  if (!settings.checkpoint_path.empty()) {
    robust::Checkpoint canonical;
    canonical.meta.algo = expt::algo_name(settings.algo);
    canonical.meta.seed = settings.seed;
    canonical.meta.population = settings.population;
    canonical.meta.generations = settings.generations;
    canonical.meta.config = expt::run_config_digest(settings);
    canonical.faults = merged_faults;
    canonical.island = std::move(merged);
    robust::CheckpointWriteOptions cp_options;
    cp_options.keep = settings.checkpoint_keep;
    cp_options.fsync = options.fsync;
    robust::write_checkpoint_file(settings.checkpoint_path, canonical, cp_options);
  }

  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return outcome;
}

expt::RunOutcome run_sharded(const expt::RunSettings& settings,
                             const ShardOptions& options) {
  const problems::IntegratorProblem problem(settings.spec);
  return run_sharded(problem, settings, options);
}

}  // namespace anadex::shard
