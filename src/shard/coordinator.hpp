// Sharded exploration coordinator: N workers, one deterministic answer.
//
// run_sharded executes an island-GA RunSettings across `settings.shards`
// workers (threads in-process, or forked `anadex shard-worker` processes),
// supervises them — a crashed worker is relaunched and auto-resumes from
// its own checkpoint chain — and merges the shard finals into exactly the
// RunOutcome and canonical checkpoint bytes the solo run would produce:
//
//   - islands are reassembled in global index order, so the combined
//     population (and therefore the extracted front and every derived
//     metric) is byte-identical to run_island_ga's;
//   - evaluation counters sum per island, so totals match;
//   - fault reports merge with FaultReport::merge's lowest-genome-hash
//     canonical sample, so the merged report equals the solo report
//     independent of shard count or arrival order;
//   - the canonical checkpoint written at `settings.checkpoint_path`
//     carries the UNSALTED solo config digest, so `anadex explore --resume`
//     — solo or sharded, at ANY shard count — continues from it.
//
// See docs/sharding.md for the full protocol and failure semantics.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>

#include "expt/runner.hpp"
#include "problems/integrator_problem.hpp"
#include "shard/barrier.hpp"
#include "shard/worker.hpp"

namespace anadex::shard {

/// How workers are executed.
enum class LaunchMode {
  Threads,    ///< std::thread workers in this process (tests, benches)
  Processes,  ///< fork + exec `<worker_binary> shard-worker ...` (the CLI)
};

struct ShardOptions {
  LaunchMode mode = LaunchMode::Threads;
  /// Processes mode: binary to exec for workers; empty = this executable
  /// (/proc/self/exe). The binary must understand `anadex shard-worker`.
  std::string worker_binary;
  /// Processes mode: the CLI `--spec` value workers rebuild the problem
  /// from ("chosen" or "1".."20"). Required in Processes mode; process
  /// workers are limited to CLI-expressible settings (default guard policy,
  /// no fault injection, no write hooks) — REQUIREd at launch.
  std::string spec_arg;
  PollConfig poll;
  /// Relaunch budget per shard; exceeding it fails the run loudly.
  std::size_t max_restarts_per_shard = 5;
  /// Test seam (Threads only): stop every worker, with a partial
  /// checkpoint, after this migration epoch; the merged outcome is
  /// `interrupted` and the canonical checkpoint resumable at any shard
  /// count. 0 = run to completion.
  std::size_t stop_after_epoch = 0;
  /// Test seam (Threads only): kill-one-shard chaos drill (worker.hpp).
  std::optional<WorkerChaos> chaos;
  /// fsync durability for partial/canonical checkpoints (migrant files are
  /// always synced). Off only for benchmarks measuring pure scale-out.
  bool fsync = true;
};

/// The exchange spool directory a sharded run of `settings` uses:
/// `settings.shard_dir` when set, else "<checkpoint_path>.spool".
std::filesystem::path resolve_shard_dir(const expt::RunSettings& settings);

/// Runs `settings` sharded and returns the merged outcome. `settings` must
/// validate, use Algo::Island, and leave on_generation / stop / history /
/// tracing unset (enforced with ANADEX_REQUIRE). Resume semantics follow
/// `settings.resume`: Off wipes the spool and starts fresh; Auto prefers
/// the shards' own partial chains, falls back to the canonical checkpoint
/// chain (re-slicing it for the current topology — a checkpoint written at
/// 2 shards resumes at 4), and starts fresh when neither exists; Strict
/// requires the canonical checkpoint to load.
expt::RunOutcome run_sharded(const problems::IntegratorProblem& problem,
                             const expt::RunSettings& settings,
                             const ShardOptions& options);

/// Convenience overload: builds the problem from settings.spec.
expt::RunOutcome run_sharded(const expt::RunSettings& settings,
                             const ShardOptions& options);

}  // namespace anadex::shard
