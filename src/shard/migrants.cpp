#include "shard/migrants.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/textio.hpp"
#include "moga/serialize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ANADEX_SHARD_HAVE_FSYNC 1
#else
#define ANADEX_SHARD_HAVE_FSYNC 0
#endif

namespace anadex::shard {

namespace {

constexpr const char* kHeader = "anadex-migrants v1";

std::string checksum_hex(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << hash;
  return os.str();
}

void sync_file(const std::string& path) {
#if ANADEX_SHARD_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  ANADEX_REQUIRE(fd >= 0, "cannot open migrant file for fsync: '" + path + "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  ANADEX_REQUIRE(rc == 0, "fsync failed for migrant file '" + path + "'");
#else
  (void)path;
#endif
}

void sync_parent_dir(const std::string& path) {
#if ANADEX_SHARD_HAVE_FSYNC
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // e.g. a filesystem without directory fds; best effort
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

std::string migrant_file_name(std::size_t epoch, std::size_t from_island) {
  return "epoch" + std::to_string(epoch) + ".from" + std::to_string(from_island) +
         ".mig";
}

void write_migrant_file(const std::filesystem::path& dir, std::size_t epoch,
                        std::size_t from_island, const moga::Population& migrants,
                        bool fsync) {
  std::ostringstream body;
  body << kHeader << '\n';
  body << "migrants " << epoch << ' ' << from_island << ' ' << migrants.size() << '\n';
  moga::save_population_exact(body, migrants);
  body << "end\n";
  const std::string bytes = body.str();

  const std::string path = (dir / migrant_file_name(epoch, from_island)).string();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ANADEX_REQUIRE(os.good(), "cannot open migrant temp file '" + tmp + "'");
    os << bytes << "checksum " << checksum_hex(hash_bytes(bytes, 0)) << '\n';
    os.flush();
    ANADEX_REQUIRE(os.good(), "failed writing migrant temp file '" + tmp + "'");
  }
  if (fsync) sync_file(tmp);
  ANADEX_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "failed renaming migrant file into place: '" + path + "'");
  if (fsync) sync_parent_dir(path);
}

moga::Population read_migrant_file(const std::filesystem::path& path,
                                   std::size_t expect_epoch,
                                   std::size_t expect_from_island) {
  std::ifstream is(path);
  ANADEX_REQUIRE(is.good(), "cannot open migrant file '" + path.string() + "'");
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string content = buffer.str();

  const std::size_t end_mark = content.rfind("\nend\n");
  ANADEX_REQUIRE(end_mark != std::string::npos,
                 "migrant file '" + path.string() + "': missing 'end' record "
                 "(truncated write?)");
  const std::size_t body_size = end_mark + 5;  // through "end\n"
  const std::string trailer = content.substr(body_size);
  ANADEX_REQUIRE(trailer.rfind("checksum ", 0) == 0,
                 "migrant file '" + path.string() + "': missing checksum trailer");
  const std::string expected = checksum_hex(hash_bytes({content.data(), body_size}, 0));
  const std::string found = trailer.substr(9, 16);
  ANADEX_REQUIRE(found == expected,
                 "migrant file '" + path.string() + "': checksum mismatch (file "
                 "corrupted): expected " + expected + ", found " + found);

  std::istringstream body(content.substr(0, body_size));
  textio::LineReader reader(body);
  const std::string header = reader.line("header");
  ANADEX_REQUIRE(header == kHeader,
                 "migrant file '" + path.string() + "': bad header '" + header + "'");
  const auto toks = reader.record("migrants", 3);
  const std::size_t epoch = textio::parse_u64(toks[1]);
  const std::size_t from_island = textio::parse_u64(toks[2]);
  const std::size_t count = textio::parse_u64(toks[3]);
  ANADEX_REQUIRE(epoch == expect_epoch && from_island == expect_from_island,
                 "migrant file '" + path.string() + "': header names epoch " +
                     std::to_string(epoch) + " island " + std::to_string(from_island) +
                     ", expected epoch " + std::to_string(expect_epoch) + " island " +
                     std::to_string(expect_from_island));
  moga::Population migrants = moga::load_population_exact(body);
  ANADEX_REQUIRE(migrants.size() == count,
                 "migrant file '" + path.string() + "': count mismatch");
  return migrants;
}

}  // namespace anadex::shard
