#include "shard/barrier.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "shard/migrants.hpp"

namespace anadex::shard {

bool await_file(const std::filesystem::path& path, const PollConfig& poll) {
  for (std::size_t attempt = 0; attempt <= poll.budget; ++attempt) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) return true;
    if (attempt < poll.budget) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll.interval_ms));
    }
  }
  return false;
}

void EpochBarrier::publish(std::size_t epoch, std::size_t island,
                           const moga::Population& emigrants) const {
  write_migrant_file(dir_, epoch, island, emigrants, fsync_);
}

moga::Population EpochBarrier::collect(std::size_t epoch,
                                       std::size_t from_island) const {
  const std::filesystem::path path = dir_ / migrant_file_name(epoch, from_island);
  ANADEX_REQUIRE(await_file(path, poll_),
                 "epoch barrier: migrant file '" + path.string() +
                     "' never appeared — the shard owning island " +
                     std::to_string(from_island) +
                     " is gone (crashed past its restart budget?)");
  return read_migrant_file(path, epoch, from_island);
}

}  // namespace anadex::shard
