#include "device/characterize.hpp"

#include <string>

#include "common/check.hpp"

namespace anadex::device {

namespace {

double sweep_value(const Sweep& sweep, std::size_t index) {
  if (sweep.points == 1) return sweep.lo;
  const double t = static_cast<double>(index) / static_cast<double>(sweep.points - 1);
  return sweep.lo + (sweep.hi - sweep.lo) * t;
}

void validate(const Sweep& sweep) {
  ANADEX_REQUIRE(sweep.points >= 1, "sweep needs at least one point");
  ANADEX_REQUIRE(sweep.lo <= sweep.hi, "sweep bounds must be ordered");
}

}  // namespace

Series transfer_curve(const DeviceParams& params, const Geometry& geometry, double vds,
                      const Sweep& vgs_sweep) {
  validate(vgs_sweep);
  Series series("ID(VGS) at VDS=" + std::to_string(vds),
                {"vgs", "id", "gm", "gm_over_id"});
  for (std::size_t i = 0; i < vgs_sweep.points; ++i) {
    const double vgs = sweep_value(vgs_sweep, i);
    const auto op = solve_op(params, geometry, Bias{vgs, vds, 0.0});
    const double gm_over_id = op.id > 0.0 ? op.gm / op.id : 0.0;
    series.add_row({vgs, op.id, op.gm, gm_over_id});
  }
  return series;
}

Series output_curves(const DeviceParams& params, const Geometry& geometry,
                     std::span<const double> vgs_values, const Sweep& vds_sweep) {
  validate(vds_sweep);
  ANADEX_REQUIRE(!vgs_values.empty(), "need at least one VGS value");
  std::vector<std::string> columns{"vds"};
  for (double vgs : vgs_values) columns.push_back("id@vgs=" + std::to_string(vgs));
  Series series("ID(VDS) family", std::move(columns));
  for (std::size_t i = 0; i < vds_sweep.points; ++i) {
    const double vds = sweep_value(vds_sweep, i);
    std::vector<double> row{vds};
    for (double vgs : vgs_values) {
      row.push_back(drain_current(params, geometry, Bias{vgs, vds, 0.0}));
    }
    series.add_row(row);
  }
  return series;
}

Series gm_over_id_profile(const DeviceParams& params, const Geometry& geometry, double vds,
                          const Sweep& vgs_sweep) {
  validate(vgs_sweep);
  Series series("gm/ID profile", {"vov", "gm_over_id", "id_per_wl"});
  const double wl = geometry.w / geometry.l;
  for (std::size_t i = 0; i < vgs_sweep.points; ++i) {
    const double vgs = sweep_value(vgs_sweep, i);
    const auto op = solve_op(params, geometry, Bias{vgs, vds, 0.0});
    if (op.id <= 0.0) continue;
    series.add_row({op.vov, op.gm / op.id, op.id / wl});
  }
  return series;
}

Series corner_transfer_curves(const Process& process, Type type, const Geometry& geometry,
                              double vds, const Sweep& vgs_sweep) {
  validate(vgs_sweep);
  Series series("corner transfer curves",
                {"vgs", "id@TT", "id@FF", "id@SS", "id@FS", "id@SF"});
  for (std::size_t i = 0; i < vgs_sweep.points; ++i) {
    const double vgs = sweep_value(vgs_sweep, i);
    std::vector<double> row{vgs};
    for (Corner corner : kAllCorners) {
      const Process shifted = process.at_corner(corner);
      row.push_back(drain_current(shifted.params(type), geometry, Bias{vgs, vds, 0.0}));
    }
    series.add_row(row);
  }
  return series;
}

}  // namespace anadex::device
