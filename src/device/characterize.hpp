// Device characterization sweeps: the I-V and gm/ID views an analog
// designer uses to sanity-check a device model before trusting an
// optimizer built on it. All results come back as common::Series tables
// ready for printing or CSV export.
#pragma once

#include <span>

#include "common/series.hpp"
#include "device/mosfet.hpp"
#include "device/process.hpp"

namespace anadex::device {

/// Sweep description: linear grid from lo to hi inclusive.
struct Sweep {
  double lo = 0.0;
  double hi = 1.8;
  std::size_t points = 37;
};

/// Transfer characteristic ID(VGS) at fixed VDS, with gm and gm/ID columns.
/// Columns: vgs, id, gm, gm_over_id.
Series transfer_curve(const DeviceParams& params, const Geometry& geometry, double vds,
                      const Sweep& vgs_sweep);

/// Output characteristics ID(VDS) for a list of VGS values.
/// Columns: vds, id@vgs0, id@vgs1, ...
Series output_curves(const DeviceParams& params, const Geometry& geometry,
                     std::span<const double> vgs_values, const Sweep& vds_sweep);

/// gm/ID versus inversion level (swept via VGS) — the canonical sizing
/// chart. Columns: vov, gm_over_id, id_per_wl (current density A per W/L).
Series gm_over_id_profile(const DeviceParams& params, const Geometry& geometry, double vds,
                          const Sweep& vgs_sweep);

/// Corner comparison of the transfer curve: columns vgs, id@TT, id@FF,
/// id@SS, id@FS, id@SF for the given polarity.
Series corner_transfer_curves(const Process& process, Type type, const Geometry& geometry,
                              double vds, const Sweep& vgs_sweep);

}  // namespace anadex::device
