// SoA lane kernels for the eqn-(1) MOSFET model — W devices per call.
//
// These are op-for-op transliterations of the scalar routines in mosfet.cpp
// into select form (branches become ternaries), laid out as plain loops
// over W-sized arrays so the autovectorizer can spread lanes across SIMD
// registers under -O3 (-march=native in the CI simd/bench jobs). Every
// floating-point expression tree is copied from the scalar code verbatim:
// with -ffp-contract=off (set globally) and IEEE-754 basic operations
// (+,-,*,/,sqrt,min,max are correctly rounded whether issued scalar or
// packed), the lane results are BIT-IDENTICAL to the scalar oracle. The
// golden-equivalence suite (tests/scint/batch_equivalence_test.cpp)
// enforces this for every spec set, width and random genome.
//
// Preconditions are the caller's job: the batch layer pre-screens genomes
// (positive geometry / bias current, see IntegratorProblem::evaluate_lanes)
// so the ANADEX_REQUIRE checks of the scalar path cannot fire here. Lanes
// that the scalar model handles by branching (cutoff, triode) are computed
// unconditionally and selected; discarded intermediate values may be
// inf/NaN, which IEEE arithmetic defines fully (no UB, no traps).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "common/fastmath.hpp"
#include "device/mosfet.hpp"
#include "device/process.hpp"

// Lane-loop vectorization hints. Every lane iteration is independent by
// construction, but GCC's if-converter rejects the masked Newton commit
// ("control flow in loop") unless told the loop is simd-safe. Built with
// -fopenmp-simd — a pure vectorizer hint, no OpenMP runtime is linked and
// no floating-point semantics change (the only reduction is an exact 0/1
// lane count, immune to reassociation) — these pragmas unlock packed
// code; without the flag they are ignored and the kernels stay correct,
// just scalar.
#define ANADEX_PRAGMA_(x) _Pragma(#x)
#define ANADEX_LANE_SIMD ANADEX_PRAGMA_(omp simd)
#define ANADEX_LANE_SIMD_REDUCE(var) ANADEX_PRAGMA_(omp simd reduction(+ : var))

namespace anadex::device {

/// SoA operating points for W lanes (mirror of device::OperatingPoint).
/// `region` holds the Region enum value per lane.
template <std::size_t W>
struct OpLanes {
  std::uint8_t region[W];
  double id[W];
  double gm[W];
  double gds[W];
  double vov[W];
  double vdsat[W];
  double vt[W];
};

namespace lanes_detail {

// The mobility exponent n is a PROCESS parameter (1.0 NMOS / 2.0 PMOS per
// paper eqn 1), uniform across lanes. pow_rt()'s runtime dispatch — and
// its std::pow fallback, an opaque libm call — inside a lane loop defeats
// the autovectorizer ("control flow in loop"), so the kernels are
// instantiated per exponent mode: NExp = 1, 2, or 0 (the generic pow_rt
// fallback, kept for exotic process descriptions; that instantiation stays
// scalar, which only costs speed, never correctness). Each specialization
// reproduces pow_rt's expression tree for its exponent exactly.

/// theta2 * pow_rt(u, n) — the mobility denominator's second term.
template <int NExp>
inline double lane_mob_term2(const DeviceParams& p, double u) {
  if constexpr (NExp == 1) {
    return p.theta2 * u;
  } else if constexpr (NExp == 2) {
    return p.theta2 * (u * u);
  } else {
    return p.theta2 * pow_rt(u, p.n_exp);
  }
}

/// The n-dependent term of the denominator derivative: theta2 for n = 1,
/// theta2 * n * pow_rt(u, n-1) otherwise (mosfet.cpp's exact branches).
template <int NExp>
inline double lane_dmob_term2(const DeviceParams& p, double u) {
  if constexpr (NExp == 1) {
    return p.theta2;
  } else if constexpr (NExp == 2) {
    return p.theta2 * p.n_exp * u;  // pow_rt(u, 1.0) == u
  } else {
    return p.theta2 * p.n_exp * pow_rt(u, p.n_exp - 1.0);
  }
}

/// threshold(): vt0 + gamma*(sqrt(phi2f + vsb) - sqrt(phi2f)).
inline double lane_threshold(const DeviceParams& p, double vsb) {
  return p.vt0 + p.gamma * (std::sqrt(p.phi2f + vsb) - std::sqrt(p.phi2f));
}

/// drain_current() in select form: cutoff / triode / saturation all
/// computed, the scalar code's branch outcomes selected. Expression trees
/// match mosfet.cpp's mobility_denominator / vdsat_of / drain_current.
template <int NExp>
inline double lane_drain_current(const DeviceParams& p, double w, double l, double vgs,
                                 double vds, double vt) {
  const double vov = vgs - vt;
  const double k = 0.5 * p.mu_cox * w / l;
  const double lambda = p.lambda_per_m / l;
  const double el = p.esat * l;
  const double u = std::max(vgs + vt - p.vk, 0.0);
  const double mob = 1.0 + p.theta1 * det_cbrt(u) + lane_mob_term2<NExp>(p, u);
  const double vdsat = el * vov / (el + vov);
  const double sat = k * vov * vov * (1.0 + lambda * vds) / ((1.0 + vov / el) * mob);
  const double sat_at_edge = k * vov * vov / ((1.0 + vov / el) * mob);
  const double shape = vds / vdsat * (2.0 - vds / vdsat);
  const double tri = sat_at_edge * shape * (1.0 + lambda * vds);
  const double id = vds >= vdsat ? sat : tri;
  return vov <= 0.0 ? 0.0 : id;
}

/// The inner step of vgs_for_current's Newton loop: saturation-region id
/// and gm at vds_eff = max(vds, vdsat). The solver constructs its bias as
/// Bias{vgs, max(vds, vdsat), vsb}, which lands drain_current/solve_op on
/// their saturation branches (vds >= vdsat holds exactly, the vdsat
/// expressions being identical); this helper is those two branches fused,
/// with the shared det_cbrt computed once.
template <int NExp>
inline void lane_sat_id_gm(const DeviceParams& p, double w, double l, double vt, double vgs,
                           double vds_request, double& id_out, double& gm_out) {
  const double vov = vgs - vt;
  const double el = p.esat * l;
  const double vdsat = el * vov / (el + vov);
  const double vds = std::max(vds_request, vdsat);
  const double k = 0.5 * p.mu_cox * w / l;
  const double lambda = p.lambda_per_m / l;
  const double u = vgs + vt - p.vk;
  const double uc = std::max(u, 0.0);
  const double c = det_cbrt(uc);
  const double mob = 1.0 + p.theta1 * c + lane_mob_term2<NExp>(p, uc);
  const double id_sat = k * vov * vov * (1.0 + lambda * vds) / ((1.0 + vov / el) * mob);
  const double id = vov <= 0.0 ? 0.0 : id_sat;

  // mobility_denominator_derivative: uses the UNclamped u, masked to 0 for
  // u <= 0 (for u > 0, uc == u so the shared cbrt is the same value).
  const double d = p.theta1 / 3.0 / (c * c) + lane_dmob_term2<NExp>(p, u);
  const double dmob = u <= 0.0 ? 0.0 : d;
  const double dlog = 2.0 / vov - (1.0 / el) / (1.0 + vov / el) - dmob / mob;
  const double gm = id * dlog;

  id_out = id;
  gm_out = vov <= 0.0 ? 0.0 : gm;
}

/// std::clamp's exact expression tree.
inline double lane_clamp(double v, double lo, double hi) {
  return v < lo ? lo : (hi < v ? hi : v);
}

/// Picks the NExp instantiation for a process' exponent: 1 and 2 get the
/// vectorizable kernels, anything else the generic scalar fallback.
template <typename F>
inline decltype(auto) dispatch_n_exp(const DeviceParams& p, F&& f) {
  if (p.n_exp == 1.0) return f(std::integral_constant<int, 1>{});
  if (p.n_exp == 2.0) return f(std::integral_constant<int, 2>{});
  return f(std::integral_constant<int, 0>{});
}

}  // namespace lanes_detail

namespace lanes_detail {

template <std::size_t W, int NExp>
inline void drain_current_lanes_impl(const DeviceParams& p, const double* w, const double* l,
                                     const double* vgs, const double* vds, const double* vsb,
                                     double* id_out) {
  ANADEX_LANE_SIMD
  for (std::size_t k = 0; k < W; ++k) {
    const double vt = lane_threshold(p, vsb[k]);
    id_out[k] = lane_drain_current<NExp>(p, w[k], l[k], vgs[k], vds[k], vt);
  }
}

template <std::size_t W, int NExp>
inline void solve_op_lanes_impl(const DeviceParams& p, const double* w, const double* l,
                                const double* vgs, const double* vds, const double* vsb,
                                OpLanes<W>& out) {
  ANADEX_LANE_SIMD
  for (std::size_t k = 0; k < W; ++k) {
    const double vt = lane_threshold(p, vsb[k]);
    const double vov = vgs[k] - vt;
    const double el = p.esat * l[k];
    const double vdsat = el * vov / (el + vov);
    const double id = lane_drain_current<NExp>(p, w[k], l[k], vgs[k], vds[k], vt);

    const double lambda = p.lambda_per_m / l[k];
    const double u = vgs[k] + vt - p.vk;
    const double uc = std::max(u, 0.0);
    const double c = det_cbrt(uc);
    const double mob = 1.0 + p.theta1 * c + lane_mob_term2<NExp>(p, uc);
    const double d = p.theta1 / 3.0 / (c * c) + lane_dmob_term2<NExp>(p, u);
    const double dmob = u <= 0.0 ? 0.0 : d;

    // Saturation branch: analytic derivatives.
    const double dlog = 2.0 / vov - (1.0 / el) / (1.0 + vov / el) - dmob / mob;
    const double gm_sat = id * dlog;
    const double gds_sat = id * lambda / (1.0 + lambda * vds[k]);

    // Triode branch: the scalar code's h = 1e-6 numeric derivatives.
    const double h = 1e-6;
    const double vt_g = vt;  // vsb unchanged for both nudges
    const double id_g = lane_drain_current<NExp>(p, w[k], l[k], vgs[k] + h, vds[k], vt_g);
    const double id_d = lane_drain_current<NExp>(p, w[k], l[k], vgs[k], vds[k] + h, vt_g);
    const double gm_tri = (id_g - id) / h;
    const double gds_tri = (id_d - id) / h;

    const bool cutoff = vov <= 0.0;
    const bool saturated = vds[k] >= vdsat;
    out.region[k] = cutoff ? static_cast<std::uint8_t>(Region::Cutoff)
                           : (saturated ? static_cast<std::uint8_t>(Region::Saturation)
                                        : static_cast<std::uint8_t>(Region::Triode));
    out.vt[k] = vt;
    out.vov[k] = vov;
    out.vdsat[k] = cutoff ? 0.0 : vdsat;  // scalar early-return leaves the default
    out.id[k] = cutoff ? 0.0 : id;
    out.gm[k] = cutoff ? 0.0 : (saturated ? gm_sat : gm_tri);
    out.gds[k] = cutoff ? 0.0 : (saturated ? gds_sat : gds_tri);
  }
}

template <std::size_t W, int NExp>
inline void vgs_for_current_lanes_impl(const DeviceParams& p, const double* w, const double* l,
                                       const double* id, const double* vds, const double* vsb,
                                       double vgs_max, double* out) {
  double vt[W], lo[W], hi[W], vgs[W];
  double done[W];  // 0.0 = iterating, 1.0 = frozen (double so the masked
                   // commits below are pure FP selects — bool arrays force
                   // the vectorizer to mix predicate and data lanes)

  ANADEX_LANE_SIMD
  for (std::size_t k = 0; k < W; ++k) {
    vt[k] = lane_threshold(p, vsb[k]);
    lo[k] = vt[k] + 1e-3;
    hi[k] = vgs_max;

    // Bracket probes (scalar: early returns, hi checked first). current_at
    // evaluates at vds_eff = max(vds, vdsat) — the saturation fast path.
    double id_hi, gm_unused, id_lo;
    lane_sat_id_gm<NExp>(p, w[k], l[k], vt[k], hi[k], vds[k], id_hi, gm_unused);
    lane_sat_id_gm<NExp>(p, w[k], l[k], vt[k], lo[k], vds[k], id_lo, gm_unused);

    // Initial guess: square-law estimate clamped into the bracket.
    const double guess = vt[k] + std::sqrt(2.0 * id[k] * l[k] / (p.mu_cox * w[k]));
    const double clamped = lane_clamp(guess, lo[k], hi[k]);

    const bool probe_hi = id_hi <= id[k];  // cannot reach: saturate at the rail
    const bool probe_lo = !probe_hi && id_lo >= id[k];
    done[k] = (probe_hi || probe_lo) ? 1.0 : 0.0;
    vgs[k] = probe_hi ? vgs_max : (probe_lo ? lo[k] : clamped);
  }

  for (int iter = 0; iter < 60; ++iter) {
    double remaining = 0.0;
    ANADEX_LANE_SIMD_REDUCE(remaining)
    for (std::size_t k = 0; k < W; ++k) {
      const double vg = vgs[k];
      double idk, gmk;
      lane_sat_id_gm<NExp>(p, w[k], l[k], vt[k], vg, vds[k], idk, gmk);
      const double f = idk - id[k];
      const bool conv_f = std::abs(f) <= 1e-9 * id[k];
      const double nhi = f > 0.0 ? vg : hi[k];
      const double nlo = f > 0.0 ? lo[k] : vg;
      double next = gmk > 0.0 ? vg - f / gmk : vg;
      next = (next > nlo && next < nhi) ? next : 0.5 * (nlo + nhi);  // safeguard
      const bool conv_x = std::abs(next - vg) < 1e-9;

      // Masked commit. On conv_f the scalar returns vg (state frozen as
      // is); on conv_x it returns next (vgs advances one last time); brackets
      // only matter for lanes that keep iterating.
      const bool advance = done[k] == 0.0 && !conv_f;
      lo[k] = advance ? nlo : lo[k];
      hi[k] = advance ? nhi : hi[k];
      vgs[k] = advance ? next : vgs[k];
      done[k] = (done[k] != 0.0 || conv_f || (advance && conv_x)) ? 1.0 : 0.0;
      remaining += 1.0 - done[k];
    }
    if (remaining == 0.0) break;
  }

  for (std::size_t k = 0; k < W; ++k) out[k] = vgs[k];
}

}  // namespace lanes_detail

/// W-lane drain_current over per-lane geometry and bias (shared params).
template <std::size_t W>
inline void drain_current_lanes(const DeviceParams& p, const double* w, const double* l,
                                const double* vgs, const double* vds, const double* vsb,
                                double* id_out) {
  lanes_detail::dispatch_n_exp(p, [&](auto n) {
    lanes_detail::drain_current_lanes_impl<W, decltype(n)::value>(p, w, l, vgs, vds, vsb, id_out);
  });
}

/// W-lane solve_op. Triode gm/gds use the scalar code's numeric
/// derivatives (h = 1e-6 re-evaluations of the full drain current).
template <std::size_t W>
inline void solve_op_lanes(const DeviceParams& p, const double* w, const double* l,
                           const double* vgs, const double* vds, const double* vsb,
                           OpLanes<W>& out) {
  lanes_detail::dispatch_n_exp(p, [&](auto n) {
    lanes_detail::solve_op_lanes_impl<W, decltype(n)::value>(p, w, l, vgs, vds, vsb, out);
  });
}

/// W-lane vgs_for_current: the hot Newton/bisection inverse-model solver.
/// Converged lanes freeze (their state is never overwritten) while the
/// rest iterate, so each lane reproduces the scalar iteration sequence
/// exactly; the loop exits when every lane is done or at the scalar path's
/// 60-iteration cap.
template <std::size_t W>
inline void vgs_for_current_lanes(const DeviceParams& p, const double* w, const double* l,
                                  const double* id, const double* vds, const double* vsb,
                                  double vgs_max, double* out) {
  lanes_detail::dispatch_n_exp(p, [&](auto n) {
    lanes_detail::vgs_for_current_lanes_impl<W, decltype(n)::value>(p, w, l, id, vds, vsb,
                                                                    vgs_max, out);
  });
}

}  // namespace anadex::device
