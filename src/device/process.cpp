#include "device/process.hpp"

#include "common/check.hpp"

namespace anadex::device {

std::string corner_name(Corner corner) {
  switch (corner) {
    case Corner::TT: return "TT";
    case Corner::FF: return "FF";
    case Corner::SS: return "SS";
    case Corner::FS: return "FS";
    case Corner::SF: return "SF";
  }
  ANADEX_ASSERT(false, "unknown corner");
  return {};
}

Process Process::typical() {
  Process p;

  p.nmos.mu_cox = 300e-6;
  p.nmos.vt0 = 0.45;
  p.nmos.gamma = 0.45;
  p.nmos.phi2f = 0.85;
  p.nmos.theta1 = 0.30;
  p.nmos.theta2 = 0.10;
  p.nmos.vk = 0.90;
  p.nmos.n_exp = 1.0;  // paper: n = 1 for NMOS
  p.nmos.esat = 4.0e6;
  p.nmos.lambda_per_m = 0.02e-6;  // lambda = 0.11 /V at L = 0.18 µm

  p.pmos.mu_cox = 70e-6;
  p.pmos.vt0 = 0.45;
  p.pmos.gamma = 0.40;
  p.pmos.phi2f = 0.85;
  p.pmos.theta1 = 0.25;
  p.pmos.theta2 = 0.08;
  p.pmos.vk = 0.90;
  p.pmos.n_exp = 2.0;  // paper: n = 2 for PMOS
  p.pmos.esat = 1.5e7;
  p.pmos.lambda_per_m = 0.025e-6;

  return p;
}

namespace {

/// Applies a "fast" (+1) or "slow" (-1) shift to one polarity.
void shift_device(DeviceParams& d, int direction) {
  const double sign = static_cast<double>(direction);
  d.vt0 -= sign * 0.035;       // fast devices have lower threshold
  d.mu_cox *= 1.0 + sign * 0.10;
}

}  // namespace

Process Process::at_corner(Corner corner) const {
  Process p = *this;
  int n_dir = 0;
  int p_dir = 0;
  switch (corner) {
    case Corner::TT: return p;
    case Corner::FF: n_dir = +1; p_dir = +1; break;
    case Corner::SS: n_dir = -1; p_dir = -1; break;
    case Corner::FS: n_dir = +1; p_dir = -1; break;  // fast NMOS, slow PMOS
    case Corner::SF: n_dir = -1; p_dir = +1; break;
  }
  shift_device(p.nmos, n_dir);
  shift_device(p.pmos, p_dir);

  // Oxide / capacitor excursions track the average speed of the corner.
  const double avg = 0.5 * static_cast<double>(n_dir + p_dir);
  p.cox *= 1.0 + avg * 0.05;
  p.cap_density *= 1.0 - avg * 0.08;  // fast corners: thinner dielectric caps
  return p;
}

}  // namespace anadex::device
