#include "device/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/fastmath.hpp"

namespace anadex::device {

namespace {

/// Mobility-degradation denominator 1 + θ1·u^(1/3) + θ2·u^n, u clamped >= 0.
/// Uses the deterministic shared-math kernels (common/fastmath.hpp) so the
/// scalar oracle and the SoA batch evaluator execute identical arithmetic.
double mobility_denominator(const DeviceParams& p, double vgs, double vt) {
  const double u = std::max(vgs + vt - p.vk, 0.0);
  return 1.0 + p.theta1 * det_cbrt(u) + p.theta2 * pow_rt(u, p.n_exp);
}

/// d/dVGS of the mobility denominator. u^(-2/3) is expressed through the
/// same det_cbrt the denominator uses (1/cbrt(u)^2), keeping both paths on
/// shared kernels.
double mobility_denominator_derivative(const DeviceParams& p, double vgs, double vt) {
  const double u = vgs + vt - p.vk;
  if (u <= 0.0) return 0.0;
  const double c = det_cbrt(u);
  double d = p.theta1 / 3.0 / (c * c);
  if (p.n_exp == 1.0) {
    d += p.theta2;
  } else {
    d += p.theta2 * p.n_exp * pow_rt(u, p.n_exp - 1.0);
  }
  return d;
}

/// Saturation voltage with velocity saturation:
/// VDsat = Esat·L·Vov / (Esat·L + Vov); tends to Vov for long channels.
double vdsat_of(const DeviceParams& p, const Geometry& g, double vov) {
  const double el = p.esat * g.l;
  return el * vov / (el + vov);
}

}  // namespace

double threshold(const DeviceParams& params, double vsb) {
  ANADEX_REQUIRE(vsb >= 0.0, "body-referenced VSB magnitude must be non-negative");
  return params.vt0 +
         params.gamma * (std::sqrt(params.phi2f + vsb) - std::sqrt(params.phi2f));
}

double drain_current(const DeviceParams& params, const Geometry& geometry, const Bias& bias) {
  ANADEX_REQUIRE(geometry.w > 0.0 && geometry.l > 0.0, "geometry must be positive");
  const double vt = threshold(params, bias.vsb);
  const double vov = bias.vgs - vt;
  if (vov <= 0.0) return 0.0;

  const double k = 0.5 * params.mu_cox * geometry.w / geometry.l;
  const double lambda = params.lambda_per_m / geometry.l;
  const double el = params.esat * geometry.l;
  const double mob = mobility_denominator(params, bias.vgs, vt);
  const double vdsat = vdsat_of(params, geometry, vov);

  if (bias.vds >= vdsat) {
    // Saturation: paper eqn (1) with the divisive velocity-saturation factor.
    return k * vov * vov * (1.0 + lambda * bias.vds) / ((1.0 + vov / el) * mob);
  }
  // Triode: quadratic law with the same degradation factors, continuous with
  // the saturation expression at VDS = VDsat.
  const double sat_at_edge = k * vov * vov / ((1.0 + vov / el) * mob);
  const double shape = bias.vds / vdsat * (2.0 - bias.vds / vdsat);  // 0..1, smooth
  return sat_at_edge * shape * (1.0 + lambda * bias.vds);
}

OperatingPoint solve_op(const DeviceParams& params, const Geometry& geometry, const Bias& bias) {
  OperatingPoint op;
  op.vt = threshold(params, bias.vsb);
  op.vov = bias.vgs - op.vt;
  if (op.vov <= 0.0) {
    op.region = Region::Cutoff;
    return op;
  }
  op.vdsat = vdsat_of(params, geometry, op.vov);
  op.id = drain_current(params, geometry, bias);

  const double lambda = params.lambda_per_m / geometry.l;
  const double el = params.esat * geometry.l;
  const double mob = mobility_denominator(params, bias.vgs, op.vt);
  const double dmob = mobility_denominator_derivative(params, bias.vgs, op.vt);

  if (bias.vds >= op.vdsat) {
    op.region = Region::Saturation;
    // Logarithmic derivative of ID(VGS):
    //   d ln ID / dVGS = 2/Vov - (1/EL)/(1 + Vov/EL) - mob'/mob.
    const double dlog =
        2.0 / op.vov - (1.0 / el) / (1.0 + op.vov / el) - dmob / mob;
    op.gm = op.id * dlog;
    op.gds = op.id * lambda / (1.0 + lambda * bias.vds);
  } else {
    op.region = Region::Triode;
    // Numeric derivatives are adequate in triode (not used in sizing-quality
    // paths; designs are constrained to saturation).
    const double h = 1e-6;
    Bias b1 = bias;
    b1.vgs += h;
    op.gm = (drain_current(params, geometry, b1) - op.id) / h;
    Bias b2 = bias;
    b2.vds += h;
    op.gds = (drain_current(params, geometry, b2) - op.id) / h;
  }
  return op;
}

double vgs_for_current(const DeviceParams& params, const Geometry& geometry, double id,
                       double vds, double vsb, double vgs_max) {
  ANADEX_REQUIRE(id > 0.0, "vgs_for_current requires a positive target current");
  const double vt = threshold(params, vsb);
  double lo = vt + 1e-3;
  double hi = vgs_max;

  // Evaluate in saturation regardless of vds (bias solvers size devices to
  // operate saturated; the saturation check happens separately).
  auto current_at = [&](double vgs) {
    const double vov = vgs - vt;
    const double vdsat = vdsat_of(params, geometry, vov);
    Bias b{vgs, std::max(vds, vdsat), vsb};
    return drain_current(params, geometry, b);
  };

  if (current_at(hi) <= id) return vgs_max;  // cannot reach: saturate at the rail
  if (current_at(lo) >= id) return lo;

  // Newton iteration with bisection safeguarding: ID(VGS) is monotone in
  // saturation, so the bracket [lo, hi] always contains the root.
  double vgs = vt + std::sqrt(2.0 * id * geometry.l / (params.mu_cox * geometry.w));
  vgs = std::clamp(vgs, lo, hi);
  for (int iter = 0; iter < 60; ++iter) {
    const double vov = vgs - vt;
    const double vdsat = vdsat_of(params, geometry, vov);
    const Bias b{vgs, std::max(vds, vdsat), vsb};
    const OperatingPoint op = solve_op(params, geometry, b);
    const double f = op.id - id;
    if (std::abs(f) <= 1e-9 * id) return vgs;
    if (f > 0.0) {
      hi = vgs;
    } else {
      lo = vgs;
    }
    double next = vgs;
    if (op.gm > 0.0) next = vgs - f / op.gm;
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);  // safeguard
    if (std::abs(next - vgs) < 1e-9) return next;
    vgs = next;
  }
  return vgs;
}

DeviceCaps capacitances(const Process& process, const Geometry& geometry, Region region) {
  DeviceCaps caps;
  const double gate_area = geometry.w * geometry.l;
  const double overlap = process.cov_per_w * geometry.w;
  if (region == Region::Saturation) {
    caps.cgs = (2.0 / 3.0) * gate_area * process.cox + overlap;
    caps.cgd = overlap;
  } else if (region == Region::Triode) {
    caps.cgs = 0.5 * gate_area * process.cox + overlap;
    caps.cgd = 0.5 * gate_area * process.cox + overlap;
  } else {
    caps.cgs = overlap;
    caps.cgd = overlap;
  }
  const double diff_area = geometry.w * process.ld_diff;
  const double diff_perim = geometry.w + 2.0 * process.ld_diff;
  caps.cdb = process.cj_area * diff_area + process.cj_perim * diff_perim;
  return caps;
}

}  // namespace anadex::device
