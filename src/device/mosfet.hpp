// Deep-submicron MOSFET DC model — paper eqn (1) — with operating-point
// solution, small-signal parameters and terminal capacitances.
//
// The saturation current implements
//
//              1        W      (VGS-VT)^2 · (1 + lambda·VDS)
//   ID =      --- µCox --- · ---------------------------------------------------
//              2        L    (1 + (VGS-VT)/(Esat·L)) · (1 + θ1·u^(1/3) + θ2·u^n)
//
// with u = max(VGS + VT - VK, 0), n = 1 (NMOS) / 2 (PMOS).
//
// Note on the velocity-saturation factor: the paper's typeset equation shows
// a factor (1 - (VGS-VT)/(Esat·L)) in the numerator, which agrees with the
// canonical 1/(1 + x) form to first order but becomes negative for large
// overdrives, making the model unusable over a GA's full search box. We use
// the canonical divisive form; DESIGN.md §5 records the substitution.
//
// All quantities are magnitudes; the circuit layer handles polarity.
#pragma once

#include "device/process.hpp"

namespace anadex::device {

/// Channel geometry in meters.
struct Geometry {
  double w = 1e-6;
  double l = 0.18e-6;
};

/// Terminal bias (magnitudes, source-referenced).
struct Bias {
  double vgs = 0.0;
  double vds = 0.0;
  double vsb = 0.0;
};

/// DC operating region.
enum class Region { Cutoff, Triode, Saturation };

/// Solved operating point.
struct OperatingPoint {
  Region region = Region::Cutoff;
  double id = 0.0;     ///< drain current, A
  double gm = 0.0;     ///< transconductance, A/V
  double gds = 0.0;    ///< output conductance, A/V
  double vov = 0.0;    ///< overdrive VGS - VT, V
  double vdsat = 0.0;  ///< saturation voltage, V
  double vt = 0.0;     ///< body-adjusted threshold, V
};

/// Body-effect-adjusted threshold magnitude.
double threshold(const DeviceParams& params, double vsb);

/// Drain current for an arbitrary bias (cutoff / triode / saturation).
double drain_current(const DeviceParams& params, const Geometry& geometry, const Bias& bias);

/// Full operating point: region, current and analytic gm / gds.
/// gm and gds are exact derivatives of the saturation-region model; in
/// triode they are computed from the triode expression.
OperatingPoint solve_op(const DeviceParams& params, const Geometry& geometry, const Bias& bias);

/// Inverse model: the VGS that conducts drain current `id` at the given
/// VDS/VSB (saturation assumed). Solved by bisection on the monotone
/// ID(VGS); requires id > 0. Result is clamped to [vt + 1 mV, vgs_max].
double vgs_for_current(const DeviceParams& params, const Geometry& geometry, double id,
                       double vds, double vsb, double vgs_max = 1.8);

/// Lumped terminal capacitances in the given region.
struct DeviceCaps {
  double cgs = 0.0;  ///< gate-source (channel share + overlap), F
  double cgd = 0.0;  ///< gate-drain (overlap; + channel share in triode), F
  double cdb = 0.0;  ///< drain-bulk junction, F
};

DeviceCaps capacitances(const Process& process, const Geometry& geometry, Region region);

}  // namespace anadex::device
