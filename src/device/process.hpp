// Synthetic-but-plausible description of an industry-style 0.18 µm, 1.8 V
// n-well digital CMOS process: DC fitting parameters for the paper's
// deep-submicron MOSFET model (eqn 1), capacitance data (gate, overlap,
// junction, integrated capacitors with bottom-plate parasitics), process
// corners and Pelgrom mismatch coefficients.
//
// The real paper used proprietary foundry data; these values are standard
// textbook magnitudes for the node and are calibrated only so that the
// integrator sizing problem has the same qualitative difficulty structure
// (see DESIGN.md §5).
#pragma once

#include <array>
#include <string>

namespace anadex::device {

/// MOSFET polarity. All DeviceParams voltages/currents are magnitudes;
/// polarity is handled by the circuit layer.
enum class Type { NMOS, PMOS };

/// Manufacturing process corners (TT = typical).
enum class Corner { TT, FF, SS, FS, SF };

inline constexpr std::array<Corner, 5> kAllCorners = {Corner::TT, Corner::FF, Corner::SS,
                                                      Corner::FS, Corner::SF};

/// Human-readable corner name ("TT", "FF", ...).
std::string corner_name(Corner corner);

/// DC-model fitting parameters of one device polarity (paper eqn 1).
struct DeviceParams {
  double mu_cox = 0.0;   ///< µ·Cox, A/V^2
  double vt0 = 0.0;      ///< zero-bias threshold magnitude, V
  double gamma = 0.0;    ///< body-effect coefficient, sqrt(V)
  double phi2f = 0.0;    ///< 2·phi_F surface potential, V
  double theta1 = 0.0;   ///< mobility-degradation fit (cube-root term)
  double theta2 = 0.0;   ///< mobility-degradation fit (power term)
  double vk = 0.0;       ///< mobility-degradation knee voltage, V
  double n_exp = 1.0;    ///< paper: n = 1 for NMOS, 2 for PMOS
  double esat = 0.0;     ///< velocity-saturation critical field, V/m
  double lambda_per_m = 0.0;  ///< channel-length modulation: lambda = lambda_per_m / L
};

/// Full process description at one corner.
struct Process {
  DeviceParams nmos;
  DeviceParams pmos;

  double vdd = 1.8;          ///< supply, V
  double lmin = 0.18e-6;     ///< minimum channel length, m
  double wmin = 0.24e-6;     ///< minimum channel width, m
  double temperature = 300.0;  ///< K

  // Capacitance data.
  double cox = 8.6e-3;          ///< gate oxide capacitance, F/m^2
  double cov_per_w = 0.30e-9;   ///< gate overlap capacitance per width, F/m
  double cj_area = 1.0e-3;      ///< junction bottom capacitance, F/m^2
  double cj_perim = 0.20e-9;    ///< junction sidewall capacitance, F/m
  double ld_diff = 0.48e-6;     ///< source/drain diffusion extent, m

  // Integrated (poly-poly / MiM) capacitors.
  double cap_density = 1.0e-3;      ///< F/m^2
  double cap_bottom_ratio = 0.08;   ///< bottom-plate parasitic / nominal value

  // Pelgrom mismatch coefficients (per device pair).
  double avt = 5.0e-9;     ///< V·m  (5 mV·µm)
  double abeta = 0.01e-6;  ///< relative beta mismatch · m (1 %·µm)

  /// Parameters of the requested polarity.
  const DeviceParams& params(Type type) const { return type == Type::NMOS ? nmos : pmos; }
  DeviceParams& params(Type type) { return type == Type::NMOS ? nmos : pmos; }

  /// The typical (TT) 0.18 µm process used throughout the reproduction.
  static Process typical();

  /// This process shifted to a manufacturing corner: threshold, mobility,
  /// oxide and capacitor-density shifts; FS/SF move NMOS and PMOS in
  /// opposite directions.
  Process at_corner(Corner corner) const;
};

}  // namespace anadex::device
