// EvalCache — a bounded genotype -> Evaluation memo for EvalEngine.
//
// Problems in this library are pure functions of the genome (the engine's
// determinism contract depends on it), so a cached Evaluation is
// bit-identical to a fresh one and memoization cannot change results —
// only skip redundant work. Duplicate genotypes are pervasive in the
// evolutionary loop: elitism re-submits survivors, crossover emits clones,
// and MESACGA's phase re-seeding replays earlier designs.
//
// Keys are the raw gene bytes plus a caller-chosen `context` word: an
// FNV-1a hash (robust::hash_genes(genes, context)) selects the bucket and
// a full context + gene-vector compare confirms the hit, so hash
// collisions can never alias two designs. The context partitions the cache
// between clients that evaluate DIFFERENT problems through one shared
// engine (anadex serve): identical genes under different problems are
// distinct designs and must never alias. Private engines pass context 0,
// which reproduces the pre-context behaviour bit for bit. Eviction is
// least-recently-used with a fixed entry capacity shared across contexts.
// All entry points lock one mutex; the engine only calls in from the
// batch-submitting thread, so the lock is uncontended in practice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "moga/problem.hpp"

namespace anadex::engine {

/// Cumulative evaluation accounting for one EvalEngine. `requested` counts
/// every submitted item; `evaluated` counts the distinct evaluations that
/// actually ran. The difference is work the cache absorbed, split into
/// intra-batch duplicate fan-outs and cross-batch LRU hits. With the cache
/// disabled, requested == evaluated and both hit counters stay zero.
struct EvalStats {
  std::uint64_t requested = 0;   ///< items submitted to evaluate_batch
  std::uint64_t evaluated = 0;   ///< distinct evaluations dispatched
  std::uint64_t batch_hits = 0;  ///< duplicates resolved within one batch
  std::uint64_t lru_hits = 0;    ///< duplicates resolved from earlier batches

  std::uint64_t cache_hits() const { return batch_hits + lru_hits; }
};

/// Thread-safe bounded LRU map from gene bytes to Evaluation.
class EvalCache {
 public:
  /// `capacity` is the maximum number of retained entries (> 0).
  explicit EvalCache(std::size_t capacity);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;

  /// Looks up `genes` under `context` (pre-hashed with
  /// robust::hash_genes(genes, context)). On a hit, copies the stored
  /// result into `out`, refreshes the entry's recency and returns true.
  bool lookup(std::span<const double> genes, std::uint64_t hash,
              moga::Evaluation& out, std::uint64_t context = 0);

  /// Stores (context, genes) -> eval, evicting the least-recently-used
  /// entry when full. Re-inserting an existing key refreshes its recency.
  void insert(std::span<const double> genes, std::uint64_t hash,
              const moga::Evaluation& eval, std::uint64_t context = 0);

  /// True when the LRU list and hash index describe the same entry set:
  /// equal sizes within capacity, every index slot points at a live list
  /// node under its stored hash, and no two entries share identical
  /// (context, gene bytes). O(n log n); compiled unconditionally so tests
  /// can call it in any build, with insert() self-checking under
  /// kCheckInvariants.
  bool coherent() const;

 private:
  struct Entry {
    std::vector<double> genes;
    moga::Evaluation eval;
    std::uint64_t hash = 0;
    std::uint64_t context = 0;
  };
  using Lru = std::list<Entry>;

  /// Returns the bucketed entry matching `context` + `genes` byte-for-byte,
  /// or end().
  Lru::iterator find_locked(std::span<const double> genes, std::uint64_t hash,
                            std::uint64_t context);

  /// coherent() with mu_ already held (for the insert() self-check).
  bool coherent_locked() const;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used
  // Keyed equal_range lookups only, and at most one bucket entry can pass
  // the full gene-vector compare, so the order entries appear within a
  // bucket (or across buckets) never selects a different result.
  // anadex-lint: allow(det-unordered)
  std::unordered_multimap<std::uint64_t, Lru::iterator> index_;
};

}  // namespace anadex::engine
