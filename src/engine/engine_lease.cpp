#include "engine/engine_lease.hpp"

#include "common/check.hpp"

namespace anadex::engine {

EngineLease::EngineLease(const moga::Problem& problem, const EngineHandle& handle,
                         std::size_t threads, obs::EventSink* sink,
                         std::size_t cache_capacity, EvalWatchdog watchdog,
                         BatchEval batch_eval)
    : problem_(problem), handle_(handle) {
  if (!handle_.shared()) {
    owned_.emplace(problem, threads, sink, cache_capacity, watchdog);
    owned_->set_batch_eval(batch_eval);
    return;
  }
  // A per-run deadline thread belongs to the engine that owns the worker
  // pool; on a shared hub the deadline is the hub's to enforce. Job
  // admission re-validates this so a bad request is rejected, not fatal.
  ANADEX_REQUIRE(!watchdog.enabled(),
                 "EngineLease: per-run eval watchdog is unsupported on a "
                 "shared engine (configure the deadline on the hub)");
}

EngineLease::EngineLease(const moga::Problem& problem, const EvalKnobs& knobs,
                         obs::EventSink* sink, EvalWatchdog watchdog)
    : EngineLease(problem, knobs.engine, knobs.threads, sink, knobs.eval_cache,
                  watchdog, knobs.batch_eval) {}

std::size_t EngineLease::threads() const {
  return owned_ ? owned_->threads() : handle_.engine->threads();
}

void EngineLease::evaluate_members(std::span<moga::Individual> members) const {
  if (owned_) {
    owned_->evaluate_members(members);
    return;
  }
  handle_.engine->evaluate_members_as(problem_, handle_.context, members,
                                      &client_stats_);
}

moga::Evaluation EngineLease::evaluate(std::span<const double> genes) const {
  if (owned_) return owned_->evaluate(genes);
  return problem_.evaluated(genes);
}

const EvalStats& EngineLease::stats() const {
  return owned_ ? owned_->stats() : client_stats_;
}

}  // namespace anadex::engine
