#include "engine/simd/lane_evaluator.hpp"

#include <string_view>

#include "common/check.hpp"

namespace anadex::engine {

const char* to_string(BatchEval mode) {
  switch (mode) {
    case BatchEval::Scalar: return "scalar";
    case BatchEval::Simd: return "simd";
    case BatchEval::Auto: return "auto";
  }
  return "scalar";
}

BatchEval parse_batch_eval(std::string_view text) {
  if (text == "scalar") return BatchEval::Scalar;
  if (text == "simd") return BatchEval::Simd;
  if (text == "auto") return BatchEval::Auto;
  ANADEX_REQUIRE(false, "--batch-eval must be one of: scalar, simd, auto");
}

}  // namespace anadex::engine
