// LaneEvaluator — the SoA batch-evaluation seam between EvalEngine and a
// Problem's vectorized kernels.
//
// A Problem that can evaluate several genomes per call (the SC-integrator
// model does, via the circuit/batch_opamp SoA kernels) additionally derives
// from this interface. EvalEngine discovers the capability per batch with a
// dynamic_cast of the batch's problem and — when the --batch-eval knob asks
// for it — claims items in GROUPS of preferred_lane_width() instead of one
// at a time, mapping each group onto the SIMD lanes of one
// evaluate_lanes() call.
//
// Determinism contract (docs/performance.md): evaluate_lanes() must produce
// BIT-IDENTICAL Evaluations to per-genome Problem::evaluate() for every
// genome, every group size, and every position within a group. The engine's
// scalar path stays intact as the oracle; --batch-eval {scalar,simd,auto}
// is a pure execution knob excluded from the checkpoint config digest, so
// fronts, traces and checkpoint bytes agree across modes and thread counts.
//
// Error contract: if any lane cannot be evaluated (a genome the scalar path
// would reject by throwing), evaluate_lanes() must throw WITHOUT writing to
// any output slot. The engine then falls back to the per-item scalar path
// for every member of the group, which reproduces the scalar behavior
// exactly — including which exception surfaces and the lowest-index-error
// rethrow semantics.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "moga/problem.hpp"

namespace anadex::engine {

/// Which evaluation kernels a batch dispatches to. A pure execution knob:
/// results are bit-identical in every mode (enforced by the golden
/// equivalence suite), so it is excluded from the checkpoint config digest
/// and may differ across a snapshot/resume boundary.
enum class BatchEval {
  /// Per-genome Problem::evaluate() only — the oracle path.
  Scalar,
  /// Lane groups whenever the problem supports them, regardless of batch
  /// size (remainder items go through the scalar path).
  Simd,
  /// Lane groups only when a batch has at least one full group's worth of
  /// items; small batches stay scalar to avoid lane-padding overhead.
  Auto,
};

/// Optional capability interface for problems with an SoA batch kernel.
/// Implementations are discovered by EvalEngine via dynamic_cast, so a
/// Problem opts in simply by additionally deriving from LaneEvaluator.
class LaneEvaluator {
 public:
  virtual ~LaneEvaluator() = default;

  /// Whether lane evaluation is actually available. Wrappers (e.g.
  /// GuardedProblem) forward this so a capable inner problem shines
  /// through, and chains broken by a lane-unaware layer report false.
  virtual bool lanes_supported() const = 0;

  /// Group size the engine should claim per evaluate_lanes() call.
  /// Typically the SIMD width the kernels were tuned for (8 doubles on
  /// AVX-512, 4 on AVX2). Must be >= 2.
  virtual std::size_t preferred_lane_width() const = 0;

  /// Evaluates genes[i] into *outs[i] for every i. The spans are the same
  /// size, between 1 and preferred_lane_width() entries (the engine hands
  /// short groups at batch remainders). Must be bit-identical to the
  /// scalar path and safe to call from several threads concurrently.
  /// On failure of ANY lane: throw without writing any output (see the
  /// error contract above).
  virtual void evaluate_lanes(std::span<const std::span<const double>> genes,
                              std::span<moga::Evaluation* const> outs) const = 0;
};

/// Round-trip helpers for the --batch-eval CLI/serve knob.
const char* to_string(BatchEval mode);
/// Parses "scalar" / "simd" / "auto"; throws PreconditionError otherwise.
BatchEval parse_batch_eval(std::string_view text);

}  // namespace anadex::engine
