// EvalEngine — the batch evaluation seam between the evolvers and a
// Problem, with an optional fixed-size worker pool behind it.
//
// Every algorithm in the library evaluates offspring through one of these
// per run: it collects a generation's genomes into a single
// evaluate_batch() call instead of looping Problem::evaluate(), which is
// the API future scaling work (sharding, async islands, remote evaluators,
// surrogate caching) plugs into.
//
// Determinism contract: results are written by ITEM INDEX, never by
// completion order, and a Problem must be deterministic per genome, so a
// batch produces bit-identical Evaluations for every thread count —
// threads = 1 (serial, the pre-engine path), threads = N, and threads = 0
// (one worker per hardware thread) all agree. If items throw, the
// exception of the lowest-index faulting item is rethrown once the batch
// has been fully attempted, again independent of scheduling. See
// docs/engine.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "engine/eval_cache.hpp"
#include "engine/simd/lane_evaluator.hpp"
#include "moga/individual.hpp"
#include "moga/problem.hpp"
#include "obs/event_sink.hpp"

namespace anadex::engine {

/// One candidate genome, as submitted for evaluation.
using Genome = std::vector<double>;

/// Anything that can evaluate a batch of genomes into a parallel span of
/// results. EvalEngine is the in-process implementation; remote or
/// surrogate-backed evaluators implement the same interface.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Fills out[i] with the evaluation of genomes[i]. Spans must be the
  /// same size. Implementations must be deterministic: the result for a
  /// genome may not depend on the other batch members or on scheduling.
  virtual void evaluate_batch(std::span<const Genome> genomes,
                              std::span<moga::Evaluation> out) const = 0;
};

/// Stuck-evaluation watchdog configuration for an EvalEngine. When enabled,
/// a dedicated watchdog thread arms a wall-clock deadline around every batch
/// and raises `token` if the batch outlives it. Cooperative evaluators (and
/// GuardedProblem, which fail-fast-penalizes once the token is up) then
/// drain the rest of the batch in microseconds, returning control to the
/// generation barrier where the run can snapshot.
///
/// This is a pure EXECUTION knob, like `threads` and `eval_cache`: it is
/// excluded from the checkpoint config digest, and when the deadline never
/// fires, results are bit-identical with the watchdog on or off. When it
/// DOES fire, which items get penalized depends on wall-clock scheduling —
/// a fired watchdog trades determinism for liveness, and the run's fault
/// report says so (`timeouts` counter, `fault` trace event).
struct EvalWatchdog {
  /// Raised (non-owning) when a batch exceeds the deadline; reset by the
  /// engine once that batch has drained. Must outlive the engine.
  CancelToken* token = nullptr;
  /// Per-batch wall-clock budget. A null `token` disables the watchdog;
  /// with a token set, the engine requires this to be finite and positive.
  double deadline_s = 0.0;

  bool enabled() const { return token != nullptr && deadline_s > 0.0; }
};

/// Batch evaluator over a moga::Problem with an owned fixed-size worker
/// pool. The problem must be safe to evaluate from several threads
/// concurrently (the library's problems are stateless; GuardedProblem
/// synchronizes its fault accounting internally).
///
/// An engine is either BOUND (constructed over one problem — the classic
/// per-run shape) or a HUB (constructed without a problem): a hub serves
/// many clients through evaluate_members_as(), each naming its own problem
/// and a cache `context` word per batch, so `anadex serve` can multiplex
/// every job over one worker pool and one dedup cache. Batches are
/// serialized by the submitting caller either way — the engine supports
/// one in-flight batch at a time.
class EvalEngine final : public Evaluator {
 public:
  /// `threads`: 1 = serial on the calling thread (no pool is spawned),
  /// 0 = one worker per hardware thread, N = exactly N workers.
  /// `sink` (non-owning, may be nullptr): when enabled at TraceLevel::Eval,
  /// every batch records a timed "batch" event — size, submit-to-done wall
  /// time, queue wait, per-item latency min/mean/max and worker utilization
  /// — and destruction records an "eval_engine" totals event. Tracing never
  /// changes results; with no sink the hot path pays one pointer test.
  /// `cache_capacity`: 0 (default) disables memoization entirely — the
  /// exact pre-cache code path. N > 0 enables duplicate elimination: each
  /// distinct genome in a batch is dispatched once and the result fanned
  /// out to its clones by item index, plus a cross-batch LRU retaining the
  /// last N distinct evaluations. Because a Problem is a pure function of
  /// the genome, every result is bit-identical with the cache on or off
  /// (see docs/performance.md).
  /// `watchdog`: stuck-evaluation deadline; disabled by default (no thread
  /// is spawned and batches pay nothing).
  explicit EvalEngine(const moga::Problem& problem, std::size_t threads = 1,
                      obs::EventSink* sink = nullptr, std::size_t cache_capacity = 0,
                      EvalWatchdog watchdog = {});

  /// Hub form: no bound problem. Every batch must arrive through
  /// evaluate_members_as(), which names the problem to evaluate and the
  /// cache context that keeps different clients' designs from aliasing.
  /// The problem-bound entry points (evaluate_batch / evaluate_members /
  /// evaluate / problem()) are preconditions-violations on a hub.
  explicit EvalEngine(std::size_t threads, obs::EventSink* sink = nullptr,
                      std::size_t cache_capacity = 0, EvalWatchdog watchdog = {});

  ~EvalEngine() override;

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// True when constructed without a bound problem (the shared-hub form).
  bool is_hub() const { return problem_ == nullptr; }

  const moga::Problem& problem() const;

  /// Effective worker count (after resolving 0 to the hardware).
  std::size_t threads() const { return threads_; }

  /// LRU entry capacity the engine was built with (0 = memoization off).
  std::size_t cache_capacity() const { return cache_ ? cache_->capacity() : 0; }

  /// The watchdog configuration the engine was built with.
  const EvalWatchdog& watchdog() const { return watchdog_; }

  /// Selects how batches are mapped onto a LaneEvaluator-capable problem.
  /// A pure EXECUTION knob like `threads` and the cache: excluded from the
  /// checkpoint config digest, and results are bit-identical across all
  /// three modes (the SIMD path is the scalar model transliterated, see
  /// docs/performance.md). Scalar (default) never uses lanes; Simd groups
  /// every batch into lanes whenever the problem supports them; Auto uses
  /// lanes only when a batch has at least one full lane group. Problems
  /// without lane support always run scalar, in every mode. Call between
  /// batches only (not concurrently with an in-flight batch).
  void set_batch_eval(BatchEval mode) { batch_eval_ = mode; }
  BatchEval batch_eval() const { return batch_eval_; }

  /// Lane-path accounting across the engine's lifetime: groups dispatched
  /// through LaneEvaluator::evaluate_lanes, items inside those groups, and
  /// groups that threw and were re-run item-by-item on the scalar path.
  std::uint64_t lane_groups() const { return lane_groups_.load(std::memory_order_relaxed); }
  std::uint64_t lane_items() const { return lane_items_.load(std::memory_order_relaxed); }
  std::uint64_t lane_fallbacks() const { return lane_fallbacks_.load(std::memory_order_relaxed); }

  /// Number of batches whose deadline expired (watchdog enabled only).
  std::size_t watchdog_fires() const { return watchdog_fires_; }

  /// Cumulative requested/distinct/cache-hit accounting across the
  /// engine's lifetime. `requested` always counts submitted items, so the
  /// paper's evaluation-budget figures stay honest whether or not the
  /// cache absorbed any of them. On a hub this aggregates every client.
  const EvalStats& stats() const { return stats_; }

  /// Batches dispatched over the engine's lifetime (serial and pooled).
  std::uint64_t busy_batches() const { return busy_batches_; }

  /// Wall-clock seconds the engine spent inside batch dispatch, summed
  /// over its lifetime. With the service's elapsed time this yields the
  /// engine-utilization figure in the serve stats snapshot; it is
  /// measurement only and never feeds back into results.
  double busy_seconds() const { return busy_seconds_; }

  void evaluate_batch(std::span<const Genome> genomes,
                      std::span<moga::Evaluation> out) const override;

  /// Batch-evaluates `members[i].genes` into `members[i].eval` — the shape
  /// every evolver's generation loop needs.
  void evaluate_members(std::span<moga::Individual> members) const;

  /// The multi-client form of evaluate_members: evaluates `members` under
  /// `problem`, filing cache entries under `context` so two clients with
  /// different problems can never alias identical genes. When `client` is
  /// non-null the batch's requested/evaluated/hit deltas are accumulated
  /// into it as well as the engine totals. Works on bound engines too
  /// (EngineLease routes both modes through here).
  void evaluate_members_as(const moga::Problem& problem, std::uint64_t context,
                           std::span<moga::Individual> members,
                           EvalStats* client = nullptr) const;

  /// The single-item path: a checked evaluation of one genome, identical
  /// to Problem::evaluated(). One-off call sites (CLIs, archives, tests)
  /// route through here so the engine is the only evaluation entry point.
  moga::Evaluation evaluate(std::span<const double> genes) const;

  /// Maps the user-facing `threads` knob to a worker count:
  /// 0 -> hardware_concurrency (at least 1), otherwise unchanged.
  static std::size_t resolve_threads(std::size_t requested);

 private:
  /// One unit of batch work: a genome to evaluate and where the result goes.
  struct Item {
    const Genome* genes = nullptr;
    moga::Evaluation* out = nullptr;
  };

  /// The cache layer: dedups `items`, dispatches the distinct misses
  /// through run_batch under `problem` and fans results out by item index.
  /// With the cache disabled this forwards straight to run_batch. Cache
  /// keys are salted with `context`; `client` (optional) receives the
  /// batch's stats deltas alongside the engine totals.
  void submit(const moga::Problem& problem, std::uint64_t context,
              std::span<const Item> items, EvalStats* client) const;
  void run_batch(std::span<const Item> items) const;
  void run_serial(std::span<const Item> items) const;
  /// Starts the per-batch deadline clock (watchdog enabled only).
  void arm_watchdog() const;
  /// Stops the clock; if the deadline fired, clears the token (the batch
  /// has drained — the next batch starts with a clean slate) and counts
  /// the fire. Returns whether it fired.
  bool disarm_watchdog() const;
  void watchdog_loop();
  /// Evaluates items_[index], recording the lowest-index exception.
  void process_item(std::size_t index) const;
  /// Evaluates the `count` items starting at items_[start]: through the
  /// batch's LaneEvaluator when one is active (falling back to per-item
  /// scalar evaluation if the group throws), item-by-item otherwise.
  void process_group(std::size_t start, std::size_t count) const;
  void worker_loop();
  /// Folds the per-item clocks of the finished batch into one timed
  /// "batch" event (eval level only).
  void emit_batch_event(std::size_t size, double wall_seconds,
                        std::size_t workers_used) const;

  const moga::Problem* problem_ = nullptr;  ///< null on a hub engine
  std::size_t threads_ = 1;
  obs::EventSink* sink_ = nullptr;

  // Memoization (null when cache_capacity == 0). The cache and the stats
  // are only touched from the batch-submitting thread — dedup happens
  // before dispatch and fan-out after the batch barrier — so the counters
  // need no atomics. busy_* follow the same discipline (written only in
  // run_batch on the submitting thread).
  mutable std::unique_ptr<EvalCache> cache_;
  mutable EvalStats stats_;
  mutable std::uint64_t busy_batches_ = 0;
  mutable double busy_seconds_ = 0.0;

  // Batch hand-off state. The caller publishes a batch under `mu_` and
  // waits on `batch_done_`; workers claim items via the atomic cursor and
  // write results by index. `item_count_`/`items_` only change while every
  // worker is idle (active_ == 0), so workers may read them lock-free
  // during a batch.
  mutable std::mutex mu_;
  mutable std::condition_variable work_ready_;
  mutable std::condition_variable batch_done_;
  /// The problem the CURRENT batch evaluates against. Published under the
  /// same discipline as `items_` (written before release, stable while any
  /// worker is active); equals `problem_` on a bound engine and the
  /// caller-supplied problem on a hub.
  mutable const moga::Problem* batch_problem_ = nullptr;
  /// Lane evaluator of the CURRENT batch (null = scalar), and the group
  /// width workers claim by. Published with `items_` under the same
  /// discipline; re-discovered per batch (hubs switch problems per batch).
  mutable const LaneEvaluator* lanes_ = nullptr;
  mutable std::size_t lane_width_ = 1;
  mutable const Item* items_ = nullptr;
  mutable std::size_t item_count_ = 0;
  mutable std::atomic<std::size_t> next_item_{0};
  mutable std::atomic<std::size_t> completed_{0};
  mutable std::size_t active_ = 0;        ///< workers inside the current batch
  mutable std::uint64_t batch_seq_ = 0;   ///< bumped per published batch
  mutable std::exception_ptr first_error_;
  mutable std::size_t first_error_index_ = 0;
  BatchEval batch_eval_ = BatchEval::Scalar;
  mutable std::atomic<std::uint64_t> lane_groups_{0};
  mutable std::atomic<std::uint64_t> lane_items_{0};
  mutable std::atomic<std::uint64_t> lane_fallbacks_{0};
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Watchdog state. The batch thread arms/disarms under `watch_mu_`; the
  // watchdog thread waits on `watch_cv_` until armed, then until the
  // deadline or a disarm. Firing is just token->request() — async-safe,
  // lock-free for the workers, observed cooperatively by the evaluator.
  EvalWatchdog watchdog_;
  mutable std::mutex watch_mu_;
  mutable std::condition_variable watch_cv_;
  mutable std::chrono::steady_clock::time_point watch_deadline_;
  mutable bool watch_armed_ = false;
  mutable bool watch_fired_ = false;
  bool watch_stop_ = false;
  mutable std::size_t watchdog_fires_ = 0;
  std::thread watchdog_thread_;

  // Batch timing (populated only when sink_ is enabled at eval level).
  // `trace_timing_` and the per-item clock arrays follow the same
  // publication discipline as `items_`: written under `mu_` before a batch
  // is released, each slot then written by exactly one worker (by item
  // index), read by the caller only after the batch barrier.
  mutable bool trace_timing_ = false;
  mutable std::chrono::steady_clock::time_point trace_submit_;
  mutable std::vector<double> trace_start_s_;  ///< per-item start, s after submit
  mutable std::vector<double> trace_dur_s_;    ///< per-item evaluate duration, s
  mutable std::uint64_t trace_batches_ = 0;
  mutable std::uint64_t trace_items_ = 0;
  mutable std::uint64_t trace_requested_ = 0;   ///< items submitted this batch
  mutable std::uint64_t trace_cache_hits_ = 0;  ///< LRU hits this batch
};

}  // namespace anadex::engine
