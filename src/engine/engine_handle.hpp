// EngineHandle — an optional reference to a shared hub EvalEngine.
//
// Every evolver-facing parameter struct (engine::EvolverCommon,
// sacga::EvolverParams, moga::WeightedSumParams) carries one of these.
// Default-constructed it is EMPTY and the run builds a private EvalEngine
// from its own `threads` / `eval_cache` knobs — the classic one-engine-
// per-run shape, bit-identical to the pre-handle code. When the scheduler
// (anadex serve) points it at a hub engine, the run instead leases the
// hub's worker pool and dedup cache through an engine::EngineLease, filing
// cache entries under `context` so jobs with different problems can never
// alias identical genes.
//
// Like `threads` and `eval_cache`, the handle is a pure EXECUTION knob:
// it is excluded from the checkpoint config digest and can never change
// results — a shared run's populations are byte-identical to a solo run
// of the same settings.
#pragma once

#include <cstdint>

namespace anadex::engine {

class EvalEngine;

/// Non-owning pointer to a hub EvalEngine plus the cache-context word that
/// partitions the hub's shared EvalCache between clients. The hub must
/// outlive every run that holds a handle to it.
struct EngineHandle {
  EvalEngine* engine = nullptr;
  /// Cache partition key (serve: the job's admission ordinal + 1, so it
  /// never collides with the 0 used by private engines and direct hub
  /// clients).
  std::uint64_t context = 0;

  /// True when the handle points at a hub (the run must lease it instead
  /// of building a private engine).
  bool shared() const { return engine != nullptr; }
};

}  // namespace anadex::engine
