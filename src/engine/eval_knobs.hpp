// Pure execution knobs for batch genome evaluation.
//
// Every field here changes HOW evaluations are executed — never WHAT is
// computed. Fronts, evaluation counts, traces and checkpoints are
// byte-identical for every combination of these values (docs/engine.md,
// docs/performance.md, docs/serve.md), which is why the group is excluded
// from expt::run_config_digest as a block: the settings registry
// (src/expt/settings_registry.hpp) classifies each member as KNOB, and
// `anadex-lint --digest-audit` fails if a field is added here without a
// registry entry.
//
// Evolver parameter structs (`EvolverCommon`, `sacga::EvolverParams`,
// `moga::WeightedSumParams`) and `expt::RunSettings` all inherit this
// struct, so the knobs cross layer boundaries as one assignable unit and
// EngineLease can be constructed straight from any of them.
#pragma once

#include <cstddef>

#include "engine/engine_handle.hpp"
#include "engine/simd/lane_evaluator.hpp"

namespace anadex::engine {

struct EvalKnobs {
  /// Worker threads for batch genome evaluation: 1 = serial on the calling
  /// thread (the default), 0 = one per hardware thread, N = exactly N
  /// workers. Results are bit-identical for every value (see
  /// docs/engine.md).
  std::size_t threads = 1;

  /// Evaluation memoization: 0 (default) = off, N = dedup duplicate
  /// genomes within each batch and retain the last N distinct evaluations
  /// in an LRU across generations. Evaluation is a pure function of the
  /// genome, so fronts, checkpoints and gen-level traces are bit-identical
  /// for every value — like `threads`, this is an execution knob, not part
  /// of the result (see docs/performance.md).
  std::size_t eval_cache = 0;

  /// Shared-engine lease (anadex serve). Empty (the default) = build a
  /// private EvalEngine from `threads` / `eval_cache`; pointing it at a
  /// hub engine makes the run evaluate through the hub's worker pool and
  /// context-partitioned cache instead, with `threads` / `eval_cache`
  /// ignored. Another pure execution knob: results are byte-identical
  /// either way (see docs/serve.md).
  EngineHandle engine;

  /// Batch-to-SIMD-lane mapping for LaneEvaluator-capable problems
  /// (engine::EvalEngine::set_batch_eval semantics). Another pure execution
  /// knob: the SIMD path is bit-identical to the scalar oracle, so fronts,
  /// traces and checkpoints do not depend on it. Ignored when `engine` is a
  /// shared hub (the hub's own mode governs).
  BatchEval batch_eval = BatchEval::Scalar;
};

}  // namespace anadex::engine
