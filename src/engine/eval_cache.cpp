#include "engine/eval_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anadex::engine {

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
  ANADEX_REQUIRE(capacity > 0, "EvalCache capacity must be > 0");
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

EvalCache::Lru::iterator EvalCache::find_locked(std::span<const double> genes,
                                                std::uint64_t hash) {
  auto [lo, hi] = index_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    const Entry& entry = *it->second;
    if (entry.genes.size() == genes.size() &&
        std::equal(entry.genes.begin(), entry.genes.end(), genes.begin())) {
      return it->second;
    }
  }
  return lru_.end();
}

bool EvalCache::lookup(std::span<const double> genes, std::uint64_t hash,
                       moga::Evaluation& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = find_locked(genes, hash);
  if (it == lru_.end()) return false;
  out = it->eval;
  lru_.splice(lru_.begin(), lru_, it);  // refresh recency; iterators stay valid
  return true;
}

void EvalCache::insert(std::span<const double> genes, std::uint64_t hash,
                       const moga::Evaluation& eval) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto existing = find_locked(genes, hash);
  if (existing != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, existing);
    return;
  }
  if (lru_.size() >= capacity_) {
    const auto victim = std::prev(lru_.end());
    auto [lo, hi] = index_.equal_range(victim->hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    lru_.erase(victim);
  }
  lru_.push_front(Entry{{genes.begin(), genes.end()}, eval, hash});
  index_.emplace(hash, lru_.begin());
}

}  // namespace anadex::engine
