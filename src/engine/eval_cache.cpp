#include "engine/eval_cache.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anadex::engine {

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
  ANADEX_REQUIRE(capacity > 0, "EvalCache capacity must be > 0");
}

std::size_t EvalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

EvalCache::Lru::iterator EvalCache::find_locked(std::span<const double> genes,
                                                std::uint64_t hash,
                                                std::uint64_t context) {
  auto [lo, hi] = index_.equal_range(hash);
  for (auto it = lo; it != hi; ++it) {
    const Entry& entry = *it->second;
    if (entry.context == context && entry.genes.size() == genes.size() &&
        std::equal(entry.genes.begin(), entry.genes.end(), genes.begin())) {
      return it->second;
    }
  }
  return lru_.end();
}

bool EvalCache::lookup(std::span<const double> genes, std::uint64_t hash,
                       moga::Evaluation& out, std::uint64_t context) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = find_locked(genes, hash, context);
  if (it == lru_.end()) return false;
  out = it->eval;
  lru_.splice(lru_.begin(), lru_, it);  // refresh recency; iterators stay valid
  return true;
}

void EvalCache::insert(std::span<const double> genes, std::uint64_t hash,
                       const moga::Evaluation& eval, std::uint64_t context) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto existing = find_locked(genes, hash, context);
  if (existing != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, existing);
    return;
  }
  if (lru_.size() >= capacity_) {
    const auto victim = std::prev(lru_.end());
    auto [lo, hi] = index_.equal_range(victim->hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    lru_.erase(victim);
  }
  lru_.push_front(Entry{{genes.begin(), genes.end()}, eval, hash, context});
  index_.emplace(hash, lru_.begin());
  if constexpr (kCheckInvariants) {
    ANADEX_ASSERT(coherent_locked(),
                  "LRU list and hash index must describe the same entries");
  }
}

bool EvalCache::coherent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coherent_locked();
}

bool EvalCache::coherent_locked() const {
  if (lru_.size() > capacity_) return false;
  if (index_.size() != lru_.size()) return false;
  // Every index slot must point at a live list node filed under its own
  // hash. Collect the pointees to prove the mapping is a bijection.
  std::vector<const Entry*> seen;
  seen.reserve(index_.size());
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    auto [lo, hi] = index_.equal_range(it->hash);
    bool indexed = false;
    for (auto slot = lo; slot != hi; ++slot) {
      if (slot->second == it) {
        indexed = true;
        break;
      }
    }
    if (!indexed) return false;
    seen.push_back(&*it);
  }
  // index_.size() == lru_.size() plus every node indexed under its hash
  // leaves no room for dangling slots; finally, keys must be unique.
  std::sort(seen.begin(), seen.end(), [](const Entry* a, const Entry* b) {
    if (a->hash != b->hash) return a->hash < b->hash;
    if (a->context != b->context) return a->context < b->context;
    return std::lexicographical_compare(a->genes.begin(), a->genes.end(),
                                        b->genes.begin(), b->genes.end());
  });
  for (std::size_t i = 1; i < seen.size(); ++i) {
    if (seen[i - 1]->hash == seen[i]->hash &&
        seen[i - 1]->context == seen[i]->context &&
        seen[i - 1]->genes == seen[i]->genes) {
      return false;
    }
  }
  return true;
}

}  // namespace anadex::engine
