// Knobs shared by every evolver's parameter struct.
//
// Each algorithm's *Params embeds these by inheritance
// (`struct Nsga2Params : engine::EvolverCommon<Nsga2State>`), so call sites
// keep writing `params.seed = ...` while generic code — expt::run's
// checkpoint wiring, the determinism test matrix — can operate on any
// algorithm through one `EvolverCommon<State>&`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace anadex::engine {

/// Configuration common to every evolver: the RNG seed, the evaluation
/// thread count, and the checkpoint/resume hooks. `State` is the
/// algorithm's resumable-state type (e.g. moga::Nsga2State).
template <class State>
struct EvolverCommon {
  std::uint64_t seed = 1;

  /// Worker threads for batch genome evaluation: 1 = serial on the calling
  /// thread (the default), 0 = one per hardware thread, N = exactly N
  /// workers. Results are bit-identical for every value (see
  /// docs/engine.md).
  std::size_t threads = 1;

  // Checkpoint/resume (see robust/checkpoint.hpp for the file format).
  /// Call on_snapshot every this many generations (0 disables).
  std::size_t snapshot_every = 0;
  std::function<void(const State&)> on_snapshot;
  /// When set, skip initialization and continue from this state. The state
  /// must come from a run with identical params; seed is ignored in favour
  /// of the stored RNG state. Caller keeps the state alive for the run.
  const State* resume = nullptr;
};

}  // namespace anadex::engine
