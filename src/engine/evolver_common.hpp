// Knobs shared by every evolver's parameter struct.
//
// Each algorithm's *Params embeds these by inheritance
// (`struct Nsga2Params : engine::EvolverCommon<Nsga2State>`), so call sites
// keep writing `params.seed = ...` while generic code — expt::run's
// checkpoint wiring, the determinism test matrix — can operate on any
// algorithm through one `EvolverCommon<State>&`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/cancel.hpp"
#include "engine/eval_knobs.hpp"
#include "moga/individual.hpp"
#include "obs/event_sink.hpp"

namespace anadex::engine {

/// Computes the hypervolume of a (front) population for the per-generation
/// trace record. Problem-specific (needs a reference box), so the expt
/// layer supplies it; evolvers only forward.
using TraceHypervolume = std::function<double(const moga::Population&)>;

/// Observability wiring shared by every evolver, including WeightedSum
/// (which has no resumable state and therefore no EvolverCommon base).
/// Tracing is pure observation: it draws nothing from the RNG and mutates
/// no algorithm state, so fronts, evaluation counts and checkpoints are
/// byte-identical whether a sink is attached or not.
struct ObsConfig {
  /// Non-owning event destination; nullptr (the default) disables all
  /// telemetry at the cost of one pointer test per instrumentation site.
  obs::EventSink* sink = nullptr;

  /// Optional hypervolume metric added to each per-generation record.
  TraceHypervolume trace_hypervolume;
};

/// Configuration common to every evolver: the RNG seed, the pure execution
/// knobs (the engine::EvalKnobs base: threads / eval_cache / engine /
/// batch_eval), the checkpoint/resume hooks and the telemetry sink.
/// `State` is the algorithm's resumable-state type (e.g. moga::Nsga2State).
template <class State>
struct EvolverCommon : ObsConfig, EvalKnobs {
  std::uint64_t seed = 1;

  // Checkpoint/resume (see robust/checkpoint.hpp for the file format).
  /// Call on_snapshot every this many generations (0 disables).
  std::size_t snapshot_every = 0;
  std::function<void(const State&)> on_snapshot;
  /// When set, skip initialization and continue from this state. The state
  /// must come from a run with identical params; seed is ignored in favour
  /// of the stored RNG state. Caller keeps the state alive for the run.
  const State* resume = nullptr;

  // Graceful shutdown + stuck-eval watchdog (see docs/robustness.md).
  /// Non-owning stop-request token (e.g. robust::shutdown_token()). Checked
  /// once per generation at the barrier: when raised, the evolver snapshots
  /// (if on_snapshot is set), marks its result `interrupted` and returns.
  /// Stopping never consumes randomness, so a resumed run replays the
  /// remaining generations bit-identically.
  const CancelToken* stop = nullptr;

  /// Per-batch evaluation deadline in seconds (0 = no watchdog). Requires
  /// `eval_cancel`. A pure execution knob — excluded from config digests —
  /// but NOTE: a deadline that actually fires penalizes whichever items were
  /// still pending, which depends on wall-clock scheduling.
  double eval_deadline_s = 0.0;
  /// Token the watchdog raises and cooperative evaluators poll. Must also
  /// be handed to the GuardedProblem wrapping the evaluator (non-owning).
  CancelToken* eval_cancel = nullptr;
};

}  // namespace anadex::engine
