#include "engine/eval_engine.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"

namespace anadex::engine {

std::size_t EvalEngine::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

EvalEngine::EvalEngine(const moga::Problem& problem, std::size_t threads)
    : problem_(problem), threads_(resolve_threads(threads)) {
  if (threads_ <= 1) return;  // serial path: no pool
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EvalEngine::~EvalEngine() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void EvalEngine::evaluate_batch(std::span<const Genome> genomes,
                                std::span<moga::Evaluation> out) const {
  ANADEX_REQUIRE(genomes.size() == out.size(),
                 "evaluate_batch: genome and result spans must have equal size");
  std::vector<Item> items(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    items[i] = Item{&genomes[i], &out[i]};
  }
  run_batch(items);
}

void EvalEngine::evaluate_members(std::span<moga::Individual> members) const {
  std::vector<Item> items(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    items[i] = Item{&members[i].genes, &members[i].eval};
  }
  run_batch(items);
}

moga::Evaluation EvalEngine::evaluate(std::span<const double> genes) const {
  return problem_.evaluated(genes);
}

void EvalEngine::run_serial(std::span<const Item> items) const {
  // Same contract as the pooled path: attempt every item, then rethrow the
  // lowest-index failure, so thread count never changes which items got
  // their results written.
  std::exception_ptr first_error;
  for (const Item& item : items) {
    try {
      problem_.evaluate(*item.genes, *item.out);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void EvalEngine::process_item(std::size_t index) const {
  const Item& item = items_[index];
  try {
    problem_.evaluate(*item.genes, *item.out);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_ || index < first_error_index_) {
      first_error_ = std::current_exception();
      first_error_index_ = index;
    }
  }
}

void EvalEngine::run_batch(std::span<const Item> items) const {
  if (items.empty()) return;
  if (workers_.empty() || items.size() == 1) {
    run_serial(items);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  items_ = items.data();
  item_count_ = items.size();
  next_item_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  first_error_ = nullptr;
  first_error_index_ = std::numeric_limits<std::size_t>::max();
  ++batch_seq_;
  lock.unlock();
  work_ready_.notify_all();

  lock.lock();
  batch_done_.wait(lock, [&] {
    return active_ == 0 && completed_.load(std::memory_order_acquire) == item_count_;
  });
  items_ = nullptr;
  item_count_ = 0;
  const std::exception_ptr error = std::exchange(first_error_, nullptr);
  lock.unlock();

  if (error) std::rethrow_exception(error);
}

void EvalEngine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stopping_ || batch_seq_ != seen; });
      if (stopping_) return;
      seen = batch_seq_;
      ++active_;
    }

    const std::size_t count = item_count_;  // stable while this batch runs
    for (;;) {
      const std::size_t index = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      process_item(index);
      completed_.fetch_add(1, std::memory_order_acq_rel);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0 && completed_.load(std::memory_order_acquire) == count) {
        batch_done_.notify_all();
      }
    }
  }
}

}  // namespace anadex::engine
