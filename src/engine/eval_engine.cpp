#include "engine/eval_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/hash.hpp"

namespace anadex::engine {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::size_t EvalEngine::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

EvalEngine::EvalEngine(const moga::Problem& problem, std::size_t threads,
                       obs::EventSink* sink, std::size_t cache_capacity,
                       EvalWatchdog watchdog)
    : EvalEngine(threads, sink, cache_capacity, watchdog) {
  problem_ = &problem;
}

EvalEngine::EvalEngine(std::size_t threads, obs::EventSink* sink,
                       std::size_t cache_capacity, EvalWatchdog watchdog)
    : threads_(resolve_threads(threads)), sink_(sink), watchdog_(watchdog) {
  if (cache_capacity > 0) cache_ = std::make_unique<EvalCache>(cache_capacity);
  if (watchdog_.token != nullptr) {
    ANADEX_REQUIRE(
        std::isfinite(watchdog_.deadline_s) && watchdog_.deadline_s > 0.0,
        "watchdog deadline must be finite and positive");
  }
  if (watchdog_.enabled()) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
  if (threads_ <= 1) return;  // serial path: no pool
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

EvalEngine::~EvalEngine() {
  if (watchdog_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watch_mu_);
      watch_stop_ = true;
    }
    watch_cv_.notify_all();
    watchdog_thread_.join();
  }
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
  if (sink_ != nullptr && sink_->enabled(obs::TraceLevel::Eval) && trace_batches_ > 0) {
    const obs::Field fields[] = {obs::u64("batches", trace_batches_),
                                 obs::u64("items", trace_items_),
                                 obs::u64("workers", threads_),
                                 obs::u64("requested", stats_.requested),
                                 obs::u64("distinct", stats_.evaluated),
                                 obs::u64("cache_hits", stats_.cache_hits())};
    sink_->record(obs::Event{"eval_engine", obs::TraceLevel::Eval, true, fields});
  }
}

const moga::Problem& EvalEngine::problem() const {
  ANADEX_REQUIRE(problem_ != nullptr,
                 "EvalEngine::problem: hub engines have no bound problem");
  return *problem_;
}

void EvalEngine::evaluate_batch(std::span<const Genome> genomes,
                                std::span<moga::Evaluation> out) const {
  ANADEX_REQUIRE(genomes.size() == out.size(),
                 "evaluate_batch: genome and result spans must have equal size");
  ANADEX_REQUIRE(problem_ != nullptr,
                 "evaluate_batch: hub engines require evaluate_members_as");
  std::vector<Item> items(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    items[i] = Item{&genomes[i], &out[i]};
  }
  submit(*problem_, 0, items, nullptr);
}

void EvalEngine::evaluate_members(std::span<moga::Individual> members) const {
  ANADEX_REQUIRE(problem_ != nullptr,
                 "evaluate_members: hub engines require evaluate_members_as");
  std::vector<Item> items(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    items[i] = Item{&members[i].genes, &members[i].eval};
  }
  submit(*problem_, 0, items, nullptr);
}

void EvalEngine::evaluate_members_as(const moga::Problem& problem,
                                     std::uint64_t context,
                                     std::span<moga::Individual> members,
                                     EvalStats* client) const {
  std::vector<Item> items(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    items[i] = Item{&members[i].genes, &members[i].eval};
  }
  submit(problem, context, items, client);
}

moga::Evaluation EvalEngine::evaluate(std::span<const double> genes) const {
  return problem().evaluated(genes);
}

void EvalEngine::submit(const moga::Problem& problem, std::uint64_t context,
                        std::span<const Item> items, EvalStats* client) const {
  batch_problem_ = &problem;
  stats_.requested += items.size();
  if (client != nullptr) client->requested += items.size();
  if (!cache_) {
    trace_requested_ = items.size();
    trace_cache_hits_ = 0;
    stats_.evaluated += items.size();
    if (client != nullptr) client->evaluated += items.size();
    run_batch(items);
    return;
  }

  // Dedup on the calling thread, in ascending item order, so (a) the
  // counters need no synchronization and (b) the distinct dispatch list
  // preserves original index order — the pool's lowest-index-error rule
  // then surfaces the same exception the cache-off path would, because the
  // lowest-index faulting item is always a first occurrence.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  struct Pending {
    Item item;
    std::uint64_t hash = 0;
  };
  // Hash-keyed bucket lookup only: every access goes through operator[] on
  // a specific hash and a linear scan of that one bucket vector (filled in
  // ascending item order), so the map itself is never range-iterated and
  // its unspecified iteration order cannot reach results or traces.
  // anadex-lint: allow(det-unordered)
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> reps;
  std::vector<std::size_t> duplicate_of(items.size(), kNone);
  std::vector<Pending> missing;
  missing.reserve(items.size());
  std::uint64_t lru_hits = 0;
  std::uint64_t batch_hits = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Genome& genes = *items[i].genes;
    const std::uint64_t hash = hash_genes(genes, context);
    auto& bucket = reps[hash];
    std::size_t rep = kNone;
    for (std::size_t j : bucket) {
      if (*items[j].genes == genes) {
        rep = j;
        break;
      }
    }
    if (rep != kNone) {
      duplicate_of[i] = rep;
      ++batch_hits;
      continue;
    }
    bucket.push_back(i);
    if (cache_->lookup(genes, hash, *items[i].out, context)) {
      ++lru_hits;
      continue;
    }
    missing.push_back(Pending{items[i], hash});
  }
  if constexpr (kCheckInvariants) {
    // Dedup bookkeeping: every item is exactly one of intra-batch duplicate,
    // LRU hit, or dispatched representative; and a duplicate's representative
    // always precedes it in the batch — the property the lowest-index-error
    // rethrow rule relies on to match the cache-off path.
    ANADEX_ASSERT(batch_hits + lru_hits + missing.size() == items.size(),
                  "dedup must classify every batch item exactly once");
    for (std::size_t i = 0; i < items.size(); ++i) {
      ANADEX_ASSERT(duplicate_of[i] == kNone || duplicate_of[i] < i,
                    "a duplicate's representative must precede it in the batch");
    }
  }
  stats_.evaluated += missing.size();
  stats_.batch_hits += batch_hits;
  stats_.lru_hits += lru_hits;
  if (client != nullptr) {
    client->evaluated += missing.size();
    client->batch_hits += batch_hits;
    client->lru_hits += lru_hits;
  }
  trace_requested_ = items.size();
  trace_cache_hits_ = lru_hits;

  std::exception_ptr error;
  if (!missing.empty()) {
    std::vector<Item> dispatch;
    dispatch.reserve(missing.size());
    for (const Pending& p : missing) dispatch.push_back(p.item);
    try {
      run_batch(dispatch);
    } catch (...) {
      error = std::current_exception();
    }
    // A faulted batch may have left some representatives unwritten, so
    // nothing from it enters the LRU; fan-out below still mirrors the
    // representative slots, matching what independent evaluation of the
    // clones would have produced (they fault identically).
    if (!error) {
      for (const Pending& p : missing) {
        cache_->insert(*p.item.genes, p.hash, *p.item.out, context);
      }
    }
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (duplicate_of[i] != kNone) *items[i].out = *items[duplicate_of[i]].out;
  }
  if (error) std::rethrow_exception(error);
}

void EvalEngine::run_serial(std::span<const Item> items) const {
  // Same contract as the pooled path: attempt every item (lane group by
  // lane group), collect the lowest-index failure in first_error_, so
  // thread count never changes which items got their results written.
  for (std::size_t start = 0; start < items.size(); start += lane_width_) {
    process_group(start, std::min(lane_width_, items.size() - start));
  }
}

void EvalEngine::process_item(std::size_t index) const {
  const Item& item = items_[index];
  Clock::time_point item_start;
  if (trace_timing_) item_start = Clock::now();
  try {
    batch_problem_->evaluate(*item.genes, *item.out);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_ || index < first_error_index_) {
      first_error_ = std::current_exception();
      first_error_index_ = index;
    }
  }
  if (trace_timing_) {
    // Each slot is written by the single worker that claimed the item, so
    // this is race-free without further synchronization.
    const Clock::time_point done = Clock::now();
    trace_start_s_[index] = seconds_between(trace_submit_, item_start);
    trace_dur_s_[index] = seconds_between(item_start, done);
  }
}

void EvalEngine::process_group(std::size_t start, std::size_t count) const {
  if (lanes_ != nullptr && count > 1) {
    Clock::time_point group_start;
    if (trace_timing_) group_start = Clock::now();
    bool lanes_ok = false;
    try {
      std::vector<std::span<const double>> genes(count);
      std::vector<moga::Evaluation*> outs(count);
      for (std::size_t i = 0; i < count; ++i) {
        genes[i] = std::span<const double>(*items_[start + i].genes);
        outs[i] = items_[start + i].out;
      }
      lanes_->evaluate_lanes(genes, outs);
      lanes_ok = true;
    } catch (...) {
      // LaneEvaluator contract: a throwing group has written NO outputs.
      // Fall through to the per-item scalar path below, which reproduces
      // exactly what a scalar batch would have done with these items —
      // including recording the lowest-index per-item exception.
    }
    if (lanes_ok) {
      lane_groups_.fetch_add(1, std::memory_order_relaxed);
      lane_items_.fetch_add(count, std::memory_order_relaxed);
      if (trace_timing_) {
        // Lane groups are timed as a unit; each item is attributed an even
        // share so batch-level latency stats stay comparable. Measurement
        // only — never feeds back into results.
        const Clock::time_point done = Clock::now();
        const double share =
            seconds_between(group_start, done) / static_cast<double>(count);
        const double offset = seconds_between(trace_submit_, group_start);
        for (std::size_t i = 0; i < count; ++i) {
          trace_start_s_[start + i] = offset;
          trace_dur_s_[start + i] = share;
        }
      }
      return;
    }
    lane_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < count; ++i) process_item(start + i);
}

void EvalEngine::emit_batch_event(std::size_t size, double wall_seconds,
                                  std::size_t workers_used) const {
  obs::MinMeanMax latency;
  double queue_wait = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size; ++i) {
    latency.add(trace_dur_s_[i]);
    queue_wait = std::min(queue_wait, trace_start_s_[i]);
  }
  // Utilization: fraction of the pool's wall-clock capacity spent inside
  // Problem::evaluate. 1.0 = perfectly busy workers.
  const double capacity = wall_seconds * static_cast<double>(workers_used);
  const double utilization = capacity > 0.0 ? latency.sum / capacity : 0.0;

  const obs::Field fields[] = {obs::u64("batch", trace_batches_),
                               obs::u64("size", size),
                               obs::u64("requested", trace_requested_),
                               obs::u64("cache_hits", trace_cache_hits_),
                               obs::u64("workers", workers_used),
                               obs::f64("wall_s", wall_seconds),
                               obs::f64("queue_wait_s", queue_wait),
                               obs::f64("lat_min_s", latency.min),
                               obs::f64("lat_mean_s", latency.mean()),
                               obs::f64("lat_max_s", latency.max),
                               obs::f64("utilization", utilization)};
  sink_->record(obs::Event{"batch", obs::TraceLevel::Eval, true, fields});
  ++trace_batches_;
  trace_items_ += size;
}

void EvalEngine::arm_watchdog() const {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watch_deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(watchdog_.deadline_s));
  watch_armed_ = true;
  watch_fired_ = false;
  watch_cv_.notify_all();
}

bool EvalEngine::disarm_watchdog() const {
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    fired = watch_fired_;
    watch_armed_ = false;
    watch_fired_ = false;
  }
  watch_cv_.notify_all();
  if (fired) {
    // The batch has fully drained (every in-flight item observed the raised
    // token or finished), so clear it: the next batch must start clean.
    watchdog_.token->reset();
    ++watchdog_fires_;
  }
  return fired;
}

void EvalEngine::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  for (;;) {
    watch_cv_.wait(lock, [&] { return watch_stop_ || watch_armed_; });
    if (watch_stop_) return;
    const bool disarmed = watch_cv_.wait_until(
        lock, watch_deadline_, [&] { return watch_stop_ || !watch_armed_; });
    if (watch_stop_) return;
    if (disarmed) continue;  // batch finished inside the deadline
    // Deadline expired with the batch still running: presume a stuck
    // evaluation and raise the cooperative cancellation token. The batch
    // thread observes `watch_fired_` at disarm time.
    watchdog_.token->request();
    watch_fired_ = true;
    watch_armed_ = false;
  }
}

void EvalEngine::run_batch(std::span<const Item> items) const {
  if (items.empty()) return;
  // Lifetime busy-time accounting for the serve stats snapshot: counts the
  // submitting thread's wall time inside dispatch on every exit path.
  // Measurement only — it never feeds back into results.
  struct BusyScope {
    const EvalEngine* engine;
    Clock::time_point start;
    explicit BusyScope(const EvalEngine* e) : engine(e), start(Clock::now()) {}
    ~BusyScope() {
      engine->busy_seconds_ += seconds_between(start, Clock::now());
      ++engine->busy_batches_;
    }
    BusyScope(const BusyScope&) = delete;
    BusyScope& operator=(const BusyScope&) = delete;
  };
  const BusyScope busy_scope(this);
  // Arms the watchdog for the lifetime of this batch; the destructor
  // disarms on every exit path, including a rethrown batch exception.
  struct WatchdogScope {
    const EvalEngine* engine;
    explicit WatchdogScope(const EvalEngine* e) : engine(e) {
      if (engine != nullptr) engine->arm_watchdog();
    }
    ~WatchdogScope() {
      if (engine != nullptr) engine->disarm_watchdog();
    }
    WatchdogScope(const WatchdogScope&) = delete;
    WatchdogScope& operator=(const WatchdogScope&) = delete;
  };
  const WatchdogScope watchdog_scope(watchdog_.enabled() ? this : nullptr);

  const bool tracing = sink_ != nullptr && sink_->enabled(obs::TraceLevel::Eval);
  if (tracing) {
    trace_start_s_.assign(items.size(), 0.0);
    trace_dur_s_.assign(items.size(), 0.0);
    trace_submit_ = Clock::now();
  }
  trace_timing_ = tracing;

  // Lane discovery, per batch (a hub's batch_problem_ changes per batch).
  // Simd uses lanes whenever the problem supports them; Auto additionally
  // requires at least one full lane group so tiny batches skip the setup.
  lanes_ = nullptr;
  lane_width_ = 1;
  if (batch_eval_ != BatchEval::Scalar) {
    if (const auto* lanes = dynamic_cast<const LaneEvaluator*>(batch_problem_);
        lanes != nullptr && lanes->lanes_supported()) {
      const std::size_t width = std::max<std::size_t>(1, lanes->preferred_lane_width());
      if (batch_eval_ == BatchEval::Simd || items.size() >= width) {
        lanes_ = lanes;
        lane_width_ = width;
      }
    }
  }

  if (workers_.empty() || items.size() == 1) {
    items_ = items.data();
    item_count_ = items.size();
    first_error_ = nullptr;
    first_error_index_ = std::numeric_limits<std::size_t>::max();
    run_serial(items);
    items_ = nullptr;
    item_count_ = 0;
    const std::exception_ptr error = std::exchange(first_error_, nullptr);
    if (tracing) {
      trace_timing_ = false;
      emit_batch_event(items.size(), seconds_between(trace_submit_, Clock::now()), 1);
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  items_ = items.data();
  item_count_ = items.size();
  next_item_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  first_error_ = nullptr;
  first_error_index_ = std::numeric_limits<std::size_t>::max();
  ++batch_seq_;
  lock.unlock();
  work_ready_.notify_all();

  lock.lock();
  batch_done_.wait(lock, [&] {
    return active_ == 0 && completed_.load(std::memory_order_acquire) == item_count_;
  });
  if constexpr (kCheckInvariants) {
    // Slot completeness: the index-addressed claim counter must have handed
    // out every slot exactly once — each item attempted, none skipped, no
    // slot written twice (completed_ would overshoot item_count_ otherwise).
    ANADEX_ASSERT(next_item_.load(std::memory_order_relaxed) >= item_count_,
                  "every batch slot must have been claimed");
    ANADEX_ASSERT(completed_.load(std::memory_order_acquire) == item_count_,
                  "every batch slot must complete exactly once");
  }
  items_ = nullptr;
  item_count_ = 0;
  const std::exception_ptr error = std::exchange(first_error_, nullptr);
  lock.unlock();

  if (tracing) {
    trace_timing_ = false;
    emit_batch_event(items.size(), seconds_between(trace_submit_, Clock::now()),
                     threads_);
  }
  if (error) std::rethrow_exception(error);
}

void EvalEngine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stopping_ || batch_seq_ != seen; });
      if (stopping_) return;
      seen = batch_seq_;
      ++active_;
    }

    // Stable while this batch runs. Workers claim whole lane groups (width
    // 1 = the classic per-item claim) so a LaneEvaluator sees contiguous,
    // deterministic groups no matter which worker lands on them; results
    // are still written by item index, keeping the bit-identity contract
    // across thread counts and batch-eval modes.
    const std::size_t count = item_count_;
    const std::size_t width = lane_width_;
    for (;;) {
      const std::size_t start = next_item_.fetch_add(width, std::memory_order_relaxed);
      if (start >= count) break;
      const std::size_t group = std::min(width, count - start);
      process_group(start, group);
      completed_.fetch_add(group, std::memory_order_acq_rel);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (active_ == 0 && completed_.load(std::memory_order_acquire) == count) {
        batch_done_.notify_all();
      }
    }
  }
}

}  // namespace anadex::engine
