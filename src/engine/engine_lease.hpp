// EngineLease — the evolvers' evaluation front: either a private
// EvalEngine or a lease on a shared hub, behind one call shape.
//
// Each algorithm constructs one lease per run from (problem, EngineHandle,
// execution knobs). With an empty handle the lease OWNS an EvalEngine
// built from the knobs — exactly the engine the algorithm used to build
// itself, so results and traces are unchanged. With a hub handle the lease
// borrows the hub's worker pool and dedup cache, routing every batch
// through EvalEngine::evaluate_members_as under the handle's cache
// context and accumulating this client's EvalStats locally, so per-run
// requested/distinct/hit accounting stays exact even though the hub
// aggregates every job.
//
// Shared-mode restrictions (validated at construction):
//   - the per-run watchdog must be off — a deadline thread belongs to the
//     engine that owns the workers, so serve configures it on the hub;
//   - the per-run `threads` / `eval_cache` knobs are ignored in favour of
//     the hub's (documented in docs/serve.md).
// Batches are serialized by the caller exactly as with a private engine;
// the serve scheduler runs one job slice at a time, so a hub only ever
// sees one in-flight batch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "engine/engine_handle.hpp"
#include "engine/eval_engine.hpp"
#include "engine/eval_knobs.hpp"
#include "moga/individual.hpp"
#include "moga/problem.hpp"
#include "obs/event_sink.hpp"

namespace anadex::engine {

/// One run's evaluation seam: private engine or shared-hub lease.
class EngineLease {
 public:
  /// `handle` empty: builds a private EvalEngine(problem, threads, sink,
  /// cache_capacity, watchdog) running in `batch_eval` mode.
  /// `handle.shared()`: leases the hub; `threads` / `cache_capacity` /
  /// `batch_eval` are ignored (the hub's configuration governs) and
  /// `watchdog` must be disabled.
  EngineLease(const moga::Problem& problem, const EngineHandle& handle,
              std::size_t threads, obs::EventSink* sink,
              std::size_t cache_capacity, EvalWatchdog watchdog = {},
              BatchEval batch_eval = BatchEval::Scalar);

  /// Knob-bundle form: every evolver params struct and expt::RunSettings
  /// IS-A EvalKnobs, so the lease can be built straight from it —
  /// `EngineLease eval(problem, params, params.sink, watchdog)`. Exactly
  /// equivalent to spelling the four knobs out above.
  EngineLease(const moga::Problem& problem, const EvalKnobs& knobs,
              obs::EventSink* sink, EvalWatchdog watchdog = {});

  EngineLease(const EngineLease&) = delete;
  EngineLease& operator=(const EngineLease&) = delete;

  /// True when batches go through a shared hub engine.
  bool shared() const { return !owned_.has_value(); }

  const moga::Problem& problem() const { return problem_; }

  /// Effective worker count (the hub's when shared).
  std::size_t threads() const;

  /// Batch-evaluates `members[i].genes` into `members[i].eval`.
  void evaluate_members(std::span<moga::Individual> members) const;

  /// The single-item path (CLIs, archives, estimates).
  moga::Evaluation evaluate(std::span<const double> genes) const;

  /// THIS run's requested/distinct/cache-hit accounting — the engine
  /// totals when private, the locally-accumulated client stats when
  /// shared.
  const EvalStats& stats() const;

 private:
  const moga::Problem& problem_;
  EngineHandle handle_;
  std::optional<EvalEngine> owned_;  ///< engaged iff the handle was empty
  mutable EvalStats client_stats_;   ///< shared mode only
};

}  // namespace anadex::engine
