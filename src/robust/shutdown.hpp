// Graceful-shutdown signal handling: the ONLY module in the library that
// may install signal handlers or terminate the process (enforced by the
// `process-control` rule in scripts/anadex_lint.py).
//
// Model: the first SIGINT/SIGTERM raises a process-global CancelToken — a
// stop REQUEST, honored cooperatively by expt::run at the next generation
// barrier (snapshot, mark the outcome interrupted, return normally so
// destructors, trace sinks and checkpoint writers all unwind). A second
// signal is the operator insisting: the handler _exit()s immediately with
// the conventional 128+signo status.
#pragma once

#include "common/cancel.hpp"

namespace anadex::robust {

/// The process-global stop-request token raised by SIGINT/SIGTERM. Unlike a
/// watchdog eval token this is never reset by the library: once a shutdown
/// is requested it stays requested (tests may reset it between cases).
CancelToken& shutdown_token();

/// Installs the SIGINT/SIGTERM handlers described above. Idempotent;
/// callable from main() only (not async-signal-safe itself). On platforms
/// without sigaction this is a no-op and shutdown_token() simply never
/// fires from signals.
void install_shutdown_handlers();

}  // namespace anadex::robust
