// GuardedProblem: a fault-tolerant decorator around any moga::Problem.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "engine/simd/lane_evaluator.hpp"
#include "moga/problem.hpp"
#include "robust/fault.hpp"

namespace anadex::robust {

/// How GuardedProblem reacts to a faulted evaluation.
///
/// Recovery is attempted first: up to `max_retries` re-evaluations at a
/// slightly perturbed genome (some simulator failures are knife-edge —
/// a nudge of the operating point converges where the original did not).
/// If every attempt faults, the evaluation is substituted with
/// `penalty_objective` for every objective and `penalty_violation` for
/// every constraint slot, which (for constrained problems) marks the design
/// infeasible so constraint-domination sinks it without crashing the
/// evolver; unconstrained problems rely on the penalty objectives alone.
struct GuardPolicy {
  std::size_t max_retries = 2;     ///< perturbed re-evaluations after a fault
  double perturbation = 1e-6;      ///< retry nudge, relative to each bound range
  double penalty_objective = 1e9;  ///< objective value substituted on give-up
  double penalty_violation = 1e9;  ///< violation value substituted on give-up
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< mixes into retry perturbation

  /// Exponential backoff between retries, in busy-spin iterations: retry k
  /// waits base << (k-1) iterations plus a genome-derived jitter (0 = no
  /// backoff, the default). Deliberately NOT wall-clock based: the wait is
  /// a pure function of (genes, attempt), so retried evaluations — and
  /// therefore whole runs — stay bit-reproducible. Useful when the inner
  /// evaluator is a shared resource (a licensed simulator pool) that
  /// benefits from spacing out hammering retries.
  std::size_t backoff_spin_base = 0;
};

/// Wraps an inner Problem, converting exceptions, non-finite values and
/// wrong-arity results into retries and then penalty evaluations while
/// accumulating a FaultReport. Retry perturbations are derived purely from
/// the genome (hash_genes), so the wrapper remains deterministic — the same
/// genes always yield the same evaluation — preserving the Problem contract
/// and checkpoint/resume bit-reproducibility.
///
/// Thread-safety: evaluate() may be called concurrently (the
/// engine::EvalEngine worker pool does). Each call accumulates its faults
/// in a local tally and commits it to the shared report in one short
/// critical section; clean evaluations never take the lock. Counter totals
/// are order-independent sums and the sample failure is canonicalized by
/// genome hash (FaultReport::merge), so the report — and therefore every
/// checkpoint file — is bit-identical for any thread count.
class GuardedProblem final : public moga::Problem, public engine::LaneEvaluator {
 public:
  GuardedProblem(std::shared_ptr<const moga::Problem> inner, GuardPolicy policy);

  std::string name() const override;
  std::size_t num_variables() const override;
  std::size_t num_objectives() const override;
  std::size_t num_constraints() const override;
  std::vector<moga::VariableBound> bounds() const override;
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override;

  // LaneEvaluator pass-through: lane groups run on the inner problem's SIMD
  // path, then every lane is validated with the same predicate as the
  // scalar guard; faulty lanes are re-run through the scalar evaluate() so
  // the retry ladder, penalties and the FaultReport are byte-identical to
  // what scalar mode would have produced (the inner evaluator is
  // deterministic, so a faulting genome faults identically both ways).
  bool lanes_supported() const override {
    return inner_lanes_ != nullptr && inner_lanes_->lanes_supported();
  }
  std::size_t preferred_lane_width() const override {
    return inner_lanes_ != nullptr ? inner_lanes_->preferred_lane_width() : 1;
  }
  void evaluate_lanes(std::span<const std::span<const double>> genes,
                      std::span<moga::Evaluation* const> outs) const override;

  const moga::Problem& inner() const { return *inner_; }
  const GuardPolicy& policy() const { return policy_; }

  /// Faults observed so far (a snapshot taken under the report lock).
  FaultReport report() const;

  /// Replaces the accumulated report (used when resuming from a checkpoint
  /// so fault totals stay cumulative across the whole logical run).
  void set_report(FaultReport report);

  /// Attaches the evaluation watchdog's cancellation token (non-owning;
  /// nullptr detaches). Once the token is raised, evaluations fail fast
  /// with FaultKind::Timeout penalties instead of calling the (presumed
  /// stuck) inner evaluator, and OperationCancelled thrown by cooperative
  /// inner problems is classified as a timeout rather than a generic
  /// exception. Set before the run starts; not thread-safe against
  /// concurrent evaluate() calls.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }
  const CancelToken* cancel_token() const { return cancel_; }

 private:
  /// One evaluation attempt; returns true on a clean result, false after
  /// recording the fault in `tally`.
  bool try_evaluate(std::span<const double> genes, moga::Evaluation& out,
                    FaultReport& tally) const;

  /// The validity predicate of try_evaluate without the fault accounting:
  /// right arity and every value finite.
  bool clean_result(const moga::Evaluation& out) const;

  std::shared_ptr<const moga::Problem> inner_;
  /// Inner problem's lane interface when it has one (same object as
  /// inner_, non-owning), null otherwise.
  const engine::LaneEvaluator* inner_lanes_ = nullptr;
  GuardPolicy policy_;
  std::vector<moga::VariableBound> bounds_;
  const CancelToken* cancel_ = nullptr;  ///< watchdog token, non-owning
  mutable std::mutex report_mu_;
  mutable FaultReport report_;
};

}  // namespace anadex::robust
