#include "robust/chaos.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace anadex::robust {

ChaosPlan ChaosPlan::from_seed(std::uint64_t seed, std::size_t total_generations,
                               bool with_write_crash) {
  ANADEX_REQUIRE(total_generations >= 4, "chaos plans need at least 4 generations");
  Rng rng(seed ^ 0xc4a05ULL);  // domain-separate from problem/run seeds
  ChaosPlan plan;
  plan.seed = seed;
  plan.faults.seed = rng();
  plan.faults.exception_rate = 0.01 + 0.04 * rng.uniform();
  plan.faults.nan_rate = 0.01 + 0.04 * rng.uniform();
  plan.faults.slow_rate = 0.005 + 0.015 * rng.uniform();
  plan.faults.slow_spin_iterations = 2000 + rng.uniform_index(8000);
  // Kill somewhere in the middle half, so both the pre-kill and post-resume
  // segments are non-trivial.
  const std::size_t quarter = total_generations / 4;
  plan.kill_generation = quarter + rng.uniform_index(2 * quarter);
  plan.crash_at_write = with_write_crash ? 1 + rng.uniform_index(3) : 0;
  return plan;
}

CheckpointWriteHook make_crashing_write_hook(std::size_t crash_at_write,
                                             std::shared_ptr<std::size_t> writes_completed) {
  ANADEX_REQUIRE(writes_completed != nullptr, "crashing write hook needs a counter");
  // std::function copies its target, so the attempt counter lives behind a
  // shared_ptr: every copy of the hook sees the same tally.
  auto attempts = std::make_shared<std::size_t>(0);
  return [crash_at_write, attempts, writes_completed](CheckpointWritePhase phase,
                                                      const std::string& path) {
    if (phase == CheckpointWritePhase::AfterTempWrite) {
      ++*attempts;
      if (crash_at_write != 0 && *attempts == crash_at_write) {
        throw InjectedCrash("injected checkpoint-write crash after temp write: " + path);
      }
    } else if (phase == CheckpointWritePhase::AfterRename) {
      ++*writes_completed;
    }
  };
}

}  // namespace anadex::robust
