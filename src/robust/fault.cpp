#include "robust/fault.hpp"

#include <cstring>
#include <sstream>

#include "common/check.hpp"

namespace anadex::robust {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::EvaluatorException: return "evaluator-exception";
    case FaultKind::NonFiniteValue: return "non-finite-value";
    case FaultKind::WrongArity: return "wrong-arity";
    case FaultKind::Timeout: return "timeout";
  }
  ANADEX_ASSERT(false, "unknown fault kind");
  return "";
}

void FaultReport::count(FaultKind kind) {
  switch (kind) {
    case FaultKind::EvaluatorException: ++exceptions; break;
    case FaultKind::NonFiniteValue: ++non_finite; break;
    case FaultKind::WrongArity: ++wrong_arity; break;
    case FaultKind::Timeout: ++timeouts; break;
  }
}

void FaultReport::note_failure(std::span<const double> genes, const std::string& message) {
  if (!failure_message.empty() || !failure_genes.empty()) return;
  failure_genes.assign(genes.begin(), genes.end());
  failure_message = message.empty() ? "(no message)" : message;
}

void FaultReport::merge(const FaultReport& other) {
  exceptions += other.exceptions;
  non_finite += other.non_finite;
  wrong_arity += other.wrong_arity;
  timeouts += other.timeouts;
  retries += other.retries;
  recovered += other.recovered;
  penalized += other.penalized;

  const bool mine = !failure_message.empty() || !failure_genes.empty();
  const bool theirs = !other.failure_message.empty() || !other.failure_genes.empty();
  if (!theirs) return;
  if (!mine) {
    failure_genes = other.failure_genes;
    failure_message = other.failure_message;
    return;
  }
  // Both hold a sample: keep the canonical (lowest-hash) one so the merged
  // report does not depend on merge order.
  const std::uint64_t a = hash_genes(failure_genes, 0);
  const std::uint64_t b = hash_genes(other.failure_genes, 0);
  const bool replace =
      b < a || (b == a && (other.failure_genes < failure_genes ||
                           (other.failure_genes == failure_genes &&
                            other.failure_message < failure_message)));
  if (replace) {
    failure_genes = other.failure_genes;
    failure_message = other.failure_message;
  }
}

std::string FaultReport::summary() const {
  std::ostringstream os;
  os << total_faults() << " fault(s): " << exceptions << " exception(s), " << non_finite
     << " non-finite, " << wrong_arity << " wrong-arity, " << timeouts << " timeout(s); "
     << retries << " retry(ies), " << recovered << " recovered, " << penalized
     << " penalized";
  if (!failure_message.empty()) {
    os << "; sample: " << failure_message;
  }
  return os.str();
}

}  // namespace anadex::robust
