#include "robust/guarded_problem.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace anadex::robust {

GuardedProblem::GuardedProblem(std::shared_ptr<const moga::Problem> inner, GuardPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  ANADEX_REQUIRE(inner_ != nullptr, "GuardedProblem needs an inner problem");
  ANADEX_REQUIRE(policy_.perturbation >= 0.0, "guard perturbation must be >= 0");
  ANADEX_REQUIRE(std::isfinite(policy_.penalty_objective) && std::isfinite(policy_.penalty_violation),
                 "guard penalty values must be finite");
  bounds_ = inner_->bounds();
  ANADEX_REQUIRE(bounds_.size() == inner_->num_variables(),
                 "inner problem bounds()/num_variables() disagree");
  inner_lanes_ = dynamic_cast<const engine::LaneEvaluator*>(inner_.get());
}

std::string GuardedProblem::name() const { return inner_->name() + "+guard"; }
std::size_t GuardedProblem::num_variables() const { return inner_->num_variables(); }
std::size_t GuardedProblem::num_objectives() const { return inner_->num_objectives(); }
std::size_t GuardedProblem::num_constraints() const { return inner_->num_constraints(); }
std::vector<moga::VariableBound> GuardedProblem::bounds() const { return bounds_; }

FaultReport GuardedProblem::report() const {
  std::lock_guard<std::mutex> lock(report_mu_);
  return report_;
}

void GuardedProblem::set_report(FaultReport report) {
  std::lock_guard<std::mutex> lock(report_mu_);
  report_ = std::move(report);
}

bool GuardedProblem::try_evaluate(std::span<const double> genes, moga::Evaluation& out,
                                  FaultReport& tally) const {
  out.objectives.clear();
  out.violations.clear();
  try {
    inner_->evaluate(genes, out);
  } catch (const OperationCancelled& e) {
    tally.count(FaultKind::Timeout);
    tally.note_failure(genes, std::string("timeout: ") + e.what());
    return false;
  } catch (const std::exception& e) {
    tally.count(FaultKind::EvaluatorException);
    tally.note_failure(genes, std::string("exception: ") + e.what());
    return false;
  } catch (...) {
    tally.count(FaultKind::EvaluatorException);
    tally.note_failure(genes, "exception: (non-standard exception)");
    return false;
  }

  if (out.objectives.size() != inner_->num_objectives() ||
      out.violations.size() != inner_->num_constraints()) {
    tally.count(FaultKind::WrongArity);
    tally.note_failure(genes, "wrong arity: got " + std::to_string(out.objectives.size()) +
                                  " objectives / " + std::to_string(out.violations.size()) +
                                  " violations");
    return false;
  }

  for (double v : out.objectives) {
    if (!std::isfinite(v)) {
      tally.count(FaultKind::NonFiniteValue);
      tally.note_failure(genes, "non-finite objective");
      return false;
    }
  }
  for (double v : out.violations) {
    if (!std::isfinite(v)) {
      tally.count(FaultKind::NonFiniteValue);
      tally.note_failure(genes, "non-finite violation");
      return false;
    }
  }
  return true;
}

void GuardedProblem::evaluate(std::span<const double> genes, moga::Evaluation& out) const {
  // Per-call fault tally, committed to the shared report in one critical
  // section at the end. Clean evaluations — the overwhelmingly common case
  // — return without ever touching the lock, so parallel batch evaluation
  // does not serialize on the guard.
  FaultReport tally;
  const bool ok = [&] {
    // Watchdog fail-fast: once the deadline token is raised, the inner
    // evaluator is presumed stuck — penalize immediately instead of feeding
    // it more work, so the rest of the batch drains in microseconds and the
    // generation barrier (where the run can snapshot and stop) is reached.
    if (cancel_ != nullptr && cancel_->requested()) {
      tally.count(FaultKind::Timeout);
      tally.note_failure(genes, "timeout: evaluation cancelled by watchdog deadline");
      ++tally.penalized;
      out.objectives.assign(inner_->num_objectives(), policy_.penalty_objective);
      out.violations.assign(inner_->num_constraints(), policy_.penalty_violation);
      return false;
    }

    if (try_evaluate(genes, out, tally)) return true;

    // Retry at slightly perturbed genomes. The perturbation stream is a
    // pure function of (genes, attempt), so repeated evaluation of the same
    // genome — including after a checkpoint/resume — replays identically.
    std::vector<double> nudged(genes.begin(), genes.end());
    for (std::size_t attempt = 1; attempt <= policy_.max_retries; ++attempt) {
      // A raised watchdog token also cuts the retry ladder short: retrying
      // against a stuck evaluator only prolongs the stall.
      if (cancel_ != nullptr && cancel_->requested()) break;
      if (policy_.backoff_spin_base > 0) {
        // Deterministic exponential backoff: base << (attempt-1) iterations
        // plus a genome-derived jitter (at most one extra base unit). A
        // busy-spin rather than a sleep keeps wall clocks out of the
        // decision path entirely — the wait is a pure function of
        // (genes, attempt), preserving bit-reproducibility.
        const std::size_t expo =
            policy_.backoff_spin_base << std::min<std::size_t>(attempt - 1, 20);
        const std::size_t jitter =
            hash_genes(genes, policy_.seed ^ attempt) % (policy_.backoff_spin_base + 1);
        volatile std::size_t spin_sink = 0;
        for (std::size_t i = 0; i < expo + jitter; ++i) spin_sink = spin_sink + 1;
      }
      ++tally.retries;
      Rng rng(hash_genes(genes, policy_.seed + attempt));
      for (std::size_t i = 0; i < nudged.size(); ++i) {
        const auto& b = bounds_[i];
        const double range = b.upper - b.lower;
        const double delta = policy_.perturbation * range * (2.0 * rng.uniform() - 1.0);
        nudged[i] = std::clamp(genes[i] + delta, b.lower, b.upper);
      }
      if (try_evaluate(nudged, out, tally)) {
        ++tally.recovered;
        return true;
      }
    }

    // Give up: substitute a finite penalty evaluation that is marked
    // infeasible, so constraint-domination ranks it below every genuinely
    // evaluated design and selection drives it out of the population.
    ++tally.penalized;
    out.objectives.assign(inner_->num_objectives(), policy_.penalty_objective);
    // Constrained problems additionally get maximal violations, so Deb's
    // constraint-domination ranks the design below every genuinely evaluated
    // one. Unconstrained problems must keep violations empty (arity
    // contract); there the penalty objectives alone carry the signal.
    out.violations.assign(inner_->num_constraints(), policy_.penalty_violation);
    return false;
  }();
  (void)ok;

  if (tally.total_faults() == 0 && tally.retries == 0) return;
  std::lock_guard<std::mutex> lock(report_mu_);
  report_.merge(tally);
}

bool GuardedProblem::clean_result(const moga::Evaluation& out) const {
  if (out.objectives.size() != inner_->num_objectives() ||
      out.violations.size() != inner_->num_constraints()) {
    return false;
  }
  for (double v : out.objectives) {
    if (!std::isfinite(v)) return false;
  }
  for (double v : out.violations) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void GuardedProblem::evaluate_lanes(std::span<const std::span<const double>> genes,
                                    std::span<moga::Evaluation* const> outs) const {
  ANADEX_REQUIRE(genes.size() == outs.size(),
                 "evaluate_lanes needs parallel gene/result spans");
  // Watchdog fail-fast or no inner lane path: the guarded scalar route
  // handles every lane (penalties, retries, fault tally — all of it).
  const bool cancelled = cancel_ != nullptr && cancel_->requested();
  if (inner_lanes_ == nullptr || cancelled) {
    for (std::size_t i = 0; i < genes.size(); ++i) evaluate(genes[i], *outs[i]);
    return;
  }

  // One SIMD pass over the group. The LaneEvaluator contract says a
  // throwing group wrote no outputs, but the guard does not rely on it:
  // after a throw EVERY lane is re-run scalar, overwriting whatever state
  // the outputs were left in.
  bool lanes_ok = true;
  try {
    inner_lanes_->evaluate_lanes(genes, outs);
  } catch (...) {
    lanes_ok = false;
  }

  // Per-lane validation with the scalar guard's predicate. Clean lanes are
  // finished — no lock, no tally, exactly like a clean scalar evaluate().
  // Faulty (or throw-invalidated) lanes re-run through evaluate(): the
  // inner problem is deterministic, so the scalar pass reproduces the same
  // fault and the retry/penalty/report sequence matches scalar mode
  // bit-for-bit.
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (!lanes_ok || !clean_result(*outs[i])) evaluate(genes[i], *outs[i]);
  }
}

}  // namespace anadex::robust
