#include "robust/guarded_problem.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace anadex::robust {

GuardedProblem::GuardedProblem(std::shared_ptr<const moga::Problem> inner, GuardPolicy policy)
    : inner_(std::move(inner)), policy_(policy) {
  ANADEX_REQUIRE(inner_ != nullptr, "GuardedProblem needs an inner problem");
  ANADEX_REQUIRE(policy_.perturbation >= 0.0, "guard perturbation must be >= 0");
  ANADEX_REQUIRE(std::isfinite(policy_.penalty_objective) && std::isfinite(policy_.penalty_violation),
                 "guard penalty values must be finite");
  bounds_ = inner_->bounds();
  ANADEX_REQUIRE(bounds_.size() == inner_->num_variables(),
                 "inner problem bounds()/num_variables() disagree");
}

std::string GuardedProblem::name() const { return inner_->name() + "+guard"; }
std::size_t GuardedProblem::num_variables() const { return inner_->num_variables(); }
std::size_t GuardedProblem::num_objectives() const { return inner_->num_objectives(); }
std::size_t GuardedProblem::num_constraints() const { return inner_->num_constraints(); }
std::vector<moga::VariableBound> GuardedProblem::bounds() const { return bounds_; }

bool GuardedProblem::try_evaluate(std::span<const double> genes, moga::Evaluation& out) const {
  out.objectives.clear();
  out.violations.clear();
  try {
    inner_->evaluate(genes, out);
  } catch (const std::exception& e) {
    report_.count(FaultKind::EvaluatorException);
    report_.note_failure(genes, std::string("exception: ") + e.what());
    return false;
  } catch (...) {
    report_.count(FaultKind::EvaluatorException);
    report_.note_failure(genes, "exception: (non-standard exception)");
    return false;
  }

  if (out.objectives.size() != inner_->num_objectives() ||
      out.violations.size() != inner_->num_constraints()) {
    report_.count(FaultKind::WrongArity);
    report_.note_failure(genes, "wrong arity: got " + std::to_string(out.objectives.size()) +
                                    " objectives / " + std::to_string(out.violations.size()) +
                                    " violations");
    return false;
  }

  for (double v : out.objectives) {
    if (!std::isfinite(v)) {
      report_.count(FaultKind::NonFiniteValue);
      report_.note_failure(genes, "non-finite objective");
      return false;
    }
  }
  for (double v : out.violations) {
    if (!std::isfinite(v)) {
      report_.count(FaultKind::NonFiniteValue);
      report_.note_failure(genes, "non-finite violation");
      return false;
    }
  }
  return true;
}

void GuardedProblem::evaluate(std::span<const double> genes, moga::Evaluation& out) const {
  if (try_evaluate(genes, out)) return;

  // Retry at slightly perturbed genomes. The perturbation stream is a pure
  // function of (genes, attempt), so repeated evaluation of the same genome
  // — including after a checkpoint/resume — replays identically.
  std::vector<double> nudged(genes.begin(), genes.end());
  for (std::size_t attempt = 1; attempt <= policy_.max_retries; ++attempt) {
    ++report_.retries;
    Rng rng(hash_genes(genes, policy_.seed + attempt));
    for (std::size_t i = 0; i < nudged.size(); ++i) {
      const auto& b = bounds_[i];
      const double range = b.upper - b.lower;
      const double delta = policy_.perturbation * range * (2.0 * rng.uniform() - 1.0);
      nudged[i] = std::clamp(genes[i] + delta, b.lower, b.upper);
    }
    if (try_evaluate(nudged, out)) {
      ++report_.recovered;
      return;
    }
  }

  // Give up: substitute a finite penalty evaluation that is marked
  // infeasible, so constraint-domination ranks it below every genuinely
  // evaluated design and selection drives it out of the population.
  ++report_.penalized;
  out.objectives.assign(inner_->num_objectives(), policy_.penalty_objective);
  // Constrained problems additionally get maximal violations, so Deb's
  // constraint-domination ranks the design below every genuinely evaluated
  // one. Unconstrained problems must keep violations empty (arity contract);
  // there the penalty objectives alone carry the signal.
  out.violations.assign(inner_->num_constraints(), policy_.penalty_violation);
}

}  // namespace anadex::robust
