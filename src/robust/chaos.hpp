// Deterministic chaos harness: everything a kill/resume robustness test
// needs, derived from one 64-bit seed.
//
// A ChaosPlan bundles (a) fault-injection rates for a FaultInjectingProblem
// (evaluator exceptions, NaN objectives, slow evals), (b) the generation at
// which to request a graceful stop — simulating an operator kill — and
// (c) the ordinal of the checkpoint write whose temp-file phase crashes,
// exercising the durability seam in write_checkpoint_file. All three are
// pure functions of the seed, so a chaotic run is exactly replayable: the
// byte-identity tests in tests/robust/chaos_test.cpp kill a run mid-flight,
// resume it with `--resume auto` semantics, and require the final front and
// checkpoint to match an uninterrupted run bit for bit.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"

namespace anadex::robust {

/// Thrown by a chaos write hook to simulate the process dying between the
/// checkpoint temp-file write and the rename into place.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One seeded chaos scenario. See from_seed() for the derivation.
struct ChaosPlan {
  std::uint64_t seed = 0;        ///< the scenario seed (echoed for reports)
  FaultInjectionConfig faults;   ///< evaluator fault rates for the scenario
  std::size_t kill_generation = 0;  ///< request a stop once this generation completes
  std::size_t crash_at_write = 0;   ///< 1-based checkpoint write whose temp phase
                                    ///< crashes; 0 = no injected write crash

  /// Derives a plan from `seed` for a run of `total_generations`:
  /// modest fault rates (a few percent), a kill generation in the middle
  /// half of the run, and — when `with_write_crash` — a crash at one of the
  /// first few checkpoint writes.
  static ChaosPlan from_seed(std::uint64_t seed, std::size_t total_generations,
                             bool with_write_crash = true);
};

/// Builds a CheckpointWriteHook that throws InjectedCrash on the
/// `crash_at_write`-th AfterTempWrite phase (1-based; 0 never crashes).
/// The shared counter reports how many completed (AfterRename) writes the
/// hook observed, so tests can assert the crash actually hit.
CheckpointWriteHook make_crashing_write_hook(std::size_t crash_at_write,
                                             std::shared_ptr<std::size_t> writes_completed);

}  // namespace anadex::robust
