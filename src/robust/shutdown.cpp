#include "robust/shutdown.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>   // anadex-lint: allow(process-control)
#include <unistd.h>  // anadex-lint: allow(process-control)
#define ANADEX_HAVE_SIGACTION 1
#else
#define ANADEX_HAVE_SIGACTION 0
#endif

#include <atomic>

namespace anadex::robust {

namespace {

std::atomic<bool> g_handlers_installed{false};

#if ANADEX_HAVE_SIGACTION
// Everything the handler touches is async-signal-safe: two lock-free
// atomics and _exit(). No allocation, no locks, no iostreams.
std::atomic<int> g_signals_seen{0};

extern "C" void anadex_shutdown_handler(int signo) {
  const int seen = g_signals_seen.fetch_add(1, std::memory_order_acq_rel);
  if (seen == 0) {
    shutdown_token().request();
    return;
  }
  // Second signal: the cooperative path is taking too long for the
  // operator — terminate immediately with the conventional status.
  _exit(128 + signo);  // anadex-lint: allow(process-control)
}
#endif

}  // namespace

CancelToken& shutdown_token() {
  static CancelToken token;
  return token;
}

void install_shutdown_handlers() {
  if (g_handlers_installed.exchange(true, std::memory_order_acq_rel)) return;
#if ANADEX_HAVE_SIGACTION
  // Touch the token once before any signal can arrive, so the handler's
  // shutdown_token() call never races its (magic-static) initialization.
  (void)shutdown_token().requested();
  struct sigaction action = {};
  action.sa_handler = &anadex_shutdown_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see EINTR
  (void)sigaction(SIGINT, &action, nullptr);   // anadex-lint: allow(process-control)
  (void)sigaction(SIGTERM, &action, nullptr);  // anadex-lint: allow(process-control)
#endif
}

}  // namespace anadex::robust
