// Versioned checkpoint files for long explorations.
//
// A checkpoint captures everything needed to resume a run bit-identically:
// the meta description of the run (algorithm, seed, sizes, a config digest
// that must match on resume), the cumulative fault report, the history
// samples recorded so far, and exactly one algorithm state (population(s),
// rank/crowding bookkeeping, full RNG state, phase/annealing position).
//
// File format (line-oriented text, doubles as bit-exact hex-floats):
//
//   anadex-checkpoint v1
//   meta <algo> <seed> <population> <generations>
//   config <opaque one-line digest, compared for equality on resume>
//   faults <exceptions> <non_finite> <wrong_arity> <retries> <recovered> <penalized>
//   fault-genes <n> [g1 g2 ...]
//   fault-message [text...]
//   history <count>
//   sample <generation> <front_area> <front_size>     (x count)
//   state <nsga2|spea2|local-only|sacga|mesacga|island>
//   <state-specific records; populations as embedded "anadex-population v2">
//   end
//
// Writes are atomic (temp file + rename), so an interrupt mid-write leaves
// the previous checkpoint intact. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "moga/nsga2.hpp"
#include "moga/spea2.hpp"
#include "robust/fault.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::robust {

/// Identity of the run a checkpoint belongs to. On resume, every field must
/// match the resuming run's settings; `config` is an opaque digest of the
/// remaining knobs (built by the caller, e.g. expt::run) compared verbatim.
struct CheckpointMeta {
  std::string algo;
  std::uint64_t seed = 0;
  std::size_t population = 0;
  std::size_t generations = 0;
  std::string config;  ///< one-line digest; no newlines

  bool operator==(const CheckpointMeta&) const = default;
};

/// One recorded history point (mirrors expt's per-stride metric sampling;
/// lives here so expt can persist history without a dependency cycle).
struct HistorySample {
  std::size_t generation = 0;
  double front_area = 0.0;
  std::size_t front_size = 0;

  bool operator==(const HistorySample&) const = default;
};

/// A complete checkpoint: meta + faults + history + exactly one state.
struct Checkpoint {
  CheckpointMeta meta;
  FaultReport faults;
  std::vector<HistorySample> history;

  std::optional<moga::Nsga2State> nsga2;
  std::optional<moga::Spea2State> spea2;
  std::optional<sacga::LocalOnlyState> local_only;
  std::optional<sacga::SacgaState> sacga;
  std::optional<sacga::MesacgaState> mesacga;
  std::optional<sacga::IslandState> island;

  /// Name of the state actually present ("nsga2", "spea2", "local-only", ...).
  std::string state_kind() const;
};

/// Serializes `checkpoint` (which must hold exactly one state).
void save_checkpoint(std::ostream& os, const Checkpoint& checkpoint);

/// Parses a checkpoint stream. Throws PreconditionError on version/format
/// violations.
Checkpoint load_checkpoint(std::istream& is);

/// Atomically writes `checkpoint` to `path` (temp file in the same
/// directory + rename), so a crash mid-write cannot corrupt an existing
/// checkpoint. Throws PreconditionError on IO failure.
void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint);

/// Reads a checkpoint from `path`. Throws PreconditionError if the file is
/// missing or malformed.
Checkpoint read_checkpoint_file(const std::string& path);

}  // namespace anadex::robust
