// Versioned, durable checkpoint files for long explorations.
//
// A checkpoint captures everything needed to resume a run bit-identically:
// the meta description of the run (algorithm, seed, sizes, a config digest
// that must match on resume), the cumulative fault report, the history
// samples recorded so far, and exactly one algorithm state (population(s),
// rank/crowding bookkeeping, full RNG state, phase/annealing position).
//
// File format (line-oriented text, doubles as bit-exact hex-floats):
//
//   anadex-checkpoint v2
//   meta <algo> <seed> <population> <generations>
//   config <opaque one-line digest, compared for equality on resume>
//   faults <exceptions> <non_finite> <wrong_arity> <timeouts> <retries> <recovered> <penalized>
//   fault-genes <n> [g1 g2 ...]
//   fault-message [text...]
//   history <count>
//   sample <generation> <front_area> <front_size>     (x count)
//   state <nsga2|spea2|local-only|sacga|mesacga|island>
//   <state-specific records; populations as embedded "anadex-population v2">
//   end
//   checksum <16 hex digits>
//
// The checksum trailer is FNV-1a (common/hash.hpp hash_bytes) over every
// byte up to and including the "end" line, so truncation, bit flips and
// partial writes are all detected before any state is trusted.
//
// Durability: write_checkpoint_file writes to a temp file, fsyncs it,
// rotates the existing chain (path -> path.1 -> path.2 ...) and renames the
// temp into place, so a kill at ANY instant leaves at least one valid
// checkpoint on disk. recover_checkpoint scans the chain newest-first and
// returns the first slot that passes the checksum and format checks — the
// engine behind the CLI's `--resume auto`. See docs/robustness.md.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "moga/nsga2.hpp"
#include "moga/spea2.hpp"
#include "robust/fault.hpp"
#include "sacga/island.hpp"
#include "sacga/local_only.hpp"
#include "sacga/mesacga.hpp"
#include "sacga/sacga.hpp"

namespace anadex::robust {

/// Identity of the run a checkpoint belongs to. On resume, every field must
/// match the resuming run's settings; `config` is an opaque digest of the
/// remaining knobs (built by the caller, e.g. expt::run) compared verbatim.
struct CheckpointMeta {
  std::string algo;
  std::uint64_t seed = 0;
  std::size_t population = 0;
  std::size_t generations = 0;
  std::string config;  ///< one-line digest; no newlines

  bool operator==(const CheckpointMeta&) const = default;
};

/// One recorded history point (mirrors expt's per-stride metric sampling;
/// lives here so expt can persist history without a dependency cycle).
struct HistorySample {
  std::size_t generation = 0;
  double front_area = 0.0;
  std::size_t front_size = 0;

  bool operator==(const HistorySample&) const = default;
};

/// A complete checkpoint: meta + faults + history + exactly one state.
struct Checkpoint {
  CheckpointMeta meta;
  FaultReport faults;
  std::vector<HistorySample> history;

  std::optional<moga::Nsga2State> nsga2;
  std::optional<moga::Spea2State> spea2;
  std::optional<sacga::LocalOnlyState> local_only;
  std::optional<sacga::SacgaState> sacga;
  std::optional<sacga::MesacgaState> mesacga;
  std::optional<sacga::IslandState> island;

  /// Name of the state actually present ("nsga2", "spea2", "local-only", ...).
  std::string state_kind() const;
};

/// Serializes `checkpoint` (which must hold exactly one state), including
/// the checksum trailer.
void save_checkpoint(std::ostream& os, const Checkpoint& checkpoint);

/// Parses and checksum-verifies a checkpoint stream. Throws
/// PreconditionError with a diagnostic naming `source`, the byte offset
/// reached and what was expected vs found on truncated, corrupted or
/// version-mismatched input.
Checkpoint load_checkpoint(std::istream& is, const std::string& source = "<stream>");

/// Where a checkpoint write stands when a CheckpointWriteHook fires.
enum class CheckpointWritePhase {
  AfterTempWrite,  ///< temp file written + synced; rotation/rename not yet done
  AfterRename,     ///< new checkpoint in place at the base path
};

/// Test seam into write_checkpoint_file: invoked with the phase and the
/// file involved (the temp path for AfterTempWrite, the base path for
/// AfterRename). The chaos harness throws from AfterTempWrite to simulate
/// a crash mid-write and prove the previous chain survives intact.
using CheckpointWriteHook = std::function<void(CheckpointWritePhase, const std::string&)>;

/// Durability knobs for write_checkpoint_file. The defaults match the
/// strongest guarantee: fsync the data before rename, keep one checkpoint.
struct CheckpointWriteOptions {
  /// Total rotated slots retained: 1 = just `path` (no rotation), N > 1
  /// additionally keeps path.1 (previous) ... path.(N-1) (oldest).
  std::size_t keep = 1;
  /// fsync the temp file before rename and the parent directory after (so
  /// the rename itself is durable). Off only for tests/benches that measure
  /// pure serialization cost.
  bool fsync = true;
  CheckpointWriteHook hook;  ///< test seam; empty in production
};

/// Durably writes `checkpoint` to `path`: serialize to `<path>.tmp`, fsync,
/// rotate the existing chain (path -> path.1 -> ... -> path.(keep-1), the
/// oldest slot is dropped), rename the temp into place and fsync the
/// directory. A crash at any instant leaves every previously-completed slot
/// readable. Throws PreconditionError on IO failure.
void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint,
                           const CheckpointWriteOptions& options = {});

/// Reads and verifies the checkpoint at `path`. Throws PreconditionError if
/// the file is missing, corrupt or version-mismatched.
Checkpoint read_checkpoint_file(const std::string& path);

/// Result of a recovery scan over a rotated checkpoint chain.
struct RecoveredCheckpoint {
  Checkpoint checkpoint;
  std::string path;                   ///< the slot that validated
  std::vector<std::string> rejected;  ///< diagnostics for newer slots skipped
};

/// Scans `base_path`, `base_path.1`, `base_path.2`, ... newest-first and
/// returns the first slot that loads and checksum-verifies, together with
/// the reasons every newer slot was rejected. Returns nullopt when no slot
/// exists or validates (the `rejected` diagnostics are then lost — callers
/// wanting them on total failure can rescan with read_checkpoint_file).
/// This is `--resume auto`: fall back past corrupt/truncated checkpoints to
/// the last good one.
std::optional<RecoveredCheckpoint> recover_checkpoint(const std::string& base_path,
                                                      std::size_t max_slots = 100);

}  // namespace anadex::robust
