#include "robust/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/textio.hpp"
#include "moga/serialize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ANADEX_HAVE_FSYNC 1
#else
#define ANADEX_HAVE_FSYNC 0
#endif

namespace anadex::robust {

namespace {

using textio::exact;
using textio::LineReader;
using textio::parse_double;
using textio::parse_u64;

constexpr const char* kHeader = "anadex-checkpoint v2";

std::string one_line(const std::string& text) {
  std::string clean = text;
  for (char& c : clean) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return clean;
}

/// Reads a raw line that must start with `keyword`; returns the remainder
/// (possibly empty, possibly containing spaces).
std::string keyword_rest(LineReader& reader, const char* keyword) {
  const std::string raw = reader.line(keyword);
  const std::string kw(keyword);
  ANADEX_REQUIRE(raw.rfind(kw, 0) == 0 &&
                     (raw.size() == kw.size() || raw[kw.size()] == ' '),
                 std::string("checkpoint: expected '") + keyword + "' record");
  if (raw.size() <= kw.size() + 1) return "";
  return raw.substr(kw.size() + 1);
}

void write_rng(std::ostream& os, const RngState& rng) {
  os << "rng " << rng.words[0] << ' ' << rng.words[1] << ' ' << rng.words[2] << ' '
     << rng.words[3] << ' ' << exact(rng.spare_normal) << ' ' << (rng.has_spare_normal ? 1 : 0)
     << '\n';
}

RngState read_rng(LineReader& reader) {
  const auto toks = reader.record("rng", 6);
  RngState rng;
  for (std::size_t i = 0; i < 4; ++i) rng.words[i] = parse_u64(toks[1 + i]);
  rng.spare_normal = parse_double(toks[5]);
  rng.has_spare_normal = parse_u64(toks[6]) != 0;
  return rng;
}

void write_evolver(std::ostream& os, const sacga::EvolverSnapshot& ev) {
  os << "evolver " << ev.partitions << ' ' << ev.evaluations << ' ' << ev.generation << '\n';
  write_rng(os, ev.rng);
  os << "discarded " << ev.discarded.size();
  for (bool d : ev.discarded) os << ' ' << (d ? 1 : 0);
  os << '\n';
  moga::save_population_exact(os, ev.population);
}

sacga::EvolverSnapshot read_evolver(LineReader& reader, std::istream& is) {
  const auto toks = reader.record("evolver", 3);
  sacga::EvolverSnapshot ev;
  ev.partitions = parse_u64(toks[1]);
  ev.evaluations = parse_u64(toks[2]);
  ev.generation = parse_u64(toks[3]);
  ev.rng = read_rng(reader);
  const auto disc = reader.record("discarded", 1);
  const std::size_t n = parse_u64(disc[1]);
  ANADEX_REQUIRE(disc.size() >= 2 + n, "checkpoint: truncated discarded record");
  ev.discarded.resize(n);
  for (std::size_t i = 0; i < n; ++i) ev.discarded[i] = parse_u64(disc[2 + i]) != 0;
  ev.population = moga::load_population_exact(is);
  return ev;
}

std::string checksum_hex(std::uint64_t hash) {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << hash;
  return os.str();
}

/// Serializes everything through the "end" line (the checksummed bytes).
void save_checkpoint_body(std::ostream& os, const Checkpoint& cp) {
  const std::string kind = cp.state_kind();  // validates exactly-one-state

  os << kHeader << '\n';
  os << "meta " << one_line(cp.meta.algo) << ' ' << cp.meta.seed << ' ' << cp.meta.population
     << ' ' << cp.meta.generations << '\n';
  os << "config " << one_line(cp.meta.config) << '\n';

  const FaultReport& f = cp.faults;
  os << "faults " << f.exceptions << ' ' << f.non_finite << ' ' << f.wrong_arity << ' '
     << f.timeouts << ' ' << f.retries << ' ' << f.recovered << ' ' << f.penalized << '\n';
  os << "fault-genes " << f.failure_genes.size();
  for (double g : f.failure_genes) os << ' ' << exact(g);
  os << '\n';
  os << "fault-message " << one_line(f.failure_message) << '\n';

  os << "history " << cp.history.size() << '\n';
  for (const HistorySample& s : cp.history) {
    os << "sample " << s.generation << ' ' << exact(s.front_area) << ' ' << s.front_size << '\n';
  }

  os << "state " << kind << '\n';
  if (cp.nsga2) {
    const auto& st = *cp.nsga2;
    os << "nsga2 " << st.next_generation << ' ' << st.evaluations << '\n';
    write_rng(os, st.rng);
    moga::save_population_exact(os, st.parents);
  } else if (cp.spea2) {
    const auto& st = *cp.spea2;
    os << "spea2 " << st.next_generation << ' ' << st.evaluations << '\n';
    write_rng(os, st.rng);
    moga::save_population_exact(os, st.population);
    moga::save_population_exact(os, st.archive);
  } else if (cp.local_only) {
    write_evolver(os, cp.local_only->evolver);
  } else if (cp.sacga) {
    const auto& st = *cp.sacga;
    os << "sacga " << (st.phase1_done ? 1 : 0) << ' ' << st.phase1_generations << '\n';
    write_evolver(os, st.evolver);
  } else if (cp.mesacga) {
    const auto& st = *cp.mesacga;
    os << "mesacga " << (st.phase1_done ? 1 : 0) << ' ' << st.phase1_generations << ' '
       << st.phases.size() << '\n';
    write_evolver(os, st.evolver);
    for (const sacga::PhaseSnapshot& phase : st.phases) {
      os << "phase " << phase.phase << ' ' << phase.partitions << ' ' << phase.generation
         << '\n';
      moga::save_population_exact(os, phase.front);
    }
  } else {
    const auto& st = *cp.island;
    ANADEX_REQUIRE(st.islands.size() == st.rngs.size(),
                   "island state: islands/rngs size mismatch");
    os << "island " << st.islands.size() << ' ' << st.next_generation << ' ' << st.evaluations
       << ' ' << st.migrations << '\n';
    for (std::size_t i = 0; i < st.islands.size(); ++i) {
      write_rng(os, st.rngs[i]);
      moga::save_population_exact(os, st.islands[i]);
    }
  }
  os << "end\n";
}

/// Parses the checksummed body (header through "end"). Assumes the caller
/// already verified the trailer; still re-checks structure defensively.
Checkpoint parse_checkpoint_body(std::istream& is) {
  LineReader reader(is);
  ANADEX_REQUIRE(reader.line("checkpoint header") == kHeader,
                 std::string("checkpoint: unsupported header (expected '") + kHeader + "')");

  Checkpoint cp;
  const auto meta = reader.record("meta", 4);
  cp.meta.algo = meta[1];
  cp.meta.seed = parse_u64(meta[2]);
  cp.meta.population = parse_u64(meta[3]);
  cp.meta.generations = parse_u64(meta[4]);
  cp.meta.config = keyword_rest(reader, "config");

  const auto faults = reader.record("faults", 7);
  cp.faults.exceptions = parse_u64(faults[1]);
  cp.faults.non_finite = parse_u64(faults[2]);
  cp.faults.wrong_arity = parse_u64(faults[3]);
  cp.faults.timeouts = parse_u64(faults[4]);
  cp.faults.retries = parse_u64(faults[5]);
  cp.faults.recovered = parse_u64(faults[6]);
  cp.faults.penalized = parse_u64(faults[7]);
  const auto genes = reader.record("fault-genes", 1);
  const std::size_t n_genes = parse_u64(genes[1]);
  ANADEX_REQUIRE(genes.size() >= 2 + n_genes, "checkpoint: truncated fault-genes record");
  cp.faults.failure_genes.resize(n_genes);
  for (std::size_t i = 0; i < n_genes; ++i) {
    cp.faults.failure_genes[i] = parse_double(genes[2 + i]);
  }
  cp.faults.failure_message = keyword_rest(reader, "fault-message");

  const auto history = reader.record("history", 1);
  const std::size_t n_samples = parse_u64(history[1]);
  cp.history.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const auto sample = reader.record("sample", 3);
    HistorySample s;
    s.generation = parse_u64(sample[1]);
    s.front_area = parse_double(sample[2]);
    s.front_size = parse_u64(sample[3]);
    cp.history.push_back(s);
  }

  const auto state = reader.record("state", 1);
  const std::string& kind = state[1];
  if (kind == "nsga2") {
    moga::Nsga2State st;
    const auto toks = reader.record("nsga2", 2);
    st.next_generation = parse_u64(toks[1]);
    st.evaluations = parse_u64(toks[2]);
    st.rng = read_rng(reader);
    st.parents = moga::load_population_exact(is);
    cp.nsga2 = std::move(st);
  } else if (kind == "spea2") {
    moga::Spea2State st;
    const auto toks = reader.record("spea2", 2);
    st.next_generation = parse_u64(toks[1]);
    st.evaluations = parse_u64(toks[2]);
    st.rng = read_rng(reader);
    st.population = moga::load_population_exact(is);
    st.archive = moga::load_population_exact(is);
    cp.spea2 = std::move(st);
  } else if (kind == "local-only") {
    sacga::LocalOnlyState st;
    st.evolver = read_evolver(reader, is);
    cp.local_only = std::move(st);
  } else if (kind == "sacga") {
    sacga::SacgaState st;
    const auto toks = reader.record("sacga", 2);
    st.phase1_done = parse_u64(toks[1]) != 0;
    st.phase1_generations = parse_u64(toks[2]);
    st.evolver = read_evolver(reader, is);
    cp.sacga = std::move(st);
  } else if (kind == "mesacga") {
    sacga::MesacgaState st;
    const auto toks = reader.record("mesacga", 3);
    st.phase1_done = parse_u64(toks[1]) != 0;
    st.phase1_generations = parse_u64(toks[2]);
    const std::size_t n_phases = parse_u64(toks[3]);
    st.evolver = read_evolver(reader, is);
    st.phases.reserve(n_phases);
    for (std::size_t i = 0; i < n_phases; ++i) {
      const auto ph = reader.record("phase", 3);
      sacga::PhaseSnapshot phase;
      phase.phase = parse_u64(ph[1]);
      phase.partitions = parse_u64(ph[2]);
      phase.generation = parse_u64(ph[3]);
      phase.front = moga::load_population_exact(is);
      st.phases.push_back(std::move(phase));
    }
    cp.mesacga = std::move(st);
  } else if (kind == "island") {
    sacga::IslandState st;
    const auto toks = reader.record("island", 4);
    const std::size_t n_islands = parse_u64(toks[1]);
    st.next_generation = parse_u64(toks[2]);
    st.evaluations = parse_u64(toks[3]);
    st.migrations = parse_u64(toks[4]);
    st.rngs.reserve(n_islands);
    st.islands.reserve(n_islands);
    for (std::size_t i = 0; i < n_islands; ++i) {
      st.rngs.push_back(read_rng(reader));
      st.islands.push_back(moga::load_population_exact(is));
    }
    cp.island = std::move(st);
  } else {
    ANADEX_REQUIRE(false, "checkpoint: unknown state kind '" + kind + "'");
  }

  ANADEX_REQUIRE(reader.line("checkpoint trailer") == "end",
                 "checkpoint: missing 'end' trailer");
  return cp;
}

std::string slot_path(const std::string& base, std::size_t slot) {
  return slot == 0 ? base : base + "." + std::to_string(slot);
}

/// fsync `path` so its bytes survive a power loss once the rename commits.
void sync_file(const std::string& path) {
#if ANADEX_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  ANADEX_REQUIRE(fd >= 0, "cannot reopen '" + path + "' for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  ANADEX_REQUIRE(rc == 0, "fsync failed for '" + path + "'");
#else
  (void)path;
#endif
}

/// Best-effort fsync of the directory holding `path`, making the rename
/// itself durable. Failure is tolerated: some filesystems refuse directory
/// fds, and the data-file fsync above already bounds the damage.
void sync_parent_dir(const std::string& path) {
#if ANADEX_HAVE_FSYNC
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

std::string Checkpoint::state_kind() const {
  const int present = (nsga2 ? 1 : 0) + (spea2 ? 1 : 0) + (local_only ? 1 : 0) +
                      (sacga ? 1 : 0) + (mesacga ? 1 : 0) + (island ? 1 : 0);
  ANADEX_REQUIRE(present == 1, "checkpoint must hold exactly one algorithm state");
  if (nsga2) return "nsga2";
  if (spea2) return "spea2";
  if (local_only) return "local-only";
  if (sacga) return "sacga";
  if (mesacga) return "mesacga";
  return "island";
}

void save_checkpoint(std::ostream& os, const Checkpoint& cp) {
  std::ostringstream body;
  save_checkpoint_body(body, cp);
  const std::string bytes = body.str();
  os << bytes << "checksum " << checksum_hex(hash_bytes(bytes, 0)) << '\n';
}

Checkpoint load_checkpoint(std::istream& is, const std::string& source) {
  std::ostringstream slurp;
  slurp << is.rdbuf();
  const std::string content = slurp.str();
  const auto fail = [&](const std::string& what, std::size_t offset) {
    throw PreconditionError("checkpoint '" + source + "': " + what + " (at byte " +
                            std::to_string(offset) + " of " + std::to_string(content.size()) +
                            ")");
  };

  // Version gate first, so a v1 (or foreign) file gets a precise
  // expected-vs-found diagnostic instead of a checksum complaint.
  const std::size_t header_end = content.find('\n');
  const std::string header =
      content.substr(0, header_end == std::string::npos ? content.size() : header_end);
  if (header != kHeader) {
    fail(std::string("version mismatch: expected '") + kHeader + "', found '" +
             one_line(header) + "'",
         0);
  }

  // The checksummed body runs through the final "end" line; everything
  // after it must be the checksum trailer.
  const std::size_t end_mark = content.rfind("\nend\n");
  if (end_mark == std::string::npos) {
    fail("truncated: expected an 'end' record, found none", content.size());
  }
  const std::size_t body_size = end_mark + 1 + 4;  // include "end\n"
  std::string trailer = content.substr(body_size);
  while (!trailer.empty() && (trailer.back() == '\n' || trailer.back() == '\r')) {
    trailer.pop_back();
  }
  if (trailer.rfind("checksum ", 0) != 0) {
    fail("truncated: expected 'checksum <16 hex digits>' trailer, found '" +
             one_line(trailer) + "'",
         body_size);
  }
  const std::string found = trailer.substr(9);
  const std::string expected = checksum_hex(hash_bytes({content.data(), body_size}, 0));
  if (found != expected) {
    fail("checksum mismatch: expected " + expected + ", found " + found, body_size);
  }

  std::istringstream body(content.substr(0, body_size));
  try {
    return parse_checkpoint_body(body);
  } catch (const std::exception& e) {
    const auto pos = body.tellg();
    const std::size_t offset = pos < 0 ? body_size : static_cast<std::size_t>(pos);
    fail(std::string("parse error: ") + e.what(), offset);
  }
  ANADEX_ASSERT(false, "unreachable: fail() always throws");
  return {};
}

void write_checkpoint_file(const std::string& path, const Checkpoint& checkpoint,
                           const CheckpointWriteOptions& options) {
  ANADEX_REQUIRE(!path.empty(), "checkpoint path must be non-empty");
  ANADEX_REQUIRE(options.keep >= 1, "checkpoint rotation must keep at least one slot");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    ANADEX_REQUIRE(os.good(), "cannot open checkpoint temp file '" + tmp + "'");
    save_checkpoint(os, checkpoint);
    os.flush();
    ANADEX_REQUIRE(os.good(), "failed writing checkpoint temp file '" + tmp + "'");
  }
  if (options.fsync) sync_file(tmp);
  // Crash seam: a hook throwing here models dying after the temp write but
  // before the rename — the previously-completed chain must stay intact
  // (the stray .tmp is ignored by recover_checkpoint and overwritten by the
  // next write).
  if (options.hook) options.hook(CheckpointWritePhase::AfterTempWrite, tmp);

  if (options.keep > 1) {
    // Shift the chain up one slot, oldest first, dropping the last. Renames
    // of missing slots fail silently — after a crash the chain may have
    // holes, and rotation must still make room for the new base.
    std::remove(slot_path(path, options.keep - 1).c_str());
    for (std::size_t k = options.keep - 1; k >= 2; --k) {
      (void)std::rename(slot_path(path, k - 1).c_str(), slot_path(path, k).c_str());
    }
    (void)std::rename(path.c_str(), slot_path(path, 1).c_str());
  }
  ANADEX_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                 "failed to move checkpoint into place at '" + path + "'");
  if (options.fsync) sync_parent_dir(path);
  if (options.hook) options.hook(CheckpointWritePhase::AfterRename, path);
}

Checkpoint read_checkpoint_file(const std::string& path) {
  std::ifstream is(path);
  ANADEX_REQUIRE(is.good(), "cannot open checkpoint file '" + path + "'");
  return load_checkpoint(is, path);
}

std::optional<RecoveredCheckpoint> recover_checkpoint(const std::string& base_path,
                                                      std::size_t max_slots) {
  ANADEX_REQUIRE(!base_path.empty(), "checkpoint path must be non-empty");
  ANADEX_REQUIRE(max_slots >= 1, "recovery must scan at least one slot");
  RecoveredCheckpoint out;
  for (std::size_t slot = 0; slot < max_slots; ++slot) {
    const std::string path = slot_path(base_path, slot);
    std::ifstream is(path);
    if (!is.good()) continue;  // missing slots (mid-rotation crashes) are fine
    try {
      out.checkpoint = load_checkpoint(is, path);
      out.path = path;
      return out;
    } catch (const std::exception& e) {
      out.rejected.push_back(std::string(e.what()));
    }
  }
  return std::nullopt;
}

}  // namespace anadex::robust
