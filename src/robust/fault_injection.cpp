#include "robust/fault_injection.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "robust/fault.hpp"

namespace anadex::robust {

FaultInjectingProblem::FaultInjectingProblem(std::shared_ptr<const moga::Problem> inner,
                                             FaultInjectionConfig config)
    : inner_(std::move(inner)), config_(config) {
  ANADEX_REQUIRE(inner_ != nullptr, "FaultInjectingProblem needs an inner problem");
  for (double rate : {config_.exception_rate, config_.nan_rate, config_.slow_rate}) {
    ANADEX_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault injection rates must lie in [0, 1]");
  }
}

std::string FaultInjectingProblem::name() const { return inner_->name() + "+faults"; }
std::size_t FaultInjectingProblem::num_variables() const { return inner_->num_variables(); }
std::size_t FaultInjectingProblem::num_objectives() const { return inner_->num_objectives(); }
std::size_t FaultInjectingProblem::num_constraints() const { return inner_->num_constraints(); }
std::vector<moga::VariableBound> FaultInjectingProblem::bounds() const { return inner_->bounds(); }

void FaultInjectingProblem::evaluate(std::span<const double> genes, moga::Evaluation& out) const {
  ++counters_.evaluations;
  Rng rng(hash_genes(genes, config_.seed));

  if (rng.bernoulli(config_.exception_rate)) {
    ++counters_.exceptions;
    throw InjectedFault("injected evaluator failure");
  }

  if (rng.bernoulli(config_.slow_rate)) {
    ++counters_.slow;
    // Busy-spin standing in for a simulator that converges slowly. volatile
    // keeps the loop from being optimized away. The spin polls the
    // cancellation token every 1024 iterations — the cooperative contract a
    // watchdog-aware evaluator implements — and bails out with
    // OperationCancelled when the watchdog deadline fires.
    volatile double sink = 0.0;
    for (std::size_t i = 0; i < config_.slow_spin_iterations; ++i) {
      if ((i & 1023u) == 0 && cancel_ != nullptr && cancel_->requested()) {
        throw OperationCancelled("injected slow evaluation cancelled");
      }
      sink = sink + 1e-9;
    }
  }

  inner_->evaluate(genes, out);

  if (!out.objectives.empty() && rng.bernoulli(config_.nan_rate)) {
    ++counters_.nans;
    const std::size_t slot = rng.uniform_index(out.objectives.size());
    out.objectives[slot] = std::numeric_limits<double>::quiet_NaN();
  }
}

}  // namespace anadex::robust
