// FaultInjectingProblem: deterministic fault injection for testing the
// guard layer and the evolvers' tolerance to misbehaving evaluators.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "moga/problem.hpp"

namespace anadex::robust {

/// Exception type thrown by injected evaluator failures, so tests can
/// distinguish injected faults from genuine ones.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-evaluation fault probabilities. Rates are independent; exceptions
/// are decided first, then NaN injection, then the slow path.
struct FaultInjectionConfig {
  double exception_rate = 0.0;  ///< probability evaluate() throws InjectedFault
  double nan_rate = 0.0;        ///< probability one objective becomes NaN
  double slow_rate = 0.0;       ///< probability of a busy-spin before returning
  std::size_t slow_spin_iterations = 100000;  ///< spin length for the slow path
  std::uint64_t seed = 0x51f0a17ULL;          ///< mixes into the per-genome draw
};

/// Totals of what the injector actually did — compared against the
/// GuardedProblem's FaultReport in tests.
struct FaultInjectionCounters {
  std::size_t evaluations = 0;
  std::size_t exceptions = 0;
  std::size_t nans = 0;
  std::size_t slow = 0;
};

/// Wraps an inner Problem and injects faults at configurable rates.
///
/// Fault decisions are drawn from an Rng seeded by hash_genes(genes, seed),
/// i.e. they are a pure function of the genome: the same genes always fault
/// the same way. This keeps the decorated problem deterministic (the
/// Problem contract) and makes injected runs reproducible and resumable.
class FaultInjectingProblem final : public moga::Problem {
 public:
  FaultInjectingProblem(std::shared_ptr<const moga::Problem> inner, FaultInjectionConfig config);

  std::string name() const override;
  std::size_t num_variables() const override;
  std::size_t num_objectives() const override;
  std::size_t num_constraints() const override;
  std::vector<moga::VariableBound> bounds() const override;
  void evaluate(std::span<const double> genes, moga::Evaluation& out) const override;

  const FaultInjectionConfig& config() const { return config_; }

  /// Injection totals so far. Mutable across const evaluate() calls.
  const FaultInjectionCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Makes the slow-eval spin cooperative: when `token` (non-owning,
  /// nullptr detaches) is raised mid-spin, evaluate() throws
  /// OperationCancelled — exactly what a watchdog-aware simulator binding
  /// would do. This is how the chaos harness exercises the stuck-eval
  /// detection path end to end.
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

 private:
  std::shared_ptr<const moga::Problem> inner_;
  FaultInjectionConfig config_;
  const CancelToken* cancel_ = nullptr;
  mutable FaultInjectionCounters counters_;
};

}  // namespace anadex::robust
