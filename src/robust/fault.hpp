// Fault taxonomy and accounting for the evaluation pipeline.
//
// Device/op-amp evaluation prefers "penalizing numbers rather than NaN"
// (scint/integrator.hpp), but nothing below this layer enforces that
// contract: a custom Problem can throw, return the wrong arity, or leak a
// non-finite value, and a single such evaluation used to be able to poison
// an entire multi-hour exploration. robust::GuardedProblem catches these
// faults at the optimizer boundary and accumulates them in a FaultReport;
// robust::FaultInjectingProblem manufactures them deterministically so the
// guard and every evolver can be tested under fire. See docs/robustness.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.hpp"

namespace anadex::robust {

/// What went wrong in one evaluation attempt.
enum class FaultKind {
  EvaluatorException,  ///< evaluate() threw
  NonFiniteValue,      ///< an objective or violation was NaN/inf
  WrongArity,          ///< objective/violation counts disagree with the problem
  Timeout,             ///< cancelled by the evaluation watchdog deadline
};

const char* fault_kind_name(FaultKind kind);

/// Per-run fault accounting, accumulated by GuardedProblem and surfaced in
/// expt::RunOutcome (and persisted across checkpoint/resume).
struct FaultReport {
  std::size_t exceptions = 0;   ///< FaultKind::EvaluatorException observations
  std::size_t non_finite = 0;   ///< FaultKind::NonFiniteValue observations
  std::size_t wrong_arity = 0;  ///< FaultKind::WrongArity observations
  std::size_t timeouts = 0;     ///< FaultKind::Timeout observations
  std::size_t retries = 0;      ///< perturbed re-evaluations attempted
  std::size_t recovered = 0;    ///< faults healed by a retry
  std::size_t penalized = 0;    ///< evaluations replaced by penalty values

  /// Genome and message of the report's sample fault, for postmortems.
  /// Within one report this is the first observed failure; when reports are
  /// merge()d (batch evaluation accumulates one tally per call), the sample
  /// kept is the one with the lowest genome hash, a canonical choice that
  /// is independent of evaluation order — so fault reports are identical
  /// for every thread count.
  std::vector<double> failure_genes;
  std::string failure_message;

  std::size_t total_faults() const {
    return exceptions + non_finite + wrong_arity + timeouts;
  }
  bool any() const { return total_faults() > 0; }

  void count(FaultKind kind);

  /// Records the first failure's genome and message (later calls no-op).
  void note_failure(std::span<const double> genes, const std::string& message);

  /// Accumulates `other` into this report: counters add; the retained
  /// sample failure is the one whose genome hashes lower (ties broken by
  /// gene values, then message), so merging in any order — and therefore
  /// evaluating in any order — produces the same report.
  void merge(const FaultReport& other);

  /// One-line human-readable summary of the counters.
  std::string summary() const;
};

/// FNV-1a over the gene bit patterns mixed with `seed`. Both the guard's
/// retry perturbation and the fault injector derive their randomness from
/// this, making them pure functions of the genome — the Problem contract's
/// determinism requirement — and therefore safe across checkpoint/resume.
/// The implementation lives in common/hash.hpp so the EvalEngine's memo
/// cache (which `robust` sits above in the link graph) shares the exact
/// same function; this alias keeps the historical call sites compiling.
using anadex::hash_genes;

}  // namespace anadex::robust
