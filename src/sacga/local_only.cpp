#include "sacga/local_only.hpp"

#include <optional>

#include "common/check.hpp"
#include "moga/obs_trace.hpp"
#include "sacga/obs_trace.hpp"

namespace anadex::sacga {

LocalOnlyResult run_local_only(const moga::Problem& problem, const LocalOnlyParams& params,
                               const moga::GenerationCallback& on_generation) {
  EvolverParams evolver_params;
  static_cast<engine::EvalKnobs&>(evolver_params) = params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;
  evolver_params.sink = params.sink;
  evolver_params.eval_deadline_s = params.eval_deadline_s;
  evolver_params.eval_cancel = params.eval_cancel;

  Partitioner partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                          params.partitions);
  std::optional<PartitionedEvolver> engine;
  if (params.resume != nullptr) {
    ANADEX_REQUIRE(params.resume->evolver.generation <= params.generations,
                   "resume state is beyond the configured generation count");
    engine.emplace(problem, evolver_params, std::move(partitioner), params.resume->evolver);
  } else {
    engine.emplace(problem, evolver_params, std::move(partitioner), params.seed);
  }
  PartitionedEvolver& evolver = *engine;

  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  bool interrupted = false;
  for (std::size_t gen = evolver.generation(); gen < params.generations; ++gen) {
    evolver.step(never);
    if (on_generation) on_generation(gen, evolver.population());
    moga::trace_generation(params.sink, gen, evolver.evaluations(), evolver.population(),
                           params.trace_hypervolume);
    trace_sacga_generation(params.sink, evolver, gen, /*phase=*/0, nullptr, 0);
    const bool at_snapshot_barrier =
        params.snapshot_every > 0 && evolver.generation() % params.snapshot_every == 0;
    if (at_snapshot_barrier && params.on_snapshot) {
      params.on_snapshot(LocalOnlyState{evolver.snapshot()});
    }

    // Graceful-stop barrier (see nsga2.cpp): snapshot off-cycle and return.
    if (params.stop != nullptr && params.stop->requested() &&
        evolver.generation() < params.generations) {
      if (params.on_snapshot && !at_snapshot_barrier) {
        params.on_snapshot(LocalOnlyState{evolver.snapshot()});
      }
      interrupted = true;
      break;
    }
  }

  LocalOnlyResult result;
  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  result.eval_stats = evolver.engine().stats();
  result.interrupted = interrupted;
  return result;
}

}  // namespace anadex::sacga
