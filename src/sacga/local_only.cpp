#include "sacga/local_only.hpp"

namespace anadex::sacga {

LocalOnlyResult run_local_only(const moga::Problem& problem, const LocalOnlyParams& params,
                               const moga::GenerationCallback& on_generation) {
  EvolverParams evolver_params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;

  Partitioner partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                          params.partitions);
  PartitionedEvolver evolver(problem, evolver_params, std::move(partitioner), params.seed);

  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  for (std::size_t gen = 0; gen < params.generations; ++gen) {
    evolver.step(never);
    if (on_generation) on_generation(gen, evolver.population());
  }

  LocalOnlyResult result;
  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  return result;
}

}  // namespace anadex::sacga
