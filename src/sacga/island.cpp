#include "sacga/island.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "engine/engine_lease.hpp"
#include "moga/nds.hpp"
#include "moga/obs_trace.hpp"
#include "moga/selection.hpp"

namespace anadex::sacga {

void island_select_survivors(moga::Population& island, moga::Population&& pool,
                             std::size_t n, moga::RankingScratch& ranking) {
  auto fronts = ranking.sort(pool);
  for (const auto& front : fronts) ranking.crowding(pool, front);

  moga::Population next;
  next.reserve(n);
  for (const auto& front : fronts) {
    if (next.size() + front.size() <= n) {
      for (std::size_t idx : front) next.push_back(std::move(pool[idx]));
    } else {
      std::vector<std::size_t> sorted(front.begin(), front.end());
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
        return pool[a].crowding > pool[b].crowding;
      });
      for (std::size_t idx : sorted) {
        if (next.size() == n) break;
        next.push_back(std::move(pool[idx]));
      }
    }
    if (next.size() == n) break;
  }
  island = std::move(next);
}

moga::Population island_emigrants(const moga::Population& island, std::size_t migrants) {
  std::vector<std::size_t> order(island.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return moga::crowded_less(island[a], island[b]);
  });
  moga::Population outgoing;
  for (std::size_t m = 0; m < std::min(migrants, island.size()); ++m) {
    outgoing.push_back(island[order[m]]);  // copies travel the ring
  }
  return outgoing;
}

void island_immigrate(moga::Population& destination, moga::Population immigrants) {
  std::vector<std::size_t> order(destination.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return moga::crowded_less(destination[a], destination[b]);
  });
  // Replace from the back (worst) of the destination.
  std::size_t victim = order.size();
  for (auto& migrant : immigrants) {
    if (victim == 0) break;
    --victim;
    destination[order[victim]] = std::move(migrant);
  }
}

namespace {

/// Ring migration: the `migrants` best of island i replace the worst of
/// island (i+1) % count. "Best" = rank 0 with the largest crowding (front
/// spread carriers); "worst" = highest rank, smallest crowding. Every
/// island's emigrants are selected before any island receives.
void migrate(std::vector<moga::Population>& islands, std::size_t migrants) {
  const std::size_t count = islands.size();
  std::vector<moga::Population> outgoing(count);
  for (std::size_t i = 0; i < count; ++i) {
    outgoing[i] = island_emigrants(islands[i], migrants);
  }
  for (std::size_t i = 0; i < count; ++i) {
    island_immigrate(islands[(i + 1) % count], std::move(outgoing[i]));
  }
}

}  // namespace

IslandResult run_island_ga(const moga::Problem& problem, const IslandParams& params,
                           const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.islands >= 2, "island GA needs at least two islands");
  ANADEX_REQUIRE(params.island_population >= 4 && params.island_population % 2 == 0,
                 "island population must be even and >= 4");
  ANADEX_REQUIRE(params.migration_interval >= 1, "migration interval must be >= 1");
  ANADEX_REQUIRE(params.migrants <= params.island_population,
                 "cannot migrate more individuals than an island holds");

  const auto bounds = problem.bounds();
  const engine::EngineLease eval(problem, params, params.sink,
                                 engine::EvalWatchdog{params.eval_cancel,
                                                      params.eval_deadline_s});
  Rng rng(params.seed);
  IslandResult result;
  moga::RankingScratch ranking;  // SoA buffers shared by all islands

  std::vector<moga::Population> islands(params.islands);
  std::vector<Rng> island_rngs;
  island_rngs.reserve(params.islands);
  std::size_t start_generation = 0;
  if (params.resume != nullptr) {
    const IslandState& state = *params.resume;
    ANADEX_REQUIRE(state.islands.size() == params.islands &&
                       state.rngs.size() == params.islands,
                   "resume state island count does not match params");
    ANADEX_REQUIRE(state.next_generation <= params.generations,
                   "resume state is beyond the configured generation count");
    islands = state.islands;
    for (const auto& rng_state : state.rngs) {
      island_rngs.emplace_back(1);
      island_rngs.back().set_state(rng_state);
    }
    start_generation = state.next_generation;
    result.generations_run = state.next_generation;
    result.evaluations = state.evaluations;
    result.migrations = state.migrations;
  } else {
    // Genomes are drawn per island (each from its private RNG, in island
    // order) first, then evaluated in per-island batches.
    for (auto& island : islands) {
      island_rngs.push_back(rng.split());
      island.resize(params.island_population);
      for (auto& member : island) {
        member.genes = moga::random_genome(bounds, island_rngs.back());
      }
    }
    for (auto& island : islands) {
      eval.evaluate_members(island);
      result.evaluations += island.size();
    }
    for (auto& island : islands) {
      auto fronts = ranking.sort(island);
      for (const auto& front : fronts) ranking.crowding(island, front);
    }
  }

  const moga::Preference prefer = [](const moga::Individual& a, const moga::Individual& b) {
    return moga::crowded_less(a, b);
  };

  for (std::size_t gen = start_generation; gen < params.generations; ++gen) {
    // Stage 1: every island breeds offspring from its own RNG stream.
    const std::size_t n = params.island_population;
    moga::Population children;
    children.reserve(islands.size() * n);
    for (std::size_t i = 0; i < islands.size(); ++i) {
      auto offspring = moga::make_offspring(islands[i], bounds, params.variation, prefer, n,
                                            island_rngs[i]);
      for (auto& genes : offspring) {
        moga::Individual child;
        child.genes = std::move(genes);
        children.push_back(std::move(child));
      }
    }

    // Stage 2: one evaluation batch spanning ALL islands' offspring.
    eval.evaluate_members(children);
    result.evaluations += children.size();

    // Stage 3: per-island elitist survivor selection.
    for (std::size_t i = 0; i < islands.size(); ++i) {
      moga::Population pool;
      pool.reserve(2 * n);
      for (auto& p : islands[i]) pool.push_back(std::move(p));
      for (std::size_t k = 0; k < n; ++k) pool.push_back(std::move(children[i * n + k]));
      island_select_survivors(islands[i], std::move(pool), n, ranking);
    }
    if ((gen + 1) % params.migration_interval == 0) {
      migrate(islands, params.migrants);
      ++result.migrations;
    }
    ++result.generations_run;
    const bool tracing =
        params.sink != nullptr && params.sink->enabled(obs::TraceLevel::Gen);
    if (on_generation || tracing) {
      moga::Population combined;
      for (const auto& island : islands) {
        combined.insert(combined.end(), island.begin(), island.end());
      }
      if (on_generation) on_generation(gen, combined);
      moga::trace_generation(params.sink, gen, result.evaluations, combined,
                             params.trace_hypervolume);
      if (tracing && (gen + 1) % params.migration_interval == 0) {
        const obs::Field fields[] = {obs::u64("gen", gen),
                                     obs::u64("migrations", result.migrations)};
        params.sink->record(obs::Event{"migration", obs::TraceLevel::Gen, false, fields});
      }
    }

    const bool at_snapshot_barrier =
        params.snapshot_every > 0 && (gen + 1) % params.snapshot_every == 0;
    const auto snapshot = [&] {
      IslandState state;
      state.islands = islands;
      state.rngs.reserve(island_rngs.size());
      for (const auto& island_rng : island_rngs) state.rngs.push_back(island_rng.state());
      state.next_generation = gen + 1;
      state.evaluations = result.evaluations;
      state.migrations = result.migrations;
      params.on_snapshot(state);
    };
    if (at_snapshot_barrier && params.on_snapshot) snapshot();

    // Graceful-stop barrier (see nsga2.cpp): snapshot off-cycle and return.
    if (params.stop != nullptr && params.stop->requested() &&
        gen + 1 < params.generations) {
      if (params.on_snapshot && !at_snapshot_barrier) snapshot();
      result.interrupted = true;
      break;
    }
  }

  for (auto& island : islands) {
    result.population.insert(result.population.end(),
                             std::make_move_iterator(island.begin()),
                             std::make_move_iterator(island.end()));
  }
  result.front = moga::extract_global_front(result.population);
  result.eval_stats = eval.stats();
  return result;
}

}  // namespace anadex::sacga
