#include "sacga/island.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "moga/nds.hpp"
#include "moga/selection.hpp"

namespace anadex::sacga {

namespace {

/// One NSGA-II elitist generation over a single island.
void evolve_island(const moga::Problem& problem, moga::Population& island,
                   const std::vector<moga::VariableBound>& bounds,
                   const moga::VariationParams& variation, Rng& rng,
                   std::size_t& evaluations) {
  const moga::Preference prefer = [](const moga::Individual& a, const moga::Individual& b) {
    return moga::crowded_less(a, b);
  };
  const std::size_t n = island.size();
  auto offspring = moga::make_offspring(island, bounds, variation, prefer, n, rng);

  moga::Population pool;
  pool.reserve(2 * n);
  for (auto& p : island) pool.push_back(std::move(p));
  for (auto& genes : offspring) {
    moga::Individual child;
    child.genes = std::move(genes);
    problem.evaluate(child.genes, child.eval);
    ++evaluations;
    pool.push_back(std::move(child));
  }

  auto fronts = moga::fast_nondominated_sort(pool);
  for (const auto& front : fronts) moga::assign_crowding(pool, front);

  moga::Population next;
  next.reserve(n);
  for (const auto& front : fronts) {
    if (next.size() + front.size() <= n) {
      for (std::size_t idx : front) next.push_back(std::move(pool[idx]));
    } else {
      std::vector<std::size_t> sorted(front.begin(), front.end());
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
        return pool[a].crowding > pool[b].crowding;
      });
      for (std::size_t idx : sorted) {
        if (next.size() == n) break;
        next.push_back(std::move(pool[idx]));
      }
    }
    if (next.size() == n) break;
  }
  island = std::move(next);
}

/// Ring migration: the `migrants` best of island i replace the worst of
/// island (i+1) % count. "Best" = rank 0 with the largest crowding (front
/// spread carriers); "worst" = highest rank, smallest crowding.
void migrate(std::vector<moga::Population>& islands, std::size_t migrants) {
  const std::size_t count = islands.size();
  std::vector<std::vector<moga::Individual>> outgoing(count);

  for (std::size_t i = 0; i < count; ++i) {
    auto& island = islands[i];
    std::vector<std::size_t> order(island.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return moga::crowded_less(island[a], island[b]);
    });
    for (std::size_t m = 0; m < std::min(migrants, island.size()); ++m) {
      outgoing[i].push_back(island[order[m]]);  // copies travel the ring
    }
  }

  for (std::size_t i = 0; i < count; ++i) {
    auto& destination = islands[(i + 1) % count];
    std::vector<std::size_t> order(destination.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return moga::crowded_less(destination[a], destination[b]);
    });
    // Replace from the back (worst) of the destination.
    std::size_t victim = order.size();
    for (auto& migrant : outgoing[i]) {
      if (victim == 0) break;
      --victim;
      destination[order[victim]] = std::move(migrant);
    }
  }
}

}  // namespace

IslandResult run_island_ga(const moga::Problem& problem, const IslandParams& params,
                           const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.islands >= 2, "island GA needs at least two islands");
  ANADEX_REQUIRE(params.island_population >= 4 && params.island_population % 2 == 0,
                 "island population must be even and >= 4");
  ANADEX_REQUIRE(params.migration_interval >= 1, "migration interval must be >= 1");
  ANADEX_REQUIRE(params.migrants <= params.island_population,
                 "cannot migrate more individuals than an island holds");

  const auto bounds = problem.bounds();
  Rng rng(params.seed);
  IslandResult result;

  std::vector<moga::Population> islands(params.islands);
  std::vector<Rng> island_rngs;
  island_rngs.reserve(params.islands);
  std::size_t start_generation = 0;
  if (params.resume != nullptr) {
    const IslandState& state = *params.resume;
    ANADEX_REQUIRE(state.islands.size() == params.islands &&
                       state.rngs.size() == params.islands,
                   "resume state island count does not match params");
    ANADEX_REQUIRE(state.next_generation <= params.generations,
                   "resume state is beyond the configured generation count");
    islands = state.islands;
    for (const auto& rng_state : state.rngs) {
      island_rngs.emplace_back(1);
      island_rngs.back().set_state(rng_state);
    }
    start_generation = state.next_generation;
    result.generations_run = state.next_generation;
    result.evaluations = state.evaluations;
    result.migrations = state.migrations;
  } else {
    for (auto& island : islands) {
      island_rngs.push_back(rng.split());
      island.reserve(params.island_population);
      for (std::size_t i = 0; i < params.island_population; ++i) {
        moga::Individual ind;
        ind.genes = moga::random_genome(bounds, island_rngs.back());
        problem.evaluate(ind.genes, ind.eval);
        ++result.evaluations;
        island.push_back(std::move(ind));
      }
      auto fronts = moga::fast_nondominated_sort(island);
      for (const auto& front : fronts) moga::assign_crowding(island, front);
    }
  }

  for (std::size_t gen = start_generation; gen < params.generations; ++gen) {
    for (std::size_t i = 0; i < islands.size(); ++i) {
      evolve_island(problem, islands[i], bounds, params.variation, island_rngs[i],
                    result.evaluations);
    }
    if ((gen + 1) % params.migration_interval == 0) {
      migrate(islands, params.migrants);
      ++result.migrations;
    }
    ++result.generations_run;
    if (on_generation) {
      moga::Population combined;
      for (const auto& island : islands) {
        combined.insert(combined.end(), island.begin(), island.end());
      }
      on_generation(gen, combined);
    }

    if (params.snapshot_every > 0 && params.on_snapshot &&
        (gen + 1) % params.snapshot_every == 0) {
      IslandState state;
      state.islands = islands;
      state.rngs.reserve(island_rngs.size());
      for (const auto& island_rng : island_rngs) state.rngs.push_back(island_rng.state());
      state.next_generation = gen + 1;
      state.evaluations = result.evaluations;
      state.migrations = result.migrations;
      params.on_snapshot(state);
    }
  }

  for (auto& island : islands) {
    result.population.insert(result.population.end(),
                             std::make_move_iterator(island.begin()),
                             std::make_move_iterator(island.end()));
  }
  result.front = moga::extract_global_front(result.population);
  return result;
}

}  // namespace anadex::sacga
