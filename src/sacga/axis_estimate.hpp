// Partition-axis range estimation for problems whose objective range is
// not known a priori (the integrator problem's load axis is exactly
// [0, 5 pF] by construction, but a generic user problem is not): sample
// random genomes, measure the chosen objective's span, and pad it.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "moga/problem.hpp"

namespace anadex::sacga {

struct AxisEstimate {
  double lo = 0.0;
  double hi = 1.0;
};

/// Estimates the range of objective `axis_objective` from `samples` random
/// evaluations, padded by `padding` (relative to the observed span) on each
/// side so early evolution does not immediately clamp into the edge bins.
/// The samples are evaluated as one engine batch (`threads` has
/// engine::EvolverCommon semantics; the estimate is thread-count
/// invariant). Requires samples >= 2; throws if the objective never varies.
AxisEstimate estimate_axis_range(const moga::Problem& problem, std::size_t axis_objective,
                                 std::size_t samples, Rng& rng, double padding = 0.05,
                                 std::size_t threads = 1);

}  // namespace anadex::sacga
