#include "sacga/obs_trace.hpp"

#include <vector>

namespace anadex::sacga {

void trace_sacga_generation(obs::EventSink* sink, const PartitionedEvolver& evolver,
                            std::size_t generation, std::size_t phase,
                            const AnnealingSchedule* schedule,
                            std::size_t schedule_offset) {
  if (sink == nullptr || !sink->enabled(obs::TraceLevel::Gen)) return;

  const auto stats = evolver.partition_stats();

  std::vector<double> prob;
  obs::Field fields[8];
  std::size_t n = 0;
  fields[n++] = obs::u64("gen", generation);
  fields[n++] = obs::u64("phase", phase);
  fields[n++] = obs::u64("partitions", evolver.partitioner().count());
  fields[n++] = obs::u64_array("occupancy", stats.occupancy);
  fields[n++] = obs::u64_array("occupancy_feasible", stats.feasible);
  fields[n++] = obs::u64("discarded", stats.discarded);
  if (schedule != nullptr) {
    fields[n++] = obs::f64("t_a", schedule->temperature(schedule_offset));
    prob.reserve(schedule->params().n);
    for (std::size_t i = 1; i <= schedule->params().n; ++i) {
      prob.push_back(schedule->participation_probability(i, schedule_offset));
    }
    fields[n++] = obs::f64_array("prob", prob);
  }
  sink->record(obs::Event{"sacga", obs::TraceLevel::Gen, false,
                          std::span<const obs::Field>(fields, n)});
}

void trace_phase_marker(obs::EventSink* sink, std::string_view name, std::size_t phase,
                        std::size_t partitions, std::size_t generation,
                        std::size_t front_size) {
  if (sink == nullptr || !sink->enabled(obs::TraceLevel::Gen)) return;
  const obs::Field fields[] = {obs::u64("phase", phase), obs::u64("partitions", partitions),
                               obs::u64("gen", generation),
                               obs::u64("front_size", front_size)};
  sink->record(obs::Event{name, obs::TraceLevel::Gen, false, fields});
}

}  // namespace anadex::sacga
