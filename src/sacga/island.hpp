// Island-model multi-objective GA — the diversity-preservation alternative
// the paper cites (§4.1): "A known method of diversity preservation is
// parallel population GA with inter-population migration controlled in a
// tribe or island based framework, which can be extended for Multi-
// objective GA." Implemented here as a comparison baseline: several
// independent NSGA-II-style sub-populations with periodic ring migration
// of front members. SACGA's claim is that its single-population local/
// global mixing achieves the same diversity more simply.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "engine/evolver_common.hpp"
#include "moga/nds.hpp"
#include "moga/nsga2.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"

namespace anadex::sacga {

/// Resumable state of an island-GA run: every island's ranked population
/// and private RNG stream, plus the cumulative counters. (The master RNG is
/// only used to seed the islands at initialization, so it is not stored.)
struct IslandState {
  std::vector<moga::Population> islands;
  std::vector<RngState> rngs;  ///< parallel to `islands`
  std::size_t next_generation = 0;
  std::size_t evaluations = 0;
  std::size_t migrations = 0;
};

/// Configuration of an island-GA run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base. Offspring of ALL
/// islands are evaluated as one batch per generation, so the worker pool
/// stays busy even with small per-island populations.
struct IslandParams : engine::EvolverCommon<IslandState> {
  std::size_t islands = 4;             ///< sub-population count (>= 2)
  std::size_t island_population = 25;  ///< members per island (even, >= 4)
  std::size_t generations = 800;
  std::size_t migration_interval = 25; ///< generations between migrations
  std::size_t migrants = 2;            ///< individuals sent to the next island
  moga::VariationParams variation;
};

struct IslandResult {
  moga::Population population;  ///< union of all islands at the end
  moga::Population front;       ///< feasible non-dominated set of the union
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;
  std::size_t migrations = 0;
  engine::EvalStats eval_stats;  ///< requested/distinct/cache-hit accounting
  bool interrupted = false;      ///< stop token ended the run early (snapshotted)
};

/// Runs the island GA: each island evolves with NSGA-II ranking; every
/// `migration_interval` generations the best (rank-0, most isolated)
/// `migrants` of each island replace the worst members of the next island
/// in the ring. Deterministic per seed.
IslandResult run_island_ga(const moga::Problem& problem, const IslandParams& params,
                           const moga::GenerationCallback& on_generation = {});

// --- island primitives, shared with the sharded runner (src/shard) ---
// run_island_ga and the shard worker both build their generation step out of
// these three helpers, so a shard-local island competes, emigrates and
// receives byte-identically to the same island inside a solo run.

/// NSGA-II elitist survivor selection over one island's parent+offspring
/// pool (all members already evaluated). Leaves `island` ranked with
/// crowding distances assigned.
void island_select_survivors(moga::Population& island, moga::Population&& pool,
                             std::size_t n, moga::RankingScratch& ranking);

/// The `migrants` ring-travelling copies of `island`, best first ("best" =
/// crowded_less order: rank 0 with the largest crowding). The island itself
/// is untouched — migration sends copies.
moga::Population island_emigrants(const moga::Population& island, std::size_t migrants);

/// Ring-migration arrival: the immigrants (best first, as produced by
/// island_emigrants) replace the worst members of `destination`, worst
/// replaced first. Order-sensitive by contract — callers must integrate a
/// full epoch's emigrant selection before any island receives.
void island_immigrate(moga::Population& destination, moga::Population immigrants);

}  // namespace anadex::sacga
