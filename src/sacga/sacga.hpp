// SACGA — Simulated-Annealing-driven Competition GA (paper §4.4).
//
// Phase I: pure local competition until every partition holds a
// constraint-satisfying solution, capped at `phase1_max_generations`; on
// timeout, partitions still lacking a feasible member are discarded.
//
// Phase II: for `span` generations the annealing schedule (eqns 2–4)
// probabilistically admits locally-superior solutions to global
// competition, transitioning from pure local to (almost) pure global
// pressure. A final global competition over the whole population yields the
// reported Pareto front.
#pragma once

#include <cstdint>
#include <functional>

#include "engine/evolver_common.hpp"
#include "moga/nsga2.hpp"
#include "moga/problem.hpp"
#include "sacga/partitioned_evolver.hpp"
#include "sacga/schedule.hpp"

namespace anadex::sacga {

/// Resumable state of a SACGA run: the engine snapshot plus where the
/// two-phase schedule stands. While phase I is still running,
/// `phase1_generations` is meaningless; once `phase1_done` is set it holds
/// the paper's gen_t, which fixes the phase-II span and annealing schedule.
struct SacgaState {
  EvolverSnapshot evolver;
  bool phase1_done = false;
  std::size_t phase1_generations = 0;
};

/// Configuration of a SACGA run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base.
struct SacgaParams : engine::EvolverCommon<SacgaState> {
  std::size_t population_size = 100;
  std::size_t partitions = 8;
  std::size_t axis_objective = 1;  ///< objective whose range is partitioned
  double axis_lo = 0.0;
  double axis_hi = 1.0;
  std::size_t phase1_max_generations = 200;  ///< paper: "a couple of hundred"
  std::size_t span = 600;                    ///< phase-II generations
  /// When true, `span` is the TOTAL generation budget and phase II runs for
  /// span - gen_t generations (the paper reports runs by total iteration
  /// count, e.g. "800 iterations of an 8-partition SACGA").
  bool span_is_total_budget = false;
  std::size_t n_desired = 5;                 ///< eqn 2's n
  double alpha = 1.0;                        ///< eqn 3's alpha
  double t_init = 100.0;                     ///< eqn 4's T_init
  ScheduleShape shape;                       ///< shaping targets for k1/k2/k3
  moga::VariationParams variation;
};

struct SacgaResult {
  moga::Population population;
  moga::Population front;
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;   ///< gen_t + span
  std::size_t phase1_generations = 0;  ///< the paper's gen_t
  std::size_t discarded_partitions = 0;
  engine::EvalStats eval_stats;      ///< requested/distinct/cache-hit accounting
  bool interrupted = false;          ///< stop token ended the run early (snapshotted)
};

/// Runs SACGA. `on_generation` (if given) sees every generation of both
/// phases with a single global generation index. Deterministic per seed.
SacgaResult run_sacga(const moga::Problem& problem, const SacgaParams& params,
                      const moga::GenerationCallback& on_generation = {});

/// Observer invoked after every phase-I generation with the evolver and the
/// cumulative number of phase-I generations used, for checkpointing.
using Phase1StepHook = std::function<void(const PartitionedEvolver&, std::size_t used)>;

/// Phase I only, exposed for reuse by MESACGA: evolves under pure local
/// competition until feasible coverage or the cap, then discards infeasible
/// partitions. Returns the number of generations used (gen_t). When
/// resuming a checkpointed run, `already_used` carries the phase-I
/// generations already spent (the restored evolver's generation count).
/// `obs` (optional) carries the telemetry sink: each phase-I generation
/// records the "gen" + "sacga" trace events with phase = 0.
/// `stop` (optional) is polled at the generation barrier: when raised, the
/// function returns early — WITHOUT discarding infeasible partitions, so a
/// resumed run re-enters phase I exactly where it left off — and sets
/// `*stopped` (when given) to true.
std::size_t run_phase1(PartitionedEvolver& evolver, std::size_t max_generations,
                       const moga::GenerationCallback& on_generation,
                       std::size_t generation_offset, std::size_t already_used = 0,
                       const Phase1StepHook& on_step = {},
                       const engine::ObsConfig* obs = nullptr,
                       const CancelToken* stop = nullptr, bool* stopped = nullptr);

}  // namespace anadex::sacga
