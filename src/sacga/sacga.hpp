// SACGA — Simulated-Annealing-driven Competition GA (paper §4.4).
//
// Phase I: pure local competition until every partition holds a
// constraint-satisfying solution, capped at `phase1_max_generations`; on
// timeout, partitions still lacking a feasible member are discarded.
//
// Phase II: for `span` generations the annealing schedule (eqns 2–4)
// probabilistically admits locally-superior solutions to global
// competition, transitioning from pure local to (almost) pure global
// pressure. A final global competition over the whole population yields the
// reported Pareto front.
#pragma once

#include <cstdint>
#include <functional>

#include "moga/nsga2.hpp"
#include "moga/problem.hpp"
#include "sacga/partitioned_evolver.hpp"
#include "sacga/schedule.hpp"

namespace anadex::sacga {

struct SacgaParams {
  std::size_t population_size = 100;
  std::size_t partitions = 8;
  std::size_t axis_objective = 1;  ///< objective whose range is partitioned
  double axis_lo = 0.0;
  double axis_hi = 1.0;
  std::size_t phase1_max_generations = 200;  ///< paper: "a couple of hundred"
  std::size_t span = 600;                    ///< phase-II generations
  /// When true, `span` is the TOTAL generation budget and phase II runs for
  /// span - gen_t generations (the paper reports runs by total iteration
  /// count, e.g. "800 iterations of an 8-partition SACGA").
  bool span_is_total_budget = false;
  std::size_t n_desired = 5;                 ///< eqn 2's n
  double alpha = 1.0;                        ///< eqn 3's alpha
  double t_init = 100.0;                     ///< eqn 4's T_init
  ScheduleShape shape;                       ///< shaping targets for k1/k2/k3
  moga::VariationParams variation;
  std::uint64_t seed = 1;
};

struct SacgaResult {
  moga::Population population;
  moga::Population front;
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;   ///< gen_t + span
  std::size_t phase1_generations = 0;  ///< the paper's gen_t
  std::size_t discarded_partitions = 0;
};

/// Runs SACGA. `on_generation` (if given) sees every generation of both
/// phases with a single global generation index. Deterministic per seed.
SacgaResult run_sacga(const moga::Problem& problem, const SacgaParams& params,
                      const moga::GenerationCallback& on_generation = {});

/// Phase I only, exposed for reuse by MESACGA: evolves under pure local
/// competition until feasible coverage or the cap, then discards infeasible
/// partitions. Returns the number of generations used (gen_t).
std::size_t run_phase1(PartitionedEvolver& evolver, std::size_t max_generations,
                       const moga::GenerationCallback& on_generation,
                       std::size_t generation_offset);

}  // namespace anadex::sacga
