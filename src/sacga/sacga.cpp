#include "sacga/sacga.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "moga/obs_trace.hpp"
#include "sacga/obs_trace.hpp"

namespace anadex::sacga {

std::size_t run_phase1(PartitionedEvolver& evolver, std::size_t max_generations,
                       const moga::GenerationCallback& on_generation,
                       std::size_t generation_offset, std::size_t already_used,
                       const Phase1StepHook& on_step, const engine::ObsConfig* obs) {
  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  std::size_t used = already_used;
  while (used < max_generations && !evolver.all_active_partitions_feasible()) {
    evolver.step(never);
    if (on_generation) on_generation(generation_offset + used, evolver.population());
    if (obs != nullptr) {
      moga::trace_generation(obs->sink, generation_offset + used, evolver.evaluations(),
                             evolver.population(), obs->trace_hypervolume);
      trace_sacga_generation(obs->sink, evolver, generation_offset + used, /*phase=*/0,
                             nullptr, 0);
    }
    ++used;
    if (on_step) on_step(evolver, used);
  }
  evolver.discard_infeasible_partitions();
  return used;
}

SacgaResult run_sacga(const moga::Problem& problem, const SacgaParams& params,
                      const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.partitions >= 1, "SACGA needs at least one partition");
  ANADEX_REQUIRE(params.span >= 1, "SACGA needs a positive phase-II span");

  EvolverParams evolver_params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;
  evolver_params.threads = params.threads;
  evolver_params.eval_cache = params.eval_cache;
  evolver_params.sink = params.sink;

  Partitioner partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                          params.partitions);
  std::optional<PartitionedEvolver> engine;
  bool phase1_done = false;
  std::size_t gen_t = 0;
  if (params.resume != nullptr) {
    engine.emplace(problem, evolver_params, std::move(partitioner), params.resume->evolver);
    phase1_done = params.resume->phase1_done;
    gen_t = params.resume->phase1_generations;
  } else {
    engine.emplace(problem, evolver_params, std::move(partitioner), params.seed);
  }
  PartitionedEvolver& evolver = *engine;

  const auto maybe_snapshot = [&params, &evolver](bool done, std::size_t gen_t_now) {
    if (params.snapshot_every == 0 || !params.on_snapshot) return;
    if (evolver.generation() == 0 || evolver.generation() % params.snapshot_every != 0) return;
    SacgaState state;
    state.evolver = evolver.snapshot();
    state.phase1_done = done;
    state.phase1_generations = gen_t_now;
    params.on_snapshot(state);
  };

  SacgaResult result;
  if (!phase1_done) {
    gen_t = run_phase1(
        evolver, params.phase1_max_generations, on_generation, 0, evolver.generation(),
        [&maybe_snapshot](const PartitionedEvolver&, std::size_t) { maybe_snapshot(false, 0); },
        &params);
  }
  result.phase1_generations = gen_t;
  for (bool d : evolver.discarded()) {
    if (d) ++result.discarded_partitions;
  }

  std::size_t span = params.span;
  if (params.span_is_total_budget) {
    ANADEX_REQUIRE(params.span > params.phase1_max_generations,
                   "total budget must exceed the phase-I cap");
    span = std::max<std::size_t>(params.span - result.phase1_generations, 1);
  }

  const AnnealingSchedule schedule = AnnealingSchedule::shaped(
      params.shape, params.alpha, params.t_init, params.n_desired, span);
  if constexpr (kCheckInvariants) schedule.require_monotone_cooling();

  // A restored evolver may already be partway through phase II.
  const std::size_t start_offset =
      evolver.generation() > gen_t ? evolver.generation() - gen_t : 0;
  for (std::size_t offset = start_offset; offset < span; ++offset) {
    const ParticipationProbability prob = [&schedule, offset](std::size_t i) {
      return schedule.participation_probability(i, offset);
    };
    evolver.step(prob);
    if (on_generation) {
      on_generation(result.phase1_generations + offset, evolver.population());
    }
    moga::trace_generation(params.sink, result.phase1_generations + offset,
                           evolver.evaluations(), evolver.population(),
                           params.trace_hypervolume);
    trace_sacga_generation(params.sink, evolver, result.phase1_generations + offset,
                           /*phase=*/1, &schedule, offset);
    maybe_snapshot(true, gen_t);
  }

  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  result.eval_stats = evolver.engine().stats();
  return result;
}

}  // namespace anadex::sacga
