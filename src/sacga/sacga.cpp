#include "sacga/sacga.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "moga/obs_trace.hpp"
#include "sacga/obs_trace.hpp"

namespace anadex::sacga {

std::size_t run_phase1(PartitionedEvolver& evolver, std::size_t max_generations,
                       const moga::GenerationCallback& on_generation,
                       std::size_t generation_offset, std::size_t already_used,
                       const Phase1StepHook& on_step, const engine::ObsConfig* obs,
                       const CancelToken* stop, bool* stopped) {
  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  std::size_t used = already_used;
  while (used < max_generations && !evolver.all_active_partitions_feasible()) {
    // Graceful-stop barrier. Returning here skips the infeasible-partition
    // discard below on purpose: the discard belongs to phase-I COMPLETION,
    // and a resumed run must re-enter this loop in the pre-discard state.
    if (stop != nullptr && stop->requested()) {
      if (stopped != nullptr) *stopped = true;
      return used;
    }
    evolver.step(never);
    if (on_generation) on_generation(generation_offset + used, evolver.population());
    if (obs != nullptr) {
      moga::trace_generation(obs->sink, generation_offset + used, evolver.evaluations(),
                             evolver.population(), obs->trace_hypervolume);
      trace_sacga_generation(obs->sink, evolver, generation_offset + used, /*phase=*/0,
                             nullptr, 0);
    }
    ++used;
    if (on_step) on_step(evolver, used);
  }
  evolver.discard_infeasible_partitions();
  return used;
}

SacgaResult run_sacga(const moga::Problem& problem, const SacgaParams& params,
                      const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.partitions >= 1, "SACGA needs at least one partition");
  ANADEX_REQUIRE(params.span >= 1, "SACGA needs a positive phase-II span");

  EvolverParams evolver_params;
  static_cast<engine::EvalKnobs&>(evolver_params) = params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;
  evolver_params.sink = params.sink;
  evolver_params.eval_deadline_s = params.eval_deadline_s;
  evolver_params.eval_cancel = params.eval_cancel;

  Partitioner partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                          params.partitions);
  std::optional<PartitionedEvolver> engine;
  bool phase1_done = false;
  std::size_t gen_t = 0;
  if (params.resume != nullptr) {
    engine.emplace(problem, evolver_params, std::move(partitioner), params.resume->evolver);
    phase1_done = params.resume->phase1_done;
    gen_t = params.resume->phase1_generations;
  } else {
    engine.emplace(problem, evolver_params, std::move(partitioner), params.seed);
  }
  PartitionedEvolver& evolver = *engine;

  const auto force_snapshot = [&params, &evolver](bool done, std::size_t gen_t_now) {
    if (!params.on_snapshot) return;
    SacgaState state;
    state.evolver = evolver.snapshot();
    state.phase1_done = done;
    state.phase1_generations = gen_t_now;
    params.on_snapshot(state);
  };
  /// True when the regular cadence would snapshot at the current generation.
  const auto at_snapshot_barrier = [&params, &evolver] {
    return params.snapshot_every > 0 && evolver.generation() != 0 &&
           evolver.generation() % params.snapshot_every == 0;
  };
  const auto maybe_snapshot = [&](bool done, std::size_t gen_t_now) {
    if (at_snapshot_barrier()) force_snapshot(done, gen_t_now);
  };

  SacgaResult result;
  bool phase1_stopped = false;
  if (!phase1_done) {
    gen_t = run_phase1(
        evolver, params.phase1_max_generations, on_generation, 0, evolver.generation(),
        [&maybe_snapshot](const PartitionedEvolver&, std::size_t) { maybe_snapshot(false, 0); },
        &params, params.stop, &phase1_stopped);
    if (phase1_stopped) {
      if (!at_snapshot_barrier()) force_snapshot(false, 0);
      result.interrupted = true;
    }
  }
  result.phase1_generations = gen_t;
  for (bool d : evolver.discarded()) {
    if (d) ++result.discarded_partitions;
  }

  if (!result.interrupted) {
    std::size_t span = params.span;
    if (params.span_is_total_budget) {
      ANADEX_REQUIRE(params.span > params.phase1_max_generations,
                     "total budget must exceed the phase-I cap");
      span = std::max<std::size_t>(params.span - result.phase1_generations, 1);
    }

    const AnnealingSchedule schedule = AnnealingSchedule::shaped(
        params.shape, params.alpha, params.t_init, params.n_desired, span);
    if constexpr (kCheckInvariants) schedule.require_monotone_cooling();

    // A restored evolver may already be partway through phase II.
    const std::size_t start_offset =
        evolver.generation() > gen_t ? evolver.generation() - gen_t : 0;
    for (std::size_t offset = start_offset; offset < span; ++offset) {
      const ParticipationProbability prob = [&schedule, offset](std::size_t i) {
        return schedule.participation_probability(i, offset);
      };
      evolver.step(prob);
      if (on_generation) {
        on_generation(result.phase1_generations + offset, evolver.population());
      }
      moga::trace_generation(params.sink, result.phase1_generations + offset,
                             evolver.evaluations(), evolver.population(),
                             params.trace_hypervolume);
      trace_sacga_generation(params.sink, evolver, result.phase1_generations + offset,
                             /*phase=*/1, &schedule, offset);
      maybe_snapshot(true, gen_t);

      // Graceful-stop barrier (see nsga2.cpp).
      if (params.stop != nullptr && params.stop->requested() && offset + 1 < span) {
        if (!at_snapshot_barrier()) force_snapshot(true, gen_t);
        result.interrupted = true;
        break;
      }
    }
  }

  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  result.eval_stats = evolver.engine().stats();
  return result;
}

}  // namespace anadex::sacga
