#include "sacga/sacga.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace anadex::sacga {

std::size_t run_phase1(PartitionedEvolver& evolver, std::size_t max_generations,
                       const moga::GenerationCallback& on_generation,
                       std::size_t generation_offset) {
  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  std::size_t used = 0;
  while (used < max_generations && !evolver.all_active_partitions_feasible()) {
    evolver.step(never);
    if (on_generation) on_generation(generation_offset + used, evolver.population());
    ++used;
  }
  evolver.discard_infeasible_partitions();
  return used;
}

SacgaResult run_sacga(const moga::Problem& problem, const SacgaParams& params,
                      const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(params.partitions >= 1, "SACGA needs at least one partition");
  ANADEX_REQUIRE(params.span >= 1, "SACGA needs a positive phase-II span");

  EvolverParams evolver_params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;

  Partitioner partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                          params.partitions);
  PartitionedEvolver evolver(problem, evolver_params, std::move(partitioner), params.seed);

  SacgaResult result;
  result.phase1_generations =
      run_phase1(evolver, params.phase1_max_generations, on_generation, 0);
  for (bool d : evolver.discarded()) {
    if (d) ++result.discarded_partitions;
  }

  std::size_t span = params.span;
  if (params.span_is_total_budget) {
    ANADEX_REQUIRE(params.span > params.phase1_max_generations,
                   "total budget must exceed the phase-I cap");
    span = std::max<std::size_t>(params.span - result.phase1_generations, 1);
  }

  const AnnealingSchedule schedule = AnnealingSchedule::shaped(
      params.shape, params.alpha, params.t_init, params.n_desired, span);

  for (std::size_t offset = 0; offset < span; ++offset) {
    const ParticipationProbability prob = [&schedule, offset](std::size_t i) {
      return schedule.participation_probability(i, offset);
    };
    evolver.step(prob);
    if (on_generation) {
      on_generation(result.phase1_generations + offset, evolver.population());
    }
  }

  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  return result;
}

}  // namespace anadex::sacga
