#include "sacga/partitioned_evolver.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "common/check.hpp"
#include "moga/nds.hpp"
#include "moga/nsga2.hpp"
#include "moga/selection.hpp"

namespace anadex::sacga {

PartitionedEvolver::PartitionedEvolver(const moga::Problem& problem, const EvolverParams& params,
                                       Partitioner partitioner, std::uint64_t seed)
    : problem_(problem),
      params_(params),
      engine_(problem, params, params.sink,
              engine::EvalWatchdog{params.eval_cancel, params.eval_deadline_s}),
      partitioner_(std::move(partitioner)),
      bounds_(problem.bounds()),
      rng_(seed),
      discarded_(partitioner_.count(), false) {
  ANADEX_REQUIRE(params.population_size >= 4 && params.population_size % 2 == 0,
                 "population size must be even and >= 4");
  ANADEX_REQUIRE(partitioner_.axis_objective() < problem.num_objectives(),
                 "partition axis must be a valid objective index");

  population_.resize(params.population_size);
  for (auto& member : population_) member.genes = moga::random_genome(bounds_, rng_);
  engine_.evaluate_members(population_);
  evaluations_ += population_.size();
  // Pure-local initial ranking so tournaments are defined before step().
  rank_pool(population_, info_, [](std::size_t) { return 0.0; });
}

PartitionedEvolver::PartitionedEvolver(const moga::Problem& problem, const EvolverParams& params,
                                       Partitioner partitioner, const EvolverSnapshot& snapshot)
    : problem_(problem),
      params_(params),
      engine_(problem, params, params.sink,
              engine::EvalWatchdog{params.eval_cancel, params.eval_deadline_s}),
      partitioner_(std::move(partitioner)),
      bounds_(problem.bounds()),
      rng_(1),
      population_(snapshot.population),
      discarded_(snapshot.discarded),
      evaluations_(snapshot.evaluations),
      generation_(snapshot.generation) {
  ANADEX_REQUIRE(snapshot.population.size() == params.population_size,
                 "snapshot population size does not match params");
  ANADEX_REQUIRE(snapshot.partitions == partitioner_.count(),
                 "snapshot partition count does not match the partitioner");
  ANADEX_REQUIRE(snapshot.discarded.size() == partitioner_.count(),
                 "snapshot discard flags do not match the partition count");
  rng_.set_state(snapshot.rng);
  // Partition membership is a pure function of the objectives, so it can be
  // rebuilt without touching the RNG (rank_pool would shuffle).
  info_.assign(population_.size(), MemberInfo{});
  for (std::size_t i = 0; i < population_.size(); ++i) {
    const std::size_t p = partitioner_.index_of(population_[i]);
    info_[i].partition = p;
    info_[i].local_rank = population_[i].rank;
    info_[i].discarded_partition = discarded_[p];
  }
}

PartitionedEvolver::PartitionStats PartitionedEvolver::partition_stats() const {
  PartitionStats stats;
  stats.occupancy.assign(partitioner_.count(), 0);
  stats.feasible.assign(partitioner_.count(), 0);
  for (std::size_t i = 0; i < population_.size(); ++i) {
    const std::size_t p = info_[i].partition;
    ++stats.occupancy[p];
    if (population_[i].feasible()) ++stats.feasible[p];
  }
  for (const bool d : discarded_) {
    if (d) ++stats.discarded;
  }
  return stats;
}

EvolverSnapshot PartitionedEvolver::snapshot() const {
  EvolverSnapshot s;
  s.population = population_;
  s.discarded = discarded_;
  s.partitions = partitioner_.count();
  s.rng = rng_.state();
  s.evaluations = evaluations_;
  s.generation = generation_;
  return s;
}

void PartitionedEvolver::rank_pool(moga::Population& pool, std::vector<MemberInfo>& info,
                                   const ParticipationProbability& prob) {
  info.assign(pool.size(), MemberInfo{});

  // 1. Partition assignment.
  std::vector<std::vector<std::size_t>> members(partitioner_.count());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const std::size_t p = partitioner_.index_of(pool[i]);
    ANADEX_CHECK_INVARIANT(p < partitioner_.count(),
                           "partition index must lie inside the partitioner's bins");
    info[i].partition = p;
    info[i].discarded_partition = discarded_[p];
    members[p].push_back(i);
  }
  if constexpr (kCheckInvariants) {
    // Occupancy bound: the bins partition the pool — every member in
    // exactly one bin, none lost, none duplicated (Phase I/II both build
    // their local competitions from this assignment).
    std::size_t occupancy = 0;
    for (const auto& bin : members) occupancy += bin.size();
    ANADEX_ASSERT(occupancy == pool.size(),
                  "partition occupancy must sum to the pool size");
  }

  // 2. Local competition: per-partition constrained NDS + crowding.
  std::vector<std::size_t> locally_superior;  // gathered per partition below
  std::vector<std::size_t> global_candidates;
  for (std::size_t p = 0; p < members.size(); ++p) {
    if (members[p].empty()) continue;
    auto fronts = ranking_.sort(pool, members[p]);
    for (const auto& front : fronts) ranking_.crowding(pool, front);
    for (std::size_t idx : members[p]) info[idx].local_rank = pool[idx].rank;

    if (discarded_[p]) continue;  // discarded partitions never compete globally

    // 3. Probabilistic admission of this partition's locally-superior
    //    solutions, visited in a freshly randomized order (paper point 2).
    locally_superior = fronts.front();
    std::shuffle(locally_superior.begin(), locally_superior.end(), rng_);
    for (std::size_t i = 0; i < locally_superior.size(); ++i) {
      const double admit = prob(i + 1);
      if (rng_.bernoulli(admit)) global_candidates.push_back(locally_superior[i]);
    }
  }

  // 4. Global competition among the admitted candidates; their rank is
  //    revised to the global rank (non-candidates keep their local rank).
  if (!global_candidates.empty()) {
    // Note: only the RANK is revised; crowding keeps its partition-local
    // value so the survivor ordering's density estimate stays comparable
    // between participants and protected non-participants.
    std::vector<double> saved_crowding;
    saved_crowding.reserve(global_candidates.size());
    for (std::size_t idx : global_candidates) saved_crowding.push_back(pool[idx].crowding);
    ranking_.sort(pool, global_candidates);
    for (std::size_t k = 0; k < global_candidates.size(); ++k) {
      pool[global_candidates[k]].crowding = saved_crowding[k];
    }
  }
}

void PartitionedEvolver::step(const ParticipationProbability& prob) {
  // Offspring from the GLOBAL mating pool (rank-based tournament over the
  // entire current population, regardless of partition).
  const moga::Preference prefer = [](const moga::Individual& a, const moga::Individual& b) {
    return moga::crowded_less(a, b);
  };
  auto offspring_genes = moga::make_offspring(population_, bounds_, params_.variation, prefer,
                                              params_.population_size, rng_);

  moga::Population pool;
  pool.reserve(2 * params_.population_size);
  for (auto& p : population_) pool.push_back(std::move(p));
  for (auto& genes : offspring_genes) {
    moga::Individual child;
    child.genes = std::move(genes);
    pool.push_back(std::move(child));
  }
  // One batch per generation: all offspring evaluated together.
  engine_.evaluate_members(
      std::span<moga::Individual>(pool).subspan(params_.population_size));
  evaluations_ += params_.population_size;

  std::vector<MemberInfo> info;
  rank_pool(pool, info, prob);

  // Survivor selection: (discarded-last, revised rank, crowding).
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (info[a].discarded_partition != info[b].discarded_partition) {
      return !info[a].discarded_partition;
    }
    if (pool[a].rank != pool[b].rank) return pool[a].rank < pool[b].rank;
    return pool[a].crowding > pool[b].crowding;
  });

  moga::Population next;
  std::vector<MemberInfo> next_info;
  next.reserve(params_.population_size);
  next_info.reserve(params_.population_size);
  for (std::size_t k = 0; k < params_.population_size; ++k) {
    next.push_back(std::move(pool[order[k]]));
    next_info.push_back(info[order[k]]);
  }
  population_ = std::move(next);
  info_ = std::move(next_info);
  ++generation_;
  if constexpr (kCheckInvariants) {
    ANADEX_ASSERT(population_.size() == params_.population_size,
                  "survivor selection must preserve the population size");
    for (std::size_t i = 0; i < population_.size(); ++i) {
      // The cached membership is what global competition and the phase-I
      // feasibility scan trust; it must match a fresh assignment.
      ANADEX_ASSERT(info_[i].partition == partitioner_.index_of(population_[i]),
                    "cached partition membership must match the partitioner");
    }
  }
}

void PartitionedEvolver::set_partitioner(Partitioner partitioner) {
  ANADEX_REQUIRE(partitioner.axis_objective() < problem_.num_objectives(),
                 "partition axis must be a valid objective index");
  partitioner_ = std::move(partitioner);
  discarded_.assign(partitioner_.count(), false);
  rank_pool(population_, info_, [](std::size_t) { return 0.0; });
}

bool PartitionedEvolver::all_active_partitions_feasible() const {
  std::vector<bool> has_feasible(partitioner_.count(), false);
  std::vector<bool> populated(partitioner_.count(), false);
  for (std::size_t i = 0; i < population_.size(); ++i) {
    populated[info_[i].partition] = true;
    if (population_[i].feasible()) has_feasible[info_[i].partition] = true;
  }
  bool any = false;
  for (std::size_t p = 0; p < partitioner_.count(); ++p) {
    if (discarded_[p]) continue;
    if (!has_feasible[p]) return false;  // empty partitions also count as infeasible
    any = true;
  }
  return any;
}

std::size_t PartitionedEvolver::discard_infeasible_partitions() {
  std::vector<bool> has_feasible(partitioner_.count(), false);
  for (std::size_t i = 0; i < population_.size(); ++i) {
    if (population_[i].feasible()) has_feasible[info_[i].partition] = true;
  }
  std::size_t count = 0;
  for (std::size_t p = 0; p < partitioner_.count(); ++p) {
    if (!discarded_[p] && !has_feasible[p]) {
      discarded_[p] = true;
      ++count;
    }
  }
  for (std::size_t i = 0; i < population_.size(); ++i) {
    info_[i].discarded_partition = discarded_[info_[i].partition];
  }
  return count;
}

moga::Population PartitionedEvolver::global_front() const {
  return moga::extract_global_front(population_);
}

}  // namespace anadex::sacga
