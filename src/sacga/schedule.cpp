#include "sacga/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace anadex::sacga {

AnnealingSchedule::AnnealingSchedule(const ScheduleParams& params) : params_(params) {
  ANADEX_REQUIRE(params.k1 > 0.0, "k1 must be positive");
  ANADEX_REQUIRE(params.alpha > 0.0, "alpha must be positive");
  ANADEX_REQUIRE(params.t_init > 1.0, "T_init must exceed the final temperature of 1");
  ANADEX_REQUIRE(params.n >= 2, "n (desired solutions per partition) must be >= 2");
  ANADEX_REQUIRE(params.span >= 1, "span must be >= 1");
}

AnnealingSchedule AnnealingSchedule::shaped(const ScheduleShape& shape, double alpha,
                                            double t_init, std::size_t n, std::size_t span) {
  ANADEX_REQUIRE(shape.p_mid_first > 0.0 && shape.p_mid_first < 1.0 &&
                     shape.p_mid_last > 0.0 && shape.p_mid_last < 1.0 &&
                     shape.p_end_last > 0.0 && shape.p_end_last < 1.0,
                 "shaping probabilities must lie strictly in (0, 1)");
  ANADEX_REQUIRE(shape.p_mid_first > shape.p_mid_last,
                 "prob(i=1) must exceed prob(i=n) at mid-span");
  ANADEX_REQUIRE(shape.p_end_last > shape.p_mid_last,
                 "prob(i=n) must grow from mid-span to end-span");

  // From eqn (3): alpha / (c_i * T) = -ln(1 - p). Write L = -ln(1 - p).
  const double l_mid_first = -std::log(1.0 - shape.p_mid_first);
  const double l_mid_last = -std::log(1.0 - shape.p_mid_last);
  const double l_end_last = -std::log(1.0 - shape.p_end_last);

  // Mid-span targets differ only through c_i: c_n / c_1 = exp(k2) so
  // k2 = ln(L_1 / L_n) evaluated at mid-span.
  const double k2 = std::log(l_mid_first / l_mid_last);

  // prob(i=n) moves from mid- to end-span only through T: T_mid / T_end =
  // L_end / L_mid. With T_end = T_init^(1 - k3) and T_mid = T_init^(1 - k3/2)
  // this gives T_mid = (L_end / L_mid) * T_end; choosing T_end = 1 pins
  // k3 = 1 would over-constrain, so solve k3 from T_mid alone:
  //   T_mid = L_end / L_mid * T_init^(1 - k3)  and  T_mid = T_init^(1 - k3/2)
  // =>  T_init^(k3/2) = L_end / L_mid  =>  k3 = 2 ln(L_end/L_mid) / ln(T_init).
  const double k3 = 2.0 * std::log(l_end_last / l_mid_last) / std::log(t_init);

  // Finally k1 from the end-span target: c_n = alpha / (L_end * T_end).
  const double t_end = std::pow(t_init, 1.0 - k3);
  const double c_n = alpha / (l_end_last * t_end);
  const double k1 = c_n * std::exp(-k2 * static_cast<double>(n) / static_cast<double>(n - 1));

  ScheduleParams params;
  params.k1 = k1;
  params.k2 = k2;
  params.k3 = k3;
  params.alpha = alpha;
  params.t_init = t_init;
  params.n = n;
  params.span = span;
  return AnnealingSchedule(params);
}

double AnnealingSchedule::temperature(std::size_t gen_offset) const {
  const double g = std::min<double>(static_cast<double>(gen_offset),
                                    static_cast<double>(params_.span));
  const double exponent =
      -params_.k3 * std::log(params_.t_init) / static_cast<double>(params_.span) * g;
  return params_.t_init * std::exp(exponent);
}

double AnnealingSchedule::cost(std::size_t i) const {
  ANADEX_REQUIRE(i >= 1, "solution index i is 1-based");
  return params_.k1 *
         std::exp(params_.k2 * static_cast<double>(i) / static_cast<double>(params_.n - 1));
}

double AnnealingSchedule::participation_probability(std::size_t i,
                                                    std::size_t gen_offset) const {
  const double t = temperature(gen_offset);
  const double p = 1.0 - std::exp(-params_.alpha / (cost(i) * t));
  return std::clamp(p, 0.0, 1.0);
}

void AnnealingSchedule::require_monotone_cooling() const {
  ANADEX_ASSERT(temperature(0) == params_.t_init,
                "annealing must start at T_init");
  double prev = temperature(0);
  for (std::size_t g = 1; g <= params_.span; ++g) {
    const double t = temperature(g);
    ANADEX_ASSERT(t > 0.0, "annealing temperature must stay positive");
    ANADEX_ASSERT(t <= prev, "annealing temperature must cool monotonically");
    prev = t;
  }
  // Past the span the temperature is clamped, never reheated.
  ANADEX_ASSERT(temperature(params_.span + 1) == temperature(params_.span),
                "temperature must stay clamped after the span ends");
}

}  // namespace anadex::sacga
