#include "sacga/mesacga.hpp"

#include <algorithm>
#include <optional>

#include "common/check.hpp"
#include "moga/obs_trace.hpp"
#include "sacga/obs_trace.hpp"

namespace anadex::sacga {

MesacgaResult run_mesacga(const moga::Problem& problem, const MesacgaParams& params,
                          const moga::GenerationCallback& on_generation) {
  ANADEX_REQUIRE(!params.partition_schedule.empty(),
                 "MESACGA needs at least one phase in the partition schedule");
  for (std::size_t i = 0; i < params.partition_schedule.size(); ++i) {
    ANADEX_REQUIRE(params.partition_schedule[i] >= 1, "phase partition count must be >= 1");
    if (i > 0) {
      ANADEX_REQUIRE(params.partition_schedule[i] <= params.partition_schedule[i - 1],
                     "MESACGA partition schedule must be non-increasing");
    }
  }
  ANADEX_REQUIRE(params.span >= 1, "MESACGA needs a positive per-phase span");

  EvolverParams evolver_params;
  static_cast<engine::EvalKnobs&>(evolver_params) = params;
  evolver_params.population_size = params.population_size;
  evolver_params.variation = params.variation;
  evolver_params.sink = params.sink;
  evolver_params.eval_deadline_s = params.eval_deadline_s;
  evolver_params.eval_cancel = params.eval_cancel;

  std::optional<PartitionedEvolver> engine;
  MesacgaResult result;
  bool phase1_done = false;
  std::size_t gen_t = 0;
  if (params.resume != nullptr) {
    const MesacgaState& state = *params.resume;
    engine.emplace(problem, evolver_params,
                   Partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                               state.evolver.partitions),
                   state.evolver);
    phase1_done = state.phase1_done;
    gen_t = state.phase1_generations;
    result.phases = state.phases;
  } else {
    engine.emplace(problem, evolver_params,
                   Partitioner(params.axis_objective, params.axis_lo, params.axis_hi,
                               params.partition_schedule.front()),
                   params.seed);
  }
  PartitionedEvolver& evolver = *engine;

  const auto force_snapshot = [&params, &evolver, &result](bool done, std::size_t gen_t_now) {
    if (!params.on_snapshot) return;
    MesacgaState state;
    state.evolver = evolver.snapshot();
    state.phase1_done = done;
    state.phase1_generations = gen_t_now;
    state.phases = result.phases;
    params.on_snapshot(state);
  };
  const auto at_snapshot_barrier = [&params, &evolver] {
    return params.snapshot_every > 0 && evolver.generation() != 0 &&
           evolver.generation() % params.snapshot_every == 0;
  };
  const auto maybe_snapshot = [&](bool done, std::size_t gen_t_now) {
    if (at_snapshot_barrier()) force_snapshot(done, gen_t_now);
  };

  bool phase1_stopped = false;
  if (!phase1_done) {
    gen_t = run_phase1(
        evolver, params.phase1_max_generations, on_generation, 0, evolver.generation(),
        [&maybe_snapshot](const PartitionedEvolver&, std::size_t) { maybe_snapshot(false, 0); },
        &params, params.stop, &phase1_stopped);
    if (phase1_stopped) {
      if (!at_snapshot_barrier()) force_snapshot(false, 0);
      result.interrupted = true;
    }
  }
  result.phase1_generations = gen_t;

  std::size_t span = params.span;
  if (params.total_budget > 0) {
    ANADEX_REQUIRE(params.total_budget > params.phase1_max_generations,
                   "total budget must exceed the phase-I cap");
    span = std::max<std::size_t>((params.total_budget - result.phase1_generations) /
                                     params.partition_schedule.size(),
                                 1);
  }

  const std::size_t phase_count = params.partition_schedule.size();
  // Continuous annealing cools one schedule over the whole multi-phase run;
  // per-phase annealing restarts a span-long schedule in each phase.
  const AnnealingSchedule whole_run_schedule = AnnealingSchedule::shaped(
      params.shape, params.alpha, params.t_init, params.n_desired, span * phase_count);
  const AnnealingSchedule per_phase_schedule = AnnealingSchedule::shaped(
      params.shape, params.alpha, params.t_init, params.n_desired, span);
  if constexpr (kCheckInvariants) {
    whole_run_schedule.require_monotone_cooling();
    per_phase_schedule.require_monotone_cooling();
  }

  // A restored evolver may be partway through some phase; its position
  // follows from the generation counter and gen_t.
  const std::size_t completed = evolver.generation() - gen_t;
  const std::size_t start_phase = completed / span;
  const std::size_t start_offset = completed % span;

  std::size_t generation = evolver.generation();
  for (std::size_t phase = start_phase; !result.interrupted && phase < phase_count;
       ++phase) {
    // A mid-phase resume re-enters with the phase's partitioner already
    // restored; re-partitioning here would desynchronize the RNG stream.
    const bool entering_fresh = phase != start_phase || start_offset == 0;
    if (phase > 0 && entering_fresh) {
      // Expand partitions: fewer, wider bins over the same axis range.
      evolver.set_partitioner(Partitioner(params.axis_objective, params.axis_lo,
                                          params.axis_hi, params.partition_schedule[phase]));
    }
    if (entering_fresh) {
      trace_phase_marker(params.sink, "phase_start", phase + 1,
                         params.partition_schedule[phase], generation,
                         /*front_size=*/0);
    }
    const AnnealingSchedule& schedule =
        params.continuous_annealing ? whole_run_schedule : per_phase_schedule;

    for (std::size_t offset = phase == start_phase ? start_offset : 0; offset < span;
         ++offset) {
      const std::size_t schedule_offset =
          params.continuous_annealing ? phase * span + offset : offset;
      const ParticipationProbability prob = [&schedule, schedule_offset](std::size_t i) {
        return schedule.participation_probability(i, schedule_offset);
      };
      evolver.step(prob);
      if (on_generation) on_generation(generation, evolver.population());
      moga::trace_generation(params.sink, generation, evolver.evaluations(),
                             evolver.population(), params.trace_hypervolume);
      trace_sacga_generation(params.sink, evolver, generation, phase + 1, &schedule,
                             schedule_offset);
      ++generation;

      if (offset + 1 == span) {
        PhaseSnapshot snap;
        snap.phase = phase + 1;
        snap.partitions = params.partition_schedule[phase];
        snap.generation = generation;
        snap.front = evolver.global_front();
        trace_phase_marker(params.sink, "phase_end", phase + 1,
                           params.partition_schedule[phase], generation,
                           snap.front.size());
        result.phases.push_back(std::move(snap));
      }
      maybe_snapshot(true, gen_t);

      // Graceful-stop barrier (see nsga2.cpp). The very last generation of
      // the last phase completes the run; no interrupt needed there.
      if (params.stop != nullptr && params.stop->requested() &&
          !(phase + 1 == phase_count && offset + 1 == span)) {
        if (!at_snapshot_barrier()) force_snapshot(true, gen_t);
        result.interrupted = true;
        break;
      }
    }
  }

  result.front = evolver.global_front();
  result.population = evolver.population();
  result.evaluations = evolver.evaluations();
  result.generations_run = evolver.generation();
  result.eval_stats = evolver.engine().stats();
  return result;
}

}  // namespace anadex::sacga
