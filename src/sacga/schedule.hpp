// The simulated-annealing participation schedule of SACGA (paper §4.4,
// equations 2–4).
//
// During phase II, the i-th locally-superior solution of a partition
// (i = 1..m_p in a freshly randomized order each generation) is admitted to
// global competition with probability
//
//     prob(i, gen) = 1 - exp( -alpha / (c_i * T_A(gen)) )          (eqn 3)
//     c_i          = k1 * exp( k2 * i / (n - 1) )                  (eqn 2)
//     T_A(gen)     = T_init * exp( -k3 * ln(T_init)/span * (gen - gen_t) )  (eqn 4)
//
// so competition is almost purely local early (high temperature, low
// probability) and almost purely global at the end of the span. Lower i
// (the solutions considered earlier in the random order) get a higher
// probability, implementing the paper's partial-retention rule: a partition
// keeps some representation even when its global candidates are dominated.
#pragma once

#include <cstddef>

namespace anadex::sacga {

/// Raw parameters of eqns (2)–(4).
struct ScheduleParams {
  double k1 = 1.0;       ///< cost scale (eqn 2)
  double k2 = 1.0;       ///< cost growth with solution index (eqn 2)
  double k3 = 1.0;       ///< cooling exponent (eqn 4); 1 cools T_init -> 1 over span
  double alpha = 1.0;    ///< participation aggressiveness (eqn 3)
  double t_init = 100.0; ///< initial annealing temperature
  std::size_t n = 5;     ///< desired globally-superior solutions per partition
  std::size_t span = 600;///< generations in phase II
};

/// Target probabilities used to shape k1/k2/k3, per the paper's point 3:
/// desired probabilities at mid-span for i = 1 and i = n, and at end-span
/// for i = n (end-span probability of smaller i is higher still).
struct ScheduleShape {
  double p_mid_first = 0.80;  ///< prob(i=1) at gen = gen_t + span/2
  double p_mid_last = 0.20;   ///< prob(i=n) at gen = gen_t + span/2
  double p_end_last = 0.95;   ///< prob(i=n) at gen = gen_t + span
};

/// Evaluates the annealing schedule.
class AnnealingSchedule {
 public:
  /// Uses the raw parameters as given.
  explicit AnnealingSchedule(const ScheduleParams& params);

  /// Solves k1, k2, k3 from the shaping targets (closed form), keeping the
  /// given alpha / t_init / n / span.
  static AnnealingSchedule shaped(const ScheduleShape& shape, double alpha, double t_init,
                                  std::size_t n, std::size_t span);

  const ScheduleParams& params() const { return params_; }

  /// Annealing temperature at `gen_offset` = gen - gen_t, clamped to
  /// [0, span]. T(0) = T_init.
  double temperature(std::size_t gen_offset) const;

  /// Cost of admitting the i-th locally-superior solution (i is 1-based).
  double cost(std::size_t i) const;

  /// Participation probability of solution i at `gen_offset` (eqn 3),
  /// clamped to [0, 1].
  double participation_probability(std::size_t i, std::size_t gen_offset) const;

  /// Throws InvariantError unless T_A is a monotone non-increasing cooling
  /// over the whole span with T(0) = T_init: the annealing contract MESACGA
  /// phases rely on (local -> global competition must only ever tighten).
  /// Compiled unconditionally; hot-path callers gate on kCheckInvariants.
  void require_monotone_cooling() const;

 private:
  ScheduleParams params_;
};

}  // namespace anadex::sacga
