// Pure local-competition GA (paper §4.3): partitioned non-dominated ranking
// with a global mating pool, but NO global competition until a single final
// extraction of the global Pareto front. Diverse but slow to converge — the
// motivation for SACGA's annealed mixing.
#pragma once

#include <cstdint>
#include <functional>

#include "engine/evolver_common.hpp"
#include "moga/nsga2.hpp"
#include "moga/problem.hpp"
#include "sacga/partitioned_evolver.hpp"

namespace anadex::sacga {

/// Resumable state of a LocalOnly run: the engine snapshot is everything
/// (the loop itself is stateless beyond the generation counter).
struct LocalOnlyState {
  EvolverSnapshot evolver;
};

/// Configuration of a LocalOnly run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base.
struct LocalOnlyParams : engine::EvolverCommon<LocalOnlyState> {
  std::size_t population_size = 100;
  std::size_t partitions = 8;
  std::size_t axis_objective = 1;
  double axis_lo = 0.0;
  double axis_hi = 1.0;
  std::size_t generations = 800;
  moga::VariationParams variation;
};

struct LocalOnlyResult {
  moga::Population population;  ///< final population
  moga::Population front;       ///< feasible global Pareto front of the final population
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;
  engine::EvalStats eval_stats;   ///< requested/distinct/cache-hit accounting
  bool interrupted = false;       ///< stop token ended the run early (snapshotted)
};

/// Runs the pure local-competition GA. Deterministic for a fixed seed.
LocalOnlyResult run_local_only(const moga::Problem& problem, const LocalOnlyParams& params,
                               const moga::GenerationCallback& on_generation = {});

}  // namespace anadex::sacga
