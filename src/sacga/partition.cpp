#include "sacga/partition.hpp"

#include <algorithm>
#include <cmath>

namespace anadex::sacga {

Partitioner::Partitioner(std::size_t axis_objective, double axis_lo, double axis_hi,
                         std::size_t count)
    : axis_(axis_objective), lo_(axis_lo), hi_(axis_hi), count_(count) {
  ANADEX_REQUIRE(count >= 1, "partition count must be at least 1");
  ANADEX_REQUIRE(axis_lo < axis_hi, "partition range must be non-degenerate");
}

std::size_t Partitioner::index_of_value(double axis_value) const {
  const double f = (axis_value - lo_) / (hi_ - lo_);
  const auto raw = static_cast<long long>(std::floor(f * static_cast<double>(count_)));
  const long long clamped = std::clamp<long long>(raw, 0, static_cast<long long>(count_) - 1);
  return static_cast<std::size_t>(clamped);
}

std::size_t Partitioner::index_of(const moga::Individual& individual) const {
  ANADEX_REQUIRE(axis_ < individual.eval.objectives.size(),
                 "partition axis objective out of range for this individual");
  return index_of_value(individual.eval.objectives[axis_]);
}

Partitioner::Interval Partitioner::interval_of(std::size_t p) const {
  ANADEX_REQUIRE(p < count_, "partition index out of range");
  const double width = (hi_ - lo_) / static_cast<double>(count_);
  return {lo_ + width * static_cast<double>(p), lo_ + width * static_cast<double>(p + 1)};
}

}  // namespace anadex::sacga
