// Objective-space partitioning (paper §4.3).
//
// The objective-function space is split into m equal partitions induced by
// dividing the range of ONE chosen objective (for the integrator problem:
// the load-capacitance axis) into m equal, disjoint intervals. Individuals
// are assigned to partitions by that objective's value; values outside the
// configured range clamp to the edge partitions.
#pragma once

#include <cstddef>

#include "common/check.hpp"
#include "moga/individual.hpp"

namespace anadex::sacga {

class Partitioner {
 public:
  /// Splits [axis_lo, axis_hi) of objective `axis_objective` into `count`
  /// equal partitions. Requires count >= 1 and axis_lo < axis_hi.
  Partitioner(std::size_t axis_objective, double axis_lo, double axis_hi, std::size_t count);

  std::size_t count() const { return count_; }
  std::size_t axis_objective() const { return axis_; }
  double axis_lo() const { return lo_; }
  double axis_hi() const { return hi_; }

  /// Partition index of an objective-axis value (clamped to edge bins).
  std::size_t index_of_value(double axis_value) const;

  /// Partition index of an evaluated individual.
  std::size_t index_of(const moga::Individual& individual) const;

  /// [lower, upper) interval of objective-axis values covered by bin `p`.
  struct Interval {
    double lower;
    double upper;
  };
  Interval interval_of(std::size_t p) const;

 private:
  std::size_t axis_;
  double lo_;
  double hi_;
  std::size_t count_;
};

}  // namespace anadex::sacga
