// The evolutionary engine shared by LocalOnlyGA, SACGA and MESACGA.
//
// Per generation (paper Fig. 3):
//   1. A GLOBAL mating pool produces offspring (binary tournament over the
//      whole population, SBX crossover + polynomial mutation).
//   2. Parents and offspring are combined and assigned to partitions by the
//      partition-axis objective.
//   3. LOCAL competition: constrained non-dominated sorting + crowding
//      within each partition ("local rank"; local rank 0 = locally
//      superior).
//   4. Each partition's locally-superior solutions are visited in a freshly
//      randomized order; the i-th is admitted to GLOBAL competition with the
//      caller-supplied probability prob(i). Admitted candidates are globally
//      non-dominated sorted and their rank is REVISED to the global rank.
//   5. Survivor selection keeps the best population_size individuals by
//      (revised rank, crowding). Since every partition's local front shares
//      rank 0 when nothing is admitted globally, pure local competition
//      preserves every partition; as admissions rise, globally dominated
//      solutions sink and convergence pressure grows.
//
// Members of discarded partitions (phase-I timeout, paper §4.4) are pushed
// to the back of the survivor ordering so they are only retained when the
// active partitions cannot fill the population.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "engine/engine_lease.hpp"
#include "engine/eval_knobs.hpp"
#include "moga/individual.hpp"
#include "moga/nds.hpp"
#include "moga/operators.hpp"
#include "moga/problem.hpp"
#include "sacga/partition.hpp"

namespace anadex::sacga {

/// Engine configuration common to the SACGA family.
/// Inner-evolver configuration. The engine::EvalKnobs base carries the
/// pure execution knobs (threads / eval_cache / engine / batch_eval,
/// engine::EvolverCommon semantics, all result-invariant), so the SACGA
/// front-ends copy them down from their own params in one assignment.
struct EvolverParams : engine::EvalKnobs {
  std::size_t population_size = 100;  ///< must be even and >= 4
  moga::VariationParams variation;
  /// Non-owning telemetry sink forwarded to the EvalEngine (batch timing at
  /// eval level); nullptr disables. Tracing never alters results.
  obs::EventSink* sink = nullptr;
  /// Stuck-eval watchdog (engine::EvolverCommon semantics): per-batch
  /// deadline in seconds (0 = off) and the token the watchdog raises.
  double eval_deadline_s = 0.0;
  CancelToken* eval_cancel = nullptr;
};

/// Probability that the i-th (1-based) locally-superior solution of a
/// partition joins global competition this generation. Returning 0 for all
/// i yields pure local competition; 1 for all i yields pure global
/// competition.
using ParticipationProbability = std::function<double(std::size_t i)>;

/// Complete mid-run state of a PartitionedEvolver. Restoring it (see the
/// restore constructor) reproduces the remaining generations bit-for-bit:
/// the population carries the rank/crowding that drive the next tournament,
/// `rng` is the full generator state, and `partitions` pins the partitioner
/// geometry active at snapshot time (MESACGA varies it per phase).
struct EvolverSnapshot {
  moga::Population population;
  std::vector<bool> discarded;
  std::size_t partitions = 0;
  RngState rng;
  std::size_t evaluations = 0;
  std::size_t generation = 0;
};

/// Evolutionary engine with partition-local competition and probabilistic
/// global-rank revision.
class PartitionedEvolver {
 public:
  /// Creates and evaluates a random initial population.
  PartitionedEvolver(const moga::Problem& problem, const EvolverParams& params,
                     Partitioner partitioner, std::uint64_t seed);

  /// Restores an evolver mid-run from a snapshot. Performs no evaluations
  /// and draws nothing from the RNG, so the continuation is identical to
  /// the run the snapshot was taken from. `partitioner` must have the
  /// snapshot's partition count.
  PartitionedEvolver(const moga::Problem& problem, const EvolverParams& params,
                     Partitioner partitioner, const EvolverSnapshot& snapshot);

  /// Captures the full engine state for checkpointing.
  EvolverSnapshot snapshot() const;

  /// Runs one generation with the given participation policy.
  void step(const ParticipationProbability& prob);

  /// Replaces the partitioner (MESACGA phase transition). Re-ranks the
  /// current population under the new partitions and clears discard flags.
  void set_partitioner(Partitioner partitioner);

  const Partitioner& partitioner() const { return partitioner_; }
  const moga::Population& population() const { return population_; }
  std::size_t evaluations() const { return evaluations_; }
  std::size_t generation() const { return generation_; }

  /// The evolver's evaluation seam (for requested/distinct/cache-hit
  /// accounting; see engine::EvalStats). A private engine or a lease on
  /// the serve scheduler's shared hub, per params.engine.
  const engine::EngineLease& engine() const { return engine_; }

  /// True when every non-discarded partition currently holds at least one
  /// feasible individual AND at least one partition is populated.
  bool all_active_partitions_feasible() const;

  /// Marks partitions with no feasible member as discarded (end of phase I
  /// on timeout). Returns the number of partitions discarded.
  std::size_t discard_infeasible_partitions();

  /// Indices of partitions currently discarded.
  const std::vector<bool>& discarded() const { return discarded_; }

  /// Per-partition occupancy snapshot of the current population — the
  /// paper's partition-dynamics observable (telemetry; see
  /// docs/observability.md). Index p counts members assigned to partition p.
  struct PartitionStats {
    std::vector<std::uint64_t> occupancy;
    std::vector<std::uint64_t> feasible;
    std::uint64_t discarded = 0;  ///< number of discarded partitions
  };
  PartitionStats partition_stats() const;

  /// Performs the final global competition on the entire population and
  /// returns the feasible non-dominated front (paper: "Global Competition
  /// is performed once on the entire population").
  moga::Population global_front() const;

 private:
  struct MemberInfo {
    std::size_t partition = 0;
    int local_rank = 0;
    bool discarded_partition = false;
  };

  /// Ranks `pool` (partition assignment, local NDS + crowding, global rank
  /// revision with the given policy); fills `info` parallel to `pool`.
  void rank_pool(moga::Population& pool, std::vector<MemberInfo>& info,
                 const ParticipationProbability& prob);

  const moga::Problem& problem_;
  EvolverParams params_;
  engine::EngineLease engine_;
  Partitioner partitioner_;
  std::vector<moga::VariableBound> bounds_;
  Rng rng_;
  moga::Population population_;
  moga::RankingScratch ranking_;  ///< SoA buffers reused across partitions/generations
  std::vector<MemberInfo> info_;  ///< parallel to population_
  std::vector<bool> discarded_;
  std::size_t evaluations_ = 0;
  std::size_t generation_ = 0;
};

}  // namespace anadex::sacga
