#include "sacga/axis_estimate.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "engine/eval_engine.hpp"
#include "moga/operators.hpp"

namespace anadex::sacga {

AxisEstimate estimate_axis_range(const moga::Problem& problem, std::size_t axis_objective,
                                 std::size_t samples, Rng& rng, double padding,
                                 std::size_t threads) {
  ANADEX_REQUIRE(axis_objective < problem.num_objectives(),
                 "axis objective out of range for this problem");
  ANADEX_REQUIRE(samples >= 2, "axis estimation needs at least two samples");
  ANADEX_REQUIRE(padding >= 0.0, "padding must be non-negative");

  const auto bounds = problem.bounds();
  std::vector<engine::Genome> genomes;
  genomes.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    genomes.push_back(moga::random_genome(bounds, rng));
  }
  std::vector<moga::Evaluation> evals(samples);
  const engine::EvalEngine eval_engine(problem, threads);
  eval_engine.evaluate_batch(genomes, evals);

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& eval : evals) {
    lo = std::min(lo, eval.objectives[axis_objective]);
    hi = std::max(hi, eval.objectives[axis_objective]);
  }
  ANADEX_REQUIRE(hi > lo,
                 "objective " + std::to_string(axis_objective) +
                     " never varied over the sample; cannot partition along it");
  const double pad = (hi - lo) * padding;
  return {lo - pad, hi + pad};
}

}  // namespace anadex::sacga
