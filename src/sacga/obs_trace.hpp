// SACGA-family telemetry: the per-generation partition/annealing state the
// paper plots — partition occupancy and feasibility along the load axis,
// the annealing temperature T_A, the participation-probability curve
// prob(i) = 1 - exp(-alpha / (c_i * T_A)) (paper Fig. 4), and MESACGA's
// phase markers. All pure observation; see docs/observability.md.
#pragma once

#include <cstddef>

#include "obs/event_sink.hpp"
#include "sacga/partitioned_evolver.hpp"
#include "sacga/schedule.hpp"

namespace anadex::sacga {

/// Records the "sacga" event for one generation of LocalOnly / SACGA /
/// MESACGA: partition occupancy + per-partition feasible counts, discarded
/// partition count, and — when `schedule` is non-null (phase II) — T_A at
/// `schedule_offset` plus prob(i) samples for i = 1..n. `phase` is 0 during
/// phase I / pure-local runs and the 1-based phase index afterwards. No-op
/// unless `sink` is enabled at TraceLevel::Gen.
void trace_sacga_generation(obs::EventSink* sink, const PartitionedEvolver& evolver,
                            std::size_t generation, std::size_t phase,
                            const AnnealingSchedule* schedule,
                            std::size_t schedule_offset);

/// Records a MESACGA "phase_start" / "phase_end" marker (gen level).
void trace_phase_marker(obs::EventSink* sink, std::string_view name, std::size_t phase,
                        std::size_t partitions, std::size_t generation,
                        std::size_t front_size);

}  // namespace anadex::sacga
