// MESACGA — Multi-phase Expanding-partitions SACGA (paper §4.5).
//
// Runs SACGA's phase-II machinery repeatedly with a shrinking partition
// count (default 20, 13, 8, 5, 3, 2, 1), each phase `span` generations with
// its own freshly-started annealing schedule. Local Pareto fronts "grow"
// and merge until the final single-partition phase is pure global
// competition. A pure-local phase I (with the first phase's partitions)
// precedes everything, as in SACGA.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/evolver_common.hpp"
#include "moga/nsga2.hpp"
#include "moga/problem.hpp"
#include "sacga/sacga.hpp"

namespace anadex::sacga {

struct PhaseSnapshot;

/// Resumable state of a MESACGA run. The engine snapshot pins the active
/// phase's partitioner (EvolverSnapshot::partitions); the current phase and
/// the offset within it are derived from the generation counter, gen_t and
/// the (deterministic) per-phase span, so they are not stored. Completed
/// phase snapshots ride along so the final result still reports every
/// phase.
struct MesacgaState {
  EvolverSnapshot evolver;
  bool phase1_done = false;
  std::size_t phase1_generations = 0;
  std::vector<PhaseSnapshot> phases;
};

/// Configuration of a MESACGA run. Seed, evaluation threads and the
/// checkpoint/resume hooks live in the EvolverCommon base.
struct MesacgaParams : engine::EvolverCommon<MesacgaState> {
  std::size_t population_size = 100;
  /// Partition count per phase; must be non-increasing and end with >= 1.
  std::vector<std::size_t> partition_schedule{20, 13, 8, 5, 3, 2, 1};
  std::size_t axis_objective = 1;
  double axis_lo = 0.0;
  double axis_hi = 1.0;
  std::size_t phase1_max_generations = 200;
  std::size_t span = 100;  ///< generations per phase (paper Fig 10: 50/100/150)
  /// When non-zero, the TOTAL generation budget: after phase I uses gen_t
  /// generations, each phase runs (total_budget - gen_t) / #phases
  /// generations (at least 1) instead of `span`.
  std::size_t total_budget = 0;
  /// Annealing-temperature handling across phases. The paper describes
  /// MESACGA as "a SACGA running in multiple phases where the number of
  /// partitions is reduced ... at the end of each phase", which we read as
  /// ONE annealing schedule cooling over the whole multi-phase run while
  /// the partitioning coarsens (continuous_annealing = true, the default).
  /// Setting false restarts the temperature at T_init in every phase — the
  /// alternative reading, kept for the schedule ablation bench.
  bool continuous_annealing = true;
  std::size_t n_desired = 5;
  double alpha = 1.0;
  double t_init = 100.0;
  ScheduleShape shape;
  moga::VariationParams variation;
};

/// Snapshot taken at the end of each MESACGA phase (used for paper Fig 10).
struct PhaseSnapshot {
  std::size_t phase = 0;       ///< 1-based phase index
  std::size_t partitions = 0;
  std::size_t generation = 0;  ///< cumulative generations at snapshot time
  moga::Population front;      ///< global front of the population at phase end
};

struct MesacgaResult {
  moga::Population population;
  moga::Population front;
  std::vector<PhaseSnapshot> phases;
  std::size_t evaluations = 0;
  std::size_t generations_run = 0;
  std::size_t phase1_generations = 0;
  engine::EvalStats eval_stats;   ///< requested/distinct/cache-hit accounting
  bool interrupted = false;       ///< stop token ended the run early (snapshotted)
};

/// Runs MESACGA. Deterministic for a fixed seed.
MesacgaResult run_mesacga(const moga::Problem& problem, const MesacgaParams& params,
                          const moga::GenerationCallback& on_generation = {});

}  // namespace anadex::sacga
