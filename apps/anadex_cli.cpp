// anadex — command-line front-end to the design-space exploration library.
//
// Subcommands:
//   anadex specs
//       List the 20 graded circuit specifications.
//   anadex explore [--algo tpg|localonly|sacga|mesacga|island|wsum|spea2]
//                  [--spec 1..20|chosen] [--generations N] [--population N]
//                  [--partitions M] [--seed S] [--threads T] [--eval-cache N]
//                  [--batch-eval scalar|simd|auto] [--csv FILE]
//                  [--history] [--checkpoint FILE] [--checkpoint-every N]
//                  [--checkpoint-keep N] [--resume [auto]]
//                  [--eval-deadline S]
//                  [--trace FILE] [--trace-level off|gen|eval]
//       Run one design-space exploration and print the Pareto surface.
//       --threads T evaluates each generation's offspring on T worker
//       threads (0 = one per hardware thread); results are bit-identical
//       for every thread count. --eval-cache N memoizes up to N distinct
//       genotype evaluations (0 = off, the default); like --threads it is a
//       pure execution knob — results are bit-identical on or off
//       (docs/performance.md). --batch-eval simd maps evaluation batches
//       onto the SoA SIMD kernels (auto = lanes when the batch fills a
//       group); a third pure execution knob — the lane path is bit-exact
//       against the scalar oracle, so fronts, traces and checkpoints are
//       byte-identical in every mode. With --checkpoint, the run state is
//       snapshotted every N generations (keeping the last --checkpoint-keep
//       rotated slots) so an interrupted exploration can continue with
//       --resume (strict: the file must exist and verify) or --resume auto
//       (crash recovery: scan the rotated chain for the newest slot that
//       checksum-verifies, or start fresh) — also across different
//       --threads values. SIGINT/SIGTERM stop the run gracefully at the
//       next generation barrier (snapshot + exit 130); a second signal
//       aborts immediately. --eval-deadline S arms a watchdog that cancels
//       evaluation batches stuck longer than S seconds
//       (docs/robustness.md). --trace streams run telemetry as JSONL
//       (docs/observability.md); gen level records per-generation metrics,
//       eval level adds batch evaluation timing. Tracing never changes
//       results. --shards N (island algorithm) forks N worker processes
//       (or threads with --shard-mode thread) that exchange migrants at
//       deterministic epoch barriers through --shard-dir and merge into
//       the SAME front and checkpoint bytes as --shards 1; crashed
//       workers are relaunched and resume from their own checkpoint
//       chains (docs/sharding.md).
//   anadex shard-worker --dir DIR --shard K --shards N ... (internal)
//       One worker of a sharded exploration; spawned by the coordinator.
//   anadex evaluate --genes g1,...,g15 [--spec ...]
//       Datasheet of a single design vector (SI units).
//   anadex simulate [--order 1..4] [--osr X] [--amplitude A] [--samples N]
//       Behavioral sigma-delta simulation with ideal integrators.
//   anadex compare [--spec ...] [--generations N] [--seed S]
//       All algorithms head-to-head on one specification.
//   anadex serve --spool DIR [--threads T] [--eval-cache N] [--slice N]
//                [--batch-eval scalar|simd|auto] [--poll-ms M] [--drain]
//                [--trace-level off|gen|eval]
//       Multi-job exploration daemon (docs/serve.md). Watches DIR for
//       one-line JSON job requests (*.job), admits them as expt::Jobs and
//       round-robins generation slices over ONE shared evaluation engine
//       (--threads workers, --eval-cache shared dedup capacity). Each
//       job's front and checkpoints are byte-identical to a solo
//       `anadex explore` of the same settings. Per-job results land in
//       DIR/<id>.result.json (+ .front.csv, .trace.jsonl); service stats
//       in DIR/serve_stats.json. SIGINT snapshots every running job at
//       its generation barrier and exits 130; a restarted daemon resumes
//       them. --drain exits when the spool is empty (CI one-shot mode).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "common/args.hpp"
#include "common/check.hpp"
#include "engine/eval_engine.hpp"
#include "expt/figures.hpp"
#include "expt/job.hpp"
#include "expt/runner.hpp"
#include "expt/settings_registry.hpp"
#include "obs/event_sink.hpp"
#include "obs/jsonl_writer.hpp"
#include "obs/stats_snapshot.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"
#include "robust/shutdown.hpp"
#include "serve/job_request.hpp"
#include "serve/scheduler.hpp"
#include "serve/spool.hpp"
#include "shard/coordinator.hpp"
#include "sysdes/modulator_sim.hpp"

namespace {

using namespace anadex;

int usage() {
  std::cout <<
      "usage: anadex <specs|knobs|explore|evaluate|simulate|compare|serve> [options]\n"
      "  specs                          list the 20 graded specifications\n"
      "  knobs                          print the settings registry: which\n"
      "                                 settings bind the resume digest and\n"
      "                                 which are free execution knobs\n"
      "  explore  --algo A --spec S --generations N [--population N]\n"
      "           [--partitions M] [--seed S] [--threads T] [--eval-cache N]\n"
      "           [--batch-eval scalar|simd|auto] [--csv FILE]\n"
      "           [--history] [--checkpoint FILE] [--checkpoint-every N]\n"
      "           [--checkpoint-keep N] [--resume [auto]] [--eval-deadline S]\n"
      "           [--trace FILE] [--trace-level off|gen|eval]\n"
      "           [--islands N] [--migration-interval N] [--shards N]\n"
      "           [--shard-dir DIR] [--shard-mode process|thread]\n"
      "           (--threads: evaluation workers; 0 = hardware count;\n"
      "            results are identical for every thread count;\n"
      "            --eval-cache: dedup-cache capacity, 0 = off; results\n"
      "            are identical with the cache on or off;\n"
      "            --batch-eval: SIMD lane mapping for batch evaluation\n"
      "            (simd = SoA kernels, auto = when the batch fills a\n"
      "            group); bit-identical results in every mode;\n"
      "            --resume auto: recover from the newest verifiable\n"
      "            checkpoint slot, or start fresh; Ctrl-C snapshots and\n"
      "            exits 130, see docs/robustness.md;\n"
      "            --eval-deadline: per-batch watchdog deadline in seconds;\n"
      "            --trace: JSONL run telemetry, see docs/observability.md;\n"
      "            --shards N: run the island algorithm across N worker\n"
      "            shards (processes, or threads with --shard-mode thread)\n"
      "            exchanging migrants through --shard-dir; the merged\n"
      "            front and checkpoint are byte-identical to --shards 1,\n"
      "            and crashed workers restart from their own checkpoints\n"
      "            — see docs/sharding.md)\n"
      "  evaluate --genes g1,...,g15 [--spec S]\n"
      "  simulate [--order 1..4] [--osr X] [--amplitude A] [--samples N]\n"
      "  compare  [--spec S] [--generations N] [--seed S] [--threads T]\n"
      "  serve    --spool DIR [--threads T] [--eval-cache N] [--slice N]\n"
      "           [--batch-eval scalar|simd|auto] [--poll-ms M] [--drain]\n"
      "           [--trace-level off|gen|eval]\n"
      "           (multi-job daemon over one shared engine; drop one-line\n"
      "            JSON requests as DIR/*.job, results appear as\n"
      "            DIR/<id>.result.json — see docs/serve.md;\n"
      "            --slice: generations per round-robin turn;\n"
      "            --drain: exit once the spool is empty)\n";
  return 2;
}

scint::Spec spec_from_arg(const ArgParser& args) {
  const std::string which = args.get("spec", "chosen");
  if (which == "chosen") return problems::chosen_spec();
  const auto suite = problems::spec_suite();
  const std::size_t index = std::strtoul(which.c_str(), nullptr, 10);
  ANADEX_REQUIRE(index >= 1 && index <= suite.size(),
                 "--spec must be 'chosen' or 1.." + std::to_string(suite.size()));
  return suite[index - 1];
}

expt::Algo algo_from_arg(const ArgParser& args) {
  const std::string name = args.get("algo", "mesacga");
  if (name == "tpg" || name == "nsga2") return expt::Algo::TPG;
  if (name == "localonly") return expt::Algo::LocalOnly;
  if (name == "sacga") return expt::Algo::SACGA;
  if (name == "mesacga") return expt::Algo::MESACGA;
  if (name == "island") return expt::Algo::Island;
  if (name == "wsum") return expt::Algo::WeightedSum;
  if (name == "spea2") return expt::Algo::SPEA2;
  ANADEX_REQUIRE(false, "unknown --algo '" + name + "'");
  return expt::Algo::TPG;
}

void warn_unused(const ArgParser& args) {
  for (const auto& key : args.unused()) {
    std::cerr << "warning: unrecognized option --" << key << "\n";
  }
}

int cmd_specs() {
  std::cout << "  #  name           DR(dB)   OR(V)   ST(ns)   SE        robustness\n";
  const auto suite = problems::spec_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& s = suite[i];
    std::printf("  %-2zu %-14s %6.1f  %5.2f   %6.1f   %.1e   %.2f\n", i + 1,
                s.name.c_str(), s.dr_min_db, s.or_min, s.st_max * 1e9, s.se_max,
                s.robustness_min);
  }
  return 0;
}

int cmd_knobs() {
  // Printed from expt::kSettingsRegistry — the same table the digest
  // serializer, the perturbation property test and `anadex-lint
  // --digest-audit` consume — so this listing cannot drift from the code.
  // `digest` settings bind the checkpoint resume digest; `knob` settings
  // may change freely between a checkpoint and its resume; `meta` fields
  // live in CheckpointMeta; `seam` entries are runtime wiring.
  std::cout << "  field                  class   digest-tag   --flag\n";
  for (const auto& row : expt::kSettingsRegistry) {
    std::cout << "  " << std::left << std::setw(23) << row.field
              << std::setw(8) << expt::setting_kind_name(row.kind)
              << std::setw(13) << (row.digest_tag.empty() ? "-" : row.digest_tag)
              << (row.cli_flag.empty() ? "-" : row.cli_flag) << "\n";
  }
  return 0;
}

int cmd_explore(const ArgParser& args) {
  expt::RunSettings settings;
  settings.spec = spec_from_arg(args);
  settings.algo = algo_from_arg(args);
  settings.generations = static_cast<std::size_t>(args.get_int("generations", 800));
  settings.population = static_cast<std::size_t>(args.get_int("population", 100));
  settings.partitions = static_cast<std::size_t>(args.get_int("partitions", 8));
  settings.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  settings.islands = static_cast<std::size_t>(
      args.get_int("islands", static_cast<std::int64_t>(settings.islands)));
  settings.migration_interval = static_cast<std::size_t>(args.get_int(
      "migration-interval", static_cast<std::int64_t>(settings.migration_interval)));
  settings.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  settings.shard_dir = args.get("shard-dir", "");
  settings.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  settings.eval_cache = static_cast<std::size_t>(args.get_int("eval-cache", 0));
  settings.batch_eval = engine::parse_batch_eval(args.get("batch-eval", "scalar"));
  settings.record_history = args.get_flag("history");
  settings.checkpoint_path = args.get("checkpoint", "");
  settings.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 50));
  settings.checkpoint_keep =
      static_cast<std::size_t>(args.get_int("checkpoint-keep", 1));
  if (args.has("resume")) {
    // Bare `--resume` is strict (the file must exist and verify);
    // `--resume auto` recovers from the newest good rotated slot, or starts
    // fresh when none exists — the crash-recovery mode.
    const std::string mode = args.get("resume", "");
    if (mode.empty() || mode == "strict") {
      settings.resume = expt::ResumeMode::Strict;
    } else if (mode == "auto") {
      settings.resume = expt::ResumeMode::Auto;
    } else {
      ANADEX_REQUIRE(false, "--resume takes no value, 'strict' or 'auto'; got '" +
                                mode + "'");
    }
  }
  if (args.has("eval-deadline")) {
    settings.eval_deadline_s = args.get_double("eval-deadline", 0.0);
  }
  const std::string shard_mode = args.get("shard-mode", "process");
  ANADEX_REQUIRE(shard_mode == "process" || shard_mode == "thread",
                 "--shard-mode takes 'process' or 'thread'; got '" + shard_mode +
                     "'");
  if (settings.shards <= 1) {
    // Graceful shutdown: SIGINT/SIGTERM raise the process stop token; the
    // run snapshots at the next generation barrier and returns
    // `interrupted`. Sharded runs skip this: a stop token is process-local
    // and cannot span shards (interrupt and `--resume auto` instead).
    robust::install_shutdown_handlers();
    settings.stop = &robust::shutdown_token();
  }
  settings.trace_path = args.get("trace", "");
  settings.trace_level = obs::trace_level_from_string(args.get("trace-level", "gen"));
  const std::string csv_path = args.get("csv", "");
  warn_unused(args);
  expt::validate_run_settings(settings);

  std::cout << "exploring spec '" << settings.spec.name << "' with "
            << expt::algo_name(settings.algo) << " (" << settings.generations
            << " generations, population " << settings.population;
  if (settings.shards > 1) {
    std::cout << ", " << settings.shards << " " << shard_mode << " shards";
  }
  std::cout << ")\n";
  expt::RunOutcome outcome;
  if (settings.shards > 1) {
    shard::ShardOptions options;
    options.mode = shard_mode == "thread" ? shard::LaunchMode::Threads
                                          : shard::LaunchMode::Processes;
    options.spec_arg = args.get("spec", "chosen");
    outcome = shard::run_sharded(settings, options);
  } else {
    // One exploration == one Job run to completion; `anadex serve` runs the
    // same Jobs preemptively, many at a time.
    expt::Job job = expt::Job::from_settings(settings);
    outcome = job.run();
  }

  if (outcome.resumed_from_generation > 0) {
    std::cout << "resumed from '" << outcome.resumed_from_path
              << "' at generation " << outcome.resumed_from_generation << "\n";
  }
  expt::print_fronts(std::cout, {{expt::algo_name(settings.algo), outcome.front}});
  expt::print_outcome_summary(std::cout, expt::algo_name(settings.algo), outcome);
  if (outcome.faults.any()) {
    std::cout << "evaluation faults: " << outcome.faults.summary() << "\n";
  }
  if (settings.record_history) {
    std::cout << "metric trajectory (generation, front_area):\n";
    for (const auto& point : outcome.history) {
      std::cout << "  " << point.generation << "  " << point.front_area << "\n";
    }
  }
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    ANADEX_REQUIRE(file.good(), "cannot open '" + csv_path + "' for writing");
    expt::front_series("front", outcome.front).write_csv(file);
    std::cout << "front written to " << csv_path << "\n";
  }
  if (!settings.trace_path.empty() && settings.trace_level != obs::TraceLevel::Off) {
    std::cout << "trace written to " << settings.trace_path << " (level "
              << obs::to_string(settings.trace_level) << ")\n";
  }
  if (outcome.interrupted) {
    std::cout << "interrupted at generation " << outcome.generations;
    if (!settings.checkpoint_path.empty()) {
      std::cout << " (state saved; continue with --resume auto)";
    }
    std::cout << "\n";
    return 130;  // 128 + SIGINT, the conventional interrupted-exit status
  }
  return 0;
}

// Internal subcommand: one forked worker of `explore --shards N --shard-mode
// process`. The coordinator spawns it with the exact flag set below
// (src/shard/coordinator.cpp worker_argv); every flag feeds either the run
// digest or an execution knob, so a relaunched worker reproduces its shard's
// byte stream. Exit 0 only after the shard's final checkpoint is renamed
// into place — the supervisor treats anything else as a crash and relaunches
// within the restart budget.
int cmd_shard_worker(const ArgParser& args) {
  ANADEX_REQUIRE(args.has("dir") && args.has("shard") && args.has("shards"),
                 "shard-worker needs --dir DIR --shard K --shards N");
  expt::RunSettings settings;
  settings.spec = spec_from_arg(args);
  settings.algo = expt::Algo::Island;
  settings.generations = static_cast<std::size_t>(args.get_int("generations", 800));
  settings.population = static_cast<std::size_t>(args.get_int("population", 100));
  settings.partitions = static_cast<std::size_t>(args.get_int("partitions", 8));
  settings.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  settings.islands = static_cast<std::size_t>(
      args.get_int("islands", static_cast<std::int64_t>(settings.islands)));
  settings.migration_interval = static_cast<std::size_t>(args.get_int(
      "migration-interval", static_cast<std::int64_t>(settings.migration_interval)));
  settings.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  settings.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  settings.eval_cache = static_cast<std::size_t>(args.get_int("eval-cache", 0));
  settings.batch_eval = engine::parse_batch_eval(args.get("batch-eval", "scalar"));
  settings.checkpoint_every =
      static_cast<std::size_t>(args.get_int("checkpoint-every", 50));
  settings.checkpoint_keep =
      static_cast<std::size_t>(args.get_int("checkpoint-keep", 1));
  if (args.has("eval-deadline")) {
    settings.eval_deadline_s = args.get_double("eval-deadline", 0.0);
  }

  shard::WorkerContext ctx;
  ctx.topology =
      shard::Topology::make(settings.islands, settings.shards, settings.seed);
  ctx.shard = static_cast<std::size_t>(args.get_int("shard", 0));
  ctx.dir = std::filesystem::path(args.get("dir", ""));
  ctx.settings = std::move(settings);
  warn_unused(args);

  const problems::IntegratorProblem problem(ctx.settings.spec);
  shard::run_shard_worker(problem, ctx);
  return 0;
}

int cmd_evaluate(const ArgParser& args) {
  const std::string genes_arg = args.get("genes", "");
  ANADEX_REQUIRE(!genes_arg.empty(), "evaluate needs --genes g1,...,g15");
  std::vector<double> genes;
  std::stringstream stream(genes_arg);
  std::string token;
  while (std::getline(stream, token, ',')) genes.push_back(std::strtod(token.c_str(), nullptr));
  ANADEX_REQUIRE(genes.size() == problems::kNumGenes,
                 "need exactly 15 comma-separated gene values (SI units)");

  const problems::IntegratorProblem problem(spec_from_arg(args));
  warn_unused(args);
  const auto design = problems::IntegratorProblem::decode(genes);
  const auto perf = problem.typical_performance(design);
  // One-off evaluations go through the engine's single-item path too, so
  // the engine is the library's only evaluation entry point.
  const engine::EvalEngine eval_engine(problem);
  const auto eval = eval_engine.evaluate(genes);

  std::printf("power            %.4f mW\n", perf.power * 1e3);
  std::printf("load capacitance %.3f pF\n", design.cload * 1e12);
  std::printf("dynamic range    %.1f dB\n", perf.dynamic_range_db);
  std::printf("output range     %.2f V\n", perf.output_range);
  std::printf("settling time    %.1f ns\n", perf.settling_time * 1e9);
  std::printf("settling error   %.2e\n", perf.settling_error);
  std::printf("phase margin     %.1f deg\n", perf.phase_margin_deg);
  std::printf("unity gain       %.1f MHz (beta %.2f)\n", perf.unity_gain_hz / 1e6,
              perf.feedback_factor);
  std::printf("area             %.4f mm^2\n", perf.area * 1e6);
  std::printf("robustness       %.2f\n", problem.design_robustness(design));
  std::printf("feasible         %s (total violation %.3f)\n",
              eval.feasible() ? "YES" : "no", eval.total_violation());
  return eval.feasible() ? 0 : 1;
}

int cmd_simulate(const ArgParser& args) {
  const int order = static_cast<int>(args.get_int("order", 4));
  sysdes::SimulationConfig config;
  config.osr = args.get_double("osr", 128.0);
  config.input_amplitude = args.get_double("amplitude", 0.5);
  config.samples = static_cast<std::size_t>(args.get_int("samples", 1 << 14));
  warn_unused(args);

  const auto result = sysdes::simulate_modulator(sysdes::ideal_stages(order), config);
  sysdes::ModulatorSpec spec;
  spec.order = order;
  spec.osr = config.osr;
  std::printf("order-%d modulator at OSR %.0f:\n", order, config.osr);
  std::printf("  simulated SNDR   %.1f dB (%s)\n", result.sndr_db,
              result.stable ? "stable" : "UNSTABLE");
  std::printf("  ideal formula    %.1f dB\n", sysdes::ideal_sqnr_db(spec));
  std::printf("  max state        %.2f x reference\n", result.max_state);
  return result.stable ? 0 : 1;
}

int cmd_compare(const ArgParser& args) {
  expt::RunSettings settings;
  settings.spec = spec_from_arg(args);
  settings.generations = static_cast<std::size_t>(args.get_int("generations", 800));
  settings.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  settings.threads = static_cast<std::size_t>(args.get_int("threads", 1));
  settings.batch_eval = engine::parse_batch_eval(args.get("batch-eval", "scalar"));
  warn_unused(args);

  const problems::IntegratorProblem problem(settings.spec);
  std::cout << "spec '" << settings.spec.name << "', " << settings.generations
            << " generations:\n";
  for (auto algo : {expt::Algo::TPG, expt::Algo::SPEA2, expt::Algo::LocalOnly,
                    expt::Algo::SACGA, expt::Algo::MESACGA, expt::Algo::Island,
                    expt::Algo::WeightedSum}) {
    settings.algo = algo;
    expt::Job job(problem, settings);
    const auto outcome = job.run();
    expt::print_outcome_summary(std::cout, expt::algo_name(algo), outcome);
  }
  return 0;
}

// The spool daemon (docs/serve.md). Deterministic core: admission order is
// the lexicographic filename order of the request files, slicing is pure
// generation counting, and every job's evaluations flow through one shared
// hub engine with a context-partitioned dedup cache — so for a fixed set
// of requests the per-job fronts, checkpoints and gen-level traces are
// byte-identical to solo `anadex explore` runs of the same settings. Only
// the polling sleep and stats timestamps touch the clock, and neither
// feeds back into results.
int cmd_serve(const ArgParser& args) {
  namespace fs = std::filesystem;
  const std::string spool_arg = args.get("spool", "");
  ANADEX_REQUIRE(!spool_arg.empty(), "serve needs --spool DIR");
  const fs::path spool(spool_arg);
  fs::create_directories(spool);
  const std::size_t threads = static_cast<std::size_t>(args.get_int("threads", 0));
  const std::size_t cache_capacity =
      static_cast<std::size_t>(args.get_int("eval-cache", 1 << 16));
  const std::size_t slice = static_cast<std::size_t>(args.get_int("slice", 25));
  const engine::BatchEval batch_eval =
      engine::parse_batch_eval(args.get("batch-eval", "scalar"));
  const long long poll_ms = args.get_int("poll-ms", 200);
  const bool drain = args.get_flag("drain");
  const auto trace_level =
      obs::trace_level_from_string(args.get("trace-level", "gen"));
  warn_unused(args);
  ANADEX_REQUIRE(poll_ms >= 0, "--poll-ms must be >= 0");

  // SIGINT/SIGTERM raise the shutdown token: the current slice stops at its
  // next generation barrier, every running job snapshots, and a restarted
  // daemon resumes them all (ResumeMode::Auto at admission).
  robust::install_shutdown_handlers();
  const CancelToken& stop = robust::shutdown_token();

  // Service telemetry: one appended header..trailer segment per daemon
  // lifetime (scripts/check_trace.py --segments).
  std::optional<obs::JsonlTraceWriter> service_trace;
  if (trace_level != obs::TraceLevel::Off) {
    service_trace.emplace((spool / "serve_trace.jsonl").string(), trace_level,
                          /*append=*/true);
  }

  engine::EvalEngine hub(threads, nullptr, cache_capacity);
  // The hub owns the batch→lane mode for every job it serves (per-run
  // batch_eval is inert under a shared handle, like threads/eval_cache).
  // Pure execution knob: job results are bit-identical in every mode.
  hub.set_batch_eval(batch_eval);
  serve::SchedulerConfig config;
  config.slice_generations = slice;
  config.hub = &hub;
  config.stop = &stop;
  config.sink = service_trace ? &*service_trace : nullptr;
  serve::JobScheduler scheduler(config);

  std::vector<bool> reported;      // slot -> result file written
  std::set<std::string> admitted;  // ids, to refuse duplicates

  const auto write_stats = [&] {
    obs::StatsSnapshot snap;
    const serve::ServiceStats& st = scheduler.stats();
    snap.set("schema", std::string_view("anadex-serve-stats/v1"));
    snap.set("admitted", st.admitted);
    snap.set("rejected", st.rejected);
    snap.set("slices", st.slices);
    snap.set("preemptions", st.preemptions);
    snap.set("done", st.done);
    snap.set("failed", st.failed);
    snap.set("cancelled", st.cancelled);
    const std::uint64_t terminal = st.done + st.failed + st.cancelled;
    snap.set("active", st.admitted - terminal);
    snap.set("engine_threads", std::uint64_t{hub.threads()});
    snap.set("engine_busy_batches", hub.busy_batches());
    snap.set("engine_busy_seconds", hub.busy_seconds());
    const engine::EvalStats& es = hub.stats();
    snap.set("eval_requested", es.requested);
    snap.set("eval_evaluated", es.evaluated);
    snap.set("eval_cache_hits", es.cache_hits());
    snap.set("cache_hit_rate",
             es.requested == 0
                 ? 0.0
                 : static_cast<double>(es.cache_hits()) /
                       static_cast<double>(es.requested));
    snap.write(spool / "serve_stats.json");
  };

  // `fallback_id` is the request filename stem — the reject-report id when
  // parsing dies before the request's own id is known. In recovery mode
  // (claimed by a previous daemon run) already-reported requests are
  // skipped silently so restarts stay idempotent.
  const auto admit_claimed = [&](const fs::path& claimed,
                                 std::string fallback_id, bool recovery) {
    std::string id = std::move(fallback_id);
    try {
      serve::JobRequest parsed =
          serve::parse_job_request(serve::read_request_line(claimed));
      id = parsed.id;
      if (recovery && fs::exists(serve::result_path(spool, id))) return;
      ANADEX_REQUIRE(admitted.find(id) == admitted.end(),
                     "job request: duplicate id \"" + id + "\"");
      expt::RunSettings settings = std::move(parsed.settings);
      // Service-owned execution knobs. The hub's pool and cache serve
      // every job (per-run threads/eval_cache are inert under a shared
      // handle, which scheduler.admit stamps in).
      settings.threads = 1;
      settings.eval_cache = 0;
      settings.stop = &stop;
      settings.trace_path = (spool / (id + ".trace.jsonl")).string();
      settings.trace_level = trace_level;
      if (settings.algo != expt::Algo::WeightedSum) {
        // Preemption + daemon-restart recovery ride the checkpoint chain.
        // WeightedSum does not checkpoint; it runs whole in one slice.
        settings.checkpoint_path = (spool / (id + ".ckpt")).string();
        settings.checkpoint_keep = 2;
        settings.resume = expt::ResumeMode::Auto;
      }
      scheduler.admit(id, std::move(settings));
      admitted.insert(id);
      reported.push_back(false);
      std::cout << (recovery ? "recovered job '" : "admitted job '") << id
                << "'\n";
    } catch (const std::exception& e) {
      if (recovery && serve::valid_job_id(id) &&
          fs::exists(serve::result_path(spool, id))) {
        return;  // this rejection was already reported before the restart
      }
      scheduler.note_rejected();
      std::cerr << "rejected request " << claimed.filename().string() << ": "
                << e.what() << "\n";
      if (serve::valid_job_id(id)) {
        serve::JobResult result;
        result.id = id;
        result.state = "rejected";
        result.error = e.what();
        serve::write_result_file(spool, result);
      }
    }
  };

  const auto admit_new = [&] {
    for (const fs::path& request : serve::pending_requests(spool)) {
      if (stop.requested()) return;
      const fs::path claimed = serve::claim_request(request);
      admit_claimed(claimed, request.stem().string(), /*recovery=*/false);
    }
  };

  const auto report_terminal = [&] {
    for (std::size_t slot = 0; slot < scheduler.size(); ++slot) {
      if (reported[slot]) continue;
      const expt::Job& job = scheduler.job(slot);
      const expt::JobState state = job.state();
      if (state != expt::JobState::Done && state != expt::JobState::Failed &&
          state != expt::JobState::Cancelled) {
        continue;
      }
      serve::JobResult result;
      result.id = scheduler.id(slot);
      result.state = expt::job_state_name(state);
      result.error = job.error();
      result.has_outcome = state == expt::JobState::Done;
      if (result.has_outcome) result.outcome = job.outcome();
      serve::write_result_file(spool, result);
      if (state == expt::JobState::Done) {
        // Same writer and format as `explore --csv`, so a serve front can
        // be diffed byte-for-byte against a solo run's.
        std::ofstream csv(spool / (result.id + ".front.csv"));
        ANADEX_REQUIRE(csv.good(), "serve: cannot write front csv for " + result.id);
        expt::front_series("front", job.outcome().front).write_csv(csv);
      }
      reported[slot] = true;
      std::cout << "job '" << result.id << "' " << result.state << " ("
                << job.generations_done() << " generations, "
                << job.slices_run() << " slices)\n";
    }
  };

  std::cout << "serving spool " << spool.string() << " (engine threads "
            << hub.threads() << ", shared cache " << cache_capacity
            << ", slice " << slice << " generations"
            << (drain ? ", drain" : "") << ")\n";
  // Startup recovery: requests a previous daemon claimed but never
  // reported are re-admitted first (filename order, so contexts and the
  // schedule replay deterministically); their checkpoint chains resume
  // them via ResumeMode::Auto.
  for (const fs::path& taken : serve::taken_requests(spool)) {
    // "<name>.job.taken" -> "<name>".
    admit_claimed(taken, taken.stem().stem().string(), /*recovery=*/true);
  }
  for (;;) {
    if (stop.requested()) break;
    admit_new();
    const bool progressed = scheduler.step();
    report_terminal();
    write_stats();
    if (!progressed) {
      if (drain || stop.requested()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  report_terminal();
  write_stats();

  if (stop.requested()) {
    std::cout << "shutdown: snapshotted jobs will resume on the next serve\n";
    return 130;  // same convention as an interrupted explore
  }
  for (std::size_t slot = 0; slot < scheduler.size(); ++slot) {
    if (scheduler.job(slot).state() == expt::JobState::Failed) return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.positionals().empty()) return usage();
    const std::string command = args.positionals().front();
    if (command == "specs") return cmd_specs();
    if (command == "knobs") return cmd_knobs();
    if (command == "explore") return cmd_explore(args);
    if (command == "shard-worker") return cmd_shard_worker(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "serve") return cmd_serve(args);
    std::cerr << "unknown command '" << command << "'\n";
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
