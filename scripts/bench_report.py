#!/usr/bin/env python3
"""Fold the BENCH_*.json files the benchmark binaries emit into one
schema-stable summary (anadex-bench-summary/v1) and optionally validate
each input against the keys CI depends on.

Usage:
    bench_report.py [--dir DIR] [--out FILE] [--validate]

  --dir DIR    directory holding BENCH_*.json files (default: cwd)
  --out FILE   write the summary JSON here (default: stdout)
  --validate   exit nonzero when a BENCH file is missing required keys,
               is unparseable, or reports a failed self-check

Only the standard library is used, so the script runs on any CI image.
"""

import argparse
import json
import sys
from pathlib import Path

SUMMARY_SCHEMA = "anadex-bench-summary/v1"

# Keys every BENCH_*.json must carry, plus per-bench keys CI inspects.
REQUIRED_COMMON = ["bench"]
REQUIRED_BY_BENCH = {
    "eval_throughput": [
        "batch_size",
        "repeats",
        "hardware_threads",
        "results",
        "duplicate_rates",
        "cache_ok",
        "robust_overhead_ratio",
        "robust_ok",
        "simd_speedup",
        "simd_lane_groups",
        "simd_bit_identical",
        "simd_gate_enforced",
        "simd_ok",
        "shard_workers",
        "shard_solo_seconds",
        "shard_seconds",
        "shard_speedup",
        "shard_bit_identical",
        "shard_gate_enforced",
        "shard_ok",
    ],
    "kernels": ["results", "sweep_speedup_at_512", "sweep_ok"],
    "obs_overhead": [
        "generations",
        "repeats",
        "budget_pct",
        "gen_overhead_pct",
        "within_budget",
        "results_identical",
        "results",
    ],
}

# Per-bench predicates that must hold for --validate to pass: a bench that
# ran but failed its own acceptance check fails the pipeline even though
# its JSON is well-formed.
SELF_CHECKS = {
    "eval_throughput": lambda d: all(
        row.get("bit_identical") is True
        for row in d.get("results", []) + d.get("duplicate_rates", [])
    )
    and d.get("cache_ok") is True
    and d.get("robust_ok") is True
    # The SIMD lane path must be bit-exact against the scalar oracle on
    # every build and must have actually engaged (lane_groups > 0); the
    # >= 4x speedup itself is folded into simd_ok by the binary when the
    # run was gated (--simd-gate, the CI native-ISA bench job).
    and d.get("simd_bit_identical") is True
    and d.get("simd_lane_groups", 0) > 0
    and d.get("simd_ok") is True
    # Sharded scale-out must reproduce the 1-shard bytes on every run; the
    # >= 2x speedup itself is folded into shard_ok by the binary when the
    # run was gated (--shard-gate, the CI bench job).
    and d.get("shard_bit_identical") is True
    and d.get("shard_ok") is True,
    "kernels": lambda d: d.get("sweep_ok") is True,
    "obs_overhead": lambda d: d.get("within_budget") is True
    and d.get("results_identical") is True,
}


def validate_one(path: Path, data: dict) -> list:
    """Returns a list of problem strings (empty = valid)."""
    problems = []
    for key in REQUIRED_COMMON:
        if key not in data:
            problems.append(f"{path.name}: missing required key '{key}'")
    bench = data.get("bench")
    for key in REQUIRED_BY_BENCH.get(bench, []):
        if key not in data:
            problems.append(f"{path.name}: missing required key '{key}'")
    check = SELF_CHECKS.get(bench)
    if check is not None and not problems and not check(data):
        problems.append(f"{path.name}: self-check failed (see its contents)")
    return problems


def headline(data: dict):
    """One scalar per bench for the summary table; None when unknown."""
    bench = data.get("bench")
    if bench == "eval_throughput":
        rows = data.get("results", [])
        best = max((r.get("evals_per_sec", 0.0) for r in rows), default=None)
        return "peak_evals_per_sec", best
    if bench == "kernels":
        return "sweep_speedup_at_512", data.get("sweep_speedup_at_512")
    if bench == "obs_overhead":
        return "gen_overhead_pct", data.get("gen_overhead_pct")
    return None, None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default=".", help="directory with BENCH_*.json files")
    parser.add_argument("--out", default="", help="summary output path (default stdout)")
    parser.add_argument("--validate", action="store_true", help="fail on invalid input")
    args = parser.parse_args()

    bench_dir = Path(args.dir)
    paths = sorted(bench_dir.glob("BENCH_*.json"))
    if not paths:
        print(f"error: no BENCH_*.json files in {bench_dir}", file=sys.stderr)
        return 1

    problems = []
    entries = []
    for path in paths:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            problems.append(f"{path.name}: unreadable ({err})")
            continue
        if not isinstance(data, dict):
            problems.append(f"{path.name}: top level is not a JSON object")
            continue
        problems.extend(validate_one(path, data))
        key, value = headline(data)
        entry = {
            "bench": data.get("bench", path.stem.removeprefix("BENCH_")),
            "file": path.name,
            "valid": not any(p.startswith(path.name) for p in problems),
        }
        if key is not None:
            entry["headline"] = {key: value}
        entries.append(entry)

    summary = {
        "schema": SUMMARY_SCHEMA,
        "bench_count": len(entries),
        "all_valid": not problems,
        "problems": problems,
        "benches": entries,
    }
    text = json.dumps(summary, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"summary written to {args.out}")
    else:
        sys.stdout.write(text)

    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if (args.validate and problems) else 0


if __name__ == "__main__":
    sys.exit(main())
