#!/usr/bin/env python3
"""anadex-lint — determinism & contract static analysis for the anadex tree.

Every layer of this library (checkpoint/resume, the parallel EvalEngine,
JSONL tracing, the eval cache and the SoA ranking kernels) stakes its
correctness on two properties that ordinary compilers cannot see:

  * bit-exact determinism — a run is a pure function of (problem, params,
    seed, thread count is *not* in that tuple), so wall clocks, ambient
    randomness and hash-order iteration must never leak into results; and
  * canonical-order contracts — fronts ascend by population index, floats
    round-trip through the hex/shortest writers in common/textio, public
    headers are self-contained.

This linter enforces the source-level side of those contracts.  Rules:

  rule id            what it flags
  -----------------  ----------------------------------------------------
  raw-random         rand()/srand() — ambient C PRNG (use anadex::Rng)
  random-device      std::random_device — nondeterministic entropy source
  wall-clock         std::time/system_clock/gettimeofday/localtime/... —
                     wall-clock reads outside the telemetry layer
                     (src/obs/); the monotonic steady_clock is fine
  det-unordered      std::unordered_{map,set,multimap,multiset} in the
                     deterministic paths (src/engine, src/moga, src/sacga,
                     src/expt) — hash iteration order can leak into
                     fronts/traces; annotate with a justification
  unordered-iter     range-for iteration over a variable declared as an
                     unordered container in the same translation unit
  float-printf       %f/%e/%g-style float formatting in src/ outside
                     common/textio — printf floats do not round-trip;
                     use textio's shortest/hex writers
  pragma-once        public header without #pragma once before code
  include-hygiene    relative ("../") or bare quoted includes in src/
                     headers, and `using namespace` at header scope
  raw-assert         raw assert()/<cassert> — use ANADEX_REQUIRE (public
                     preconditions) or ANADEX_ASSERT (internal invariants)
                     so failures throw typed, testable exceptions
  process-control    exit()/_exit()/quick_exit()/abort()/signal()/raise()
                     in src/, apps/ or bench/ outside src/robust/shutdown*
                     — ad-hoc process teardown skips the graceful-shutdown
                     layer (snapshot at the generation barrier, exit 130)
                     and can truncate a checkpoint mid-write

Suppression: append `// anadex-lint: allow(<rule>[, <rule>...])` to the
offending line, or place the comment on its own line directly above.  A
suppression should carry a justification in the surrounding comment.

Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.

JSON mode (`--json [--output FILE]`) emits a machine-readable report with
schema id "anadex-lint/1" for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "anadex-lint/1"

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "apps", "bench", "tests"]
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
# Fixture files deliberately contain violations; they are linted only when
# named explicitly (the self-test does exactly that).
SKIPPED_DIR_PARTS = ("tests/lint/fixtures",)

# Directories whose iteration order / float text reaches checkpoints,
# fronts or traces.  Hash-order containers here need a justification.
# src/serve is included because the scheduler's admission order, slicing
# and result files are part of the byte-identical reproducibility contract
# (docs/serve.md).
# src/engine/simd is already inside src/engine, but the SoA lane kernels it
# dispatches to live in src/device and src/circuit (batch_mosfet.hpp,
# batch_opamp.*) — result paths that must obey the same determinism rules.
DETERMINISTIC_DIRS = ("src/engine", "src/engine/simd", "src/moga", "src/sacga",
                      "src/expt", "src/serve", "src/shard", "src/device",
                      "src/circuit")

ALLOW_RE = re.compile(r"anadex-lint:\s*allow\(([^)]*)\)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|/\*|\*|\*/)")

RULE_DOCS = {
    "raw-random": "rand()/srand() banned: seed-addressed anadex::Rng only",
    "random-device": "std::random_device banned: nondeterministic entropy",
    "wall-clock": "wall-clock read outside src/obs/ (steady_clock is fine)",
    "det-unordered": "unordered container in a deterministic path",
    "unordered-iter": "range-for over an unordered container",
    "float-printf": "%f-style float formatting outside common/textio",
    "pragma-once": "public header must open with #pragma once",
    "include-hygiene": "relative/bare include or using-namespace in header",
    "raw-assert": "raw assert(): use ANADEX_REQUIRE / ANADEX_ASSERT",
    "process-control": "raw exit/abort/signal outside src/robust/shutdown*",
}

RAW_RANDOM_RE = re.compile(r"(?<![\w.>])s?rand\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
WALL_CLOCK_RE = re.compile(
    r"std::time\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|\bsystem_clock\b"
    r"|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\b"
    r"|\blocaltime\b|\bgmtime\b|\bstrftime\b|\bmktime\b"
    r"|(?<![\w:.])clock\s*\(\s*\)"
)
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
# `std::unordered_map<K, V> name` / `... name;` / `... name{...}` — good
# enough for the single-line declarations this codebase writes.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{}]*>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*(\w+)\s*\)")
PRINTF_CALL_RE = re.compile(r"\b(?:printf|fprintf|sprintf|snprintf)\s*\(")
FLOAT_FMT_RE = re.compile(r'"[^"]*%[-+ #0-9.*]*(?:l|L)?[aefgAEFG][^"]*"')
RAW_ASSERT_RE = re.compile(r"(?<![\w.:])assert\s*\(")
# Process-teardown and signal-wiring calls. `::`-qualified forms still match
# (the lookbehind permits ':'); member calls (`sim.exit(...)`) do not.
PROCESS_CONTROL_RE = re.compile(
    r"(?<![\w.>])(?:_?exit|_Exit|quick_exit|abort|signal|raise)\s*\("
)
ASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]')
RELATIVE_INCLUDE_RE = re.compile(r'#\s*include\s*"(\.\.?/[^"]*)"')
BARE_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"/]+)"')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+\w")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
PREPROC_OR_CODE_RE = re.compile(r"\S")


def rel(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_dirs(relpath: str, prefixes) -> bool:
    return any(relpath == p or relpath.startswith(p + "/") for p in prefixes)


class Report:
    def __init__(self):
        self.violations = []
        self.suppressed = []
        self.files_scanned = 0

    def add(self, allowed: set, rule: str, path: str, line_no: int, line: str, message: str):
        entry = {
            "rule": rule,
            "path": path,
            "line": line_no,
            "message": message,
            "snippet": line.strip()[:160],
        }
        if rule in allowed or "*" in allowed:
            self.suppressed.append(entry)
        else:
            self.violations.append(entry)


def allowed_rules(lines, idx: int) -> set:
    """Rules suppressed for lines[idx]: same-line or previous-comment-line."""
    rules = set()
    m = ALLOW_RE.search(lines[idx])
    if m:
        rules.update(r.strip() for r in m.group(1).split(","))
    if idx > 0 and COMMENT_ONLY_RE.match(lines[idx - 1]):
        m = ALLOW_RE.search(lines[idx - 1])
        if m:
            rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def strip_line_comment(line: str) -> str:
    """Drops //-comments so commented-out code is not flagged."""
    in_string = False
    i = 0
    while i < len(line) - 1:
        c = line[i]
        if c == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif not in_string and c == "/" and line[i + 1] == "/":
            return line[:i]
        i += 1
    return line


def lint_file(path: Path, report: Report, pretend_prefix: str | None = None):
    relpath = rel(path)
    if pretend_prefix is not None:
        # Self-test hook: lint this file as if it lived at
        # <pretend_prefix>/<name>, so fixtures can exercise path-scoped
        # rules without living inside src/.
        relpath = f"{pretend_prefix.rstrip('/')}/{path.name}"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"anadex-lint: cannot read {relpath}: {err}", file=sys.stderr)
        sys.exit(2)
    lines = text.splitlines()
    report.files_scanned += 1

    is_header = path.suffix in {".hpp", ".hh", ".h"}
    in_src = in_dirs(relpath, ("src",))
    in_obs = in_dirs(relpath, ("src/obs",))
    in_det = in_dirs(relpath, DETERMINISTIC_DIRS)
    is_textio = relpath.startswith("src/common/textio")
    # Library/CLI/bench code must route teardown through the shutdown
    # module; tests are exempt (they legitimately raise signals at
    # themselves, and `signal` is a common DSP variable name there).
    in_process_scope = (in_dirs(relpath, ("src", "apps", "bench"))
                        and not relpath.startswith("src/robust/shutdown"))

    # Names declared as unordered containers in this file plus its paired
    # header (eval_cache.cpp iterating a member declared in eval_cache.hpp).
    unordered_names = set()
    scan_texts = [lines]
    if path.suffix == ".cpp":
        header = path.with_suffix(".hpp")
        if header.exists():
            scan_texts.append(header.read_text(encoding="utf-8").splitlines())
    for body in scan_texts:
        for raw in body:
            for m in UNORDERED_DECL_RE.finditer(strip_line_comment(raw)):
                unordered_names.add(m.group(1))

    pragma_seen = False
    pragma_checked = not is_header or not in_src
    in_block_comment = False

    for idx, raw in enumerate(lines):
        line_no = idx + 1
        allowed = allowed_rules(lines, idx)

        # Cheap block-comment tracking: skip fully commented lines.
        stripped = raw.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue

        code = strip_line_comment(raw)

        # --- pragma-once: must appear before the first real code line.
        if not pragma_checked:
            if PRAGMA_ONCE_RE.match(code):
                pragma_seen = True
                pragma_checked = True
            elif PREPROC_OR_CODE_RE.search(code) and not COMMENT_ONLY_RE.match(raw):
                report.add(allowed, "pragma-once", relpath, line_no, raw,
                           "public header must start with #pragma once "
                           "before any code or preprocessor line")
                pragma_checked = True

        if not PREPROC_OR_CODE_RE.search(code):
            continue

        # --- raw-random / random-device: everywhere except src/obs/.
        if not in_obs:
            if RAW_RANDOM_RE.search(code):
                report.add(allowed, "raw-random", relpath, line_no, raw,
                           "rand()/srand() is ambient, unseeded state; use the "
                           "seed-addressed anadex::Rng instead")
            if RANDOM_DEVICE_RE.search(code):
                report.add(allowed, "random-device", relpath, line_no, raw,
                           "std::random_device draws nondeterministic entropy; "
                           "runs must be pure functions of their seed")

        # --- wall-clock: telemetry (src/obs/) may timestamp, nothing else.
        if not in_obs and WALL_CLOCK_RE.search(code):
            report.add(allowed, "wall-clock", relpath, line_no, raw,
                       "wall-clock reads outside src/obs/ leak real time into "
                       "deterministic paths; use steady_clock for durations")

        # --- unordered containers in deterministic paths.
        if in_det:
            if UNORDERED_TYPE_RE.search(code) and not code.lstrip().startswith("#"):
                report.add(allowed, "det-unordered", relpath, line_no, raw,
                           "hash-container iteration order is unspecified and "
                           "can leak into fronts/traces; justify with an "
                           "anadex-lint: allow(det-unordered) annotation or "
                           "use an ordered container")
            m = RANGE_FOR_RE.search(code)
            if m and m.group(1) in unordered_names:
                report.add(allowed, "unordered-iter", relpath, line_no, raw,
                           f"range-for over unordered container '{m.group(1)}' "
                           "iterates in hash order; iterate a sorted index "
                           "instead")

        # --- float-printf: library code must use common/textio writers.
        if in_src and not is_textio:
            if PRINTF_CALL_RE.search(code) and FLOAT_FMT_RE.search(code):
                report.add(allowed, "float-printf", relpath, line_no, raw,
                           "%f-style float text does not round-trip; use "
                           "common/textio's shortest/hex writers")

        # --- include hygiene (headers in src/ must be relocatable).
        if is_header and in_src:
            m = RELATIVE_INCLUDE_RE.search(code)
            if m:
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           f'relative include "{m.group(1)}" breaks when the '
                           "header moves; include project-root-relative paths")
            m = BARE_INCLUDE_RE.search(code)
            if m:
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           f'bare include "{m.group(1)}" is ambiguous; use the '
                           'project-root-relative "dir/file.hpp" form')
            if USING_NAMESPACE_RE.match(code):
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           "using-namespace at header scope pollutes every "
                           "includer")

        # --- raw-assert: typed, throwing checks only.
        if RAW_ASSERT_RE.search(code) or ASSERT_INCLUDE_RE.search(code):
            report.add(allowed, "raw-assert", relpath, line_no, raw,
                       "raw assert() aborts and vanishes in NDEBUG; use "
                       "ANADEX_REQUIRE (precondition) or ANADEX_ASSERT "
                       "(invariant) from common/check.hpp")

        # --- process-control: teardown flows through the shutdown module.
        if in_process_scope and PROCESS_CONTROL_RE.search(code):
            report.add(allowed, "process-control", relpath, line_no, raw,
                       "raw exit/abort/signal bypasses the graceful-shutdown "
                       "layer (src/robust/shutdown.hpp) and can kill the "
                       "process mid-checkpoint; request the stop token or "
                       "return an exit code instead")

    if is_header and in_src and not pragma_seen and not pragma_checked:
        # Header with no code lines at all — still needs the guard.
        report.add(set(), "pragma-once", relpath, max(len(lines), 1),
                   lines[-1] if lines else "", "public header lacks #pragma once")


def collect(paths) -> list:
    files = []
    for arg in paths:
        p = Path(arg)
        if not p.is_absolute():
            p = REPO_ROOT / p
        if p.is_file():
            files.append(p)  # explicit files are always linted (fixtures)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix not in CXX_SUFFIXES or not f.is_file():
                    continue
                r = rel(f)
                if any(part in r for part in SKIPPED_DIR_PARTS):
                    continue
                files.append(f)
        else:
            print(f"anadex-lint: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="anadex_lint.py",
        description="Determinism & contract linter for the anadex tree.")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--json", action="store_true",
                        help="emit an anadex-lint/1 JSON report on stdout")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--pretend-path", metavar="PREFIX", default=None,
                        help="lint explicit files as if they lived under "
                             "PREFIX (self-test hook for path-scoped rules)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULE_DOCS.items():
            print(f"{rule:16} {doc}")
        return 0

    report = Report()
    for f in collect(args.paths or DEFAULT_PATHS):
        lint_file(f, report, pretend_prefix=args.pretend_path)

    payload = {
        "schema": SCHEMA,
        "files_scanned": report.files_scanned,
        "violation_count": len(report.violations),
        "suppressed_count": len(report.suppressed),
        "violations": report.violations,
        "suppressed": report.suppressed,
    }
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for v in report.violations:
            print(f"{v['path']}:{v['line']}: [{v['rule']}] {v['message']}")
            print(f"    {v['snippet']}")
        tail = (f"{report.files_scanned} files, {len(report.violations)} violation(s), "
                f"{len(report.suppressed)} suppressed")
        print(("FAIL: " if report.violations else "OK: ") + tail)
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
