#!/usr/bin/env python3
"""anadex-lint — determinism & contract static analysis for the anadex tree.

Every layer of this library (checkpoint/resume, the parallel EvalEngine,
JSONL tracing, the eval cache and the SoA ranking kernels) stakes its
correctness on two properties that ordinary compilers cannot see:

  * bit-exact determinism — a run is a pure function of (problem, params,
    seed, thread count is *not* in that tuple), so wall clocks, ambient
    randomness, environment reads and hash-order iteration must never leak
    into results; and
  * canonical-order contracts — fronts ascend by population index, floats
    round-trip through the hex/shortest writers in common/textio, public
    headers are self-contained, the layer DAG stays acyclic and every
    RunSettings field is classified digest-or-knob.

This linter enforces the source-level side of those contracts.  Rules:

  rule id             what it flags
  ------------------  ---------------------------------------------------
  raw-random          rand()/srand() — ambient C PRNG (use anadex::Rng)
  random-device       std::random_device — nondeterministic entropy source
  wall-clock          std::time/system_clock/gettimeofday/localtime/... —
                      wall-clock reads outside the telemetry layer
                      (src/obs/); the monotonic steady_clock is fine
  env-read            std::getenv/secure_getenv outside src/obs/ and
                      apps/ — ambient environment is another way real-world
                      state leaks into deterministic paths
  det-unordered       std::unordered_{map,set,multimap,multiset} in the
                      deterministic paths (src/engine, src/moga, src/sacga,
                      src/expt) — hash iteration order can leak into
                      fronts/traces; annotate with a justification
  unordered-iter      range-for iteration over a variable declared as an
                      unordered container in the same translation unit
  float-printf        %f/%e/%g-style float formatting in src/ outside
                      common/textio — printf floats do not round-trip;
                      use textio's shortest/hex writers
  pragma-once         public header without #pragma once before code
                      (mechanically fixable with --fix)
  include-hygiene     relative ("../") or bare quoted includes in src/
                      headers, and `using namespace` at header scope
                      (relative includes are fixable with --fix)
  raw-assert          raw assert()/<cassert> — use ANADEX_REQUIRE (public
                      preconditions) or ANADEX_ASSERT (internal invariants)
                      so failures throw typed, testable exceptions
  process-control     exit()/_exit()/quick_exit()/abort()/signal()/raise()
                      in src/, apps/ or bench/ outside src/robust/shutdown*
                      — ad-hoc process teardown skips the graceful-shutdown
                      layer (snapshot at the generation barrier, exit 130)
                      and can truncate a checkpoint mid-write
  unknown-suppression an `anadex-lint: allow(...)` comment naming a rule
                      this linter does not know — a typo there silently
                      disables nothing and hides the intent
  digest-coverage     (--digest-audit) a RunSettings/EvalKnobs field that
                      the settings registry classifies neither as digested
                      nor as a pure execution knob, a registry row with no
                      matching field, a digest serializer that stopped
                      expanding the registry, or a declared CLI flag that
                      is not wired in apps/anadex_cli.cpp
  layering            (--layers) an #include edge that violates the layer
                      DAG declared in scripts/layers.toml, a file no layer
                      claims, or a cyclic layer declaration

Suppression: append `// anadex-lint: allow(<rule>[, <rule>...])` to the
offending line, or place the comment on its own line directly above.  A
suppression should carry a justification in the surrounding comment.
digest-coverage and layering findings are whole-repo properties, not line
properties, and cannot be suppressed.

Exit codes: 0 = clean, 1 = violations found, 2 = usage/IO error.

JSON mode (`--json [--output FILE]`) emits a machine-readable report with
schema id "anadex-lint/2" for CI artifact upload; `--validate-report FILE`
asserts that a previously written report has that shape (the CI lint job
runs it on its own artifact, bench_report.py-style).

Whole-repo passes:
  --digest-audit        check the RunSettings field registry
                        (src/expt/settings_registry.hpp) against the struct
                        bodies, the digest serializer and the CLI wiring
  --layers FILE         enforce the include-layer DAG declared in FILE
                        (scripts/layers.toml); requires --compile-commands
  --compile-commands F  compile_commands.json to take include dirs from
  --fix                 mechanically fix pragma-once and relative-include
                        violations in place (idempotent), then lint
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCHEMA = "anadex-lint/2"
LAYERS_SCHEMA = "anadex-layers/1"

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ["src", "apps", "bench", "tests"]
CXX_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
# Fixture files deliberately contain violations; they are linted only when
# named explicitly (the self-test does exactly that).
SKIPPED_DIR_PARTS = ("tests/lint/fixtures",)

# Directories whose iteration order / float text reaches checkpoints,
# fronts or traces.  Hash-order containers here need a justification.
# src/serve is included because the scheduler's admission order, slicing
# and result files are part of the byte-identical reproducibility contract
# (docs/serve.md).
# src/engine/simd is already inside src/engine, but the SoA lane kernels it
# dispatches to live in src/device and src/circuit (batch_mosfet.hpp,
# batch_opamp.*) — result paths that must obey the same determinism rules.
DETERMINISTIC_DIRS = ("src/engine", "src/engine/simd", "src/moga", "src/sacga",
                      "src/expt", "src/serve", "src/shard", "src/device",
                      "src/circuit")

ALLOW_RE = re.compile(r"anadex-lint:\s*allow\(([^)]*)\)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|/\*|\*|\*/)")

RULE_DOCS = {
    "raw-random": "rand()/srand() banned: seed-addressed anadex::Rng only",
    "random-device": "std::random_device banned: nondeterministic entropy",
    "wall-clock": "wall-clock read outside src/obs/ (steady_clock is fine)",
    "env-read": "getenv/secure_getenv outside src/obs/ and apps/",
    "det-unordered": "unordered container in a deterministic path",
    "unordered-iter": "range-for over an unordered container",
    "float-printf": "%f-style float formatting outside common/textio",
    "pragma-once": "public header must open with #pragma once",
    "include-hygiene": "relative/bare include or using-namespace in header",
    "raw-assert": "raw assert(): use ANADEX_REQUIRE / ANADEX_ASSERT",
    "process-control": "raw exit/abort/signal outside src/robust/shutdown*",
    "unknown-suppression": "allow(...) names a rule this linter does not know",
    "digest-coverage": "settings field neither digested nor declared a knob",
    "layering": "#include edge violates the declared layer DAG",
}

RAW_RANDOM_RE = re.compile(r"(?<![\w.>])s?rand\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
WALL_CLOCK_RE = re.compile(
    r"std::time\s*\("
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0|&)"
    r"|\bsystem_clock\b"
    r"|\bhigh_resolution_clock\b"
    r"|\bgettimeofday\b"
    r"|\blocaltime\b|\bgmtime\b|\bstrftime\b|\bmktime\b"
    r"|(?<![\w:.])clock\s*\(\s*\)"
)
# `std::getenv` still matches (the lookbehind permits ':'); member calls
# (`env.getenv(...)`) do not.
ENV_READ_RE = re.compile(r"(?<![\w.>])(?:secure_)?getenv\s*\(")
UNORDERED_TYPE_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
# `std::unordered_map<K, V> name` / `... name;` / `... name{...}` — good
# enough for the single-line declarations this codebase writes.
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:multi)?(?:map|set)\s*<[^;{}]*>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:()]*:\s*(\w+)\s*\)")
PRINTF_CALL_RE = re.compile(r"\b(?:printf|fprintf|sprintf|snprintf)\s*\(")
FLOAT_FMT_RE = re.compile(r'"[^"]*%[-+ #0-9.*]*(?:l|L)?[aefgAEFG][^"]*"')
RAW_ASSERT_RE = re.compile(r"(?<![\w.:])assert\s*\(")
# Process-teardown and signal-wiring calls. `::`-qualified forms still match
# (the lookbehind permits ':'); member calls (`sim.exit(...)`) do not.
PROCESS_CONTROL_RE = re.compile(
    r"(?<![\w.>])(?:_?exit|_Exit|quick_exit|abort|signal|raise)\s*\("
)
ASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](?:cassert|assert\.h)[>"]')
RELATIVE_INCLUDE_RE = re.compile(r'#\s*include\s*"(\.\.?/[^"]*)"')
BARE_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"/]+)"')
QUOTED_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\s+\w")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
PREPROC_OR_CODE_RE = re.compile(r"\S")


def rel(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def in_dirs(relpath: str, prefixes) -> bool:
    return any(relpath == p or relpath.startswith(p + "/") for p in prefixes)


class Report:
    def __init__(self):
        self.violations = []
        self.suppressed = []
        self.files_scanned = 0
        self.fixed = 0
        self.digest_audit = None
        self.layering = None

    def add(self, allowed: set, rule: str, path: str, line_no: int, line: str, message: str):
        entry = {
            "rule": rule,
            "path": path,
            "line": line_no,
            "message": message,
            "snippet": line.strip()[:160],
        }
        if rule in allowed or "*" in allowed:
            self.suppressed.append(entry)
        else:
            self.violations.append(entry)


def suppression_names(line: str) -> list:
    m = ALLOW_RE.search(line)
    if not m:
        return []
    return [r.strip() for r in m.group(1).split(",") if r.strip()]


def allowed_rules(lines, idx: int) -> set:
    """Rules suppressed for lines[idx]: same-line or previous-comment-line."""
    rules = set(suppression_names(lines[idx]))
    if idx > 0 and COMMENT_ONLY_RE.match(lines[idx - 1]):
        rules.update(suppression_names(lines[idx - 1]))
    return rules


def strip_line_comment(line: str) -> str:
    """Drops //-comments so commented-out code is not flagged."""
    in_string = False
    i = 0
    while i < len(line) - 1:
        c = line[i]
        if c == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif not in_string and c == "/" and line[i + 1] == "/":
            return line[:i]
        i += 1
    return line


def effective_relpath(path: Path, pretend_prefix: str | None) -> str:
    if pretend_prefix is not None:
        # Self-test hook: treat this file as if it lived at
        # <pretend_prefix>/<name>, so fixtures can exercise path-scoped
        # rules without living inside src/.
        return f"{pretend_prefix.rstrip('/')}/{path.name}"
    return rel(path)


def first_code_line_index(lines) -> int | None:
    """Index of the first non-comment code/preprocessor line, tracking the
    same cheap block-comment state the lint loop uses. None = no code."""
    in_block_comment = False
    for idx, raw in enumerate(lines):
        stripped = raw.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue
        code = strip_line_comment(raw)
        if PREPROC_OR_CODE_RE.search(code) and not COMMENT_ONLY_RE.match(raw):
            return idx
    return None


def lint_file(path: Path, report: Report, pretend_prefix: str | None = None):
    relpath = effective_relpath(path, pretend_prefix)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"anadex-lint: cannot read {relpath}: {err}", file=sys.stderr)
        sys.exit(2)
    lines = text.splitlines()
    report.files_scanned += 1

    is_header = path.suffix in {".hpp", ".hh", ".h"}
    in_src = in_dirs(relpath, ("src",))
    in_obs = in_dirs(relpath, ("src/obs",))
    in_det = in_dirs(relpath, DETERMINISTIC_DIRS)
    is_textio = relpath.startswith("src/common/textio")
    # Library/CLI/bench code must route teardown through the shutdown
    # module; tests are exempt (they legitimately raise signals at
    # themselves, and `signal` is a common DSP variable name there).
    in_process_scope = (in_dirs(relpath, ("src", "apps", "bench"))
                        and not relpath.startswith("src/robust/shutdown"))
    # Environment reads are ambient, wall-clock-like state: the telemetry
    # layer may annotate records with them and the CLI front-ends may read
    # their own configuration, but library and bench code must take every
    # input through parameters. (Bench quick-mode reads carry justified
    # suppressions.)
    in_env_scope = (in_dirs(relpath, ("src", "bench", "tests"))
                    and not in_obs)

    # Names declared as unordered containers in this file plus its paired
    # header (eval_cache.cpp iterating a member declared in eval_cache.hpp).
    unordered_names = set()
    scan_texts = [lines]
    if path.suffix == ".cpp":
        header = path.with_suffix(".hpp")
        if header.exists():
            scan_texts.append(header.read_text(encoding="utf-8").splitlines())
    for body in scan_texts:
        for raw in body:
            for m in UNORDERED_DECL_RE.finditer(strip_line_comment(raw)):
                unordered_names.add(m.group(1))

    pragma_seen = False
    pragma_checked = not is_header or not in_src
    in_block_comment = False

    for idx, raw in enumerate(lines):
        line_no = idx + 1
        allowed = allowed_rules(lines, idx)

        # --- unknown-suppression: checked on every line, including comment
        # lines (a typo in allow() silently disables nothing).
        for name in suppression_names(raw):
            if name != "*" and name not in RULE_DOCS:
                report.add(allowed, "unknown-suppression", relpath, line_no,
                           raw,
                           f"suppression names unknown rule '{name}'; known "
                           "rules: " + ", ".join(sorted(RULE_DOCS)))

        # Cheap block-comment tracking: skip fully commented lines.
        stripped = raw.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if stripped.startswith("/*") and "*/" not in stripped:
            in_block_comment = True
            continue

        code = strip_line_comment(raw)

        # --- pragma-once: must appear before the first real code line.
        if not pragma_checked:
            if PRAGMA_ONCE_RE.match(code):
                pragma_seen = True
                pragma_checked = True
            elif PREPROC_OR_CODE_RE.search(code) and not COMMENT_ONLY_RE.match(raw):
                report.add(allowed, "pragma-once", relpath, line_no, raw,
                           "public header must start with #pragma once "
                           "before any code or preprocessor line")
                pragma_checked = True

        if not PREPROC_OR_CODE_RE.search(code):
            continue

        # --- raw-random / random-device: everywhere except src/obs/.
        if not in_obs:
            if RAW_RANDOM_RE.search(code):
                report.add(allowed, "raw-random", relpath, line_no, raw,
                           "rand()/srand() is ambient, unseeded state; use the "
                           "seed-addressed anadex::Rng instead")
            if RANDOM_DEVICE_RE.search(code):
                report.add(allowed, "random-device", relpath, line_no, raw,
                           "std::random_device draws nondeterministic entropy; "
                           "runs must be pure functions of their seed")

        # --- wall-clock: telemetry (src/obs/) may timestamp, nothing else.
        if not in_obs and WALL_CLOCK_RE.search(code):
            report.add(allowed, "wall-clock", relpath, line_no, raw,
                       "wall-clock reads outside src/obs/ leak real time into "
                       "deterministic paths; use steady_clock for durations")

        # --- env-read: the environment is ambient state like the clock.
        if in_env_scope and ENV_READ_RE.search(code):
            report.add(allowed, "env-read", relpath, line_no, raw,
                       "getenv reads ambient environment state; take the "
                       "value as a parameter/flag instead (telemetry in "
                       "src/obs/ and the CLIs in apps/ are exempt)")

        # --- unordered containers in deterministic paths.
        if in_det:
            if UNORDERED_TYPE_RE.search(code) and not code.lstrip().startswith("#"):
                report.add(allowed, "det-unordered", relpath, line_no, raw,
                           "hash-container iteration order is unspecified and "
                           "can leak into fronts/traces; justify with an "
                           "anadex-lint: allow(det-unordered) annotation or "
                           "use an ordered container")
            m = RANGE_FOR_RE.search(code)
            if m and m.group(1) in unordered_names:
                report.add(allowed, "unordered-iter", relpath, line_no, raw,
                           f"range-for over unordered container '{m.group(1)}' "
                           "iterates in hash order; iterate a sorted index "
                           "instead")

        # --- float-printf: library code must use common/textio writers.
        if in_src and not is_textio:
            if PRINTF_CALL_RE.search(code) and FLOAT_FMT_RE.search(code):
                report.add(allowed, "float-printf", relpath, line_no, raw,
                           "%f-style float text does not round-trip; use "
                           "common/textio's shortest/hex writers")

        # --- include hygiene (headers in src/ must be relocatable).
        if is_header and in_src:
            m = RELATIVE_INCLUDE_RE.search(code)
            if m:
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           f'relative include "{m.group(1)}" breaks when the '
                           "header moves; include project-root-relative paths")
            m = BARE_INCLUDE_RE.search(code)
            if m:
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           f'bare include "{m.group(1)}" is ambiguous; use the '
                           'project-root-relative "dir/file.hpp" form')
            if USING_NAMESPACE_RE.match(code):
                report.add(allowed, "include-hygiene", relpath, line_no, raw,
                           "using-namespace at header scope pollutes every "
                           "includer")

        # --- raw-assert: typed, throwing checks only.
        if RAW_ASSERT_RE.search(code) or ASSERT_INCLUDE_RE.search(code):
            report.add(allowed, "raw-assert", relpath, line_no, raw,
                       "raw assert() aborts and vanishes in NDEBUG; use "
                       "ANADEX_REQUIRE (precondition) or ANADEX_ASSERT "
                       "(invariant) from common/check.hpp")

        # --- process-control: teardown flows through the shutdown module.
        if in_process_scope and PROCESS_CONTROL_RE.search(code):
            report.add(allowed, "process-control", relpath, line_no, raw,
                       "raw exit/abort/signal bypasses the graceful-shutdown "
                       "layer (src/robust/shutdown.hpp) and can kill the "
                       "process mid-checkpoint; request the stop token or "
                       "return an exit code instead")

    if is_header and in_src and not pragma_seen and not pragma_checked:
        # Header with no code lines at all — still needs the guard.
        report.add(set(), "pragma-once", relpath, max(len(lines), 1),
                   lines[-1] if lines else "", "public header lacks #pragma once")


# ---------------------------------------------------------------------------
# --fix: mechanical rewrites for pragma-once and relative includes.
# ---------------------------------------------------------------------------

def fix_file(path: Path, pretend_prefix: str | None = None) -> int:
    """Applies the mechanical fixes in place. Returns the number of fixes.

    Covered rules (and nothing else — every other rule needs judgement):
      * pragma-once: insert `#pragma once` before the first code line of a
        src/ header that lacks it;
      * include-hygiene, relative form: rewrite `#include "../x/y.hpp"` to
        the project-root-relative path obtained by normalizing against the
        header's own directory. Bare includes stay untouched (the intended
        directory is ambiguous). A rewrite that would escape the repo root
        or (for real files) name a header that does not exist is skipped.
    Idempotent: a second run finds nothing left to fix.
    """
    relpath = effective_relpath(path, pretend_prefix)
    is_header = path.suffix in {".hpp", ".hh", ".h"}
    in_src = in_dirs(relpath, ("src",))
    if not (is_header and in_src):
        return 0
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines(keepends=True)
    fixes = 0

    # Relative-include rewrites first (line indices stay stable).
    rel_dir = Path(relpath).parent
    for idx, raw in enumerate(lines):
        m = RELATIVE_INCLUDE_RE.search(strip_line_comment(raw))
        if not m:
            continue
        target = m.group(1)
        resolved_parts = []
        for part in (rel_dir / target).parts:
            if part == "..":
                if not resolved_parts:
                    resolved_parts = None  # escapes the repo root
                    break
                resolved_parts.pop()
            elif part != ".":
                resolved_parts.append(part)
        if resolved_parts is None:
            continue
        resolved = "/".join(resolved_parts)
        # Only rewrite to a header that actually exists; a fixture linted
        # under --pretend-path has no real neighbours to check against.
        if pretend_prefix is None and not (REPO_ROOT / resolved).is_file():
            continue
        lines[idx] = raw.replace(f'"{target}"', f'"{resolved}"')
        fixes += 1

    # pragma-once insertion.
    bare = [ln.rstrip("\r\n") for ln in lines]
    has_pragma = any(PRAGMA_ONCE_RE.match(strip_line_comment(ln)) for ln in bare)
    if not has_pragma:
        idx = first_code_line_index(bare)
        insert_at = idx if idx is not None else len(lines)
        eol = "\r\n" if lines and lines[0].endswith("\r\n") else "\n"
        lines.insert(insert_at, f"#pragma once{eol}")
        fixes += 1

    if fixes:
        path.write_text("".join(lines), encoding="utf-8")
    return fixes


# ---------------------------------------------------------------------------
# --digest-audit: settings registry vs struct bodies vs serializer vs CLI.
# ---------------------------------------------------------------------------

REGISTRY_FILE = "src/expt/settings_registry.hpp"
SETTINGS_FILE = "src/expt/runner.hpp"
KNOBS_FILE = "src/engine/eval_knobs.hpp"
DIGEST_FILE = "src/expt/runner.cpp"
CLI_FILE = "apps/anadex_cli.cpp"
REGISTRY_MACRO = "ANADEX_RUN_SETTINGS_REGISTRY"

REGISTRY_ENTRY_RES = {
    "meta": re.compile(r"\bMETA\(\s*(\w+)\s*,\s*\"([^\"]*)\"\s*\)"),
    "digest": re.compile(
        r"\bDIGEST\(\s*(\w+)\s*,\s*\"([^\"]*)\"\s*,\s*\"([^\"]*)\"\s*\)"),
    "knob": re.compile(r"\bKNOB\(\s*(\w+)\s*,\s*\"([^\"]*)\"\s*\)"),
    "seam": re.compile(r"\bSEAM\(\s*(\w+)\s*\)"),
}


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def parse_registry(text: str) -> list:
    """Entries of the X-macro body: [(kind, field, digest_tag, cli_flag)]."""
    lines = text.splitlines()
    body = []
    grabbing = False
    for line in lines:
        if re.match(r"\s*#\s*define\s+" + REGISTRY_MACRO + r"\(", line):
            grabbing = True
        if grabbing:
            body.append(line.rstrip().rstrip("\\"))
            if not line.rstrip().endswith("\\"):
                break
    blob = strip_comments(" ".join(body))
    # Drop the parameter list of the #define itself so `(META, DIGEST, ...)`
    # is not misread as an entry.
    blob = re.sub(r"#\s*define\s+" + REGISTRY_MACRO + r"\([^)]*\)", " ", blob)
    entries = []
    for kind, pattern in REGISTRY_ENTRY_RES.items():
        for m in pattern.finditer(blob):
            field = m.group(1)
            tag = m.group(2) if kind == "digest" else ""
            flag = (m.group(3) if kind == "digest"
                    else m.group(2) if kind in ("meta", "knob") else "")
            entries.append((kind, field, tag, flag))
    return entries


def parse_struct(text: str, struct_name: str):
    """(field names, base class names) of a struct with a brace-plain body
    (data members only — exactly what RunSettings/EvalKnobs are)."""
    clean = strip_comments(text)
    m = re.search(r"\bstruct\s+" + struct_name + r"\b([^{;]*)\{", clean)
    if not m:
        return None, []
    bases = re.findall(r"[\w:]+", m.group(1).replace(":", " ", 1))
    depth = 1
    start = m.end()
    i = start
    while i < len(clean) and depth > 0:
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
        i += 1
    body = clean[start:i - 1]
    fields = []
    for statement in body.split(";"):
        # Cut the initializer (= default or {aggregate}) and take the last
        # identifier: `const CancelToken* stop = nullptr` -> stop,
        # `std::vector<std::size_t> mesacga_schedule{20, ...}` -> schedule.
        decl = re.split(r"[={]", statement, maxsplit=1)[0]
        if re.match(r"\s*(struct|enum|using|typedef|static)\b", decl):
            continue
        name = re.search(r"([A-Za-z_]\w*)\s*$", decl)
        if name:
            fields.append(name.group(1))
    return fields, bases


def find_line(text: str, needle: str) -> int:
    for i, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return i
    return 1


def function_body(text: str, signature_re: str) -> str:
    clean = strip_comments(text)
    m = re.search(signature_re, clean)
    if not m:
        return ""
    i = clean.find("{", m.end() - 1)
    if i < 0:
        return ""
    depth = 0
    start = i
    while i < len(clean):
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return clean[start:i]
        i += 1
    return clean[start:]


def digest_audit(report: Report, audit_root: Path):
    """The digest-coverage contract, checked four ways (see RULE_DOCS)."""
    section = {
        "root": str(audit_root),
        "registered": 0,
        "fields": 0,
        "meta": [], "digest": [], "knob": [], "seam": [],
        "violation_count": 0,
    }
    before = len(report.violations)

    def violate(path: Path, line: int, message: str):
        report.add(set(), "digest-coverage", rel(path), line, "", message)

    reg_path = audit_root / REGISTRY_FILE
    settings_path = audit_root / SETTINGS_FILE
    if not reg_path.is_file() or not settings_path.is_file():
        violate(reg_path if not reg_path.is_file() else settings_path, 1,
                "digest audit: registry or settings header missing "
                f"(expected {REGISTRY_FILE} and {SETTINGS_FILE})")
        section["violation_count"] = len(report.violations) - before
        report.digest_audit = section
        return

    reg_text = reg_path.read_text(encoding="utf-8")
    entries = parse_registry(reg_text)
    if not entries:
        violate(reg_path, 1,
                f"digest audit: no {REGISTRY_MACRO} entries found — the "
                "X-macro body is missing or unparseable")

    seen = {}
    for kind, field, tag, flag in entries:
        if field in seen:
            violate(reg_path, find_line(reg_text, field),
                    f"digest audit: field '{field}' registered twice "
                    f"({seen[field]} and {kind})")
        seen[field] = kind
        section[kind].append(field)

    tags = [t for k, _, t, _ in entries if k == "digest" for t in [t]]
    for tag in {t for t in tags if tags.count(t) > 1}:
        violate(reg_path, find_line(reg_text, f'"{tag}"'),
                f"digest audit: digest tag '{tag}' used by more than one "
                "field; tags are wire keys and must be unique")

    settings_text = settings_path.read_text(encoding="utf-8")
    fields, bases = parse_struct(settings_text, "RunSettings")
    if fields is None:
        violate(settings_path, 1,
                "digest audit: struct RunSettings not found")
        fields, bases = [], []
    field_origin = {f: settings_path for f in fields}
    if any(b.endswith("EvalKnobs") for b in bases):
        knobs_path = audit_root / KNOBS_FILE
        if knobs_path.is_file():
            knob_fields, _ = parse_struct(
                knobs_path.read_text(encoding="utf-8"), "EvalKnobs")
            for f in knob_fields or []:
                field_origin.setdefault(f, knobs_path)
        else:
            violate(audit_root / KNOBS_FILE, 1,
                    "digest audit: RunSettings inherits EvalKnobs but "
                    f"{KNOBS_FILE} is missing")

    # The bijection, both directions.
    for field, origin in field_origin.items():
        if field not in seen:
            violate(origin,
                    find_line(origin.read_text(encoding="utf-8"), field),
                    f"digest audit: settings field '{field}' is neither in "
                    "the digest list nor in the execution-knob list — add "
                    f"exactly one entry for it to {REGISTRY_FILE}")
    for field, kind in seen.items():
        if field not in field_origin:
            violate(reg_path, find_line(reg_text, field),
                    f"digest audit: registry entry '{field}' ({kind}) names "
                    "no RunSettings/EvalKnobs field — remove the row or fix "
                    "the spelling")

    # The serializer must be generated from the registry, not hand-rolled.
    digest_path = audit_root / DIGEST_FILE
    if digest_path.is_file():
        digest_text = digest_path.read_text(encoding="utf-8")
        body = function_body(
            digest_text, r"std::string\s+run_config_digest\s*\([^)]*\)\s*\{")
        if not body:
            violate(digest_path, 1,
                    "digest audit: run_config_digest definition not found in "
                    f"{DIGEST_FILE}")
        elif REGISTRY_MACRO not in body:
            violate(digest_path, find_line(digest_text, "run_config_digest"),
                    f"digest audit: run_config_digest no longer expands "
                    f"{REGISTRY_MACRO}; a hand-rolled serializer can drift "
                    "from the registry")
    else:
        violate(digest_path, 1,
                f"digest audit: {DIGEST_FILE} missing")

    # Declared CLI flags must be wired (a registry row is the contract that
    # `anadex explore --<flag>` exists).
    cli_path = audit_root / CLI_FILE
    cli_text = cli_path.read_text(encoding="utf-8") if cli_path.is_file() else ""
    if not cli_text:
        violate(cli_path, 1, f"digest audit: {CLI_FILE} missing")
    for kind, field, _tag, flag in entries:
        if flag and cli_text and f'"{flag}"' not in cli_text:
            violate(reg_path, find_line(reg_text, f'"{flag}"'),
                    f"digest audit: registry declares CLI flag '--{flag}' "
                    f"for '{field}' but {CLI_FILE} never reads \"{flag}\"")

    section["registered"] = len(seen)
    section["fields"] = len(field_origin)
    section["violation_count"] = len(report.violations) - before
    report.digest_audit = section


# ---------------------------------------------------------------------------
# --layers: include-layer DAG enforcement over compile_commands.json.
# ---------------------------------------------------------------------------

def load_compile_include_dirs(db_path: Path) -> list:
    try:
        db = json.loads(db_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"anadex-lint: cannot read compile db {db_path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    dirs = []
    for entry in db:
        base = Path(entry.get("directory", "."))
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        it = iter(args)
        for tok in it:
            inc = None
            if tok in ("-I", "-isystem"):
                inc = next(it, None)
            elif tok.startswith("-I"):
                inc = tok[2:]
            if inc:
                p = Path(inc)
                if not p.is_absolute():
                    p = base / p
                p = p.resolve()
                if p not in dirs:
                    dirs.append(p)
    return dirs


class Layers:
    """The declared DAG: named layers, each claiming path prefixes (longest
    prefix wins, individual files override their directory) and allowed
    direct dependencies ("*" = unconstrained, for apps/bench/tests)."""

    def __init__(self, spec: dict, toml_path: Path):
        self.toml_path = toml_path
        self.deps = {}
        self.claims = []  # (path, layer), matched longest-prefix-first
        for layer in spec.get("layer", []):
            name = layer["name"]
            self.deps[name] = list(layer.get("deps", []))
            for p in layer.get("paths", []):
                self.claims.append((p.rstrip("/"), name))
        self.claims.sort(key=lambda c: len(c[0]), reverse=True)

    def layer_of(self, relpath: str) -> str | None:
        for prefix, name in self.claims:
            if relpath == prefix or relpath.startswith(prefix + "/"):
                return name
        return None

    def allowed(self, frm: str, to: str) -> bool:
        deps = self.deps.get(frm, [])
        return frm == to or "*" in deps or to in deps

    def cycle(self) -> list | None:
        """A declared dependency cycle, or None. Wildcard layers cannot
        participate (they declare no concrete deps)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.deps}
        stack = []

        def visit(n):
            color[n] = GRAY
            stack.append(n)
            for d in self.deps.get(n, []):
                if d == "*" or d not in color:
                    continue
                if color[d] == GRAY:
                    return stack[stack.index(d):] + [d]
                if color[d] == WHITE:
                    found = visit(d)
                    if found:
                        return found
            color[n] = BLACK
            stack.pop()
            return None

        for n in self.deps:
            if color[n] == WHITE:
                found = visit(n)
                if found:
                    return found
        return None


def load_layers(toml_path: Path) -> Layers:
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        print("anadex-lint: --layers needs Python 3.11+ (tomllib)",
              file=sys.stderr)
        sys.exit(2)
    try:
        spec = tomllib.loads(toml_path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as err:
        print(f"anadex-lint: cannot read layers file {toml_path}: {err}",
              file=sys.stderr)
        sys.exit(2)
    if spec.get("schema") != LAYERS_SCHEMA:
        print(f"anadex-lint: {toml_path} schema is not '{LAYERS_SCHEMA}'",
              file=sys.stderr)
        sys.exit(2)
    return Layers(spec, toml_path)


def layering_pass(report: Report, layers: Layers, include_dirs: list,
                  layers_root: Path):
    """Resolves every quoted #include of every claimed file and checks the
    edge against the declared DAG."""
    before = len(report.violations)
    section = {
        "schema": LAYERS_SCHEMA,
        "layers": sorted(layers.deps),
        "files_scanned": 0,
        "edges_checked": 0,
        "violation_count": 0,
    }

    cycle = layers.cycle()
    if cycle:
        report.add(set(), "layering", rel(layers.toml_path), 1, "",
                   "declared layer graph is cyclic: " + " -> ".join(cycle))

    files = []
    for prefix, _name in layers.claims:
        p = layers_root / prefix
        if p.is_file():
            files.append(p)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix in CXX_SUFFIXES and f.is_file():
                    r = f.relative_to(layers_root).as_posix()
                    if any(part in r for part in SKIPPED_DIR_PARTS):
                        continue
                    files.append(f)
    files = sorted(set(files))

    for f in files:
        relpath = f.relative_to(layers_root).as_posix()
        frm = layers.layer_of(relpath)
        if frm is None:
            continue  # unreachable: files come from claims
        section["files_scanned"] += 1
        try:
            lines = f.read_text(encoding="utf-8").splitlines()
        except OSError:
            continue
        for idx, raw in enumerate(lines):
            m = QUOTED_INCLUDE_RE.search(strip_line_comment(raw))
            if not m:
                continue
            inc = m.group(1)
            resolved = None
            for base in [f.parent] + include_dirs:
                cand = (base / inc)
                if cand.is_file():
                    resolved = cand.resolve()
                    break
            if resolved is None:
                continue  # external or generated header: not ours to judge
            try:
                target_rel = resolved.relative_to(layers_root.resolve()).as_posix()
            except ValueError:
                continue
            to = layers.layer_of(target_rel)
            section["edges_checked"] += 1
            if to is None:
                report.add(set(), "layering", relpath, idx + 1, raw,
                           f'included file "{target_rel}" matches no declared '
                           f"layer; claim it in {rel(layers.toml_path)}")
                continue
            if not layers.allowed(frm, to):
                report.add(set(), "layering", relpath, idx + 1, raw,
                           f"include edge {frm} -> {to} is not in the "
                           f"declared DAG ({rel(layers.toml_path)}: layer "
                           f"'{frm}' deps {layers.deps.get(frm, [])})")

    section["violation_count"] = len(report.violations) - before
    report.layering = section


# ---------------------------------------------------------------------------
# --validate-report: schema assertion for a written report artifact.
# ---------------------------------------------------------------------------

REPORT_TOP_KEYS = ("schema", "files_scanned", "violation_count",
                   "suppressed_count", "fixed_count", "violations",
                   "suppressed", "digest_audit", "layering")
VIOLATION_KEYS = ("rule", "path", "line", "message", "snippet")


def validate_report(path: Path) -> int:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        print(f"anadex-lint: cannot read report {path}: {err}", file=sys.stderr)
        return 2
    errors = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema is {payload.get('schema')!r}, want '{SCHEMA}'")
    for key in REPORT_TOP_KEYS:
        if key not in payload:
            errors.append(f"missing top-level key '{key}'")
    for kind in ("violations", "suppressed"):
        for i, v in enumerate(payload.get(kind, [])):
            for key in VIOLATION_KEYS:
                if key not in v:
                    errors.append(f"{kind}[{i}] missing key '{key}'")
            if v.get("rule") not in RULE_DOCS:
                errors.append(f"{kind}[{i}] has unknown rule "
                              f"{v.get('rule')!r}")
    audit = payload.get("digest_audit")
    if audit is not None:
        for key in ("registered", "fields", "digest", "knob",
                    "violation_count"):
            if key not in audit:
                errors.append(f"digest_audit missing key '{key}'")
    layering = payload.get("layering")
    if layering is not None:
        for key in ("schema", "layers", "files_scanned", "edges_checked",
                    "violation_count"):
            if key not in layering:
                errors.append(f"layering missing key '{key}'")
        if layering and layering.get("schema") != LAYERS_SCHEMA:
            errors.append(f"layering schema is {layering.get('schema')!r}, "
                          f"want '{LAYERS_SCHEMA}'")
    if (isinstance(payload.get("violations"), list)
            and payload.get("violation_count") != len(payload["violations"])):
        errors.append("violation_count does not match len(violations)")
    if errors:
        for e in errors:
            print(f"anadex-lint: report {path}: {e}", file=sys.stderr)
        return 1
    print(f"anadex-lint: report {path} conforms to {SCHEMA}")
    return 0


def collect(paths) -> list:
    files = []
    for arg in paths:
        p = Path(arg)
        if not p.is_absolute():
            p = REPO_ROOT / p
        if p.is_file():
            files.append(p)  # explicit files are always linted (fixtures)
        elif p.is_dir():
            for f in sorted(p.rglob("*")):
                if f.suffix not in CXX_SUFFIXES or not f.is_file():
                    continue
                r = rel(f)
                if any(part in r for part in SKIPPED_DIR_PARTS):
                    continue
                files.append(f)
        else:
            print(f"anadex-lint: no such path: {arg}", file=sys.stderr)
            sys.exit(2)
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="anadex_lint.py",
        description="Determinism & contract linter for the anadex tree.")
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--json", action="store_true",
                        help=f"emit an {SCHEMA} JSON report on stdout")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the JSON report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("--pretend-path", metavar="PREFIX", default=None,
                        help="lint explicit files as if they lived under "
                             "PREFIX (self-test hook for path-scoped rules)")
    parser.add_argument("--fix", action="store_true",
                        help="apply the mechanical fixes (pragma-once, "
                             "relative includes) in place before linting")
    parser.add_argument("--digest-audit", action="store_true",
                        help="audit the RunSettings registry against the "
                             "struct bodies, serializer and CLI wiring")
    parser.add_argument("--audit-root", metavar="DIR", default=None,
                        help="tree root for --digest-audit (fixture hook; "
                             "default: the repo root)")
    parser.add_argument("--layers", metavar="FILE", default=None,
                        help="enforce the include-layer DAG declared in FILE")
    parser.add_argument("--layers-root", metavar="DIR", default=None,
                        help="tree root the layer paths are relative to "
                             "(fixture hook; default: the repo root)")
    parser.add_argument("--compile-commands", metavar="FILE", default=None,
                        help="compile_commands.json providing include dirs "
                             "for --layers resolution (required with "
                             "--layers)")
    parser.add_argument("--validate-report", metavar="FILE", default=None,
                        help=f"assert FILE is a well-formed {SCHEMA} report "
                             "and exit")
    args = parser.parse_args(argv)

    if args.validate_report:
        return validate_report(Path(args.validate_report))

    if args.list_rules:
        for rule, doc in RULE_DOCS.items():
            print(f"{rule:20} {doc}")
        return 0

    if args.layers and not args.compile_commands:
        print("anadex-lint: --layers requires --compile-commands "
              "(include resolution is compile-db driven)", file=sys.stderr)
        return 2

    report = Report()

    # With only whole-repo passes requested and no explicit paths, skip the
    # per-file walk: `anadex_lint.py --digest-audit` audits and nothing else.
    pass_only = (args.paths in (None, []) and (args.digest_audit or args.layers))
    files = [] if pass_only else collect(args.paths or DEFAULT_PATHS)

    if args.fix:
        for f in files:
            report.fixed += fix_file(f, pretend_prefix=args.pretend_path)

    for f in files:
        lint_file(f, report, pretend_prefix=args.pretend_path)

    if args.digest_audit:
        root = Path(args.audit_root) if args.audit_root else REPO_ROOT
        if not root.is_absolute():
            root = REPO_ROOT / root
        digest_audit(report, root)

    if args.layers:
        layers_path = Path(args.layers)
        if not layers_path.is_absolute():
            layers_path = REPO_ROOT / layers_path
        root = Path(args.layers_root) if args.layers_root else REPO_ROOT
        if not root.is_absolute():
            root = REPO_ROOT / root
        db_path = Path(args.compile_commands)
        if not db_path.is_absolute():
            db_path = REPO_ROOT / db_path
        if not db_path.is_file():
            print(f"anadex-lint: no such compile db: {db_path}",
                  file=sys.stderr)
            return 2
        layers = load_layers(layers_path)
        layering_pass(report, layers, load_compile_include_dirs(db_path), root)

    payload = {
        "schema": SCHEMA,
        "files_scanned": report.files_scanned,
        "violation_count": len(report.violations),
        "suppressed_count": len(report.suppressed),
        "fixed_count": report.fixed,
        "violations": report.violations,
        "suppressed": report.suppressed,
        "digest_audit": report.digest_audit,
        "layering": report.layering,
    }
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for v in report.violations:
            print(f"{v['path']}:{v['line']}: [{v['rule']}] {v['message']}")
            print(f"    {v['snippet']}")
        tail = (f"{report.files_scanned} files, {len(report.violations)} violation(s), "
                f"{len(report.suppressed)} suppressed")
        if args.fix:
            tail += f", {report.fixed} fixed"
        if report.digest_audit is not None:
            tail += (f"; digest audit: {report.digest_audit['fields']} fields / "
                     f"{report.digest_audit['registered']} registered")
        if report.layering is not None:
            tail += (f"; layering: {report.layering['edges_checked']} edges "
                     f"across {len(report.layering['layers'])} layers")
        print(("FAIL: " if report.violations else "OK: ") + tail)
    return 1 if report.violations else 0


if __name__ == "__main__":
    sys.exit(main())
