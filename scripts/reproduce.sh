#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every paper figure.
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt | tail -3

echo "== figure benches =="
for b in "$BUILD"/bench/*; do
  echo "########## $b"
  "$b"
done 2>&1 | tee bench_output.txt | grep -E "^##########|paper-vs-measured"

echo "== examples =="
"$BUILD"/examples/quickstart > /dev/null && echo "quickstart: ok"
"$BUILD"/examples/custom_problem > /dev/null && echo "custom_problem: ok"
"$BUILD"/examples/device_iv_curves > /dev/null && echo "device_iv_curves: ok"
"$BUILD"/examples/integrator_exploration 400 > /dev/null && echo "integrator_exploration: ok"
"$BUILD"/examples/sigma_delta_budget 400 > /dev/null && echo "sigma_delta_budget: ok"
echo "done — see test_output.txt / bench_output.txt / EXPERIMENTS.md"
