#!/usr/bin/env sh
# Pre-commit gate: the fast, hermetic subset of CI — the anadex linter
# (per-file rules + digest-coverage audit) and, when a configured build
# directory with a compile database exists, the include-layer check.
# Mirrors the CI lint job so a clean precommit run means the lint job
# passes. Install with:
#
#   ln -s ../../scripts/precommit.sh .git/hooks/pre-commit
#
# Fix mechanical findings (pragma-once, relative includes) with:
#
#   python3 scripts/anadex_lint.py --fix src apps bench tests
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

python="${PYTHON:-python3}"

echo "precommit: anadex-lint (tree + digest audit)"
"$python" scripts/anadex_lint.py src apps bench tests --digest-audit

# The layering pass needs include resolution through a compile database;
# skip (loudly) when the tree has not been configured yet — CI always runs
# it against a fresh one.
db="build/compile_commands.json"
if [ -f "$db" ]; then
  echo "precommit: anadex-lint --layers ($db)"
  "$python" scripts/anadex_lint.py \
    --layers scripts/layers.toml --compile-commands "$db"
else
  echo "precommit: SKIP layering ($db not found; run cmake -B build -S .)"
fi

echo "precommit: lint self-tests"
"$python" tests/lint/run_lint_tests.py 2>/dev/null

echo "precommit: OK"
