#!/usr/bin/env python3
"""Validate an anadex JSONL trace (docs/observability.md).

Usage:
    check_trace.py TRACE.jsonl [--algo mesacga] [--level gen|eval] [--segments]

Checks that every line parses as a standalone JSON object, that the file is
framed by a trace_start header (schema anadex-trace/v1) and a trace_end
trailer whose event count matches, that per-event required keys are
present, and — for the SACGA family — that the paper's telemetry actually
made it into the trace (partition occupancy, T_A, hypervolume).

With --segments the file may hold SEVERAL consecutive header..trailer
segments — one per JsonlTraceWriter lifetime. That is the shape `anadex
serve` produces: a preempted job's trace is appended one segment per slice
(docs/serve.md). Each segment is framed and counted independently; without
--segments a multi-segment file is an error, preserving the strict
single-run contract.

Exits nonzero with a line-numbered message on the first structural problem.
Only the standard library is used.
"""

import argparse
import json
import sys

TRACE_SCHEMA = "anadex-trace/v1"

# Keys every event of a given kind must carry (beyond "ev").
REQUIRED_KEYS = {
    "trace_start": ["schema", "level"],
    "trace_end": ["events"],
    "run_start": ["algo", "population", "generations", "seed"],
    "run_end": ["evaluations", "generations", "front_size", "front_area", "hv"],
    "gen": ["gen", "evals", "pop", "feasible", "front_size"],
    "sacga": ["gen", "phase", "partitions", "occupancy", "occupancy_feasible"],
    "phase_start": ["phase", "partitions", "gen"],
    "phase_end": ["phase", "partitions", "gen", "front_size"],
    "batch": ["t", "size", "workers", "wall_s"],
    "eval_engine": ["t", "batches", "items"],
    "env": ["threads", "hardware_concurrency"],
    "timer": ["name", "seconds"],
    "migration": ["gen", "migrations"],
}

# ev kinds that only exist at eval level and must NOT appear in a gen trace
# (they carry wall-clock data, which would break determinism guarantees).
EVAL_ONLY = {"batch", "eval_engine", "env", "timer"}


def fail(lineno: int, message: str) -> int:
    print(f"error: line {lineno}: {message}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument("--algo", default="", help="expect SACGA-family telemetry "
                        "(sacga/mesacga/localonly): occupancy, and T_A + hv for "
                        "annealing algorithms")
    parser.add_argument("--level", default="", choices=["", "gen", "eval"],
                        help="expected trace level recorded in the header")
    parser.add_argument("--segments", action="store_true",
                        help="allow multiple appended header..trailer segments "
                             "(one per writer lifetime — e.g. one per serve "
                             "slice); each segment is validated independently")
    args = parser.parse_args()

    events = []
    with open(args.trace, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                return fail(lineno, "blank line inside trace")
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                return fail(lineno, f"unparseable JSON: {err}")
            if not isinstance(event, dict):
                return fail(lineno, "line is not a JSON object")
            if "ev" not in event:
                return fail(lineno, "missing 'ev' key")
            for key in REQUIRED_KEYS.get(event["ev"], []):
                if key not in event:
                    return fail(lineno, f"event '{event['ev']}' missing key '{key}'")
            events.append((lineno, event))

    if not events:
        print("error: trace is empty", file=sys.stderr)
        return 1

    # Cut the file into trace_start..trace_end segments (one per writer
    # lifetime; appended traces hold several back to back).
    segments = []
    current = None
    for lineno, event in events:
        if event["ev"] == "trace_start":
            if current is not None:
                return fail(lineno, "trace_start before the previous segment's "
                                    "trace_end")
            current = [(lineno, event)]
            continue
        if current is None:
            return fail(lineno, "event outside a trace_start..trace_end segment")
        current.append((lineno, event))
        if event["ev"] == "trace_end":
            segments.append(current)
            current = None
    if current is not None:
        return fail(current[-1][0], "unterminated segment: missing trace_end")
    if len(segments) > 1 and not args.segments:
        return fail(segments[1][0][0], f"{len(segments)} segments in one trace; "
                                       "pass --segments for appended traces")

    for segment in segments:
        first_no, first = segment[0]
        if first["schema"] != TRACE_SCHEMA:
            return fail(first_no, f"unknown schema '{first['schema']}'")
        if args.level and first["level"] != args.level:
            return fail(first_no,
                        f"expected level '{args.level}', got '{first['level']}'")
        last_no, last = segment[-1]
        if last["events"] != len(segment):
            return fail(last_no, f"trailer counts {last['events']} events, "
                                 f"segment has {len(segment)}")
        if first["level"] == "gen":
            for lineno, event in segment:
                if event["ev"] in EVAL_ONLY or "t" in event:
                    return fail(lineno,
                                f"wall-clock event '{event['ev']}' in a gen trace")

    kinds = {event["ev"] for _, event in events}
    if "gen" not in kinds:
        print("error: trace has no per-generation 'gen' events", file=sys.stderr)
        return 1
    if not any("hv" in event for _, event in events if event["ev"] == "gen"):
        print("error: no 'gen' event carries a hypervolume", file=sys.stderr)
        return 1

    if args.algo in ("sacga", "mesacga", "localonly"):
        sacga_events = [event for _, event in events if event["ev"] == "sacga"]
        if not sacga_events:
            print("error: SACGA-family run recorded no 'sacga' events", file=sys.stderr)
            return 1
        if not all(len(event["occupancy"]) == event["partitions"]
                   for event in sacga_events):
            print("error: occupancy array length != partition count", file=sys.stderr)
            return 1
    if args.algo in ("sacga", "mesacga"):
        if not any("t_a" in event for _, event in events if event["ev"] == "sacga"):
            print("error: annealing run recorded no T_A samples", file=sys.stderr)
            return 1

    gen_count = sum(1 for _, event in events if event["ev"] == "gen")
    print(f"ok: {len(events)} events ({gen_count} generations, "
          f"{len(segments)} segment(s)), schema {TRACE_SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
