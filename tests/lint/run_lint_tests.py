#!/usr/bin/env python3
"""Self-test for scripts/anadex_lint.py.

Runs the linter over the violation fixtures in tests/lint/fixtures/ and
asserts exact rule IDs, line numbers of first occurrence, suppression
accounting and exit codes from the --json report. Registered with ctest as
Lint.SelfTest.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINTER = REPO_ROOT / "scripts" / "anadex_lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--json", *args],
        capture_output=True, text=True, cwd=REPO_ROOT)
    report = json.loads(proc.stdout) if proc.stdout.strip() else {}
    return proc.returncode, report


def rules_of(report):
    return sorted(v["rule"] for v in report.get("violations", []))


def suppressed_rules_of(report):
    return sorted(v["rule"] for v in report.get("suppressed", []))


class LintFixtureTest(unittest.TestCase):
    def lint_fixture(self, name, pretend=None):
        args = [str(FIXTURES / name)]
        if pretend:
            args += ["--pretend-path", pretend]
        return run_lint(*args)

    def test_raw_random_fixture(self):
        code, report = self.lint_fixture("raw_random.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["random-device", "raw-random", "raw-random"])
        self.assertEqual(suppressed_rules_of(report), ["random-device"])

    def test_wall_clock_fixture(self):
        code, report = self.lint_fixture("wall_clock.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])
        self.assertEqual(suppressed_rules_of(report), ["wall-clock"])

    def test_wall_clock_fixture_exempt_under_obs(self):
        # The same file is clean when it lives in the telemetry layer.
        code, report = self.lint_fixture("wall_clock.cpp", pretend="src/obs")
        self.assertEqual(code, 0)
        self.assertEqual(rules_of(report), [])

    def test_det_unordered_fixture(self):
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/engine")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])
        self.assertEqual(suppressed_rules_of(report), ["det-unordered"])

    def test_det_unordered_only_in_deterministic_dirs(self):
        # src/sysdes (behavioral simulation, not a result path of the
        # optimizer) stays outside DETERMINISTIC_DIRS; src/circuit joined
        # the list with the SIMD batch kernels, see the device tests below.
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/sysdes")
        self.assertEqual(code, 0)

    def test_batch_kernel_clock_fixture_in_device(self):
        # src/device and src/circuit joined DETERMINISTIC_DIRS with the SoA
        # batch evaluator: lane kernels are result paths, so wall-clock
        # reads and hash-ordered dispatch are violations there.
        code, report = self.lint_fixture("batch_kernel_clock.cpp",
                                         pretend="src/device")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter",
                          "wall-clock", "wall-clock"])

    def test_batch_kernel_clock_fixture_in_engine_simd(self):
        code, report = self.lint_fixture("batch_kernel_clock.cpp",
                                         pretend="src/engine/simd")
        self.assertEqual(code, 1)
        self.assertIn("wall-clock", rules_of(report))
        self.assertIn("det-unordered", rules_of(report))

    def test_batch_kernel_clean_fixture(self):
        # Vectorization idiom (omp simd pragmas, masked commits) must not
        # trip the deterministic rules.
        code, report = self.lint_fixture("batch_kernel_clean.cpp",
                                         pretend="src/device")
        self.assertEqual(code, 0)
        self.assertEqual(report["violation_count"], 0)

    def test_det_unordered_applies_to_serve(self):
        # src/serve joined DETERMINISTIC_DIRS with the scheduler work:
        # admission order, slicing and result files are reproducibility
        # surfaces (docs/serve.md).
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/serve")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])

    def test_wall_clock_applies_to_serve(self):
        # The scheduler must slice by generation count, never wall clock.
        code, report = self.lint_fixture("wall_clock.cpp",
                                         pretend="src/serve")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])

    def test_det_unordered_applies_to_shard(self):
        # src/shard joined DETERMINISTIC_DIRS with the sharded runner: the
        # migrant exchange, merge order and canonical checkpoint are all
        # byte-identity surfaces (docs/sharding.md).
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/shard")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])

    def test_wall_clock_applies_to_shard(self):
        # Epoch barriers poll by bounded attempt COUNT (steady sleeps are
        # fine); a wall-clock deadline would make shard failure detection
        # load-dependent and the drill flaky.
        code, report = self.lint_fixture("wall_clock.cpp",
                                         pretend="src/shard")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])

    def test_float_printf_fixture(self):
        code, report = self.lint_fixture("float_printf.cpp", pretend="src/expt")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["float-printf", "float-printf"])
        self.assertEqual(suppressed_rules_of(report), ["float-printf"])

    def test_float_printf_exempt_in_textio(self):
        code, report = self.lint_fixture("float_printf.cpp",
                                         pretend="src/common")
        # src/common/textio* is the exemption, src/common alone is not.
        self.assertEqual(code, 1)
        _, clean = run_lint(str(FIXTURES / "float_printf.cpp"),
                            "--pretend-path", "src/common/textio")
        # Pretend path puts the file at src/common/textio/<name>: exempt.
        self.assertEqual(rules_of(clean), [])

    def test_bad_header_fixture(self):
        code, report = self.lint_fixture("bad_header.hpp", pretend="src/moga")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["include-hygiene", "include-hygiene",
                          "include-hygiene", "pragma-once"])
        pragma = [v for v in report["violations"] if v["rule"] == "pragma-once"]
        self.assertEqual(pragma[0]["line"], 4)  # first code line

    def test_raw_assert_fixture(self):
        code, report = self.lint_fixture("raw_assert.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["raw-assert", "raw-assert"])
        self.assertEqual(suppressed_rules_of(report), ["raw-assert"])
        lines = sorted(v["line"] for v in report["violations"])
        self.assertEqual(lines, [2, 5])  # include + call, not static_assert

    def test_process_control_fixture(self):
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="src/engine")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["process-control"] * 3)
        self.assertEqual(suppressed_rules_of(report), ["process-control"])
        lines = sorted(v["line"] for v in report["violations"])
        self.assertEqual(lines, [8, 9, 10])  # signal, abort, exit

    def test_process_control_exempt_in_shutdown_module(self):
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="src/robust/shutdown")
        self.assertEqual(code, 0)
        self.assertEqual(rules_of(report), [])

    def test_process_control_exempt_in_tests(self):
        # Tests raise signals at themselves and use `signal` as a DSP name.
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="tests/common")
        self.assertEqual(code, 0)

    def test_clean_fixture(self):
        code, report = self.lint_fixture("clean.cpp", pretend="src/engine")
        self.assertEqual(code, 0)
        self.assertEqual(report["violation_count"], 0)

    def test_report_schema(self):
        code, report = self.lint_fixture("raw_assert.cpp")
        self.assertEqual(report["schema"], "anadex-lint/2")
        for key in ("files_scanned", "violation_count", "suppressed_count",
                    "fixed_count", "violations", "suppressed",
                    "digest_audit", "layering"):
            self.assertIn(key, report)
        # Sections are null unless their pass ran.
        self.assertIsNone(report["digest_audit"])
        self.assertIsNone(report["layering"])
        v = report["violations"][0]
        for key in ("rule", "path", "line", "message", "snippet"):
            self.assertIn(key, v)

    def test_fixtures_are_skipped_by_directory_walk(self):
        # Linting tests/ must not descend into the fixture corpus.
        code, report = run_lint("tests")
        self.assertEqual(code, 0, report.get("violations"))

    def test_full_tree_is_clean(self):
        code, report = run_lint()
        self.assertEqual(code, 0, json.dumps(report.get("violations"),
                                             indent=2))

    def test_usage_error_exit_code(self):
        proc = subprocess.run(
            [sys.executable, str(LINTER), "no/such/path"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        self.assertEqual(proc.returncode, 2)

    # ----- env-read ------------------------------------------------------

    def test_env_read_fixture(self):
        code, report = self.lint_fixture("env_read.cpp", pretend="src/engine")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["env-read", "env-read"])
        self.assertEqual(suppressed_rules_of(report), ["env-read", "env-read"])
        lines = sorted(v["line"] for v in report["violations"])
        self.assertEqual(lines, [5, 6])  # getenv + secure_getenv

    def test_env_read_exempt_in_obs_and_apps(self):
        # Telemetry may annotate records with ambient state; the CLI
        # front-ends own their configuration surface.
        for prefix in ("src/obs", "apps"):
            code, report = self.lint_fixture("env_read.cpp", pretend=prefix)
            self.assertEqual(code, 0, (prefix, rules_of(report)))

    def test_env_read_applies_to_bench(self):
        # Benches produce gate numbers; a hidden env dependency would make
        # them irreproducible (quick-mode carries explicit suppressions).
        code, report = self.lint_fixture("env_read.cpp", pretend="bench")
        self.assertEqual(code, 1)
        self.assertIn("env-read", rules_of(report))

    # ----- suppression edge cases ---------------------------------------

    def test_multi_rule_and_spanning_suppressions(self):
        code, report = self.lint_fixture("suppress_edge_cases.cpp")
        self.assertEqual(code, 1)
        # Only the deliberately unsuppressed rand() remains.
        self.assertEqual(rules_of(report), ["raw-random"])
        self.assertEqual(report["violations"][0]["line"], 23)
        # comment-above multi-rule + spanning statement + same-line multi.
        self.assertEqual(suppressed_rules_of(report),
                         ["raw-random", "raw-random", "raw-random"])

    def test_crlf_line_endings(self):
        # A CRLF file (generated here: fixtures stay LF so git attributes
        # cannot normalize the test away) must lint identically — and the
        # suppression comment must still attach to the line below it.
        src = (FIXTURES / "suppress_edge_cases.cpp").read_text()
        with tempfile.TemporaryDirectory() as tmp:
            crlf = Path(tmp) / "crlf_case.cpp"
            crlf.write_bytes(src.replace("\n", "\r\n").encode())
            code, report = run_lint(str(crlf))
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["raw-random"])
        self.assertEqual(len(report["suppressed"]), 3)

    def test_unknown_suppression_rule_names(self):
        code, report = self.lint_fixture("unknown_suppression.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["unknown-suppression", "unknown-suppression"])
        messages = " ".join(v["message"] for v in report["violations"])
        self.assertIn("raw-randm", messages)
        self.assertIn("no-such-rule", messages)
        # allow(*) is vocabulary, not a typo: no third violation.
        self.assertNotIn("'*'", messages)

    # ----- --fix ---------------------------------------------------------

    def fix_copy(self, name):
        """Copies a fixture to a temp dir and returns (path, run) where
        run(*args) invokes the linter on the copy."""
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        copy = Path(tmp.name) / name
        copy.write_bytes((FIXTURES / name).read_bytes())
        return copy

    def test_fix_rewrites_header_mechanically(self):
        copy = self.fix_copy("fixable_header.hpp")
        code, report = run_lint(str(copy), "--fix",
                                "--pretend-path", "src/moga")
        self.assertEqual(report["fixed_count"], 3)  # pragma + 2 includes
        text = copy.read_text()
        lines = text.splitlines()
        # #pragma once lands before the first code line, after the banner.
        self.assertEqual(lines[3], "#pragma once")
        self.assertIn('#include "src/common/check.hpp"', text)
        self.assertIn('#include "src/moga/neighbor.hpp"', text)
        self.assertNotIn('"../', text)
        self.assertNotIn('"./', text)
        # The mechanical rules are clean after the fix; nothing else fired.
        self.assertEqual(rules_of(report), [])
        self.assertEqual(code, 0)

    def test_fix_is_idempotent(self):
        copy = self.fix_copy("fixable_header.hpp")
        run_lint(str(copy), "--fix", "--pretend-path", "src/moga")
        after_first = copy.read_bytes()
        code, report = run_lint(str(copy), "--fix",
                                "--pretend-path", "src/moga")
        self.assertEqual(report["fixed_count"], 0)
        self.assertEqual(copy.read_bytes(), after_first)
        self.assertEqual(code, 0)

    def test_fix_does_not_touch_non_headers(self):
        copy = self.fix_copy("raw_random.cpp")
        before = copy.read_bytes()
        code, report = run_lint(str(copy), "--fix",
                                "--pretend-path", "src/engine")
        self.assertEqual(report["fixed_count"], 0)
        self.assertEqual(copy.read_bytes(), before)

    # ----- --digest-audit ------------------------------------------------

    def test_digest_audit_real_tree_is_clean(self):
        code, report = run_lint("--digest-audit")
        self.assertEqual(code, 0, json.dumps(report.get("violations"),
                                             indent=2))
        audit = report["digest_audit"]
        self.assertEqual(audit["violation_count"], 0)
        # Every field classified, every registry row backed by a field.
        self.assertEqual(audit["registered"], audit["fields"])
        self.assertGreaterEqual(audit["registered"], 30)
        self.assertIn("seed", audit["meta"])
        self.assertIn("spec", audit["digest"])
        self.assertIn("threads", audit["knob"])
        self.assertIn("stop", audit["seam"])

    def test_digest_audit_catches_seeded_drift(self):
        code, report = run_lint(
            "--digest-audit",
            "--audit-root", "tests/lint/fixtures/digest_audit_bad")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["digest-coverage"] * 4)
        messages = " ".join(v["message"] for v in report["violations"])
        # The four seeded drifts, each caught by name:
        self.assertIn("novel_field", messages)      # unregistered field
        self.assertIn("ghost_flag", messages)       # field-less registry row
        self.assertIn("no longer expands", messages)  # hand-rolled digest
        self.assertIn("--ghost", messages)          # unwired CLI flag

    # ----- --layers ------------------------------------------------------

    LAYER_TREE = FIXTURES / "layering_tree"

    def layering_args(self, toml_name="layers.toml"):
        """Generates a compile db for the fixture tree (absolute paths, so
        it cannot be committed) and returns the --layers arg vector."""
        tmp = tempfile.TemporaryDirectory()
        self.addCleanup(tmp.cleanup)
        root = self.LAYER_TREE.resolve()
        db = Path(tmp.name) / "compile_commands.json"
        db.write_text(json.dumps([{
            "directory": str(root),
            "command": f"c++ -I{root}/src -c src/mid/mid.hpp",
            "file": str(root / "src/mid/mid.hpp"),
        }]))
        return ["--layers", str(self.LAYER_TREE / toml_name),
                "--layers-root", str(self.LAYER_TREE),
                "--compile-commands", str(db)]

    def test_layering_real_tree_is_clean(self):
        db = REPO_ROOT / "build" / "compile_commands.json"
        if not db.is_file():
            self.skipTest("no build/compile_commands.json (configure first)")
        code, report = run_lint("--layers", "scripts/layers.toml",
                                "--compile-commands", str(db))
        self.assertEqual(code, 0, json.dumps(report.get("violations"),
                                             indent=2))
        layering = report["layering"]
        self.assertEqual(layering["violation_count"], 0)
        self.assertGreater(layering["edges_checked"], 400)
        self.assertIn("moga-model", layering["layers"])

    def test_layering_catches_upward_edge_and_orphan(self):
        code, report = run_lint(*self.layering_args())
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["layering", "layering"])
        messages = " ".join(v["message"] for v in report["violations"])
        self.assertIn("mid -> top", messages)    # the seeded upward edge
        self.assertIn("orphan", messages)        # claimed by no layer
        # The legal edges were checked and accepted.
        self.assertEqual(report["layering"]["edges_checked"], 4)

    def test_layering_rejects_cyclic_declaration(self):
        code, report = run_lint(*self.layering_args("layers_cyclic.toml"))
        self.assertEqual(code, 1)
        messages = " ".join(v["message"] for v in report["violations"])
        self.assertIn("cyclic", messages)

    def test_layers_requires_compile_commands(self):
        proc = subprocess.run(
            [sys.executable, str(LINTER), "--layers", "scripts/layers.toml"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        self.assertEqual(proc.returncode, 2)

    # ----- --validate-report --------------------------------------------

    def test_validate_report_round_trip(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "report.json"
            subprocess.run(
                [sys.executable, str(LINTER), "--json", "--output", str(out),
                 str(FIXTURES / "clean.cpp"), "--digest-audit"],
                capture_output=True, text=True, cwd=REPO_ROOT)
            proc = subprocess.run(
                [sys.executable, str(LINTER), "--validate-report", str(out)],
                capture_output=True, text=True, cwd=REPO_ROOT)
            self.assertEqual(proc.returncode, 0, proc.stderr)

            # A mangled report must fail validation.
            payload = json.loads(out.read_text())
            payload["schema"] = "anadex-lint/1"
            del payload["fixed_count"]
            out.write_text(json.dumps(payload))
            proc = subprocess.run(
                [sys.executable, str(LINTER), "--validate-report", str(out)],
                capture_output=True, text=True, cwd=REPO_ROOT)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("fixed_count", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
