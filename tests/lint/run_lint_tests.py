#!/usr/bin/env python3
"""Self-test for scripts/anadex_lint.py.

Runs the linter over the violation fixtures in tests/lint/fixtures/ and
asserts exact rule IDs, line numbers of first occurrence, suppression
accounting and exit codes from the --json report. Registered with ctest as
Lint.SelfTest.
"""

import json
import subprocess
import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINTER = REPO_ROOT / "scripts" / "anadex_lint.py"
FIXTURES = REPO_ROOT / "tests" / "lint" / "fixtures"


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--json", *args],
        capture_output=True, text=True, cwd=REPO_ROOT)
    report = json.loads(proc.stdout) if proc.stdout.strip() else {}
    return proc.returncode, report


def rules_of(report):
    return sorted(v["rule"] for v in report.get("violations", []))


def suppressed_rules_of(report):
    return sorted(v["rule"] for v in report.get("suppressed", []))


class LintFixtureTest(unittest.TestCase):
    def lint_fixture(self, name, pretend=None):
        args = [str(FIXTURES / name)]
        if pretend:
            args += ["--pretend-path", pretend]
        return run_lint(*args)

    def test_raw_random_fixture(self):
        code, report = self.lint_fixture("raw_random.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["random-device", "raw-random", "raw-random"])
        self.assertEqual(suppressed_rules_of(report), ["random-device"])

    def test_wall_clock_fixture(self):
        code, report = self.lint_fixture("wall_clock.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])
        self.assertEqual(suppressed_rules_of(report), ["wall-clock"])

    def test_wall_clock_fixture_exempt_under_obs(self):
        # The same file is clean when it lives in the telemetry layer.
        code, report = self.lint_fixture("wall_clock.cpp", pretend="src/obs")
        self.assertEqual(code, 0)
        self.assertEqual(rules_of(report), [])

    def test_det_unordered_fixture(self):
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/engine")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])
        self.assertEqual(suppressed_rules_of(report), ["det-unordered"])

    def test_det_unordered_only_in_deterministic_dirs(self):
        # src/sysdes (behavioral simulation, not a result path of the
        # optimizer) stays outside DETERMINISTIC_DIRS; src/circuit joined
        # the list with the SIMD batch kernels, see the device tests below.
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/sysdes")
        self.assertEqual(code, 0)

    def test_batch_kernel_clock_fixture_in_device(self):
        # src/device and src/circuit joined DETERMINISTIC_DIRS with the SoA
        # batch evaluator: lane kernels are result paths, so wall-clock
        # reads and hash-ordered dispatch are violations there.
        code, report = self.lint_fixture("batch_kernel_clock.cpp",
                                         pretend="src/device")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter",
                          "wall-clock", "wall-clock"])

    def test_batch_kernel_clock_fixture_in_engine_simd(self):
        code, report = self.lint_fixture("batch_kernel_clock.cpp",
                                         pretend="src/engine/simd")
        self.assertEqual(code, 1)
        self.assertIn("wall-clock", rules_of(report))
        self.assertIn("det-unordered", rules_of(report))

    def test_batch_kernel_clean_fixture(self):
        # Vectorization idiom (omp simd pragmas, masked commits) must not
        # trip the deterministic rules.
        code, report = self.lint_fixture("batch_kernel_clean.cpp",
                                         pretend="src/device")
        self.assertEqual(code, 0)
        self.assertEqual(report["violation_count"], 0)

    def test_det_unordered_applies_to_serve(self):
        # src/serve joined DETERMINISTIC_DIRS with the scheduler work:
        # admission order, slicing and result files are reproducibility
        # surfaces (docs/serve.md).
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/serve")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])

    def test_wall_clock_applies_to_serve(self):
        # The scheduler must slice by generation count, never wall clock.
        code, report = self.lint_fixture("wall_clock.cpp",
                                         pretend="src/serve")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])

    def test_det_unordered_applies_to_shard(self):
        # src/shard joined DETERMINISTIC_DIRS with the sharded runner: the
        # migrant exchange, merge order and canonical checkpoint are all
        # byte-identity surfaces (docs/sharding.md).
        code, report = self.lint_fixture("det_unordered.cpp",
                                         pretend="src/shard")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["det-unordered", "unordered-iter"])

    def test_wall_clock_applies_to_shard(self):
        # Epoch barriers poll by bounded attempt COUNT (steady sleeps are
        # fine); a wall-clock deadline would make shard failure detection
        # load-dependent and the drill flaky.
        code, report = self.lint_fixture("wall_clock.cpp",
                                         pretend="src/shard")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["wall-clock", "wall-clock"])

    def test_float_printf_fixture(self):
        code, report = self.lint_fixture("float_printf.cpp", pretend="src/expt")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["float-printf", "float-printf"])
        self.assertEqual(suppressed_rules_of(report), ["float-printf"])

    def test_float_printf_exempt_in_textio(self):
        code, report = self.lint_fixture("float_printf.cpp",
                                         pretend="src/common")
        # src/common/textio* is the exemption, src/common alone is not.
        self.assertEqual(code, 1)
        _, clean = run_lint(str(FIXTURES / "float_printf.cpp"),
                            "--pretend-path", "src/common/textio")
        # Pretend path puts the file at src/common/textio/<name>: exempt.
        self.assertEqual(rules_of(clean), [])

    def test_bad_header_fixture(self):
        code, report = self.lint_fixture("bad_header.hpp", pretend="src/moga")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report),
                         ["include-hygiene", "include-hygiene",
                          "include-hygiene", "pragma-once"])
        pragma = [v for v in report["violations"] if v["rule"] == "pragma-once"]
        self.assertEqual(pragma[0]["line"], 4)  # first code line

    def test_raw_assert_fixture(self):
        code, report = self.lint_fixture("raw_assert.cpp")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["raw-assert", "raw-assert"])
        self.assertEqual(suppressed_rules_of(report), ["raw-assert"])
        lines = sorted(v["line"] for v in report["violations"])
        self.assertEqual(lines, [2, 5])  # include + call, not static_assert

    def test_process_control_fixture(self):
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="src/engine")
        self.assertEqual(code, 1)
        self.assertEqual(rules_of(report), ["process-control"] * 3)
        self.assertEqual(suppressed_rules_of(report), ["process-control"])
        lines = sorted(v["line"] for v in report["violations"])
        self.assertEqual(lines, [8, 9, 10])  # signal, abort, exit

    def test_process_control_exempt_in_shutdown_module(self):
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="src/robust/shutdown")
        self.assertEqual(code, 0)
        self.assertEqual(rules_of(report), [])

    def test_process_control_exempt_in_tests(self):
        # Tests raise signals at themselves and use `signal` as a DSP name.
        code, report = self.lint_fixture("process_control.cpp",
                                         pretend="tests/common")
        self.assertEqual(code, 0)

    def test_clean_fixture(self):
        code, report = self.lint_fixture("clean.cpp", pretend="src/engine")
        self.assertEqual(code, 0)
        self.assertEqual(report["violation_count"], 0)

    def test_report_schema(self):
        code, report = self.lint_fixture("raw_assert.cpp")
        self.assertEqual(report["schema"], "anadex-lint/1")
        for key in ("files_scanned", "violation_count", "suppressed_count",
                    "violations", "suppressed"):
            self.assertIn(key, report)
        v = report["violations"][0]
        for key in ("rule", "path", "line", "message", "snippet"):
            self.assertIn(key, v)

    def test_fixtures_are_skipped_by_directory_walk(self):
        # Linting tests/ must not descend into the fixture corpus.
        code, report = run_lint("tests")
        self.assertEqual(code, 0, report.get("violations"))

    def test_full_tree_is_clean(self):
        code, report = run_lint()
        self.assertEqual(code, 0, json.dumps(report.get("violations"),
                                             indent=2))

    def test_usage_error_exit_code(self):
        proc = subprocess.run(
            [sys.executable, str(LINTER), "no/such/path"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
