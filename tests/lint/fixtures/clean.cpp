// Fixture: a fully conforming file — the self-test asserts exit code 0.
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

double clean_code() {
  std::map<int, int> ordered;
  ordered[1] = 2;
  double total = 0.0;
  for (const auto& kv : ordered) total += kv.second;
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("iterations=%d\n", 3);
  return total + std::chrono::duration<double>(t1 - t0).count();
}
