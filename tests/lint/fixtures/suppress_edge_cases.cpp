// Fixture: suppression-comment edge cases.
#include <cstdlib>

// Multi-rule suppression on the comment line above: both rules silenced.
// anadex-lint: allow(raw-random, raw-assert)
int multi() { return rand(); }  // also triggers nothing: raw-assert unused

// Suppression on the line above a statement that SPANS lines: the match
// lands on the line holding the pattern, so the comment must sit directly
// above THAT line, not above the statement start.
int spanning(int x) {
  int r =
      // anadex-lint: allow(raw-random)
      rand() +
      x;
  return r;
}

// Same-line multi-rule form.
int same_line() { return rand(); }  // anadex-lint: allow(raw-random, wall-clock)

// An unsuppressed occurrence so the fixture still fails overall.
int hot() { return rand(); }  // raw-random
