// Fixture: ambient environment reads (rule env-read).
#include <cstdlib>

const char* read_config() {
  const char* a = std::getenv("ANADEX_SECRET_TUNING");  // env-read
  const char* b = secure_getenv("ANADEX_OTHER");        // env-read
  // Documented escape hatch, justification lives in this comment.
  // anadex-lint: allow(env-read)
  const char* c = std::getenv("ANADEX_ALLOWED");
  return a ? a : (b ? b : c);
}

struct Env {
  // Declaring a member named getenv still matches the textual rule; only
  // member CALLS (through . -> ::) are structurally exempt.
  // anadex-lint: allow(env-read)
  const char* getenv(const char* k) { return k; }
};

const char* member_call() {
  Env env;
  return env.getenv("x");
}
