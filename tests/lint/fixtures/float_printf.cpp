// Fixture: %f-style float text in library code (rule float-printf).
// Linted with --pretend-path src/expt.
#include <cstdio>

void print_floats(double x) {
  std::printf("hv=%.17f\n", x);  // float-printf
  std::fprintf(stderr, "hv=%g\n", x);  // float-printf
  // Human-facing progress line, never parsed back.
  // anadex-lint: allow(float-printf)
  std::printf("progress %5.1f%%\n", x);
  std::printf("count=%d\n", 42);  // integer formatting is fine
}
