// Fixture: allow() naming rules the linter does not know
// (rule unknown-suppression).

// anadex-lint: allow(raw-randm)
int typo() { return 1; }  // unknown-suppression: 'raw-randm' is a typo

int mixed() { return 0; }  // anadex-lint: allow(raw-random, no-such-rule)

// The wildcard is deliberate vocabulary, not a typo.
int wildcard() { return 2; }  // anadex-lint: allow(*)
