// Fixture: raw assert usage (rule raw-assert).
#include <cassert>  // raw-assert

void check_positive(int x) {
  assert(x > 0);  // raw-assert
  // Transitional call site, tracked in a follow-up.
  // anadex-lint: allow(raw-assert)
  assert(x < 100);
  static_assert(sizeof(int) >= 4, "static_assert is a different beast");
}
