// Fixture: a conforming SoA lane kernel — fixed-width arrays, an omp simd
// hint and a masked Newton commit, no clocks or hash containers. The
// self-test asserts exit code 0 under --pretend-path src/device, proving
// the deterministic rules do not false-positive on vectorization idiom.
#include <cstddef>

namespace {
constexpr std::size_t kWidth = 8;
}  // namespace

double masked_newton_step(double* x, const double* f, const double* df) {
  double remaining = 0.0;
#pragma omp simd reduction(+ : remaining)
  for (std::size_t k = 0; k < kWidth; ++k) {
    const double step = f[k] / df[k];
    const double next = x[k] - step;
    const double conv = (step < 1e-12 && step > -1e-12) ? 1.0 : 0.0;
    x[k] = conv != 0.0 ? x[k] : next;
    remaining += 1.0 - conv;
  }
  return remaining;
}
