// Fixture: ambient C PRNG calls (rules raw-random, random-device).
#include <cstdlib>
#include <random>

int ambient_draw() {
  std::srand(42);                       // raw-random
  const int a = std::rand();            // raw-random
  std::random_device entropy;           // random-device
  // Justified in this fixture only. anadex-lint: allow(random-device)
  std::random_device suppressed_entropy;
  return a + static_cast<int>(entropy() + suppressed_entropy());
}

int not_a_violation(int operand) {
  // Identifiers merely ending in "rand" must not match.
  const int integrand = operand;
  return integrand;
}
