// Fixture: hash containers in deterministic paths (rules det-unordered,
// unordered-iter). Linted with --pretend-path src/engine.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

std::size_t hash_order_leak() {
  std::unordered_map<int, int> counts;  // det-unordered
  counts[1] = 2;
  std::size_t total = 0;
  for (const auto& kv : counts) {  // unordered-iter
    total += static_cast<std::size_t>(kv.second);
  }
  // Keyed access only; order cannot leak. anadex-lint: allow(det-unordered)
  std::unordered_set<int> seen;
  seen.insert(3);
  return total + seen.size();
}
