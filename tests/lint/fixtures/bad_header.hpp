// Fixture: header hygiene violations (rules pragma-once, include-hygiene).
// Linted with --pretend-path src/moga. The first code line below lands
// before any #pragma once, so the pragma-once rule fires there.
#include "../common/math.hpp"  // include-hygiene (relative)
#include "series.hpp"          // include-hygiene (bare)

using namespace std;  // include-hygiene (using-namespace)

inline int fixture_value() { return 1; }
