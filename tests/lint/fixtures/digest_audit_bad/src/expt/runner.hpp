#pragma once
// Fixture: mirrored RunSettings carrying novel_field, which the mirrored
// registry does NOT classify — the seeded digest-coverage violation.
#include <cstdint>

#include "engine/eval_knobs.hpp"

namespace anadex::expt {

struct RunSettings : engine::EvalKnobs {
  int spec = 0;
  std::uint64_t seed = 1;
  std::size_t novel_field = 0;
};

std::string run_config_digest(const RunSettings& settings);

}  // namespace anadex::expt
