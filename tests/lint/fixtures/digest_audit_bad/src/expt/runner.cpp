// Fixture: a hand-rolled digest serializer that stopped expanding the
// registry macro — drift the audit must catch.
#include "expt/runner.hpp"

namespace anadex::expt {

std::string run_config_digest(const RunSettings& settings) {
  return "seed=" + std::to_string(settings.seed);
}

}  // namespace anadex::expt
