#pragma once
// Fixture: a registry that has drifted from its RunSettings — it misses
// the struct's novel_field, registers a ghost_flag no field backs, and
// declares a --ghost CLI flag the mirrored CLI never wires.

// clang-format off
#define ANADEX_RUN_SETTINGS_REGISTRY(META, DIGEST, KNOB, SEAM) \
  META(seed, "seed")                                           \
  DIGEST(spec, "spec", "spec")                                 \
  KNOB(threads, "threads")                                     \
  KNOB(ghost_flag, "ghost")
// clang-format on
