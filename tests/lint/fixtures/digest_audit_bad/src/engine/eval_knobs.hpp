#pragma once
// Fixture: mirrored EvalKnobs for the digest-audit failure test.
#include <cstddef>

namespace anadex::engine {

struct EvalKnobs {
  std::size_t threads = 1;
};

}  // namespace anadex::engine
