// Fixture: mirrored CLI that wires seed, spec and threads but never the
// fourth flag the mirrored registry declares.
int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const char* known[] = {"seed", "spec", "threads"};
  return known[0] != nullptr ? 0 : 1;
}
