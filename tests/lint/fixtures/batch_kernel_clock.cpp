// Fixture: wall-clock reads and hash containers inside SoA lane-kernel
// code (rules wall-clock, det-unordered). src/device and src/circuit
// joined DETERMINISTIC_DIRS with the SIMD batch evaluator: the lane
// kernels are result paths, so timing-based lane selection or
// hash-ordered lane dispatch would break scalar/SIMD bit-identity.
// Linted with --pretend-path src/device (and src/engine/simd).
#include <chrono>
#include <cstddef>
#include <unordered_map>

double lane_budget_leak(const double* vgs, std::size_t width) {
  const auto start = std::chrono::system_clock::now();  // wall-clock
  std::unordered_map<std::size_t, double> by_lane;      // det-unordered
  double sum = 0.0;
  for (std::size_t k = 0; k < width; ++k) {
    by_lane[k] = vgs[k];
  }
  for (const auto& kv : by_lane) {  // unordered-iter
    sum += kv.second;
  }
  const auto elapsed = std::chrono::system_clock::now() - start;  // wall-clock
  return sum + std::chrono::duration<double>(elapsed).count();
}
