// Fixture for the process-control rule: raw teardown/signal calls that
// bypass src/robust/shutdown*. Linted with --pretend-path src/engine
// (three violations + one suppression) and tests/common (exempt).
#include <csignal>
#include <cstdlib>

void hard_stop(int code) {
  std::signal(SIGTERM, SIG_DFL);
  std::abort();
  exit(code);
}

void justified_crash_point() {
  // The chaos harness's injected crash must bypass destructors.
  _exit(3);  // anadex-lint: allow(process-control)
}

struct Simulator {
  int exit_code = 0;
  void shutdown();
};

void fine(Simulator& sim) {
  sim.shutdown();        // member calls are not process teardown
  sim.exit_code = 130;   // nor is a field that merely mentions exit
}
