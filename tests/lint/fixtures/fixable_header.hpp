// Fixture: mechanically fixable header — missing #pragma once and two
// relative includes. The --fix self-test copies this file to a temp dir,
// fixes it under --pretend-path src/moga, and asserts the result below.
#include "../common/check.hpp"
#include "./neighbor.hpp"
#include <vector>

namespace anadex::fixture {
inline int fixable() { return 1; }
}  // namespace anadex::fixture
