#pragma once
// Fixture: bottom layer, includes nothing of ours.
#include <cstddef>

inline std::size_t util() { return 0; }
