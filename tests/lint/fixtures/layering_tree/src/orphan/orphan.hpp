#pragma once
// Fixture: a file claimed by NO layer — including it is a violation.
inline int orphan() { return -1; }
