#pragma once
// Fixture: the mid layer. The base include is legal; the top include is
// the seeded UPWARD edge; the orphan include hits a file no layer claims.
#include "base/util.hpp"
#include "top/app.hpp"
#include "orphan/orphan.hpp"

inline std::size_t mid() { return util(); }
