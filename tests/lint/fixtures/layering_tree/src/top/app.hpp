#pragma once
// Fixture: the top layer — may see everything below it.
#include "base/util.hpp"

inline std::size_t app() { return util(); }
