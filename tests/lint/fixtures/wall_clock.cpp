// Fixture: wall-clock reads outside src/obs/ (rule wall-clock).
#include <chrono>
#include <ctime>

double wall_reads() {
  const std::time_t t = std::time(nullptr);  // wall-clock
  const auto now = std::chrono::system_clock::now();  // wall-clock
  // anadex-lint: allow(wall-clock)
  const auto suppressed = std::chrono::system_clock::now();
  return static_cast<double>(t) + std::chrono::duration<double>(
      now.time_since_epoch() + suppressed.time_since_epoch()).count();
}

double monotonic_ok() {
  // steady_clock is monotonic and only ever used for durations: fine.
  const auto a = std::chrono::steady_clock::now();
  const auto b = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(b - a).count();
}
