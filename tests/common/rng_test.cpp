#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace anadex {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  // splitmix64 seeding must not leave the all-zero state xoshiro can't escape.
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(rng());
  EXPECT_GT(values.size(), 60u);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.25);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(1.0, 0.0), PreconditionError);
}

TEST(Rng, UniformDegenerateRangeReturnsBound) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(4.0, 4.0), 4.0);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_GT(c, 700);   // roughly uniform: expectation 1000
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(Rng, UniformIndexOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sq_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq_sum += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq_sum / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScalesAndShifts) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyTracksProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and run
  EXPECT_EQ(v.size(), 5u);
}

/// Property sweep: moments hold across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndFillsIt) {
  Rng rng(GetParam());
  double lo_seen = 1.0;
  double hi_seen = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo_seen = std::min(lo_seen, u);
    hi_seen = std::max(hi_seen, u);
  }
  EXPECT_LT(lo_seen, 0.05);
  EXPECT_GT(hi_seen, 0.95);
}

TEST_P(RngSeedSweep, NormalSpareCacheKeepsMomentsStable) {
  Rng rng(GetParam());
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.normal();
  EXPECT_NEAR(sum / 20000.0, 0.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL, 1234567ULL,
                                           0xDEADBEEFULL, ~0ULL));

}  // namespace
}  // namespace anadex
