#include "common/series.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex {
namespace {

Series make_sample() {
  Series s("sample", {"x", "y"});
  s.add_row({3.0, 30.0});
  s.add_row({1.0, 10.0});
  s.add_row({2.0, 20.0});
  return s;
}

TEST(Series, ConstructionExposesMetadata) {
  const Series s = make_sample();
  EXPECT_EQ(s.title(), "sample");
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.num_rows(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.column_names()[1], "y");
}

TEST(Series, EmptySeriesReportsEmpty) {
  const Series s("t", {"a"});
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.num_rows(), 0u);
}

TEST(Series, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Series("t", {}), PreconditionError);
}

TEST(Series, AddRowValidatesWidth) {
  Series s("t", {"a", "b"});
  EXPECT_THROW(s.add_row({1.0}), PreconditionError);
  EXPECT_THROW(s.add_row({1.0, 2.0, 3.0}), PreconditionError);
}

TEST(Series, AtIsBoundsChecked) {
  const Series s = make_sample();
  EXPECT_EQ(s.at(0, 1), 30.0);
  EXPECT_THROW(s.at(3, 0), PreconditionError);
  EXPECT_THROW(s.at(0, 2), PreconditionError);
}

TEST(Series, RowAccess) {
  const Series s = make_sample();
  EXPECT_EQ(s.row(1), (std::vector<double>{1.0, 10.0}));
  EXPECT_THROW(s.row(9), PreconditionError);
}

TEST(Series, ColumnExtraction) {
  const Series s = make_sample();
  EXPECT_EQ(s.column(0), (std::vector<double>{3.0, 1.0, 2.0}));
  EXPECT_THROW(s.column(5), PreconditionError);
}

TEST(Series, ColumnIndexByName) {
  const Series s = make_sample();
  EXPECT_EQ(s.column_index("x"), 0u);
  EXPECT_EQ(s.column_index("y"), 1u);
  EXPECT_THROW(s.column_index("z"), PreconditionError);
}

TEST(Series, SortByReordersRows) {
  Series s = make_sample();
  s.sort_by(0);
  EXPECT_EQ(s.column(0), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(s.column(1), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(Series, SortIsStable) {
  Series s("t", {"k", "v"});
  s.add_row({1.0, 1.0});
  s.add_row({1.0, 2.0});
  s.add_row({0.0, 3.0});
  s.sort_by(0);
  EXPECT_EQ(s.column(1), (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(Series, CsvOutputHasHeaderAndRows) {
  Series s("t", {"a", "b"});
  s.add_row({1.5, -2.0});
  std::ostringstream os;
  s.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1.5,-2\n");
}

TEST(Series, TableOutputMentionsTitleAndColumns) {
  const Series s = make_sample();
  std::ostringstream os;
  s.write_table(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("sample"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("30"), std::string::npos);
}

}  // namespace
}  // namespace anadex
