#include "common/fft.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Fft, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6);
  EXPECT_THROW(fft(data), PreconditionError);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<std::complex<double>> data{{3.0, -1.0}};
  fft(data);
  EXPECT_EQ(data[0], std::complex<double>(3.0, -1.0));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& bin : data) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantGivesDcOnly) {
  std::vector<std::complex<double>> data(16, {2.0, 0.0});
  fft(data);
  EXPECT_NEAR(data[0].real(), 32.0, 1e-9);
  for (std::size_t k = 1; k < data.size(); ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9);
  }
}

TEST(Fft, PureSineLandsInItsBin) {
  const std::size_t n = 64;
  const std::size_t cycles = 5;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = static_cast<double>(cycles * i) / static_cast<double>(n);
    data[i] = std::sin(2.0 * kPi * phase);
  }
  fft(data);
  // Peak magnitude n/2 at bins +-cycles; near zero elsewhere.
  EXPECT_NEAR(std::abs(data[cycles]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - cycles]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[cycles + 2]), 0.0, 1e-9);
}

TEST(Fft, LinearityHolds) {
  const std::size_t n = 32;
  std::vector<std::complex<double>> a(n);
  std::vector<std::complex<double>> b(n);
  std::vector<std::complex<double>> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    a[i] = std::cos(2.0 * kPi * 3.0 * x);
    b[i] = std::sin(2.0 * kPi * 7.0 * x);
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(sum[k] - (a[k] + 2.0 * b[k])), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConserved) {
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    const double v = std::sin(0.37 * x) + 0.5 * std::cos(1.1 * x);
    data[i] = v;
    time_energy += v * v;
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& bin : data) freq_energy += std::norm(bin);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6 * time_energy);
}

TEST(PowerSpectrum, SizeAndValidation) {
  std::vector<double> signal(64, 1.0);
  EXPECT_EQ(power_spectrum_hann(signal).size(), 33u);
  std::vector<double> bad(5);
  EXPECT_THROW(power_spectrum_hann(bad), PreconditionError);
}

TEST(PowerSpectrum, SinePeaksAtItsBin) {
  const std::size_t n = 256;
  std::vector<double> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = std::sin(2.0 * kPi * 17.0 * static_cast<double>(i) / static_cast<double>(n));
  }
  const auto spectrum = power_spectrum_hann(signal);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[peak]) peak = k;
  }
  EXPECT_EQ(peak, 17u);
}

TEST(Sndr, CleanSineScoresHigh) {
  const std::size_t n = 1024;
  std::vector<double> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = std::sin(2.0 * kPi * 31.0 * static_cast<double>(i) / static_cast<double>(n));
  }
  EXPECT_GT(sndr_db(signal, 31, n / 2), 100.0);
}

TEST(Sndr, AddedNoiseLowersScore) {
  const std::size_t n = 1024;
  std::vector<double> clean(n);
  std::vector<double> noisy(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    const double s = std::sin(2.0 * kPi * 31.0 * x);
    clean[i] = s;
    noisy[i] = s + 0.01 * std::sin(2.0 * kPi * 97.0 * x);
  }
  EXPECT_GT(sndr_db(clean, 31, n / 2), sndr_db(noisy, 31, n / 2));
}

TEST(Sndr, ToneOutsideBandIgnored) {
  const std::size_t n = 1024;
  std::vector<double> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    signal[i] = std::sin(2.0 * kPi * 31.0 * x) + 0.5 * std::sin(2.0 * kPi * 400.0 * x);
  }
  // Band limited to bin 64: the big bin-400 tone must not count as noise.
  EXPECT_GT(sndr_db(signal, 31, 64), 80.0);
}

TEST(Sndr, Validation) {
  std::vector<double> signal(64, 0.0);
  EXPECT_THROW(sndr_db(signal, 2, 32), PreconditionError);   // inside DC skirt
  EXPECT_THROW(sndr_db(signal, 10, 64), PreconditionError);  // beyond Nyquist bins
  EXPECT_THROW(sndr_db(signal, 30, 20), PreconditionError);  // signal outside band
}

}  // namespace
}  // namespace anadex
