#include "common/ascii_plot.hpp"

#include <limits>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex {
namespace {

TEST(AsciiPlot, RendersGlyphAndLegend) {
  PlotSeries s;
  s.label = "data";
  s.glyph = '#';
  s.x = {0.0, 1.0};
  s.y = {0.0, 1.0};
  PlotOptions opts;
  opts.title = "my plot";
  opts.x_label = "xs";
  const std::string out = render_scatter({s}, opts);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("my plot"), std::string::npos);
  EXPECT_NE(out.find("xs"), std::string::npos);
  EXPECT_NE(out.find("'#' = data"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesListStillRenders) {
  const std::string out = render_scatter({}, PlotOptions{});
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

TEST(AsciiPlot, SinglePointDegenerateRangeHandled) {
  PlotSeries s;
  s.x = {2.0};
  s.y = {3.0};
  const std::string out = render_scatter({s}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, NonFinitePointsSkipped) {
  PlotSeries s;
  s.x = {0.0, std::numeric_limits<double>::quiet_NaN(),
         std::numeric_limits<double>::infinity()};
  s.y = {0.0, 1.0, 1.0};
  const std::string out = render_scatter({s}, PlotOptions{});
  EXPECT_NE(out.find('*'), std::string::npos);  // the finite point renders
}

TEST(AsciiPlot, MismatchedSizesRejected) {
  PlotSeries s;
  s.x = {0.0, 1.0};
  s.y = {0.0};
  EXPECT_THROW(render_scatter({s}, PlotOptions{}), PreconditionError);
}

TEST(AsciiPlot, TooSmallAreaRejected) {
  PlotOptions opts;
  opts.width = 2;
  EXPECT_THROW(render_scatter({}, opts), PreconditionError);
}

TEST(AsciiPlot, LaterSeriesOverwriteEarlier) {
  PlotSeries a;
  a.glyph = 'a';
  a.x = {0.5};
  a.y = {0.5};
  PlotSeries b;
  b.glyph = 'b';
  b.x = {0.5};
  b.y = {0.5};
  const std::string out = render_scatter({a, b}, PlotOptions{});
  // Same cell: only the later glyph survives in the plot body (the legend
  // still mentions both).
  const auto legend_pos = out.find("legend:");
  EXPECT_EQ(out.substr(0, legend_pos).find('a'), std::string::npos);
  EXPECT_NE(out.substr(0, legend_pos).find('b'), std::string::npos);
}

TEST(AsciiPlot, AxisRangesPrinted) {
  PlotSeries s;
  s.x = {-2.0, 4.0};
  s.y = {10.0, 20.0};
  const std::string out = render_scatter({s}, PlotOptions{});
  EXPECT_NE(out.find("-2"), std::string::npos);
  EXPECT_NE(out.find("4"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

}  // namespace
}  // namespace anadex
