#include "common/math.hpp"

#include <gtest/gtest.h>

namespace anadex {
namespace {

TEST(MathHelpers, Square) {
  EXPECT_EQ(sq(3.0), 9.0);
  EXPECT_EQ(sq(-2.0), 4.0);
  EXPECT_EQ(sq(0.0), 0.0);
}

TEST(MathHelpers, Lerp) {
  EXPECT_EQ(lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_EQ(lerp(0.0, 10.0, 1.0), 10.0);
  EXPECT_EQ(lerp(0.0, 10.0, 0.5), 5.0);
  EXPECT_EQ(lerp(5.0, 5.0, 0.7), 5.0);
}

TEST(MathHelpers, ApproxEqualRelative) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
}

TEST(MathHelpers, ApproxEqualAbsoluteNearZero) {
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_FALSE(approx_equal(0.0, 1e-6));
  EXPECT_TRUE(approx_equal(0.0, 1e-6, 0.0, 1e-5));
}

TEST(MathHelpers, AmplitudeDb) {
  EXPECT_NEAR(amplitude_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_db(1.0), 0.0, 1e-12);
  EXPECT_EQ(amplitude_db(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(amplitude_db(-1.0), -std::numeric_limits<double>::infinity());
}

TEST(MathHelpers, PowerDb) {
  EXPECT_NEAR(power_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(power_db(2.0), 3.0103, 1e-3);
  EXPECT_EQ(power_db(0.0), -std::numeric_limits<double>::infinity());
}

TEST(MathHelpers, PhysicalConstants) {
  EXPECT_NEAR(kBoltzmann, 1.380649e-23, 1e-28);
  EXPECT_EQ(kRoomTempK, 300.0);
}

}  // namespace
}  // namespace anadex
