#include "common/args.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex {
namespace {

ArgParser parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const auto args = parse({});
  EXPECT_TRUE(args.positionals().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(Args, PositionalsInOrder) {
  const auto args = parse({"explore", "extra"});
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[0], "explore");
  EXPECT_EQ(args.positionals()[1], "extra");
}

TEST(Args, OptionWithValue) {
  const auto args = parse({"--algo", "sacga"});
  EXPECT_TRUE(args.has("algo"));
  EXPECT_EQ(args.get("algo", "x"), "sacga");
}

TEST(Args, MissingOptionFallsBack) {
  const auto args = parse({});
  EXPECT_EQ(args.get("algo", "default"), "default");
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(Args, IntegerParsing) {
  const auto args = parse({"--n", "123", "--neg", "-7"});
  EXPECT_EQ(args.get_int("n", 0), 123);
  EXPECT_EQ(args.get_int("neg", 0), -7);
}

TEST(Args, IntegerRejectsGarbage) {
  const auto args = parse({"--n", "12x"});
  EXPECT_THROW(args.get_int("n", 0), PreconditionError);
}

TEST(Args, DoubleParsing) {
  const auto args = parse({"--x", "2.5e-3"});
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5e-3);
}

TEST(Args, DoubleRejectsGarbage) {
  const auto args = parse({"--x", "abc"});
  EXPECT_THROW(args.get_double("x", 0.0), PreconditionError);
}

TEST(Args, BareFlagDetected) {
  const auto args = parse({"--verbose", "--n", "3"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_FALSE(args.get_flag("quiet"));
}

TEST(Args, FlagWithValueRejectedByGetFlag) {
  const auto args = parse({"--verbose", "yes"});
  EXPECT_THROW(args.get_flag("verbose"), PreconditionError);
}

TEST(Args, ValueGetterRejectsBareFlag) {
  const auto args = parse({"--csv"});
  EXPECT_THROW(args.get("csv", ""), PreconditionError);
}

TEST(Args, FlagFollowedByOptionParsesAsFlag) {
  const auto args = parse({"--history", "--seed", "9"});
  EXPECT_TRUE(args.get_flag("history"));
  EXPECT_EQ(args.get_int("seed", 0), 9);
}

TEST(Args, DuplicateOptionRejected) {
  std::vector<const char*> argv{"prog", "--n", "1", "--n", "2"};
  EXPECT_THROW(ArgParser(static_cast<int>(argv.size()), argv.data()), PreconditionError);
}

TEST(Args, EmptyOptionNameRejected) {
  std::vector<const char*> argv{"prog", "--"};
  EXPECT_THROW(ArgParser(static_cast<int>(argv.size()), argv.data()), PreconditionError);
}

TEST(Args, UnusedOptionsReported) {
  const auto args = parse({"--used", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("used", 0), 1);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, NegativeNumberIsValueNotOption) {
  const auto args = parse({"--delta", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), -3.5);
}

}  // namespace
}  // namespace anadex
