#include "common/check.hpp"

#include <string>

#include <gtest/gtest.h>

namespace anadex {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(ANADEX_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(ANADEX_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "bug"), InvariantError);
}

TEST(Check, PreconditionIsAnInvalidArgument) {
  // Callers may catch the standard hierarchy.
  EXPECT_THROW(ANADEX_REQUIRE(false, "x"), std::invalid_argument);
}

TEST(Check, InvariantIsALogicError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "x"), std::logic_error);
}

TEST(Check, MessageContainsExpressionFileAndText) {
  try {
    ANADEX_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, InvariantMessageContainsExpressionFileAndText) {
  try {
    ANADEX_ASSERT(0 == 1, "zero is not one");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 == 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("zero is not one"), std::string::npos);
  }
}

TEST(Check, RequireAcceptsComposedStringMessages) {
  const std::string name = "gamma";
  try {
    ANADEX_REQUIRE(false, "bad knob '" + name + "'");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("bad knob 'gamma'"), std::string::npos);
  }
}

TEST(Check, FailurePathLeavesProgramRecoverable) {
  // The guard/checkpoint layers rely on REQUIRE failures being ordinary
  // exceptions: catch, inspect, continue.
  int recovered = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      ANADEX_REQUIRE(i == 99, "never true");
    } catch (const PreconditionError&) {
      ++recovered;
    }
  }
  EXPECT_EQ(recovered, 3);
}

TEST(Check, SideEffectsInConditionEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  ANADEX_REQUIRE(bump(), "called once");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace anadex
