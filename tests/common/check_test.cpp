#include "common/check.hpp"

#include <string>

#include <gtest/gtest.h>

namespace anadex {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(ANADEX_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(ANADEX_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "bug"), InvariantError);
}

TEST(Check, PreconditionIsAnInvalidArgument) {
  // Callers may catch the standard hierarchy.
  EXPECT_THROW(ANADEX_REQUIRE(false, "x"), std::invalid_argument);
}

TEST(Check, InvariantIsALogicError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "x"), std::logic_error);
}

TEST(Check, MessageContainsExpressionFileAndText) {
  try {
    ANADEX_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, InvariantMessageContainsExpressionFileAndText) {
  try {
    ANADEX_ASSERT(0 == 1, "zero is not one");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0 == 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("zero is not one"), std::string::npos);
  }
}

TEST(Check, RequireAcceptsComposedStringMessages) {
  const std::string name = "gamma";
  try {
    ANADEX_REQUIRE(false, "bad knob '" + name + "'");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("bad knob 'gamma'"), std::string::npos);
  }
}

TEST(Check, FailurePathLeavesProgramRecoverable) {
  // The guard/checkpoint layers rely on REQUIRE failures being ordinary
  // exceptions: catch, inspect, continue.
  int recovered = 0;
  for (int i = 0; i < 3; ++i) {
    try {
      ANADEX_REQUIRE(i == 99, "never true");
    } catch (const PreconditionError&) {
      ++recovered;
    }
  }
  EXPECT_EQ(recovered, 3);
}

TEST(Check, SideEffectsInConditionEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  ANADEX_REQUIRE(bump(), "called once");
  EXPECT_EQ(calls, 1);
}

TEST(Check, MessageContainsLineNumber) {
  int line = 0;
  try {
    line = __LINE__ + 1;
    ANADEX_ASSERT(false, "pinpoint me");
    FAIL() << "should have thrown";
  } catch (const InvariantError& e) {
    // The exact line rides next to the file name (file:line form), which is
    // what makes a field-reported invariant failure actionable.
    const std::string what = e.what();
    EXPECT_NE(what.find("check_test.cpp:" + std::to_string(line)), std::string::npos);
  }
}

TEST(Check, InvariantGateMatchesBuildFlag) {
  // kCheckInvariants and the preprocessor gate must agree — the CMake
  // option defines ANADEX_CHECK_INVARIANTS and everything keys off that.
#ifdef ANADEX_CHECK_INVARIANTS
  EXPECT_TRUE(kCheckInvariants);
#else
  EXPECT_FALSE(kCheckInvariants);
#endif
  EXPECT_EQ(kCheckInvariants, ANADEX_CHECK_INVARIANTS_ENABLED != 0);
}

TEST(Check, CheckInvariantThrowsOnlyWhenEnabled) {
  if (kCheckInvariants) {
    EXPECT_THROW(ANADEX_CHECK_INVARIANT(false, "enabled build"), InvariantError);
  } else {
    EXPECT_NO_THROW(ANADEX_CHECK_INVARIANT(false, "disabled build"));
  }
  // Passing conditions never throw in either configuration.
  EXPECT_NO_THROW(ANADEX_CHECK_INVARIANT(true, "fine"));
}

TEST(Check, CheckInvariantConditionNotEvaluatedWhenDisabled) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  ANADEX_CHECK_INVARIANT(bump(), "maybe evaluated");
  EXPECT_EQ(calls, kCheckInvariants ? 1 : 0);
}

}  // namespace
}  // namespace anadex
