#include "common/check.hpp"

#include <string>

#include <gtest/gtest.h>

namespace anadex {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(ANADEX_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(ANADEX_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "bug"), InvariantError);
}

TEST(Check, PreconditionIsAnInvalidArgument) {
  // Callers may catch the standard hierarchy.
  EXPECT_THROW(ANADEX_REQUIRE(false, "x"), std::invalid_argument);
}

TEST(Check, InvariantIsALogicError) {
  EXPECT_THROW(ANADEX_ASSERT(false, "x"), std::logic_error);
}

TEST(Check, MessageContainsExpressionFileAndText) {
  try {
    ANADEX_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, SideEffectsInConditionEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  ANADEX_REQUIRE(bump(), "called once");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace anadex
