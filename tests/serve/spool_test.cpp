// Spool-directory protocol: deterministic request ordering, claim-by-rename
// and atomic result files.
#include "serve/spool.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/check.hpp"

namespace anadex::serve {
namespace {

namespace fs = std::filesystem;

fs::path fresh_spool(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("anadex_spool_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void drop(const fs::path& dir, const std::string& name, const std::string& text) {
  std::ofstream out(dir / name);
  out << text;
}

TEST(Spool, PendingRequestsAreSortedByFilename) {
  const fs::path dir = fresh_spool("order");
  drop(dir, "b.job", "{}");
  drop(dir, "a.job", "{}");
  drop(dir, "c.job", "{}");
  drop(dir, "ignored.txt", "{}");
  drop(dir, "claimed.job.taken", "{}");
  const auto requests = pending_requests(dir);
  ASSERT_EQ(requests.size(), 3u);
  EXPECT_EQ(requests[0].filename(), "a.job");
  EXPECT_EQ(requests[1].filename(), "b.job");
  EXPECT_EQ(requests[2].filename(), "c.job");
}

TEST(Spool, TakenRequestsAreSortedAndExcludePendingOnes) {
  const fs::path dir = fresh_spool("taken");
  drop(dir, "b.job.taken", "{}");
  drop(dir, "a.job.taken", "{}");
  drop(dir, "fresh.job", "{}");
  drop(dir, "a.result.json", "{}");
  drop(dir, ".job.taken", "{}");  // no stem: not a claimed request
  const auto taken = taken_requests(dir);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].filename(), "a.job.taken");
  EXPECT_EQ(taken[1].filename(), "b.job.taken");
}

TEST(Spool, PendingRequestsRequiresADirectory) {
  EXPECT_THROW(pending_requests(fs::path(testing::TempDir()) / "no_such_dir"),
               PreconditionError);
}

TEST(Spool, ClaimRenamesTheRequest) {
  const fs::path dir = fresh_spool("claim");
  drop(dir, "x.job", "payload");
  const fs::path taken = claim_request(dir / "x.job");
  EXPECT_EQ(taken.filename(), "x.job.taken");
  EXPECT_FALSE(fs::exists(dir / "x.job"));
  EXPECT_TRUE(fs::exists(taken));
  EXPECT_TRUE(pending_requests(dir).empty());
  EXPECT_EQ(read_request_line(taken), "payload");
}

TEST(Spool, ReadRequestLineStripsCrAndRejectsEmpty) {
  const fs::path dir = fresh_spool("read");
  drop(dir, "crlf.job", "{\"id\":\"a\"}\r\nsecond line ignored\n");
  EXPECT_EQ(read_request_line(dir / "crlf.job"), "{\"id\":\"a\"}");
  drop(dir, "empty.job", "");
  EXPECT_THROW(read_request_line(dir / "empty.job"), PreconditionError);
  EXPECT_THROW(read_request_line(dir / "missing.job"), PreconditionError);
}

TEST(Spool, ResultFileRoundTrip) {
  const fs::path dir = fresh_spool("result");
  JobResult result;
  result.id = "j1";
  result.state = "done";
  result.has_outcome = true;
  result.outcome.generations = 20;
  result.outcome.evaluations = 340;
  result.outcome.distinct_evaluations = 300;
  result.outcome.cache_hits = 40;
  result.outcome.front_area = 12.5;
  result.outcome.hypervolume_norm = 0.75;
  result.outcome.front = {{1.5e-3, 4.0e-12}, {2.5e-3, 3.0e-12}};
  write_result_file(dir, result);

  std::ifstream in(result_path(dir, "j1"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "{\"id\":\"j1\",\"state\":\"done\",\"generations\":20,"
            "\"evaluations\":340,\"distinct_evaluations\":300,"
            "\"cache_hits\":40,\"interrupted\":false,\"front_area\":12.5,"
            "\"hypervolume_norm\":0.75,"
            "\"front\":[[0.0015,4e-12],[0.0025,3e-12]]}");
  EXPECT_FALSE(fs::exists(dir / "j1.result.json.tmp")) << "temp file left behind";
}

TEST(Spool, RejectionResultCarriesErrorAndNoMetrics) {
  const fs::path dir = fresh_spool("reject");
  JobResult result;
  result.id = "nope";
  result.state = "rejected";
  result.error = "job request: unknown key \"bogus\"";
  write_result_file(dir, result);
  std::ifstream in(result_path(dir, "nope"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "{\"id\":\"nope\",\"state\":\"rejected\","
            "\"error\":\"job request: unknown key \\\"bogus\\\"\"}");
}

TEST(Spool, ResultFileRequiresSafeId) {
  JobResult result;
  result.id = "../escape";
  result.state = "done";
  EXPECT_THROW(write_result_file(fresh_spool("unsafe"), result), PreconditionError);
}

}  // namespace
}  // namespace anadex::serve
