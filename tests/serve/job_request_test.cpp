// Strict spool-protocol parser: the accept table pins the full key set and
// the reject table pins the failure modes (unknown/duplicate keys, missing
// required keys, bad enums, malformed JSON) with their diagnostics.
#include "serve/job_request.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"

namespace anadex::serve {
namespace {

TEST(ValidJobId, Table) {
  EXPECT_TRUE(valid_job_id("a"));
  EXPECT_TRUE(valid_job_id("night-sweep_3.retry"));
  EXPECT_TRUE(valid_job_id(std::string(64, 'x')));
  EXPECT_FALSE(valid_job_id(""));
  EXPECT_FALSE(valid_job_id(std::string(65, 'x')));
  EXPECT_FALSE(valid_job_id(".hidden"));
  EXPECT_FALSE(valid_job_id("has space"));
  EXPECT_FALSE(valid_job_id("sl/ash"));
  EXPECT_FALSE(valid_job_id("uni\xc3\xa7ode"));
}

TEST(ParseJobRequest, MinimalRequest) {
  const JobRequest r =
      parse_job_request(R"({"id":"j1","algo":"tpg","spec":"chosen"})");
  EXPECT_EQ(r.id, "j1");
  EXPECT_EQ(r.settings.algo, expt::Algo::TPG);
  // Untouched knobs keep RunSettings defaults.
  const expt::RunSettings defaults;
  EXPECT_EQ(r.settings.population, defaults.population);
  EXPECT_EQ(r.settings.seed, defaults.seed);
  EXPECT_FALSE(r.settings.engine.shared());
  EXPECT_TRUE(r.settings.checkpoint_path.empty());
}

TEST(ParseJobRequest, EveryKnob) {
  const JobRequest r = parse_job_request(
      R"({"id":"full","algo":"mesacga","spec":3,"population":48,)"
      R"("generations":120,"partitions":6,"islands":3,"migration_interval":7,)"
      R"("weight_count":9,"phase1_cap":30,"span":4,"seed":42,)"
      R"("mesacga_schedule":[6,3,1],"record_history":true,"history_stride":10})");
  EXPECT_EQ(r.id, "full");
  EXPECT_EQ(r.settings.algo, expt::Algo::MESACGA);
  EXPECT_EQ(r.settings.population, 48u);
  EXPECT_EQ(r.settings.generations, 120u);
  EXPECT_EQ(r.settings.partitions, 6u);
  EXPECT_EQ(r.settings.islands, 3u);
  EXPECT_EQ(r.settings.migration_interval, 7u);
  EXPECT_EQ(r.settings.weight_count, 9u);
  EXPECT_EQ(r.settings.phase1_cap, 30u);
  EXPECT_EQ(r.settings.span, 4u);
  EXPECT_EQ(r.settings.seed, 42u);
  EXPECT_EQ(r.settings.mesacga_schedule, (std::vector<std::size_t>{6, 3, 1}));
  EXPECT_TRUE(r.settings.record_history);
  EXPECT_EQ(r.settings.history_stride, 10u);
}

TEST(ParseJobRequest, AlgoVocabularyMatchesCli) {
  using expt::Algo;
  const std::vector<std::pair<std::string, Algo>> table = {
      {"tpg", Algo::TPG},           {"nsga2", Algo::TPG},
      {"localonly", Algo::LocalOnly}, {"sacga", Algo::SACGA},
      {"mesacga", Algo::MESACGA},   {"island", Algo::Island},
      {"wsum", Algo::WeightedSum},  {"spea2", Algo::SPEA2},
  };
  for (const auto& [name, algo] : table) {
    const JobRequest r = parse_job_request(
        R"({"id":"a","algo":")" + name + R"(","spec":"chosen"})");
    EXPECT_EQ(r.settings.algo, algo) << name;
  }
}

TEST(ParseJobRequest, ToleratesWhitespaceAndKeyOrder) {
  const JobRequest r = parse_job_request(
      " { \"spec\" : 1 ,\t\"id\" : \"ws\" , \"algo\" : \"sacga\" } \r\n");
  EXPECT_EQ(r.id, "ws");
  EXPECT_EQ(r.settings.algo, expt::Algo::SACGA);
}

struct RejectCase {
  const char* label;
  const char* line;
  const char* expected_substring;  ///< must appear in the diagnostic
};

TEST(ParseJobRequest, RejectTable) {
  const std::vector<RejectCase> table = {
      {"missing id", R"({"algo":"tpg","spec":"chosen"})", "missing required key \"id\""},
      {"missing algo", R"({"id":"a","spec":"chosen"})", "missing required key \"algo\""},
      {"missing spec", R"({"id":"a","algo":"tpg"})", "missing required key \"spec\""},
      {"unknown key", R"({"id":"a","algo":"tpg","spec":1,"bogus":1})", "unknown key \"bogus\""},
      {"service-owned key", R"({"id":"a","algo":"tpg","spec":1,"threads":8})", "unknown key \"threads\""},
      {"duplicate key", R"({"id":"a","id":"b","algo":"tpg","spec":1})", "duplicate key \"id\""},
      {"bad algo", R"({"id":"a","algo":"annealing","spec":1})", "unknown algo \"annealing\""},
      {"bad spec string", R"({"id":"a","algo":"tpg","spec":"best"})", "\"spec\""},
      {"spec zero", R"({"id":"a","algo":"tpg","spec":0})", "\"spec\" index"},
      {"spec out of range", R"({"id":"a","algo":"tpg","spec":21})", "\"spec\" index"},
      {"spec bool", R"({"id":"a","algo":"tpg","spec":true})", "\"spec\""},
      {"bad id characters", R"({"id":"a b","algo":"tpg","spec":1})", "\"id\""},
      {"dot-leading id", R"({"id":".a","algo":"tpg","spec":1})", "\"id\""},
      {"empty id", R"({"id":"","algo":"tpg","spec":1})", "\"id\""},
      {"population as string", R"({"id":"a","algo":"tpg","spec":1,"population":"64"})",
       "\"population\" must be an unsigned integer"},
      {"negative number", R"({"id":"a","algo":"tpg","spec":1,"seed":-1})", "malformed value"},
      {"leading zeros", R"({"id":"a","algo":"tpg","spec":1,"seed":007})", "leading zeros"},
      {"schedule not array", R"({"id":"a","algo":"tpg","spec":1,"mesacga_schedule":3})",
       "\"mesacga_schedule\" must be an array"},
      {"record_history not bool", R"({"id":"a","algo":"tpg","spec":1,"record_history":1})",
       "\"record_history\" must be true or false"},
      {"not an object", R"(["id","a"])", "expected '{'"},
      {"empty line", "", "unexpected end of input"},
      {"trailing junk", R"({"id":"a","algo":"tpg","spec":1} extra)", "trailing characters"},
      {"unterminated string", R"({"id":"a","algo":"tpg","spec":1,"x":"oops)", "unterminated string"},
      {"escape in string", R"({"id":"a\nb","algo":"tpg","spec":1})", "escape sequences"},
      {"truncated object", R"({"id":"a","algo":"tpg")", "unexpected end of input"},
  };
  for (const RejectCase& c : table) {
    try {
      parse_job_request(c.line);
      ADD_FAILURE() << c.label << ": expected rejection of: " << c.line;
    } catch (const PreconditionError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expected_substring), std::string::npos)
          << c.label << ": diagnostic was: " << e.what();
    }
  }
}

}  // namespace
}  // namespace anadex::serve
