// JobScheduler determinism matrix — the serve acceptance criterion:
// interleaved jobs sharing one hub engine and one dedup cache produce
// per-job fronts, evaluation counts and final checkpoints byte-identical
// to solo runs of the same settings, at thread counts {1, 8}, for
// {solo, 2-job, 4-job} interleavings — including a mid-slice stop drill
// that snapshots every job and resumes them all in a fresh scheduler.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "common/check.hpp"
#include "engine/eval_engine.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::serve {
namespace {

scint::Spec easy_spec() { return problems::spec_suite().front(); }

/// The four acceptance jobs: distinct algorithms and seeds, one shared
/// spec, generation counts small enough to keep the matrix fast.
std::vector<expt::RunSettings> matrix_jobs() {
  std::vector<expt::RunSettings> jobs(4);
  for (auto& s : jobs) {
    s.spec = easy_spec();
    s.population = 16;
    s.generations = 36;
    s.partitions = 4;
    s.mesacga_schedule = {4, 2, 1};
    s.phase1_cap = 12;
    s.checkpoint_every = 12;
  }
  jobs[0].algo = expt::Algo::TPG;
  jobs[0].seed = 3;
  jobs[1].algo = expt::Algo::SACGA;
  jobs[1].seed = 5;
  jobs[2].algo = expt::Algo::SPEA2;
  jobs[2].seed = 7;
  jobs[3].algo = expt::Algo::TPG;
  jobs[3].seed = 9;
  return jobs;
}

bool same_front(const std::vector<expt::FrontSample>& a,
                const std::vector<expt::FrontSample>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(expt::FrontSample)) == 0;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string unique_path(const std::string& tag) {
  const std::string path = testing::TempDir() + "anadex_sched_" + tag + ".cp";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
  return path;
}

/// Solo baseline: each job run to completion on a PRIVATE engine.
struct Baseline {
  expt::RunOutcome outcome;
  std::string checkpoint;  ///< final checkpoint file bytes
};

std::vector<Baseline> solo_baselines(std::size_t threads) {
  std::vector<Baseline> baselines;
  const auto jobs = matrix_jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expt::RunSettings settings = jobs[i];
    settings.threads = threads;
    settings.checkpoint_path =
        unique_path("solo_t" + std::to_string(threads) + "_" + std::to_string(i));
    expt::Job job = expt::Job::from_settings(settings);
    Baseline b;
    b.outcome = job.run();
    b.checkpoint = file_bytes(settings.checkpoint_path);
    baselines.push_back(std::move(b));
  }
  return baselines;
}

void expect_matches_baseline(const expt::Job& job, const Baseline& baseline,
                             const std::string& checkpoint_path,
                             const std::string& label) {
  EXPECT_EQ(job.state(), expt::JobState::Done) << label;
  EXPECT_TRUE(same_front(job.outcome().front, baseline.outcome.front)) << label;
  EXPECT_EQ(job.outcome().evaluations, baseline.outcome.evaluations) << label;
  EXPECT_EQ(job.outcome().front_area, baseline.outcome.front_area) << label;
  EXPECT_EQ(file_bytes(checkpoint_path), baseline.checkpoint)
      << label << ": final checkpoints differ";
}

TEST(JobScheduler, MatrixFrontsAndCheckpointsMatchSolo) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const auto baselines = solo_baselines(threads);
    const auto jobs = matrix_jobs();
    for (const std::size_t fleet : {std::size_t{2}, std::size_t{4}}) {
      engine::EvalEngine hub(threads, nullptr, /*cache_capacity=*/512);
      SchedulerConfig config;
      config.slice_generations = 10;  // off-cycle vs checkpoint_every = 12
      config.hub = &hub;
      JobScheduler scheduler(config);
      std::vector<std::string> paths;
      for (std::size_t i = 0; i < fleet; ++i) {
        expt::RunSettings settings = jobs[i];
        settings.checkpoint_path = unique_path(
            "fleet" + std::to_string(fleet) + "_t" + std::to_string(threads) +
            "_" + std::to_string(i));
        paths.push_back(settings.checkpoint_path);
        scheduler.admit("job" + std::to_string(i), std::move(settings));
      }
      EXPECT_TRUE(scheduler.run_all());
      EXPECT_EQ(scheduler.stats().done, fleet);
      EXPECT_EQ(scheduler.stats().failed, 0u);
      for (std::size_t i = 0; i < fleet; ++i) {
        expect_matches_baseline(
            scheduler.job(i), baselines[i], paths[i],
            "threads=" + std::to_string(threads) + " fleet=" +
                std::to_string(fleet) + " job=" + std::to_string(i));
      }
      // The shared cache actually served cross-batch hits; sharing is real,
      // not a disabled code path.
      EXPECT_GT(hub.stats().requested, 0u);
      EXPECT_GT(hub.busy_batches(), 0u);
    }
  }
}

TEST(JobScheduler, MidSliceStopDrillResumesAllJobs) {
  // The SIGINT drill: raise the service stop token from inside a running
  // generation, let every job snapshot, then resume the whole fleet in a
  // FRESH scheduler (new hub, ResumeMode::Auto) — as a restarted daemon
  // would — and require the solo-identical results anyway.
  const std::size_t threads = 8;
  const auto baselines = solo_baselines(threads);
  const auto jobs = matrix_jobs();
  CancelToken stop;
  std::vector<std::string> paths;

  {
    engine::EvalEngine hub(threads, nullptr, 512);
    SchedulerConfig config;
    config.slice_generations = 10;
    config.hub = &hub;
    config.stop = &stop;
    JobScheduler scheduler(config);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      expt::RunSettings settings = jobs[i];
      settings.checkpoint_path = unique_path("drill_" + std::to_string(i));
      paths.push_back(settings.checkpoint_path);
      settings.stop = &stop;  // the daemon wires every job to the token
      if (i == 1) {
        // "SIGINT" lands mid-slice, between this job's budget boundaries.
        settings.on_generation = [&stop](std::size_t gen, const moga::Population&) {
          if (gen == 14) stop.request();
        };
      }
      scheduler.admit("drill" + std::to_string(i), std::move(settings));
    }
    EXPECT_FALSE(scheduler.run_all());  // interrupted, not all terminal
    EXPECT_FALSE(scheduler.all_terminal());
  }

  // Restart: new hub, new scheduler, same ids and checkpoint chains.
  stop.reset();
  engine::EvalEngine hub(threads, nullptr, 512);
  SchedulerConfig config;
  config.slice_generations = 10;
  config.hub = &hub;
  JobScheduler scheduler(config);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expt::RunSettings settings = jobs[i];
    settings.checkpoint_path = paths[i];
    settings.resume = expt::ResumeMode::Auto;  // pick up the snapshot
    scheduler.admit("drill" + std::to_string(i), std::move(settings));
  }
  EXPECT_TRUE(scheduler.run_all());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_matches_baseline(scheduler.job(i), baselines[i], paths[i],
                            "drill job=" + std::to_string(i));
  }
}

TEST(JobScheduler, AdmissionRejectsInvalidSettingsWithoutEnqueueing) {
  engine::EvalEngine hub(1, nullptr, 64);
  SchedulerConfig config;
  config.hub = &hub;
  JobScheduler scheduler(config);
  expt::RunSettings bad;
  bad.spec = easy_spec();
  bad.population = 3;  // must be even and >= 4
  EXPECT_THROW(scheduler.admit("bad", std::move(bad)), PreconditionError);
  scheduler.note_rejected();
  EXPECT_EQ(scheduler.size(), 0u);
  EXPECT_EQ(scheduler.stats().admitted, 0u);
  EXPECT_EQ(scheduler.stats().rejected, 1u);
  EXPECT_TRUE(scheduler.run_all());  // vacuously: nothing admitted
}

TEST(JobScheduler, SharedDeadlineIsRejectedAtAdmission) {
  // The watchdog belongs to the hub; per-job deadlines are a settings
  // error under a shared handle, reported at admission like any other.
  engine::EvalEngine hub(1, nullptr, 64);
  SchedulerConfig config;
  config.hub = &hub;
  JobScheduler scheduler(config);
  expt::RunSettings settings;
  settings.spec = easy_spec();
  settings.population = 16;
  settings.generations = 8;
  settings.eval_deadline_s = 1.0;
  EXPECT_THROW(scheduler.admit("deadline", std::move(settings)), PreconditionError);
}

TEST(JobScheduler, ContextsFollowAdmissionOrder) {
  engine::EvalEngine hub(1, nullptr, 64);
  SchedulerConfig config;
  config.hub = &hub;
  JobScheduler scheduler(config);
  for (std::size_t i = 0; i < 3; ++i) {
    expt::RunSettings settings;
    settings.spec = easy_spec();
    settings.population = 16;
    settings.generations = 8;
    settings.seed = i + 1;
    scheduler.admit("ctx" + std::to_string(i), std::move(settings));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scheduler.job(i).settings().engine.engine, &hub);
    EXPECT_EQ(scheduler.job(i).settings().engine.context, i + 1);
    EXPECT_EQ(scheduler.id(i), "ctx" + std::to_string(i));
  }
}

}  // namespace
}  // namespace anadex::serve
