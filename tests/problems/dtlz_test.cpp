#include "problems/dtlz.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/hypervolume.hpp"
#include "moga/metrics.hpp"
#include "moga/nsga2.hpp"

namespace anadex::problems {
namespace {

TEST(Dtlz, Metadata) {
  const auto d1 = make_dtlz1(3, 5);
  EXPECT_EQ(d1->num_variables(), 7u);
  EXPECT_EQ(d1->num_objectives(), 3u);
  EXPECT_EQ(d1->num_constraints(), 0u);
  const auto d2 = make_dtlz2(4, 10);
  EXPECT_EQ(d2->num_variables(), 13u);
  EXPECT_EQ(d2->num_objectives(), 4u);
}

TEST(Dtlz, Validation) {
  EXPECT_THROW(make_dtlz1(1, 5), PreconditionError);
  EXPECT_THROW(make_dtlz2(3, 0), PreconditionError);
}

TEST(Dtlz1, ParetoFrontSumsToHalf) {
  const auto problem = make_dtlz1(3, 5);
  // On the front the distance variables are 0.5 -> g = 0, sum f_i = 0.5.
  std::vector<double> x{0.3, 0.8, 0.5, 0.5, 0.5, 0.5, 0.5};
  const auto e = problem->evaluated(x);
  double sum = 0.0;
  for (double f : e.objectives) sum += f;
  EXPECT_NEAR(sum, 0.5, 1e-9);
}

TEST(Dtlz1, OffOptimumGIsLarge) {
  const auto problem = make_dtlz1(3, 5);
  std::vector<double> x{0.3, 0.8, 0.1, 0.9, 0.2, 0.7, 0.4};
  const auto e = problem->evaluated(x);
  double sum = 0.0;
  for (double f : e.objectives) sum += f;
  EXPECT_GT(sum, 10.0);  // g is multiplied by 100
}

TEST(Dtlz2, ParetoFrontOnUnitSphere) {
  const auto problem = make_dtlz2(3, 10);
  std::vector<double> x(12, 0.5);
  x[0] = 0.2;
  x[1] = 0.7;
  const auto e = problem->evaluated(x);
  double sq_sum = 0.0;
  for (double f : e.objectives) sq_sum += f * f;
  EXPECT_NEAR(sq_sum, 1.0, 1e-9);
}

TEST(Dtlz2, CornersReachUnitAxes) {
  const auto problem = make_dtlz2(3, 10);
  std::vector<double> x(12, 0.5);
  x[0] = 0.0;
  x[1] = 0.0;
  const auto e = problem->evaluated(x);
  EXPECT_NEAR(e.objectives[0], 1.0, 1e-9);
  EXPECT_NEAR(e.objectives[1], 0.0, 1e-9);
  EXPECT_NEAR(e.objectives[2], 0.0, 1e-9);
}

TEST(Dtlz2, NsgaIiApproachesTheSphere) {
  const auto problem = make_dtlz2(3, 6);
  moga::Nsga2Params params;
  params.population_size = 92;
  params.generations = 150;
  params.seed = 9;
  const auto result = moga::run_nsga2(*problem, params);
  ASSERT_GT(result.front.size(), 20u);
  // All front points close to the unit sphere...
  for (const auto& ind : result.front) {
    double sq_sum = 0.0;
    for (double f : ind.eval.objectives) sq_sum += f * f;
    EXPECT_LT(std::abs(std::sqrt(sq_sum) - 1.0), 0.15);
  }
  // ...and the 3-D hypervolume against (1.2, 1.2, 1.2) approaches the
  // exact sphere-front maximum 1.2^3 - pi/6 ~ 1.2044 from below.
  const double hv =
      moga::hypervolume(moga::objectives_of(result.front), std::vector{1.2, 1.2, 1.2});
  EXPECT_GT(hv, 0.9);
  EXPECT_LT(hv, 1.2044 + 1e-6);
}

}  // namespace
}  // namespace anadex::problems
