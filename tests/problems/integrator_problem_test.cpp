#include "problems/integrator_problem.hpp"

#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "common/check.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::problems {
namespace {

const IntegratorProblem& chosen_problem() {
  static const IntegratorProblem problem(chosen_spec());
  return problem;
}

TEST(IntegratorProblem, Metadata) {
  const auto& p = chosen_problem();
  EXPECT_EQ(p.num_variables(), 15u);  // the paper's 15 design parameters
  EXPECT_EQ(p.num_objectives(), 2u);
  EXPECT_EQ(p.num_constraints(), 9u);
  EXPECT_EQ(p.bounds().size(), 15u);
  EXPECT_NE(p.name().find("paper-chosen"), std::string::npos);
}

TEST(IntegratorProblem, BoundsAreOrderedAndPositive) {
  for (const auto& b : chosen_problem().bounds()) {
    EXPECT_LT(b.lower, b.upper);
    EXPECT_GT(b.lower, 0.0);
  }
}

TEST(IntegratorProblem, LoadBoundMatchesReportingAxis) {
  const auto bounds = chosen_problem().bounds();
  EXPECT_DOUBLE_EQ(bounds[kCload].upper, kLoadMax);
}

TEST(IntegratorProblem, DecodeEncodeRoundTrip) {
  const auto design = testing_support::reference_design();
  const auto genes = IntegratorProblem::encode(design);
  ASSERT_EQ(genes.size(), static_cast<std::size_t>(kNumGenes));
  const auto decoded = IntegratorProblem::decode(genes);
  EXPECT_EQ(decoded.opamp.m1.w, design.opamp.m1.w);
  EXPECT_EQ(decoded.opamp.m6.l, design.opamp.m6.l);
  EXPECT_EQ(decoded.opamp.ibias, design.opamp.ibias);
  EXPECT_EQ(decoded.cs, design.cs);
  EXPECT_EQ(decoded.cload, design.cload);
}

TEST(IntegratorProblem, DecodeValidatesGeneCount) {
  EXPECT_THROW(IntegratorProblem::decode(std::vector<double>(3)), PreconditionError);
}

TEST(IntegratorProblem, ReferenceDesignIsFeasible) {
  const auto genes = IntegratorProblem::encode(testing_support::reference_design());
  const auto eval = chosen_problem().evaluated(genes);
  EXPECT_TRUE(eval.feasible()) << "violations sum " << eval.total_violation();
}

TEST(IntegratorProblem, ObjectivesArePowerAndTransformedLoad) {
  const auto design = testing_support::reference_design();
  const auto genes = IntegratorProblem::encode(design);
  const auto eval = chosen_problem().evaluated(genes);
  const auto perf = chosen_problem().typical_performance(design);
  EXPECT_NEAR(eval.objectives[0], perf.power, 1e-12);
  EXPECT_NEAR(eval.objectives[1], kLoadMax - design.cload, 1e-18);
}

TEST(IntegratorProblem, EvaluationIsDeterministic) {
  const auto genes = IntegratorProblem::encode(testing_support::reference_design());
  const auto a = chosen_problem().evaluated(genes);
  const auto b = chosen_problem().evaluated(genes);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(IntegratorProblem, StarvedDesignViolatesConstraints) {
  auto design = testing_support::reference_design();
  design.opamp.ibias = 1e-6;
  design.opamp.m5 = {1e-6, 2e-6};  // starved tail: DR/ST collapse
  const auto eval = chosen_problem().evaluated(IntegratorProblem::encode(design));
  EXPECT_FALSE(eval.feasible());
}

TEST(IntegratorProblem, WeakInversionDesignViolatesVovConstraint) {
  auto design = testing_support::reference_design();
  design.opamp.m1 = {200e-6, 2e-6};  // huge input pair at the same current
  const auto eval = chosen_problem().evaluated(IntegratorProblem::encode(design));
  // Constraint index 7 is the strong-inversion (vov) margin.
  EXPECT_GT(eval.violations[7], 0.0);
}

TEST(IntegratorProblem, ViolationsAreCapped) {
  std::vector<double> genes(kNumGenes);
  const auto bounds = chosen_problem().bounds();
  for (std::size_t i = 0; i < genes.size(); ++i) genes[i] = bounds[i].lower;
  const auto eval = chosen_problem().evaluated(genes);
  for (double v : eval.violations) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(IntegratorProblem, RobustnessSkippedForBrokenDesignsButScoredForGood) {
  const auto design = testing_support::reference_design();
  EXPECT_GT(chosen_problem().design_robustness(design), 0.8);
}

TEST(SpecSuite, HasTwentyEntries) {
  EXPECT_EQ(spec_suite().size(), 20u);
}

TEST(SpecSuite, ChosenSpecIsEntry13) {
  const auto suite = spec_suite();
  EXPECT_EQ(suite[12].name, "paper-chosen");
  EXPECT_EQ(suite[12].dr_min_db, 96.0);
}

TEST(SpecSuite, DifficultyIsMonotone) {
  const auto suite = spec_suite();
  for (std::size_t i = 1; i < suite.size(); ++i) {
    if (i == 12 || i == 13) continue;  // the pinned paper spec breaks strictness locally
    EXPECT_GE(suite[i].dr_min_db, suite[i - 1].dr_min_db);
    EXPECT_GE(suite[i].or_min, suite[i - 1].or_min);
    EXPECT_LE(suite[i].st_max, suite[i - 1].st_max);
    EXPECT_LE(suite[i].se_max, suite[i - 1].se_max);
    EXPECT_GE(suite[i].robustness_min, suite[i - 1].robustness_min);
  }
}

TEST(SpecSuite, NamesAreUnique) {
  const auto suite = spec_suite();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
}

TEST(SpecSuite, EasiestSpecAdmitsReferenceDesign) {
  const IntegratorProblem easy(spec_suite().front());
  const auto eval = easy.evaluated(IntegratorProblem::encode(testing_support::reference_design()));
  EXPECT_TRUE(eval.feasible());
}

}  // namespace
}  // namespace anadex::problems
