#include "problems/ctp.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/nsga2.hpp"

namespace anadex::problems {
namespace {

TEST(Ctp, Metadata) {
  const auto ctp1 = make_ctp1(5);
  EXPECT_EQ(ctp1->name(), "CTP1");
  EXPECT_EQ(ctp1->num_variables(), 5u);
  EXPECT_EQ(ctp1->num_constraints(), 2u);
  const auto ctp2 = make_ctp(2, 5);
  EXPECT_EQ(ctp2->name(), "CTP2");
  EXPECT_EQ(ctp2->num_constraints(), 1u);
}

TEST(Ctp, Validation) {
  EXPECT_THROW(make_ctp1(1), PreconditionError);
  EXPECT_THROW(make_ctp(7, 5), PreconditionError);
}

TEST(Ctp1, ConstraintsCarveTheFront) {
  const auto problem = make_ctp1(2);
  // On the g-optimal slice (x1 = 0): f2 = g exp(-f1/g) with g = 1 at x1=0.
  // At f1 = 0: f2 = 1 >= 0.858 and >= 0.728 -> feasible.
  const auto at0 = problem->evaluated(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(at0.feasible());
  // Deep inside the infeasible wedge: scale f2 down via small g? g >= 1 by
  // construction, so construct infeasibility through large f1 where the
  // unconstrained front dips below the exponential bound.
  bool found_infeasible = false;
  for (double f1 = 0.0; f1 <= 1.0; f1 += 0.05) {
    const auto e = problem->evaluated(std::vector<double>{f1, 0.0});
    if (!e.feasible()) found_infeasible = true;
  }
  EXPECT_TRUE(found_infeasible);
}

TEST(CtpFamily, DisconnectedFeasibilityAcrossObjectiveSpace) {
  // CTP2's constraint cuts periodic infeasible notches through objective
  // space (the Pareto front lies ON the constraint boundary): scanning f1
  // at several g levels (set via the tail variable) must cross feasibility
  // boundaries repeatedly.
  const auto problem = make_ctp(2, 2);
  int transitions = 0;
  for (double x2 : {0.1, 0.2, 0.3}) {
    bool prev = problem->evaluated(std::vector<double>{0.0, x2}).feasible();
    for (double f1 = 0.01; f1 <= 1.0; f1 += 0.01) {
      const bool now = problem->evaluated(std::vector<double>{f1, x2}).feasible();
      if (now != prev) ++transitions;
      prev = now;
    }
  }
  EXPECT_GE(transitions, 4);  // several notches across the scans
}

TEST(CtpFamily, Ctp4HarderThanCtp2) {
  // CTP4's larger `a` widens the infeasible notches: fewer feasible points
  // across a grid of the whole decision box.
  const auto easy = make_ctp(2, 2);
  const auto hard = make_ctp(4, 2);
  int feasible_easy = 0;
  int feasible_hard = 0;
  for (double f1 = 0.0; f1 <= 1.0; f1 += 0.02) {
    for (double x2 = -0.9; x2 <= 0.9; x2 += 0.05) {
      feasible_easy += easy->evaluated(std::vector<double>{f1, x2}).feasible() ? 1 : 0;
      feasible_hard += hard->evaluated(std::vector<double>{f1, x2}).feasible() ? 1 : 0;
    }
  }
  EXPECT_GT(feasible_easy, feasible_hard);
}

TEST(CtpFamily, NsgaIiFindsFeasibleFrontOnCtp2) {
  const auto problem = make_ctp(2, 4);
  moga::Nsga2Params params;
  params.population_size = 80;
  params.generations = 150;
  params.seed = 13;
  const auto result = moga::run_nsga2(*problem, params);
  ASSERT_GT(result.front.size(), 5u);
  for (const auto& ind : result.front) {
    EXPECT_TRUE(ind.feasible());
    EXPECT_LE(ind.eval.objectives[0], 1.0);
  }
}

}  // namespace
}  // namespace anadex::problems
