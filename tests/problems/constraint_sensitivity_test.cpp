// Sensitivity tests: every constraint of the integrator problem must
// respond to the design knob that physically drives it. This guards the
// problem formulation against silently-dead constraints (a classic failure
// mode when refactoring the circuit model).
#include <gtest/gtest.h>

#include "../support/reference_design.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::problems {
namespace {

enum Constraint : std::size_t {
  kConDr = 0,
  kConOr = 1,
  kConSt = 2,
  kConSe = 3,
  kConArea = 4,
  kConSat = 5,
  kConBalance = 6,
  kConVov = 7,
  kConRobust = 8,
};

const IntegratorProblem& problem() {
  static const IntegratorProblem instance(chosen_spec());
  return instance;
}

moga::Evaluation evaluate(const scint::IntegratorDesign& design) {
  return problem().evaluated(IntegratorProblem::encode(design));
}

TEST(ConstraintSensitivity, ReferenceDesignHasAllZeros) {
  const auto eval = evaluate(testing_support::reference_design());
  for (std::size_t i = 0; i < eval.violations.size(); ++i) {
    EXPECT_EQ(eval.violations[i], 0.0) << "constraint " << i;
  }
}

TEST(ConstraintSensitivity, TinySamplingCapBreaksDynamicRange) {
  auto design = testing_support::reference_design();
  design.cs = 0.5e-12;  // kT/C noise blows the 96 dB requirement
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConDr], 0.0);
}

TEST(ConstraintSensitivity, NarrowMirrorBreaksOutputRange) {
  auto design = testing_support::reference_design();
  design.opamp.m3.w /= 16.0;  // large VSG3 -> large vdsat6 -> shrunken swing
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConOr] + eval.violations[kConSat] + eval.violations[kConVov],
            0.0);
}

TEST(ConstraintSensitivity, StarvedBiasBreaksSettling) {
  auto design = testing_support::reference_design();
  design.opamp.ibias /= 5.0;  // all currents collapse
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConSt] + eval.violations[kConSe], 0.0);
}

TEST(ConstraintSensitivity, HugeCapacitorsBreakArea) {
  auto design = testing_support::reference_design();
  design.cs = 8e-12;
  design.coc = 2e-12;
  design.opamp.cc = 5e-12;
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConArea] + eval.violations[kConSt], 0.0);
}

TEST(ConstraintSensitivity, OversizedDriverBreaksBalance) {
  auto design = testing_support::reference_design();
  design.opamp.m6.w *= 4.0;  // ID6 != I7 -> systematic offset
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConBalance], 0.0);
}

TEST(ConstraintSensitivity, HugeInputPairBreaksStrongInversion) {
  auto design = testing_support::reference_design();
  design.opamp.m1.w = 200e-6;  // same current, enormous W -> Vov < 100 mV
  const auto eval = evaluate(design);
  EXPECT_GT(eval.violations[kConVov], 0.0);
}

TEST(ConstraintSensitivity, MarginalDesignLosesRobustness) {
  // Shrink the sampling cap until DR sits exactly at the limit: the
  // deterministic constraint may pass at TT while Monte-Carlo samples fail.
  auto design = testing_support::reference_design();
  double lo = 0.5e-12;
  double hi = design.cs;
  for (int iter = 0; iter < 30; ++iter) {
    design.cs = 0.5 * (lo + hi);
    const auto perf = problem().typical_performance(design);
    if (perf.dynamic_range_db > chosen_spec().dr_min_db) {
      hi = design.cs;
    } else {
      lo = design.cs;
    }
  }
  design.cs = hi * 1.001;  // just barely passing at TT
  const double rob = problem().design_robustness(design);
  EXPECT_LT(rob, 1.0);  // some Monte-Carlo samples must fail at the margin
}

TEST(ConstraintSensitivity, ViolationsAreMonotoneInSeverity) {
  // Worse DR -> at least as large a DR violation.
  auto design = testing_support::reference_design();
  design.cs = 0.9e-12;
  const double v1 = evaluate(design).violations[kConDr];
  design.cs = 0.6e-12;
  const double v2 = evaluate(design).violations[kConDr];
  EXPECT_GE(v2, v1);
  EXPECT_GT(v1, 0.0);
}

TEST(ConstraintSensitivity, EasierSpecProducesSmallerViolations) {
  auto design = testing_support::reference_design();
  design.cs = 0.8e-12;  // DR-deficient design
  const IntegratorProblem easy(spec_suite().front());
  const IntegratorProblem hard(spec_suite().back());
  const auto genes = IntegratorProblem::encode(design);
  EXPECT_LE(easy.evaluated(genes).violations[kConDr],
            hard.evaluated(genes).violations[kConDr]);
}

}  // namespace
}  // namespace anadex::problems
