#include "problems/analytic.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::problems {
namespace {

TEST(AnalyticSuite, MetadataConsistency) {
  const auto check = [](const moga::Problem& p, std::size_t vars, std::size_t objs,
                        std::size_t cons) {
    EXPECT_EQ(p.num_variables(), vars) << p.name();
    EXPECT_EQ(p.num_objectives(), objs) << p.name();
    EXPECT_EQ(p.num_constraints(), cons) << p.name();
    EXPECT_EQ(p.bounds().size(), vars) << p.name();
    EXPECT_FALSE(p.name().empty());
  };
  check(*make_sch(), 1, 2, 0);
  check(*make_fon(), 3, 2, 0);
  check(*make_kur(), 3, 2, 0);
  check(*make_pol(), 2, 2, 0);
  check(*make_zdt1(30), 30, 2, 0);
  check(*make_zdt2(30), 30, 2, 0);
  check(*make_zdt3(30), 30, 2, 0);
  check(*make_zdt4(10), 10, 2, 0);
  check(*make_zdt6(10), 10, 2, 0);
  check(*make_constr(), 2, 2, 2);
  check(*make_srn(), 2, 2, 2);
  check(*make_tnk(), 2, 2, 2);
  check(*make_bnh(), 2, 2, 2);
  check(*make_osy(), 6, 2, 6);
}

TEST(AnalyticSuite, GeneCountValidated) {
  const auto sch = make_sch();
  moga::Evaluation out;
  EXPECT_THROW(sch->evaluate(std::vector<double>{1.0, 2.0}, out), PreconditionError);
}

TEST(Sch, KnownValues) {
  const auto sch = make_sch();
  auto e = sch->evaluated(std::vector<double>{0.0});
  EXPECT_EQ(e.objectives, (std::vector<double>{0.0, 4.0}));
  e = sch->evaluated(std::vector<double>{2.0});
  EXPECT_EQ(e.objectives, (std::vector<double>{4.0, 0.0}));
  e = sch->evaluated(std::vector<double>{1.0});
  EXPECT_EQ(e.objectives, (std::vector<double>{1.0, 1.0}));
}

TEST(Fon, SymmetricOptimaAtDiagonal) {
  const auto fon = make_fon();
  const double inv = 1.0 / std::sqrt(3.0);
  const auto at_plus = fon->evaluated(std::vector<double>{inv, inv, inv});
  EXPECT_NEAR(at_plus.objectives[0], 0.0, 1e-12);  // first objective optimal
  const auto at_minus = fon->evaluated(std::vector<double>{-inv, -inv, -inv});
  EXPECT_NEAR(at_minus.objectives[1], 0.0, 1e-12);
}

TEST(Zdt1, ParetoSetHasGEqualOne) {
  const auto zdt = make_zdt1(5);
  // On the Pareto set all tail variables are 0 -> g = 1 and f2 = 1 - sqrt(f1).
  const auto e = zdt->evaluated(std::vector<double>{0.25, 0.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(e.objectives[0], 0.25, 1e-12);
  EXPECT_NEAR(e.objectives[1], 1.0 - 0.5, 1e-12);
}

TEST(Zdt2, ConcaveFrontShape) {
  const auto zdt = make_zdt2(5);
  const auto e = zdt->evaluated(std::vector<double>{0.5, 0.0, 0.0, 0.0, 0.0});
  EXPECT_NEAR(e.objectives[1], 1.0 - 0.25, 1e-12);
}

TEST(Zdt3, SineTermCreatesDisconnection) {
  // On the g = 1 slice f2 = 1 - sqrt(f1) - f1 sin(10 pi f1) rises between
  // f1 = 0.05 and 0.15 and falls again by 0.25: the non-monotonicity that
  // disconnects the front.
  const auto zdt = make_zdt3(5);
  const auto low = zdt->evaluated(std::vector<double>{0.05, 0.0, 0.0, 0.0, 0.0});
  const auto mid = zdt->evaluated(std::vector<double>{0.15, 0.0, 0.0, 0.0, 0.0});
  const auto high = zdt->evaluated(std::vector<double>{0.25, 0.0, 0.0, 0.0, 0.0});
  EXPECT_GT(mid.objectives[1], low.objectives[1]);
  EXPECT_LT(high.objectives[1], mid.objectives[1]);
}

TEST(Zdt4, MultimodalGExceedsOneOffOptimum) {
  const auto zdt = make_zdt4(3);
  const auto off = zdt->evaluated(std::vector<double>{0.5, 1.3, -2.1});
  // g >= 1 always; far from the optimum it is much larger.
  EXPECT_GT(off.objectives[1], 1.0);
}

TEST(Zdt6, BiasedHeadFunction) {
  const auto zdt = make_zdt6(3);
  const auto e = zdt->evaluated(std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_NEAR(e.objectives[0], 1.0, 1e-12);  // head(0) = 1 - 0 = 1
}

TEST(Constr, FeasibleAndInfeasiblePoints) {
  const auto constr = make_constr();
  const auto feasible = constr->evaluated(std::vector<double>{0.8, 2.0});
  EXPECT_TRUE(feasible.feasible());
  const auto infeasible = constr->evaluated(std::vector<double>{0.1, 0.0});
  EXPECT_FALSE(infeasible.feasible());
  EXPECT_GT(infeasible.total_violation(), 0.0);
}

TEST(Srn, KnownFeasiblePoint) {
  const auto srn = make_srn();
  const auto e = srn->evaluated(std::vector<double>{-5.0, 5.0});
  EXPECT_TRUE(e.feasible());  // 25 + 25 <= 225 and -(-5 - 15 + 10) = 10 >= 0
}

TEST(Tnk, RingConstraintActive) {
  const auto tnk = make_tnk();
  const auto inside = tnk->evaluated(std::vector<double>{0.3, 0.3});  // inside ring
  EXPECT_FALSE(inside.feasible());
  const auto on_ring = tnk->evaluated(std::vector<double>{1.0, 0.4});
  EXPECT_TRUE(on_ring.feasible());
}

TEST(Bnh, OriginIsFeasibleOptimumOfF1) {
  const auto bnh = make_bnh();
  const auto e = bnh->evaluated(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(e.feasible());
  EXPECT_EQ(e.objectives[0], 0.0);
}

TEST(Osy, ConstraintsCountAndSigns) {
  const auto osy = make_osy();
  const auto e = osy->evaluated(std::vector<double>{5.0, 1.0, 2.0, 0.0, 5.0, 10.0});
  EXPECT_EQ(e.violations.size(), 6u);
  for (double v : e.violations) EXPECT_GE(v, 0.0);
}

TEST(AnalyticSuite, DeterministicEvaluation) {
  const auto kur = make_kur();
  const std::vector<double> x{1.0, -2.0, 3.0};
  const auto a = kur->evaluated(x);
  const auto b = kur->evaluated(x);
  EXPECT_EQ(a.objectives, b.objectives);
}

TEST(ZdtFamily, RejectsTooFewVariables) {
  EXPECT_THROW(make_zdt1(1), PreconditionError);
}

}  // namespace
}  // namespace anadex::problems
