#include "sacga/sacga.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "problems/analytic.hpp"
#include "sacga/local_only.hpp"

namespace anadex::sacga {
namespace {

SacgaParams constr_params(std::size_t span = 60) {
  SacgaParams p;
  p.population_size = 40;
  p.partitions = 4;
  p.axis_objective = 0;  // CONSTR: f1 = x1 in [0.1, 1]
  p.axis_lo = 0.1;
  p.axis_hi = 1.0;
  p.phase1_max_generations = 30;
  p.span = span;
  p.seed = 3;
  return p;
}

TEST(Sacga, ValidatesParameters) {
  const auto problem = problems::make_constr();
  SacgaParams p = constr_params();
  p.partitions = 0;
  EXPECT_THROW(run_sacga(*problem, p), PreconditionError);
  p = constr_params();
  p.span = 0;
  EXPECT_THROW(run_sacga(*problem, p), PreconditionError);
}

TEST(Sacga, RunsBothPhasesAndReportsCounts) {
  const auto problem = problems::make_constr();
  const auto result = run_sacga(*problem, constr_params());
  EXPECT_LE(result.phase1_generations, 30u);
  EXPECT_EQ(result.generations_run, result.phase1_generations + 60u);
  EXPECT_EQ(result.population.size(), 40u);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(Sacga, FrontIsFeasibleAndNondominated) {
  const auto problem = problems::make_constr();
  const auto result = run_sacga(*problem, constr_params(100));
  ASSERT_GT(result.front.size(), 3u);
  for (const auto& a : result.front) {
    EXPECT_TRUE(a.feasible());
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moga::dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(Sacga, DeterministicForFixedSeed) {
  const auto problem = problems::make_constr();
  const auto a = run_sacga(*problem, constr_params());
  const auto b = run_sacga(*problem, constr_params());
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genes, b.front[i].genes);
  }
}

TEST(Sacga, CallbackCoversBothPhases) {
  const auto problem = problems::make_constr();
  std::size_t calls = 0;
  const auto result = run_sacga(*problem, constr_params(), [&](std::size_t, const auto&) {
    ++calls;
  });
  EXPECT_EQ(calls, result.generations_run);
}

TEST(Sacga, TotalBudgetSemantics) {
  const auto problem = problems::make_constr();
  SacgaParams p = constr_params();
  p.span = 100;  // total budget
  p.span_is_total_budget = true;
  const auto result = run_sacga(*problem, p);
  EXPECT_EQ(result.generations_run, 100u);
}

TEST(Sacga, TotalBudgetMustExceedPhaseOneCap) {
  const auto problem = problems::make_constr();
  SacgaParams p = constr_params();
  p.span = 20;  // below the 30-generation phase-I cap
  p.span_is_total_budget = true;
  EXPECT_THROW(run_sacga(*problem, p), PreconditionError);
}

TEST(Sacga, Phase1StopsEarlyWhenAllPartitionsFeasible) {
  // SCH is unconstrained: every individual is feasible, so phase 1 ends as
  // soon as every partition is populated.
  const auto problem = problems::make_sch();
  SacgaParams p;
  p.population_size = 40;
  p.partitions = 2;
  p.axis_objective = 0;
  p.axis_lo = 0.0;
  p.axis_hi = 4.0;
  p.phase1_max_generations = 50;
  p.span = 10;
  p.seed = 1;
  const auto result = run_sacga(*problem, p);
  EXPECT_LT(result.phase1_generations, 50u);
}

TEST(Sacga, ReportsDiscardedPartitions) {
  // CONSTR feasible f1 range is [0.39, 1]: partitions on [0.1, 1] with bins
  // below ~0.39 can never become feasible and must be discarded.
  const auto problem = problems::make_constr();
  SacgaParams p = constr_params();
  p.partitions = 8;
  p.phase1_max_generations = 40;
  const auto result = run_sacga(*problem, p);
  EXPECT_GE(result.discarded_partitions, 1u);
  EXPECT_LT(result.discarded_partitions, 8u);
}

TEST(LocalOnly, RunsAndExtractsFront) {
  const auto problem = problems::make_constr();
  LocalOnlyParams p;
  p.population_size = 40;
  p.partitions = 4;
  p.axis_objective = 0;
  p.axis_lo = 0.1;
  p.axis_hi = 1.0;
  p.generations = 60;
  p.seed = 2;
  const auto result = run_local_only(*problem, p);
  EXPECT_EQ(result.generations_run, 60u);
  EXPECT_EQ(result.population.size(), 40u);
  ASSERT_GT(result.front.size(), 2u);
  for (const auto& ind : result.front) EXPECT_TRUE(ind.feasible());
}

TEST(LocalOnly, DeterministicForFixedSeed) {
  const auto problem = problems::make_sch();
  LocalOnlyParams p;
  p.population_size = 20;
  p.partitions = 4;
  p.axis_objective = 0;
  p.axis_lo = 0.0;
  p.axis_hi = 4.0;
  p.generations = 20;
  p.seed = 77;
  const auto a = run_local_only(*problem, p);
  const auto b = run_local_only(*problem, p);
  ASSERT_EQ(a.front.size(), b.front.size());
}

}  // namespace
}  // namespace anadex::sacga
