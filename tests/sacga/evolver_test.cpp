#include "sacga/partitioned_evolver.hpp"

#include <set>

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "problems/analytic.hpp"

namespace anadex::sacga {
namespace {

EvolverParams small_params() {
  EvolverParams p;
  p.population_size = 40;
  return p;
}

Partitioner sch_partitioner(std::size_t count) {
  // SCH objective 0 = x^2; the interesting front lies in [0, 4].
  return Partitioner(0, 0.0, 4.0, count);
}

const ParticipationProbability kNever = [](std::size_t) { return 0.0; };
const ParticipationProbability kAlways = [](std::size_t) { return 1.0; };

TEST(Evolver, RejectsBadPopulationSize) {
  const auto problem = problems::make_sch();
  EvolverParams p;
  p.population_size = 5;
  EXPECT_THROW(PartitionedEvolver(*problem, p, sch_partitioner(4), 1), PreconditionError);
}

TEST(Evolver, RejectsBadAxisObjective) {
  const auto problem = problems::make_sch();
  EXPECT_THROW(PartitionedEvolver(*problem, small_params(), Partitioner(7, 0.0, 1.0, 4), 1),
               PreconditionError);
}

TEST(Evolver, InitialPopulationEvaluatedAndRanked) {
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, small_params(), sch_partitioner(4), 1);
  EXPECT_EQ(evolver.population().size(), 40u);
  EXPECT_EQ(evolver.evaluations(), 40u);
  for (const auto& ind : evolver.population()) {
    EXPECT_EQ(ind.eval.objectives.size(), 2u);
    EXPECT_GE(ind.rank, 0);
  }
}

TEST(Evolver, StepKeepsPopulationSizeAndCountsEvaluations) {
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, small_params(), sch_partitioner(4), 1);
  evolver.step(kNever);
  EXPECT_EQ(evolver.population().size(), 40u);
  EXPECT_EQ(evolver.evaluations(), 80u);
  EXPECT_EQ(evolver.generation(), 1u);
}

TEST(Evolver, DeterministicForFixedSeed) {
  const auto problem = problems::make_sch();
  PartitionedEvolver a(*problem, small_params(), sch_partitioner(4), 9);
  PartitionedEvolver b(*problem, small_params(), sch_partitioner(4), 9);
  for (int i = 0; i < 5; ++i) {
    a.step(kNever);
    b.step(kNever);
  }
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_EQ(a.population()[i].genes, b.population()[i].genes);
  }
}

TEST(Evolver, PureLocalCompetitionPreservesPartitionSpread) {
  // Under pure local competition, every populated partition's local front
  // shares rank 0, so the population keeps representation across partitions.
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, small_params(), sch_partitioner(4), 3);
  for (int i = 0; i < 30; ++i) evolver.step(kNever);
  std::set<std::size_t> partitions;
  for (const auto& ind : evolver.population()) {
    partitions.insert(evolver.partitioner().index_of(ind));
  }
  EXPECT_GE(partitions.size(), 3u);
}

TEST(Evolver, GlobalFrontIsFeasibleAndNondominated) {
  const auto problem = problems::make_constr();
  EvolverParams params = small_params();
  PartitionedEvolver evolver(*problem, params, Partitioner(0, 0.1, 1.0, 4), 5);
  for (int i = 0; i < 40; ++i) evolver.step(kAlways);
  const auto front = evolver.global_front();
  ASSERT_FALSE(front.empty());
  for (const auto& a : front) {
    EXPECT_TRUE(a.feasible());
    for (const auto& b : front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moga::dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(Evolver, AllPartitionsFeasibleDetection) {
  const auto problem = problems::make_sch();  // unconstrained: all feasible
  PartitionedEvolver evolver(*problem, small_params(), sch_partitioner(2), 1);
  // SCH random init over [-1000, 1000]: objective 0 = x^2 is huge, so both
  // bins of [0, 4] are unlikely to be populated at once initially; after
  // some pure-local generations they must be.
  for (int i = 0; i < 50 && !evolver.all_active_partitions_feasible(); ++i) {
    evolver.step(kNever);
  }
  EXPECT_TRUE(evolver.all_active_partitions_feasible());
}

TEST(Evolver, DiscardInfeasiblePartitionsMarksAndCounts) {
  const auto problem = problems::make_constr();
  PartitionedEvolver evolver(*problem, small_params(), Partitioner(0, 0.1, 1.0, 8), 2);
  const std::size_t discarded = evolver.discard_infeasible_partitions();
  EXPECT_EQ(discarded,
            static_cast<std::size_t>(
                std::count(evolver.discarded().begin(), evolver.discarded().end(), true)));
}

TEST(Evolver, SetPartitionerResetsDiscards) {
  const auto problem = problems::make_constr();
  PartitionedEvolver evolver(*problem, small_params(), Partitioner(0, 0.1, 1.0, 8), 2);
  evolver.discard_infeasible_partitions();
  evolver.set_partitioner(Partitioner(0, 0.1, 1.0, 3));
  EXPECT_EQ(evolver.partitioner().count(), 3u);
  for (bool d : evolver.discarded()) EXPECT_FALSE(d);
}

TEST(Evolver, AlwaysParticipateActsGlobally) {
  // With participation = 1 everywhere, convergence should approach plain
  // global competition: the SCH front (objectives in [0,4]x[0,4]) is found.
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, small_params(), sch_partitioner(4), 21);
  for (int i = 0; i < 60; ++i) evolver.step(kAlways);
  const auto front = evolver.global_front();
  ASSERT_GT(front.size(), 5u);
  for (const auto& ind : front) {
    EXPECT_LE(ind.eval.objectives[0], 4.5);
    EXPECT_LE(ind.eval.objectives[1], 4.5);
  }
}

}  // namespace
}  // namespace anadex::sacga
