#include "sacga/island.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "problems/analytic.hpp"

namespace anadex::sacga {
namespace {

IslandParams small_params() {
  IslandParams p;
  p.islands = 3;
  p.island_population = 16;
  p.generations = 40;
  p.migration_interval = 10;
  p.migrants = 2;
  p.seed = 5;
  return p;
}

TEST(IslandGa, ValidatesParameters) {
  const auto problem = problems::make_sch();
  IslandParams p = small_params();
  p.islands = 1;
  EXPECT_THROW(run_island_ga(*problem, p), PreconditionError);
  p = small_params();
  p.island_population = 5;
  EXPECT_THROW(run_island_ga(*problem, p), PreconditionError);
  p = small_params();
  p.migration_interval = 0;
  EXPECT_THROW(run_island_ga(*problem, p), PreconditionError);
  p = small_params();
  p.migrants = 99;
  EXPECT_THROW(run_island_ga(*problem, p), PreconditionError);
}

TEST(IslandGa, PopulationIsUnionOfIslands) {
  const auto problem = problems::make_sch();
  const auto result = run_island_ga(*problem, small_params());
  EXPECT_EQ(result.population.size(), 3u * 16u);
  EXPECT_EQ(result.generations_run, 40u);
}

TEST(IslandGa, MigrationCountMatchesInterval) {
  const auto problem = problems::make_sch();
  const auto result = run_island_ga(*problem, small_params());
  EXPECT_EQ(result.migrations, 4u);  // generations 10, 20, 30, 40
}

TEST(IslandGa, EvaluationAccounting) {
  const auto problem = problems::make_sch();
  const auto result = run_island_ga(*problem, small_params());
  // init (3*16) + per generation (3*16).
  EXPECT_EQ(result.evaluations, 48u + 40u * 48u);
}

TEST(IslandGa, FrontIsFeasibleNondominated) {
  const auto problem = problems::make_constr();
  IslandParams p = small_params();
  p.generations = 80;
  const auto result = run_island_ga(*problem, p);
  ASSERT_GT(result.front.size(), 2u);
  for (const auto& a : result.front) {
    EXPECT_TRUE(a.feasible());
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moga::dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(IslandGa, DeterministicPerSeed) {
  const auto problem = problems::make_sch();
  const auto a = run_island_ga(*problem, small_params());
  const auto b = run_island_ga(*problem, small_params());
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genes, b.front[i].genes);
  }
}

TEST(IslandGa, ConvergesOnSch) {
  const auto problem = problems::make_sch();
  IslandParams p = small_params();
  p.generations = 120;
  const auto result = run_island_ga(*problem, p);
  for (const auto& ind : result.front) {
    EXPECT_GE(ind.genes[0], -0.2);
    EXPECT_LE(ind.genes[0], 2.2);  // SCH Pareto set is [0, 2]
  }
}

TEST(IslandGa, CallbackSeesUnionPopulation) {
  const auto problem = problems::make_sch();
  std::size_t calls = 0;
  run_island_ga(*problem, small_params(), [&](std::size_t, const moga::Population& pop) {
    ++calls;
    EXPECT_EQ(pop.size(), 48u);
  });
  EXPECT_EQ(calls, 40u);
}

}  // namespace
}  // namespace anadex::sacga
