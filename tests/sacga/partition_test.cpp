#include "sacga/partition.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace anadex::sacga {
namespace {

TEST(Partitioner, RejectsZeroPartitions) {
  EXPECT_THROW(Partitioner(0, 0.0, 1.0, 0), PreconditionError);
}

TEST(Partitioner, RejectsDegenerateRange) {
  EXPECT_THROW(Partitioner(0, 1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Partitioner(0, 2.0, 1.0, 4), PreconditionError);
}

TEST(Partitioner, SinglePartitionCoversEverything) {
  const Partitioner p(0, 0.0, 1.0, 1);
  EXPECT_EQ(p.index_of_value(-100.0), 0u);
  EXPECT_EQ(p.index_of_value(0.5), 0u);
  EXPECT_EQ(p.index_of_value(100.0), 0u);
}

TEST(Partitioner, EqualBinsMapCorrectly) {
  const Partitioner p(0, 0.0, 10.0, 5);
  EXPECT_EQ(p.index_of_value(0.0), 0u);
  EXPECT_EQ(p.index_of_value(1.99), 0u);
  EXPECT_EQ(p.index_of_value(2.0), 1u);
  EXPECT_EQ(p.index_of_value(5.0), 2u);
  EXPECT_EQ(p.index_of_value(9.99), 4u);
}

TEST(Partitioner, ValuesOutsideRangeClampToEdges) {
  const Partitioner p(0, 0.0, 10.0, 5);
  EXPECT_EQ(p.index_of_value(-3.0), 0u);
  EXPECT_EQ(p.index_of_value(10.0), 4u);  // upper edge maps into the last bin
  EXPECT_EQ(p.index_of_value(42.0), 4u);
}

TEST(Partitioner, IntervalsTileTheRange) {
  const Partitioner p(1, -1.0, 1.0, 4);
  double expected_lower = -1.0;
  for (std::size_t bin = 0; bin < 4; ++bin) {
    const auto interval = p.interval_of(bin);
    EXPECT_NEAR(interval.lower, expected_lower, 1e-12);
    EXPECT_NEAR(interval.upper - interval.lower, 0.5, 1e-12);
    expected_lower = interval.upper;
  }
  EXPECT_NEAR(expected_lower, 1.0, 1e-12);
}

TEST(Partitioner, IntervalIndexBoundsChecked) {
  const Partitioner p(0, 0.0, 1.0, 2);
  EXPECT_THROW(p.interval_of(2), PreconditionError);
}

TEST(Partitioner, IndexOfIndividualUsesAxisObjective) {
  const Partitioner p(1, 0.0, 10.0, 10);
  moga::Individual ind;
  ind.eval.objectives = {99.0, 3.5};
  EXPECT_EQ(p.index_of(ind), 3u);
}

TEST(Partitioner, IndexOfRejectsMissingObjective) {
  const Partitioner p(2, 0.0, 1.0, 4);
  moga::Individual ind;
  ind.eval.objectives = {0.5, 0.5};
  EXPECT_THROW(p.index_of(ind), PreconditionError);
}

TEST(Partitioner, ValueOnBinBoundaryGoesToUpperBin) {
  const Partitioner p(0, 0.0, 1.0, 10);
  EXPECT_EQ(p.index_of_value(0.3), 3u);
  EXPECT_EQ(p.index_of_value(0.7), 7u);
}

TEST(Partitioner, ManyPartitionsStayConsistentWithIntervals) {
  const Partitioner p(0, 0.0, 5e-12, 20);  // the integrator's load axis
  for (std::size_t bin = 0; bin < 20; ++bin) {
    const auto interval = p.interval_of(bin);
    const double mid = 0.5 * (interval.lower + interval.upper);
    EXPECT_EQ(p.index_of_value(mid), bin);
  }
}

}  // namespace
}  // namespace anadex::sacga
