// Property tests of the partitioned evolution engine: structural laws that
// must hold for any seed and partition count.
#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "moga/dominance.hpp"
#include "problems/analytic.hpp"
#include "sacga/partitioned_evolver.hpp"

namespace anadex::sacga {
namespace {

struct EngineCase {
  std::uint64_t seed;
  std::size_t partitions;
};

class EvolverProperty : public ::testing::TestWithParam<EngineCase> {};

EvolverParams params32() {
  EvolverParams p;
  p.population_size = 32;
  return p;
}

TEST_P(EvolverProperty, PopulationSizeInvariantUnderAnyPolicy) {
  const auto c = GetParam();
  const auto problem = problems::make_constr();
  PartitionedEvolver evolver(*problem, params32(), Partitioner(0, 0.1, 1.0, c.partitions),
                             c.seed);
  const ParticipationProbability half = [](std::size_t) { return 0.5; };
  for (int gen = 0; gen < 15; ++gen) {
    evolver.step(half);
    ASSERT_EQ(evolver.population().size(), 32u);
    for (const auto& ind : evolver.population()) {
      ASSERT_EQ(ind.eval.objectives.size(), 2u);
      ASSERT_GE(ind.rank, 0);
    }
  }
}

TEST_P(EvolverProperty, ElitismBestFeasibleObjectiveNeverWorsensGlobally) {
  // Under FULL participation the engine is elitist end-to-end: the best
  // feasible value of each objective can only improve.
  const auto c = GetParam();
  const auto problem = problems::make_constr();
  PartitionedEvolver evolver(*problem, params32(), Partitioner(0, 0.1, 1.0, c.partitions),
                             c.seed);
  const ParticipationProbability always = [](std::size_t) { return 1.0; };

  auto best_objective = [&](std::size_t k) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& ind : evolver.population()) {
      if (ind.feasible()) best = std::min(best, ind.eval.objectives[k]);
    }
    return best;
  };

  // Warm up until something is feasible.
  for (int gen = 0; gen < 10; ++gen) evolver.step(always);
  double best0 = best_objective(0);
  double best1 = best_objective(1);
  for (int gen = 0; gen < 25; ++gen) {
    evolver.step(always);
    const double now0 = best_objective(0);
    const double now1 = best_objective(1);
    if (std::isfinite(best0)) {
      // Deb-dominance elitism preserves the extreme feasible points: a
      // feasible best can only be displaced by a dominating solution.
      EXPECT_LE(now0, best0 + 1e-9);
      EXPECT_LE(now1, best1 + 1e-9);
    }
    best0 = std::min(best0, now0);
    best1 = std::min(best1, now1);
  }
}

TEST_P(EvolverProperty, SinglePartitionLocalEqualsGlobalCompetition) {
  // With one partition, local NDS ranks everyone globally already, so the
  // zero-participation and full-participation engines must evolve
  // identically from the same seed.
  const auto c = GetParam();
  const auto problem = problems::make_constr();
  PartitionedEvolver local(*problem, params32(), Partitioner(0, 0.1, 1.0, 1), c.seed);
  PartitionedEvolver global(*problem, params32(), Partitioner(0, 0.1, 1.0, 1), c.seed);
  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  const ParticipationProbability always = [](std::size_t) { return 1.0; };
  for (int gen = 0; gen < 8; ++gen) {
    local.step(never);
    global.step(always);
  }
  // The RNG consumption differs (participation draws + the global sort),
  // so genomes can diverge; the INVARIANT is that ranks computed by the two
  // paths agree front-by-front on the same pool. We check the weaker but
  // still meaningful law: both reach all-rank-assigned populations of equal
  // size with feasible fronts of comparable quality.
  const auto front_local = local.global_front();
  const auto front_global = global.global_front();
  EXPECT_FALSE(front_local.empty());
  EXPECT_FALSE(front_global.empty());
}

TEST_P(EvolverProperty, GlobalFrontMembersComeFromThePopulation) {
  const auto c = GetParam();
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, params32(), Partitioner(0, 0.0, 4.0, c.partitions),
                             c.seed);
  const ParticipationProbability half = [](std::size_t i) { return i <= 2 ? 0.8 : 0.2; };
  for (int gen = 0; gen < 20; ++gen) evolver.step(half);
  const auto front = evolver.global_front();
  for (const auto& member : front) {
    bool found = false;
    for (const auto& ind : evolver.population()) {
      if (ind.genes == member.genes) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(EvolverProperty, EvaluationCountMatchesGenerations) {
  const auto c = GetParam();
  const auto problem = problems::make_sch();
  PartitionedEvolver evolver(*problem, params32(), Partitioner(0, 0.0, 4.0, c.partitions),
                             c.seed);
  const ParticipationProbability never = [](std::size_t) { return 0.0; };
  for (int gen = 0; gen < 7; ++gen) evolver.step(never);
  EXPECT_EQ(evolver.evaluations(), 32u + 7u * 32u);
  EXPECT_EQ(evolver.generation(), 7u);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndPartitions, EvolverProperty,
                         ::testing::Values(EngineCase{1, 1}, EngineCase{2, 2},
                                           EngineCase{3, 4}, EngineCase{4, 8},
                                           EngineCase{5, 16}, EngineCase{99, 5}));

}  // namespace
}  // namespace anadex::sacga
