#include "sacga/mesacga.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "moga/dominance.hpp"
#include "problems/analytic.hpp"

namespace anadex::sacga {
namespace {

MesacgaParams constr_params() {
  MesacgaParams p;
  p.population_size = 40;
  p.partition_schedule = {8, 4, 2, 1};
  p.axis_objective = 0;
  p.axis_lo = 0.1;
  p.axis_hi = 1.0;
  p.phase1_max_generations = 20;
  p.span = 25;
  p.seed = 4;
  return p;
}

TEST(Mesacga, ValidatesSchedule) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  p.partition_schedule = {};
  EXPECT_THROW(run_mesacga(*problem, p), PreconditionError);
  p = constr_params();
  p.partition_schedule = {4, 8};  // increasing: invalid
  EXPECT_THROW(run_mesacga(*problem, p), PreconditionError);
  p = constr_params();
  p.partition_schedule = {4, 0};
  EXPECT_THROW(run_mesacga(*problem, p), PreconditionError);
  p = constr_params();
  p.span = 0;
  EXPECT_THROW(run_mesacga(*problem, p), PreconditionError);
}

TEST(Mesacga, RunsAllPhasesAndSnapshotsEach) {
  const auto problem = problems::make_constr();
  const auto result = run_mesacga(*problem, constr_params());
  ASSERT_EQ(result.phases.size(), 4u);
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    EXPECT_EQ(result.phases[i].phase, i + 1);
  }
  EXPECT_EQ(result.phases[0].partitions, 8u);
  EXPECT_EQ(result.phases[3].partitions, 1u);
  EXPECT_EQ(result.generations_run, result.phase1_generations + 4u * 25u);
}

TEST(Mesacga, SnapshotGenerationsAreCumulative) {
  const auto problem = problems::make_constr();
  const auto result = run_mesacga(*problem, constr_params());
  std::size_t prev = result.phase1_generations;
  for (const auto& snap : result.phases) {
    EXPECT_EQ(snap.generation, prev + 25u);
    prev = snap.generation;
  }
}

TEST(Mesacga, FinalFrontFeasibleAndNondominated) {
  const auto problem = problems::make_constr();
  const auto result = run_mesacga(*problem, constr_params());
  ASSERT_GT(result.front.size(), 3u);
  for (const auto& a : result.front) {
    EXPECT_TRUE(a.feasible());
    for (const auto& b : result.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moga::dominates(b.eval.objectives, a.eval.objectives));
    }
  }
}

TEST(Mesacga, DeterministicForFixedSeed) {
  const auto problem = problems::make_constr();
  const auto a = run_mesacga(*problem, constr_params());
  const auto b = run_mesacga(*problem, constr_params());
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genes, b.front[i].genes);
  }
}

TEST(Mesacga, TotalBudgetDerivesSpan) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  p.total_budget = 120;
  const auto result = run_mesacga(*problem, p);
  // span = (120 - gen_t) / 4 phases; total = gen_t + 4 * span <= 120.
  EXPECT_LE(result.generations_run, 120u);
  EXPECT_GT(result.generations_run, 120u - 4u);
}

TEST(Mesacga, TotalBudgetMustExceedPhase1Cap) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  p.total_budget = 10;  // below the 20-generation cap
  EXPECT_THROW(run_mesacga(*problem, p), PreconditionError);
}

TEST(Mesacga, PerPhaseAnnealingVariantRuns) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  p.continuous_annealing = false;
  const auto result = run_mesacga(*problem, p);
  EXPECT_EQ(result.phases.size(), 4u);
  EXPECT_FALSE(result.front.empty());
}

TEST(Mesacga, ContinuousAndPerPhaseAnnealingDiffer) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  const auto cont = run_mesacga(*problem, p);
  p.continuous_annealing = false;
  const auto restart = run_mesacga(*problem, p);
  bool differ = cont.front.size() != restart.front.size();
  for (std::size_t i = 0; !differ && i < cont.front.size(); ++i) {
    differ = cont.front[i].genes != restart.front[i].genes;
  }
  EXPECT_TRUE(differ);
}

TEST(Mesacga, CallbackSeesEveryGeneration) {
  const auto problem = problems::make_constr();
  std::size_t calls = 0;
  const auto result = run_mesacga(*problem, constr_params(),
                                  [&](std::size_t, const auto&) { ++calls; });
  EXPECT_EQ(calls, result.generations_run);
}

TEST(Mesacga, SinglePhaseDegeneratesToSacgaLikeRun) {
  const auto problem = problems::make_constr();
  MesacgaParams p = constr_params();
  p.partition_schedule = {4};
  const auto result = run_mesacga(*problem, p);
  EXPECT_EQ(result.phases.size(), 1u);
  EXPECT_FALSE(result.front.empty());
}

}  // namespace
}  // namespace anadex::sacga
