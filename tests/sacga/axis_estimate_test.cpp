#include "sacga/axis_estimate.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "problems/analytic.hpp"
#include "problems/integrator_problem.hpp"
#include "problems/spec_suite.hpp"

namespace anadex::sacga {
namespace {

TEST(AxisEstimate, Validation) {
  const auto problem = problems::make_sch();
  Rng rng(1);
  EXPECT_THROW(estimate_axis_range(*problem, 7, 10, rng), PreconditionError);
  EXPECT_THROW(estimate_axis_range(*problem, 0, 1, rng), PreconditionError);
  EXPECT_THROW(estimate_axis_range(*problem, 0, 10, rng, -0.1), PreconditionError);
}

TEST(AxisEstimate, CoversTheObservedRangeWithPadding) {
  const auto problem = problems::make_sch();  // f1 = x^2, x in [-1000, 1000]
  Rng rng(2);
  const auto estimate = estimate_axis_range(*problem, 0, 200, rng, 0.05);
  EXPECT_LT(estimate.lo, estimate.hi);
  EXPECT_GE(estimate.hi, 1e4);  // random |x| easily exceeds 100
  // Padding pushes lo below the smallest observed (non-negative) value.
  EXPECT_LT(estimate.lo, 0.0 + 1e6);
}

TEST(AxisEstimate, IntegratorLoadAxisMatchesConstruction) {
  // For the integrator problem objective 1 = kLoadMax - cload is uniform in
  // [0, ~5 pF] by construction; the estimate must straddle that range.
  const problems::IntegratorProblem problem(problems::spec_suite().front());
  Rng rng(3);
  const auto estimate = estimate_axis_range(problem, 1, 64, rng, 0.0);
  EXPECT_GE(estimate.lo, 0.0);
  EXPECT_LE(estimate.hi, problems::kLoadMax);
  EXPECT_GT(estimate.hi - estimate.lo, 3e-12);  // most of the axis observed
}

TEST(AxisEstimate, DeterministicGivenRngState) {
  const auto problem = problems::make_sch();
  Rng a(7);
  Rng b(7);
  const auto ea = estimate_axis_range(*problem, 0, 50, a);
  const auto eb = estimate_axis_range(*problem, 0, 50, b);
  EXPECT_EQ(ea.lo, eb.lo);
  EXPECT_EQ(ea.hi, eb.hi);
}

TEST(AxisEstimate, ConstantObjectiveRejected) {
  class ConstantObjective final : public moga::Problem {
   public:
    std::string name() const override { return "const"; }
    std::size_t num_variables() const override { return 1; }
    std::size_t num_objectives() const override { return 2; }
    std::size_t num_constraints() const override { return 0; }
    std::vector<moga::VariableBound> bounds() const override { return {{0.0, 1.0}}; }
    void evaluate(std::span<const double> x, moga::Evaluation& out) const override {
      out.objectives = {x[0], 42.0};
      out.violations.clear();
    }
  };
  const ConstantObjective problem;
  Rng rng(5);
  EXPECT_THROW(estimate_axis_range(problem, 1, 20, rng), PreconditionError);
}

}  // namespace
}  // namespace anadex::sacga
